#!/usr/bin/env bash
# Full local gate: build, tests (sequential AND parallel engine), lints,
# formatting, cross-thread determinism of the experiments output, and
# the trace-overhead smoke check. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q (PRESBURGER_THREADS=1)"
PRESBURGER_THREADS=1 cargo test --workspace -q

echo "==> cargo test --workspace -q (PRESBURGER_THREADS=4)"
PRESBURGER_THREADS=4 cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> experiments output is identical at 1 and 4 threads"
# Timing legitimately varies run to run: blank the ms / par_speedup
# columns and normalize wall times quoted inside Measured cells (E3),
# then require everything else — ids, measured values, counters, pass
# marks — to be byte-identical. Cells may contain escaped \| so count
# columns from the end of the row, where ms is third-from-last.
strip_timing() {
    awk -F'|' 'BEGIN{OFS="|"} NF>=8 {$(NF-3)=""; $(NF-2)=""} {gsub(/[0-9]+\.[0-9]+ ms/, "_ ms"); print}'
}
out1=$(PRESBURGER_THREADS=1 cargo run --release -q -p presburger-bench --bin experiments | strip_timing)
out4=$(PRESBURGER_THREADS=4 cargo run --release -q -p presburger-bench --bin experiments | strip_timing)
if [ "$out1" != "$out4" ]; then
    echo "FAIL: experiments output differs between 1 and 4 threads" >&2
    diff <(printf '%s\n' "$out1") <(printf '%s\n' "$out4") >&2 || true
    exit 1
fi

echo "==> memo gate (zipf request mix: >= 50% hit rate and a wall-clock win)"
# The S3 experiment replays a fixed zipf-skewed request stream twice —
# memo off, then memo on from a cold table — and records the hit rate
# and speedup in BENCH_counters.json (left by the 4-thread run above).
# The memo must earn its keep: at least half of all sub-problem probes
# served from the table, and the memo-on stream faster in wall-clock
# terms. (Transparency — byte-identical answers — is asserted inside
# S3 itself and by tests/memoization.rs.)
memo_stats=$(awk '
    match($0, /"memo_hit_rate":[0-9.]+/)  { hr = substr($0, RSTART + 16, RLENGTH - 16) }
    match($0, /"memo_speedup":[0-9.]+/)   { sp = substr($0, RSTART + 15, RLENGTH - 15) }
    END { print hr, sp }' BENCH_counters.json)
hit_rate=${memo_stats% *}
speedup=${memo_stats#* }
echo "    hit rate: $hit_rate, memo-on speedup: ${speedup}x"
if ! awk -v h="$hit_rate" -v s="$speedup" 'BEGIN { exit !(h >= 0.5 && s > 1.0) }'; then
    echo "FAIL: memo gate: hit rate $hit_rate (need >= 0.5) or speedup $speedup (need > 1.0)" >&2
    exit 1
fi

echo "==> fault-injection matrix (every budget kind + cancellation + worker panic)"
# Each entry arms one fault site through PRESBURGER_FAULT and runs the
# governed integration test, which asserts the documented outcome for
# that site (DESIGN.md §9): counter sites degrade to §4.6 bounds (or
# surface the budget error when tripped in the DNF phase), deadline
# behaves like a budget, cancel errors with Cancelled, and :panic
# exercises panic isolation (caught, reported as Internal).
for fault in \
    splinters_generated:1 \
    dnf_work_clauses:2 \
    normalize_calls:1 \
    sum_depth:1 \
    convex_leaf_pieces:1 \
    max_coeff_bits:1 \
    deadline:8 \
    cancel:8 \
    splinters_generated:1:panic
do
    echo "    PRESBURGER_FAULT=$fault"
    PRESBURGER_FAULT=$fault cargo test --release -q --test governed fault_injection_from_env \
        > /dev/null
done

echo "==> fuzz smoke (generative differential harness, fixed seed)"
# Four layers (see DESIGN.md §10):
#   1. the seed corpus must exist and replay clean;
#   2. 200 fixed-seed generated cases must pass all five oracle
#      families (brute force, inclusion–exclusion + invariances,
#      determinism + governed bracketing, baselines, memo
#      transparency);
#   3.+4. with each deliberate engine bug armed, the harness must
#      CATCH it and shrink it to a ≤3-constraint counterexample (the
#      test inverts its expectation when PRESBURGER_GEN_FAULT is set).
corpus_count=$(find tests/corpus -name '*.pres' | wc -l)
if [ "$corpus_count" -lt 3 ]; then
    echo "FAIL: seed corpus has only $corpus_count cases (< 3)" >&2
    exit 1
fi
echo "    corpus replay + 200 clean cases"
PRESBURGER_GEN_SEED=1 PRESBURGER_GEN_CASES=200 \
    cargo test --release -q --test fuzz_differential > /dev/null
for fault in count_off_by_one miscount_stride; do
    echo "    PRESBURGER_GEN_FAULT=$fault (must be caught and shrunk)"
    PRESBURGER_GEN_FAULT=$fault PRESBURGER_GEN_SEED=1 PRESBURGER_GEN_CASES=40 \
        cargo test --release -q --test fuzz_differential \
        generated_formulas_agree_with_all_oracles > /dev/null
done

echo "==> serve smoke (admission, shedding, breaker, drain, replay determinism)"
# serve_stress drives the hardened serving layer end to end (DESIGN.md
# §11): 200 concurrent mixed requests over 4 connections at 1 and 4
# workers with zero lost/duplicated/misordered responses and
# byte-identical transcripts across runs; deterministic shedding under
# a tiny queue; a fault drill (worker panics → breaker opens → degraded
# bounds → half-open probe → recovery); graceful and zero-deadline
# drain; the supervised shard-pool chaos drills (phase 6, DESIGN.md
# §14); the binary-codec equality and batched-throughput phase (phase
# 7, DESIGN.md §15 — batched binary must strictly beat text); the
# admission-control phase (phase 8, DESIGN.md §16); and a
# latency/throughput recording to BENCH_serve.json (schema v5).
echo "    clean run (records BENCH_serve.json)"
cargo run --release -q -p presburger-serve --bin serve_stress > /dev/null
# The same suite must hold with a panic fault armed process-wide: the
# fault only fires inside governed exact regions, so phase 1's replay
# determinism now covers panic isolation on every splintery request.
echo "    PRESBURGER_FAULT=splinters_generated:1:panic (panic isolation under load)"
PRESBURGER_FAULT=splinters_generated:1:panic PRESBURGER_SERVE_BENCH_OUT="" \
    cargo run --release -q -p presburger-serve --bin serve_stress > /dev/null

echo "==> chaos gate (supervised shard pool: operator-style kill/wedge drills)"
# The shard supervisor's own gate (DESIGN.md §14). The clean serve run
# above already exercises the built-in drill matrix (kill at 1/2/4
# shards, wedge, delay, and the jittered-retry helper); here the *env*
# drill path is driven the way an operator would use it:
# PRESBURGER_CHAOS arms one deterministic fault at a named site, shard
# and occurrence, and the chaos phase must still deliver exactly one
# reply per admitted request, with transcripts byte-identical to the
# chaos-off baseline, at both 2 and 4 shards.
for drill in kill:1:3 wedge:0:3; do
    for shards in 2 4; do
        echo "    PRESBURGER_CHAOS=$drill PRESBURGER_SERVE_SHARDS=$shards"
        PRESBURGER_CHAOS=$drill PRESBURGER_SERVE_SHARDS=$shards \
            PRESBURGER_SERVE_CHAOS_ONLY=1 PRESBURGER_SERVE_BENCH_OUT="" \
            cargo run --release -q -p presburger-serve --bin serve_stress > /dev/null
    done
done

echo "==> admission gate (priority lanes, per-client quotas, eviction, determinism)"
# The deadline-aware admission layer's own gate (DESIGN.md §16), run
# as its own process twice so the soak's telemetry is not polluted by
# the other phases:
#   1. quota off — the phase-8 soak floods the background lane at 4×
#      queue capacity and asserts the interactive lane's p99 stays
#      within 3× its unloaded value with zero lost replies (every
#      flood slot answers: served or a reasoned queue_full shed);
#      quota on — the worked token-bucket example must replay with
#      exact computed retry_after_ms hints, the eviction drill must
#      answer expired requests with §4.6 bounds at admission and pop
#      time, and the admission-optioned stream must replay
#      byte-identically at 1/2/4 shards, chaos off and under a kill
#      drill (failover must not re-meter the shared ledger).
#   2. the same phase with a panic fault armed process-wide: admission
#      decisions are made before the engine runs, so they must be
#      untouched by panic isolation inside governed regions.
echo "    PRESBURGER_SERVE_ADMISSION_ONLY=1 (lanes / quota / eviction / determinism)"
PRESBURGER_SERVE_ADMISSION_ONLY=1 PRESBURGER_SERVE_BENCH_OUT="" \
    cargo run --release -q -p presburger-serve --bin serve_stress > /dev/null
echo "    PRESBURGER_FAULT=splinters_generated:1:panic (admission under panic isolation)"
PRESBURGER_FAULT=splinters_generated:1:panic PRESBURGER_SERVE_ADMISSION_ONLY=1 \
    PRESBURGER_SERVE_BENCH_OUT="" \
    cargo run --release -q -p presburger-serve --bin serve_stress > /dev/null

echo "==> wire gate (binary codec: round-trips, byte-soup fuzz, text differential)"
# The binary wire codec's own gate (DESIGN.md §15). The hard guarantee
# is semantic byte-identity: every binary reply must decode to exactly
# the text the text codec would have produced. Three layers:
#   1. canonical round-trip properties plus a raised-volume byte-soup
#      fuzz pass (truncations, bit flips, oversized length prefixes —
#      decoders must stay total, never over-read, and always fail with
#      a typed wire error);
#   2. the differential replay of the golden serving sessions (normal,
#      shed, breaker, kill-failover, wedge-restart) and the generated
#      request stream, text vs binary, at 1 and 4 shards;
#   3. the calculator's --connect client, text vs --binary --batch,
#      end to end over a real socket.
echo "    codec properties + fuzz smoke (PRESBURGER_WIRE_FUZZ_CASES=500)"
PRESBURGER_WIRE_FUZZ_CASES=500 cargo test --release -q -p presburger-serve \
    --test wire > /dev/null
for shards in 1 4; do
    echo "    differential gen-stream replay (PRESBURGER_WIRE_SHARDS=$shards)"
    PRESBURGER_WIRE_SHARDS=$shards cargo test --release -q -p presburger-serve \
        --test wire differential_gen_stream_over_pool > /dev/null
done
echo "    calculator --connect client differential (text vs binary)"
cargo test --release -q --test calculator_client > /dev/null

echo "==> metrics gate (exposition golden, flight-recorder drill, event log)"
# The telemetry layer's own gate (DESIGN.md §12):
#   1. the full metrics test suite, including the golden Prometheus
#      exposition (stable label ordering, all cumulative bucket lines,
#      pinned in crates/serve/tests/golden/metrics.prom) and the JSONL
#      event-log sampling/backpressure behavior;
#   2. the flight-recorder drill re-run with PRESBURGER_FAULT armed
#      process-wide — the governor trip induced by the env fault must
#      land the splintery request in the flight recorder with its
#      counter deltas, span tree, and formula intact.
echo "    metrics test suite (golden exposition + event log)"
cargo test --release -q -p presburger-serve --test metrics > /dev/null
echo "    PRESBURGER_FAULT=splinters_generated:1 (flight recorder captures the faulted request)"
PRESBURGER_FAULT=splinters_generated:1 cargo test --release -q -p presburger-serve \
    --test metrics flight_recorder_captures_faulted_request > /dev/null

echo "==> trace overhead smoke (disabled collector, governor, telemetry, memo & admission < 5% of E3)"
cargo run --release -p presburger-bench --bin overhead_smoke

echo "All checks passed."
