#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting, and the
# trace-overhead smoke check. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> trace overhead smoke (disabled collector < 5% of E3)"
cargo run --release -p presburger-bench --bin overhead_smoke

echo "All checks passed."
