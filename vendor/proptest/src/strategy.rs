//! Value-generation strategies: integer ranges, `any`, tuples, and the
//! `prop_filter` / `prop_map` adapters.

use crate::test_runner::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Something that can draw values of one type from the RNG.
///
/// Unlike the real proptest there is no value tree and no shrinking:
/// a strategy is just a sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Keeps only values satisfying `pred`, re-drawing (with a bounded
    /// number of attempts) until one passes.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Transforms drawn values with `map`.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, map }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut Rng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive draws",
            self.reason
        );
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        (self.map)(self.inner.sample(rng))
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one value uniformly from the whole domain.
    fn arbitrary(rng: &mut Rng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy drawing uniformly from `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_from_u64 {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_from_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut Rng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut Rng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i128::from(self.end) - i128::from(self.start)) as u128;
                (i128::from(self.start) + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (i128::from(hi) - i128::from(lo)) as u128 + 1;
                (i128::from(lo) + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64);

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u128::from(self.end) - u128::from(self.start);
                (u128::from(self.start) + rng.below(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = u128::from(hi) - u128::from(lo) + 1;
                (u128::from(lo) + rng.below(span)) as $t
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64);

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u128;
        self.start + rng.below(span) as usize
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = (hi - lo) as u128 + 1;
        lo + rng.below(span) as usize
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
