//! The case runner and its deterministic random source.

use std::fmt;

/// Why a single test case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion: the property is falsified.
    Fail(String),
    /// The case was discarded (e.g. by `prop_assume!`) and should be
    /// re-drawn without counting against the case budget.
    Reject(String),
}

impl TestCaseError {
    /// A hard failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A discarded case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64: tiny, fast, and plenty for drawing test inputs.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds deterministically from a test name (FNV-1a), so each test
    /// sees its own reproducible stream. `PROPTEST_STUB_SEED` (a u64)
    /// perturbs every stream, for hunting order-dependent flakiness.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_STUB_SEED") {
            if let Ok(x) = extra.trim().parse::<u64>() {
                h ^= x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        Self { state: h }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, n)`. `n` must be positive; spans up to
    /// 2^64 (the widest any supported range strategy needs) are drawn
    /// from 128 random bits, making modulo bias negligible.
    pub fn below(&mut self, n: u128) -> u128 {
        assert!(n > 0, "empty sampling range");
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }
}

/// Runs `config.cases` accepted cases of `body`, drawing inputs from
/// `rng`; panics (failing the enclosing `#[test]`) on the first
/// falsified case. Rejected cases are re-drawn, with a generous cap so
/// an unsatisfiable `prop_assume!` cannot loop forever.
pub fn run_cases<F>(name: &str, config: ProptestConfig, mut body: F)
where
    F: FnMut(&mut Rng) -> Result<(), TestCaseError>,
{
    let mut rng = Rng::from_name(name);
    let mut accepted: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = 1000 + u64::from(config.cases) * 20;
    while accepted < config.cases {
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many rejected cases ({rejected}); last reason: {reason}"
                );
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "{name}: case {accepted} of {} failed: {reason}",
                    config.cases
                )
            }
        }
    }
}

use crate::ProptestConfig;
