//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive length band for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy producing `Vec`s whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.size.max_excl - self.size.min) as u128;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
