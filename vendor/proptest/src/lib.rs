//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this workspace has no network access and no
//! registry cache, so the real crate cannot be fetched. This vendored
//! replacement implements exactly the API surface the workspace's tests
//! use — the `proptest!` macro, integer/tuple/`Vec` strategies, `any`,
//! `prop_filter`, the `prop_assert*` / `prop_assume!` macros, and
//! `TestCaseError` — on top of a small deterministic SplitMix64 generator.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the failure message only;
//!   inputs are not minimized.
//! - **Deterministic seeding.** The RNG is seeded from the test's module
//!   path and name (override with `PROPTEST_STUB_SEED`), so runs are
//!   reproducible across invocations and machines.
//! - **No persistence** (`proptest-regressions` files are neither read
//!   nor written).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Strategy};
pub use test_runner::TestCaseError;

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The subset of the real prelude the workspace uses.
pub mod prelude {
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current test case with a formatted message unless `cond`
/// holds. Usable in any function returning `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` specialised to equality, printing both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` specialised to inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {:?} == {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case (it is re-drawn, not counted) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, e.g.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    config,
                    |__proptest_rng| {
                        let ($($arg,)+) = (
                            $($crate::strategy::Strategy::sample(&($strat), __proptest_rng),)+
                        );
                        let __proptest_body = || -> ::core::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                            $body
                            ::core::result::Result::Ok(())
                        };
                        __proptest_body()
                    },
                );
            }
        )*
    };
}
