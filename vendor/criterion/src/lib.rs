//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This vendored replacement implements the API surface the
//! workspace's benches use — `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple mean/min wall-clock report instead of criterion's
//! statistical machinery. Good enough to keep the benches compiling,
//! running, and producing comparable numbers between sessions.

use std::fmt;
use std::time::{Duration, Instant};

/// Minimum measured wall time per benchmark before reporting.
const TARGET_TOTAL: Duration = Duration::from_millis(40);

/// The benchmark context handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named set of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under the id `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Times `f` with a borrowed input under the id `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        match summarize(&bencher.samples) {
            Some((mean, min)) => println!(
                "{label:<55} mean {:>12} | min {:>12} | {} samples",
                fmt_duration(mean),
                fmt_duration(min),
                bencher.samples.len()
            ),
            None => println!("{label:<55} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn summarize(samples: &[Duration]) -> Option<(Duration, Duration)> {
    let min = *samples.iter().min()?;
    let total: Duration = samples.iter().sum();
    Some((total / samples.len() as u32, min))
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Identifies one benchmark within a group, e.g. `("simplify", 12)`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// A two-part id rendered as `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            full: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Collects timed samples of a closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated calls of `f`: one untimed warm-up, then up to
    /// `sample_size` samples (stopping early once enough wall time has
    /// accumulated so cheap closures don't spin for long).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            self.samples.push(dt);
            total += dt;
            if total >= TARGET_TOTAL && self.samples.len() >= 10 {
                break;
            }
        }
    }
}

/// Declares a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
