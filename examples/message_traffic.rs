//! Message-traffic analysis (§1.1: "quantify message traffic, and
//! allocate space for message buffers").
//!
//! A shift computation `a[i] += b[i+4]` over block-cyclically
//! distributed arrays: how many elements of `b` does each processor
//! pair exchange under the owner-computes rule?
//!
//! ```text
//! cargo run --example message_traffic
//! ```

use presburger_apps::BlockCyclic;
use presburger_omega::{Affine, Space};

fn main() {
    let dist = BlockCyclic::new(4, 8); // 4 processors, blocks of 8
    let n = 255i64; // a(0:255), b(0:259)

    let mut space = Space::new();
    let p = space.var("p");
    let q = space.var("q");
    let vol = dist.comm_volume(
        &space,
        Affine::constant(0),
        Affine::constant(n),
        "i",
        &|i| Affine::var(i),                       // write a[i]
        &|i| Affine::var(i) + Affine::constant(4), // read  b[i+4]
        p,
        q,
    );

    println!("shift a[i] += b[i+4], i = 0..={n}, block-cyclic (P=4, B=8)");
    println!("\nelements of b needed by processor p from owner q:");
    println!("            q=0    q=1    q=2    q=3");
    let mut total_remote = 0i64;
    for pv in 0..4i64 {
        print!("  p={pv}:   ");
        for qv in 0..4i64 {
            let v = vol.eval_i64(&[("p", pv), ("q", qv)]).unwrap();
            if pv != qv {
                total_remote += v;
            }
            print!("{v:>5}  ");
        }
        println!();
    }
    println!("\ntotal remote traffic: {total_remote} elements");
    println!("(the diagonal is local data — no messages needed)");

    // Compare against the naive bound: every read could be remote.
    println!("naive worst-case bound: {} elements", n + 1);

    // Sanity: symbolic result agrees with a direct simulation.
    for pv in 0..4i64 {
        for qv in 0..4i64 {
            let mut needed = std::collections::BTreeSet::new();
            for iv in 0..=n {
                if dist.owner(iv) == pv && dist.owner(iv + 4) == qv {
                    needed.insert(iv + 4);
                }
            }
            assert_eq!(
                vol.eval_i64(&[("p", pv), ("q", qv)]),
                Some(needed.len() as i64)
            );
        }
    }
}
