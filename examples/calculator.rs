//! A miniature "Omega calculator": type a Presburger formula, get the
//! symbolic count of its solutions.
//!
//! ```text
//! cargo run --example calculator -- "count {i, j : 1 <= i <= j <= n}"
//! cargo run --example calculator            # runs the built-in demos
//! cargo run --example calculator -- --stats "count {i : 1 <= i <= n}"
//! cargo run --example calculator -- --trace "count {i : 1 <= i <= n}"
//! ```
//!
//! Query syntax:  `count { v1, v2, … : formula }` — the listed
//! variables are counted; every other name is a symbolic constant.
//!
//! Flags:
//! * `--stats` — print the pipeline counters the query fired
//!   (eliminations, splinters, clause counts, …);
//! * `--trace` — additionally record timing spans and `explain` events
//!   and print them as an indented derivation tree;
//! * `--json` — with `--stats`/`--trace`, emit JSON instead of text;
//! * `--threads N` — drain the clause pipeline with `N` worker threads
//!   (`0` = one per core). Answers are byte-identical at any setting.

use presburger::prelude::*;
use presburger_counting::try_count_solutions;
use presburger_omega::parse_formula;

struct Options {
    stats: bool,
    trace: bool,
    json: bool,
    threads: usize,
}

fn run_query(query: &str, opts: &Options) -> Result<(), String> {
    let query = query.trim();
    let rest = query
        .strip_prefix("count")
        .ok_or("queries start with 'count'")?
        .trim();
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("expected count { vars : formula }")?;
    let (vars_text, formula_text) = inner
        .split_once(':')
        .ok_or("expected ':' between variables and formula")?;

    let mut space = Space::new();
    let vars: Vec<VarId> = vars_text
        .split(',')
        .map(|name| space.var(name.trim()))
        .collect();
    let f = parse_formula(formula_text, &mut space).map_err(|e| e.to_string())?;
    let symbols: Vec<String> = f
        .free_vars()
        .into_iter()
        .filter(|v| !vars.contains(v))
        .map(|v| space.name(v).to_string())
        .collect();

    presburger::reset_stats();
    let count_opts = CountOptions {
        threads: opts.threads,
        ..CountOptions::default()
    };
    let count = try_count_solutions(&space, &f, &vars, &count_opts).map_err(|e| e.to_string())?;
    println!("> {query}");
    println!("  = {}", count.to_display_string());
    if !symbols.is_empty() {
        // tabulate a few sample values of the first symbol
        let name = &symbols[0];
        let fixed: Vec<(&str, i64)> = symbols[1..].iter().map(|s| (s.as_str(), 10)).collect();
        print!("  {name} =");
        for v in [0i64, 1, 2, 5, 10, 100] {
            let mut bindings = fixed.clone();
            bindings.push((name.as_str(), v));
            match count.eval_i64(&bindings) {
                Some(c) => print!("  {v}→{c}"),
                None => print!("  {v}→?"),
            }
        }
        if symbols.len() > 1 {
            print!("   (other symbols fixed at 10)");
        }
        println!();
    }
    if opts.trace {
        let tree = presburger::trace::span::take_tree();
        if opts.json {
            println!("{}", tree.to_json());
        } else {
            println!("--- trace ---");
            print!("{}", tree.render());
        }
    }
    if opts.stats {
        let stats = presburger::stats();
        if opts.json {
            println!("{}", stats.to_json());
        } else {
            println!("--- pipeline counters ---");
            print!("{stats}");
        }
    }
    println!();
    Ok(())
}

fn main() {
    let mut opts = Options {
        stats: false,
        trace: false,
        json: false,
        threads: CountOptions::default().threads,
    };
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = true,
            "--json" => opts.json = true,
            "--threads" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => opts.threads = n,
                _ => {
                    eprintln!("--threads needs a number (0 = one per core)");
                    std::process::exit(2);
                }
            },
            _ => rest.push(arg),
        }
    }
    // --trace implies counters too: the derivation tree and the counter
    // totals describe the same run.
    if opts.trace {
        opts.stats = true;
    }
    presburger::enable_stats(opts.stats);
    presburger::trace::enable_tracing(opts.trace);

    let queries: Vec<String> = if rest.is_empty() {
        [
            // the paper's running examples, in calculator syntax
            "count {i : 1 <= i <= 10}",
            "count {i, j : 1 <= i <= j <= n}",
            "count {i, j : 1 <= i && 1 <= j <= n && 2i <= 3j}",
            "count {x : exists i, j : 1 <= i <= 8 && 1 <= j <= 5 && x = 6i + 9j - 7}",
            "count {x : 0 <= x <= n && 3 | x + 1}",
            "count {i, j : 1 <= i <= n && i <= j <= m}",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        vec![rest.join(" ")]
    };
    let mut failed = false;
    for q in &queries {
        if let Err(e) = run_query(q, &opts) {
            eprintln!("error in {q:?}: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
