//! A miniature "Omega calculator": type a Presburger formula, get the
//! symbolic count of its solutions.
//!
//! ```text
//! cargo run --example calculator -- "count {i, j : 1 <= i <= j <= n}"
//! cargo run --example calculator            # runs the built-in demos
//! cargo run --example calculator -- --stats "count {i : 1 <= i <= n}"
//! cargo run --example calculator -- --trace "count {i : 1 <= i <= n}"
//! ```
//!
//! Query syntax:  `count { v1, v2, … : formula }` — the listed
//! variables are counted; every other name is a symbolic constant.
//!
//! Flags:
//! * `--stats` — print the pipeline counters the query fired
//!   (eliminations, splinters, clause counts, …);
//! * `--trace` — additionally record timing spans and `explain` events
//!   and print them as an indented derivation tree;
//! * `--json` — with `--stats`/`--trace`, emit JSON instead of text;
//! * `--threads N` — drain the clause pipeline with `N` worker threads
//!   (`0` = one per core). Answers are byte-identical at any setting;
//! * `--no-memo` — disable sub-problem memoization (eliminations,
//!   Smith forms, Faulhaber polynomials). Answers and counters are
//!   byte-identical either way; the flag exists for timing comparisons
//!   and as a belt alongside the `PRESBURGER_MEMO=0` environment knob.
//!   `--trace` also stands the memo down on its own (a memo hit skips
//!   the body, so a traced derivation must recompute);
//! * `--timeout MS` — govern the query with a wall-clock deadline of
//!   `MS` milliseconds;
//! * `--max-splinters N` — govern the query with a cap on §5.2
//!   splinters per clause;
//! * `--degrade=bounds|error` — what a governed query does when it
//!   exhausts a budget: degrade to the paper's §4.6 lower/upper bounds
//!   (the default) or fail with the budget error;
//! * `--metrics` — after all queries, print the request-telemetry
//!   registry (latency / splinter histograms, outcome counters) in
//!   Prometheus text format — the same exposition a `--serve` server
//!   answers the `metrics` verb with;
//! * `--serve` — instead of answering queries from the command line,
//!   run the hardened serving loop over stdin/stdout: one request per
//!   line (`count <id> {vars : formula}`, `ping`, `stats`, `drain`),
//!   one response per line, with admission control, circuit breaking
//!   and graceful drain on EOF (see `presburger_serve`). `--threads`
//!   sets the worker count and `--timeout` the per-request deadline.
//!   A TCP server reached via `--connect` speaks the same protocol —
//!   plus the binary codec below, auto-detected per connection;
//! * `--connect HOST:PORT` — client mode: read request lines from
//!   stdin, forward them to a serving-layer TCP server, print each
//!   reply. By default requests travel as protocol text;
//! * `--binary` — with `--connect`, speak the length-prefixed binary
//!   wire codec (`presburger::serve::wire`) instead of text. Replies
//!   are decoded and printed as their canonical text form, so output
//!   is identical either way — that equality is the codec's contract;
//! * `--batch K` — with `--binary`, pack up to `K` consecutive count /
//!   sum requests into one atomically-admitted batch frame (max 64;
//!   control verbs flush the pending batch first).

use presburger::prelude::*;
use presburger::serve::ServeConfig;
use presburger::trace::json::JsonObject;
use presburger::trace::metrics::{
    ReqLane, ReqOutcome, ReqVerb, RequestMetrics, RequestObservation,
};
use presburger_counting::try_count_solutions;
use presburger_omega::parse_formula;
use std::time::{Duration, Instant};

struct Options {
    stats: bool,
    trace: bool,
    json: bool,
    metrics: bool,
    serve: bool,
    connect: Option<String>,
    binary: bool,
    batch: usize,
    threads: usize,
    no_memo: bool,
    timeout_ms: Option<u64>,
    max_splinters: Option<u64>,
    degrade: Option<DegradePolicy>,
}

/// A failed query: a stable machine-readable kind plus human detail.
/// With `--json` it renders as `{"error": {"kind": …, "detail": …}}`.
struct QueryError {
    kind: &'static str,
    detail: String,
}

impl QueryError {
    fn query(detail: impl Into<String>) -> QueryError {
        QueryError {
            kind: "query",
            detail: detail.into(),
        }
    }
}

impl From<&'static str> for QueryError {
    fn from(detail: &'static str) -> QueryError {
        QueryError::query(detail)
    }
}

impl Options {
    /// Any governor flag present → run the query governed.
    fn governed(&self) -> bool {
        self.timeout_ms.is_some() || self.max_splinters.is_some() || self.degrade.is_some()
    }
}

/// Runs one query; the returned outcome class feeds `--metrics`.
fn run_query(query: &str, opts: &Options) -> Result<ReqOutcome, QueryError> {
    let query = query.trim();
    let rest = query
        .strip_prefix("count")
        .ok_or("queries start with 'count'")?
        .trim();
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("expected count { vars : formula }")?;
    let (vars_text, formula_text) = inner
        .split_once(':')
        .ok_or("expected ':' between variables and formula")?;

    let mut space = Space::new();
    let vars: Vec<VarId> = vars_text
        .split(',')
        .map(|name| space.var(name.trim()))
        .collect();
    let f = parse_formula(formula_text, &mut space).map_err(|e| QueryError {
        kind: "parse",
        detail: e.to_string(),
    })?;
    let symbols: Vec<String> = f
        .free_vars()
        .into_iter()
        .filter(|v| !vars.contains(v))
        .map(|v| space.name(v).to_string())
        .collect();

    presburger::reset_stats();
    let mut count_opts = CountOptions {
        threads: opts.threads,
        ..CountOptions::default()
    };
    if opts.no_memo {
        count_opts.memo = false;
    }
    println!("> {query}");
    let mut outcome = ReqOutcome::Ok;
    let fmt = |c: Option<i64>| c.map_or_else(|| "?".to_string(), |c| c.to_string());
    if opts.governed() {
        let gov = Governor::new(Budgets {
            deadline: opts.timeout_ms.map(Duration::from_millis),
            max_splinters: opts.max_splinters,
            ..Budgets::unlimited()
        })
        .with_degrade(opts.degrade.unwrap_or_default());
        let out = presburger::try_count_solutions_governed(&space, &f, &vars, &count_opts, &gov)
            .map_err(|e| QueryError {
                kind: e.kind(),
                detail: e.to_string(),
            })?;
        match out {
            Outcome::Exact(count) => {
                println!("  = {}", count.to_display_string());
                print_samples(&symbols, &|b| fmt(count.eval_i64(b)));
            }
            Outcome::Bounded {
                lower,
                upper,
                why,
                clauses,
            } => {
                outcome = ReqOutcome::Bounded;
                let degraded = clauses
                    .iter()
                    .filter(|c| !matches!(c, ClauseStatus::Exact))
                    .count();
                println!(
                    "  degraded to §4.6 bounds ({why}; {degraded}/{} clauses)",
                    clauses.len()
                );
                println!("  lower = {}", lower.to_display_string());
                println!("  upper = {}", upper.to_display_string());
                // The §4.6 bounds are rational-valued (the exact count
                // between them is the integer), so render them exactly.
                print_samples(&symbols, &|b| {
                    format!("[{},{}]", lower.eval_rat(b), upper.eval_rat(b))
                });
            }
        }
    } else {
        let count =
            try_count_solutions(&space, &f, &vars, &count_opts).map_err(|e| QueryError {
                kind: e.kind(),
                detail: e.to_string(),
            })?;
        println!("  = {}", count.to_display_string());
        print_samples(&symbols, &|b| fmt(count.eval_i64(b)));
    }
    if opts.trace {
        let tree = presburger::trace::span::take_tree();
        if opts.json {
            println!("{}", tree.to_json());
        } else {
            println!("--- trace ---");
            print!("{}", tree.render());
        }
    }
    if opts.stats {
        let stats = presburger::stats();
        if opts.json {
            println!("{}", stats.to_json());
        } else {
            println!("--- pipeline counters ---");
            print!("{stats}");
        }
    }
    println!();
    Ok(outcome)
}

/// Renders one sample row given the symbol bindings for that row.
type SampleRenderer<'a> = &'a dyn Fn(&[(&str, i64)]) -> String;

/// Tabulates sample values of the first symbol, with every other
/// symbol fixed at 10.
fn print_samples(symbols: &[String], render: SampleRenderer) {
    if symbols.is_empty() {
        return;
    }
    let name = &symbols[0];
    let fixed: Vec<(&str, i64)> = symbols[1..].iter().map(|s| (s.as_str(), 10)).collect();
    print!("  {name} =");
    for v in [0i64, 1, 2, 5, 10, 100] {
        let mut bindings = fixed.clone();
        bindings.push((name.as_str(), v));
        print!("  {v}→{}", render(&bindings));
    }
    if symbols.len() > 1 {
        print!("   (other symbols fixed at 10)");
    }
    println!();
}

/// Client mode (`--connect`): forwards stdin request lines to a
/// serving-layer TCP server and prints each reply. With `--binary` the
/// requests travel as wire frames (batched up to `--batch`), and the
/// decoded replies print byte-identically to what the text codec would
/// have produced.
fn run_client(addr: &str, binary: bool, batch: usize) -> Result<(), String> {
    use presburger::serve::{parse_request, wire, Request, ServeError};
    use std::io::{BufRead, Read, Write};
    use std::net::TcpStream;

    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let stdin = std::io::stdin();

    if !binary {
        // Text codec: copy socket→stdout in a thread, stdin→socket
        // here; half-close on stdin EOF so the server drains.
        let mut write_half = stream.try_clone().map_err(|e| e.to_string())?;
        let printer = std::thread::spawn(move || {
            let mut read_half = stream;
            let mut out = std::io::stdout();
            let mut buf = [0u8; 4096];
            while let Ok(n) = read_half.read(&mut buf) {
                if n == 0 || out.write_all(&buf[..n]).is_err() {
                    break;
                }
                let _ = out.flush();
            }
        });
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| e.to_string())?;
            writeln!(write_half, "{line}").map_err(|e| e.to_string())?;
        }
        let _ = write_half.shutdown(std::net::Shutdown::Write);
        let _ = printer.join();
        return Ok(());
    }

    let reader = stream.try_clone().map_err(|e| e.to_string())?;
    let writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut client =
        wire::BinClient::handshake(reader, writer).map_err(|e| format!("handshake: {e}"))?;
    let mut pending: Vec<Request> = Vec::new();
    let roundtrip = |client: &mut wire::BinClient<TcpStream, TcpStream>,
                     pending: &mut Vec<Request>|
     -> Result<(), String> {
        if pending.is_empty() {
            return Ok(());
        }
        if pending.len() == 1 {
            client.send(&pending[0]).map_err(|e| e.to_string())?;
        } else {
            client.send_batch(pending).map_err(|e| e.to_string())?;
        }
        pending.clear();
        println!("{}", client.recv().map_err(|e| e.to_string())?.to_text());
        Ok(())
    };
    let mut drained = false;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let req = parse_request(&line).map_err(|e| format!("{line:?}: {e:?}"))?;
        match req {
            Request::Query(_) => {
                pending.push(req);
                if pending.len() >= batch {
                    roundtrip(&mut client, &mut pending)?;
                }
            }
            other => {
                // Control verbs are answered in order but never batched:
                // flush queries first, then round-trip the verb alone.
                roundtrip(&mut client, &mut pending)?;
                let is_drain = matches!(other, Request::Drain);
                pending.push(other);
                roundtrip(&mut client, &mut pending)?;
                if is_drain {
                    drained = true;
                    break;
                }
            }
        }
    }
    roundtrip(&mut client, &mut pending)?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    if !drained {
        // The server drains on EOF; print its parting stats frame(s).
        loop {
            match client.recv() {
                Ok(reply) => println!("{}", reply.to_text()),
                Err(ServeError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    Ok(())
}

fn main() {
    let mut opts = Options {
        stats: false,
        trace: false,
        json: false,
        metrics: false,
        serve: false,
        connect: None,
        binary: false,
        batch: 1,
        threads: CountOptions::default().threads,
        no_memo: false,
        timeout_ms: None,
        max_splinters: None,
        degrade: None,
    };
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = true,
            "--json" => opts.json = true,
            "--metrics" => opts.metrics = true,
            "--serve" => opts.serve = true,
            "--connect" => match args.next() {
                Some(addr) => opts.connect = Some(addr),
                None => {
                    eprintln!("--connect needs a HOST:PORT address");
                    std::process::exit(2);
                }
            },
            "--binary" => opts.binary = true,
            "--batch" => match args.next().as_deref().map(str::parse) {
                Some(Ok(k)) if (1..=presburger::serve::wire::MAX_BATCH).contains(&k) => {
                    opts.batch = k;
                }
                _ => {
                    eprintln!(
                        "--batch needs a size between 1 and {}",
                        presburger::serve::wire::MAX_BATCH
                    );
                    std::process::exit(2);
                }
            },
            "--no-memo" => opts.no_memo = true,
            "--threads" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => opts.threads = n,
                _ => {
                    eprintln!("--threads needs a number (0 = one per core)");
                    std::process::exit(2);
                }
            },
            "--timeout" => match args.next().as_deref().map(str::parse) {
                Some(Ok(ms)) => opts.timeout_ms = Some(ms),
                _ => {
                    eprintln!("--timeout needs a deadline in milliseconds");
                    std::process::exit(2);
                }
            },
            "--max-splinters" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => opts.max_splinters = Some(n),
                _ => {
                    eprintln!("--max-splinters needs a number");
                    std::process::exit(2);
                }
            },
            "--degrade=bounds" => opts.degrade = Some(DegradePolicy::Bounds),
            "--degrade=error" => opts.degrade = Some(DegradePolicy::Error),
            _ => rest.push(arg),
        }
    }
    // --trace implies counters too: the derivation tree and the counter
    // totals describe the same run.
    if opts.trace {
        opts.stats = true;
    }
    // --metrics needs counters on for splinter attribution, but does
    // not print them per query the way --stats does.
    presburger::enable_stats(opts.stats || opts.metrics);
    presburger::trace::enable_tracing(opts.trace);

    if let Some(addr) = &opts.connect {
        if let Err(e) = run_client(addr, opts.binary, opts.batch) {
            eprintln!("client failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    if opts.serve {
        let cfg = ServeConfig {
            workers: presburger::resolve_threads(opts.threads).max(1),
            default_deadline_ms: opts
                .timeout_ms
                .or(ServeConfig::default().default_deadline_ms),
            ..ServeConfig::default()
        };
        match presburger::serve::run_stdio(cfg) {
            Ok(stats) => {
                eprintln!("{stats}");
                return;
            }
            Err(e) => {
                eprintln!("serve failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let queries: Vec<String> = if rest.is_empty() {
        [
            // the paper's running examples, in calculator syntax
            "count {i : 1 <= i <= 10}",
            "count {i, j : 1 <= i <= j <= n}",
            "count {i, j : 1 <= i && 1 <= j <= n && 2i <= 3j}",
            "count {x : exists i, j : 1 <= i <= 8 && 1 <= j <= 5 && x = 6i + 9j - 7}",
            "count {x : 0 <= x <= n && 3 | x + 1}",
            "count {i, j : 1 <= i <= n && i <= j <= m}",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        vec![rest.join(" ")]
    };
    let metrics = RequestMetrics::new(opts.metrics);
    let mut failed = false;
    for q in &queries {
        let started = Instant::now();
        let result = run_query(q, &opts);
        let outcome = match &result {
            Ok(outcome) => *outcome,
            Err(_) => ReqOutcome::Err,
        };
        metrics.observe_request(RequestObservation {
            verb: ReqVerb::Count,
            outcome,
            lane: ReqLane::Batch,
            duration_us: started.elapsed().as_micros() as u64,
            queue_wait_us: 0,
            govern_overhead_us: 0,
            splinters: opts
                .metrics
                .then(|| presburger::stats().get(presburger::trace::Counter::SplintersGenerated)),
        });
        if let Err(e) = result {
            if opts.json {
                let mut inner = JsonObject::new();
                inner.field_str("kind", e.kind);
                inner.field_str("detail", &e.detail);
                let mut obj = JsonObject::new();
                obj.field_raw("error", &inner.finish());
                println!("{}", obj.finish());
            }
            eprintln!("error in {q:?}: {} ({})", e.detail, e.kind);
            failed = true;
        }
    }
    if opts.metrics {
        println!("--- metrics ---");
        print!("{}", metrics.render_prometheus());
        print!("{}", presburger::trace::memo::prometheus_text());
        println!("# EOF");
    }
    if failed {
        std::process::exit(1);
    }
}
