//! Dependence analysis with counting (§2 + §1.1): not just *whether*
//! two references conflict, but *how many* iteration pairs are
//! ordered by the dependence — an estimate of lost parallelism.
//!
//! ```text
//! cargo run --example dependence_analysis
//! ```

use presburger_apps::{dependence_formula, ArrayRef, LoopNest};
use presburger_omega::Affine;

fn main() {
    // for i = 1..n { for j = 1..n { a[i][j] = a[i-1][j] + a[i][j-1] } }
    // — the wavefront recurrence
    let mut nest = LoopNest::new();
    let n = nest.symbol("n");
    let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
    let j = nest.add_loop("j", Affine::constant(1), Affine::var(n));
    let write = ArrayRef::new("a", vec![Affine::var(i), Affine::var(j)]);
    let north = ArrayRef::new(
        "a",
        vec![Affine::var(i) - Affine::constant(1), Affine::var(j)],
    );
    let west = ArrayRef::new(
        "a",
        vec![Affine::var(i), Affine::var(j) - Affine::constant(1)],
    );

    println!("wavefront loop: a[i][j] = a[i-1][j] + a[i][j-1], 1 <= i,j <= n\n");
    let total = nest.iteration_count();
    for (name, read) in [("a[i-1][j]", &north), ("a[i][j-1]", &west)] {
        let dep = dependence_formula(&nest, &write, read);
        println!("dependence through {name}:");
        println!("  exists: {}", dep.exists());
        let pairs = dep.count_pairs();
        let sinks = dep.count_dependent_sinks();
        println!("  pairs (symbolic):  {}", pairs.to_display_string());
        for nv in [10i64, 100] {
            println!(
                "  n = {nv:>4}: {} ordered pairs, {} dependent sinks, {} iterations total",
                pairs.eval_i64(&[("n", nv)]).unwrap(),
                sinks.eval_i64(&[("n", nv)]).unwrap(),
                total.eval_i64(&[("n", nv)]).unwrap(),
            );
        }
        println!();
    }

    // contrast: a parallel loop — a[i][j] = b[i][j] has no dependences
    let b = ArrayRef::new("b", vec![Affine::var(i), Affine::var(j)]);
    let dep = dependence_formula(&nest, &write, &write);
    println!(
        "output self-dependence of a[i][j]: exists = {}",
        dep.exists()
    );
    let dep_b = dependence_formula(&nest, &b, &b);
    println!(
        "b[i][j] read-only:                 exists = {}",
        dep_b.exists()
    );

    // sanity for the asserts below
    assert!(!dep.exists());
    assert!(!dep_b.exists());
}
