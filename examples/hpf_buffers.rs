//! HPF block-cyclic distribution analysis (§3.3): ownership counts and
//! message-buffer sizing for a distributed template.
//!
//! ```text
//! cargo run --example hpf_buffers
//! ```

use presburger_apps::BlockCyclic;
use presburger_omega::{Affine, Space};

fn main() {
    // The paper's distribution: T(0:1024) block-cyclic over 8
    // processors with blocks of 4.
    let dist = BlockCyclic::new(8, 4);

    let mut space = Space::new();
    let p = space.var("p");
    let owned = dist.elements_on_processor(&space, Affine::constant(0), Affine::constant(1024), p);
    println!("T(0:1024), 8 processors, block 4 — cells owned per processor:");
    for pv in 0..8i64 {
        println!("  p = {pv}: {}", owned.eval_i64(&[("p", pv)]).unwrap());
    }

    // Message-buffer sizing: a communication step sends a(0:n) to its
    // owners; how large must each processor's receive buffer be, as a
    // function of n?
    let mut space = Space::new();
    let n = space.symbol("n");
    let p = space.var("p");
    let buffer = dist.elements_on_processor(&space, Affine::constant(0), Affine::var(n), p);
    println!(
        "\nreceive-buffer size for a(0:n) (symbolic): {}",
        buffer.to_display_string()
    );
    println!("\n  n      p=0   p=1   p=2   p=3   p=4   p=5   p=6   p=7");
    for nv in [31i64, 63, 100, 1024] {
        print!("  {nv:<6}");
        for pv in 0..8i64 {
            print!("{:<6}", buffer.eval_i64(&[("n", nv), ("p", pv)]).unwrap());
        }
        println!();
    }

    // sanity: buffers sum to the total number of cells
    for nv in [31i64, 100] {
        let total: i64 = (0..8)
            .map(|pv| buffer.eval_i64(&[("n", nv), ("p", pv)]).unwrap())
            .sum();
        assert_eq!(total, nv + 1);
    }
}
