//! Quickstart: count the iterations of a triangular loop nest
//! symbolically, and sum a polynomial over it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use presburger::prelude::*;
use presburger_counting::sum_polynomial;

fn main() {
    // The loop nest   for i in 1..=n { for j in i..=n { body } }
    let mut space = Space::new();
    let n = space.symbol("n");
    let i = space.var("i");
    let j = space.var("j");

    let iteration_space = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::var(i)),
        Formula::le(Affine::var(i), Affine::var(j)),
        Formula::le(Affine::var(j), Affine::var(n)),
    ]);

    // How many iterations does the nest execute?  (Σ i,j : P : 1)
    let count = count_solutions(&space, &iteration_space, &[i, j]);
    println!("iteration count = {}", count.to_display_string());
    for nv in [0i64, 1, 10, 100] {
        println!(
            "  n = {nv:>3}  →  {}",
            count.eval_i64(&[("n", nv)]).unwrap()
        );
    }

    // If the body performs i + j flops, how many flops in total?
    // (Σ i,j : P : i + j)
    let flops = sum_polynomial(
        &space,
        &iteration_space,
        &[i, j],
        &(QPoly::var(i) + QPoly::var(j)),
    );
    println!("\ntotal flops     = {}", flops.to_display_string());
    for nv in [1i64, 10, 100] {
        println!(
            "  n = {nv:>3}  →  {}",
            flops.eval_i64(&[("n", nv)]).unwrap()
        );
    }

    // The answers are guarded: outside 1 ≤ n both sums are 0.
    assert_eq!(count.eval_i64(&[("n", -7)]), Some(0));
    assert_eq!(count.eval_i64(&[("n", 10)]), Some(55));
    assert_eq!(flops.eval_i64(&[("n", 10)]), Some(605));
}
