//! Load-balance analysis and balanced chunk scheduling (§1.1,
//! [HP93a]): detect that a triangular loop is unbalanced and compute
//! per-processor chunks carrying equal work.
//!
//! ```text
//! cargo run --example load_balance
//! ```

use presburger_apps::{work_profile, ArrayRef, LoopNest};
use presburger_omega::Affine;

fn main() {
    // forall i = 1..n  (parallel) { for j = i..n { body } }
    let mut nest = LoopNest::new();
    let n = nest.symbol("n");
    let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
    let _j = nest.add_loop("j", Affine::var(i), Affine::var(n));

    let profile = work_profile(&nest, i);
    println!(
        "per-iteration work (symbolic in i, n): {}",
        profile.per_iteration.to_display_string()
    );
    println!("balanced? {}", profile.is_balanced());
    assert!(!profile.is_balanced());

    let n_val = 1000i64;
    let procs = 8u32;
    let chunks = profile.balanced_chunks(1, n_val, procs, &[("n", n_val)]);
    let total = profile.total.eval_i64(&[("n", n_val)]).unwrap();
    println!("\nn = {n_val}, {procs} processors, total work = {total}");
    println!("  proc   chunk            work");
    for (p, &(s, e)) in chunks.iter().enumerate() {
        let work: i64 = (s..=e).map(|iv| profile.work_at(iv, &[("n", n_val)])).sum();
        println!("  {p:<6} {s:>5}..={e:<8} {work}");
    }

    // naive block scheduling for contrast: equal iteration counts
    println!("\nnaive equal-iterations blocks for contrast:");
    let block = n_val / procs as i64;
    for p in 0..procs as i64 {
        let s = 1 + p * block;
        let e = if p == procs as i64 - 1 {
            n_val
        } else {
            s + block - 1
        };
        let work: i64 = (s..=e).map(|iv| profile.work_at(iv, &[("n", n_val)])).sum();
        println!("  {p:<6} {s:>5}..={e:<8} {work}");
    }

    let _ = ArrayRef::new("unused", vec![]);
}
