//! Cache-effectiveness analysis of the paper's SOR loop (§6 Ex. 5):
//! count the distinct memory locations and cache lines touched, and
//! derive the compute/memory balance.
//!
//! ```text
//! cargo run --example sor_cache_analysis
//! ```

use presburger_apps::{distinct_cache_lines, distinct_locations, ArrayRef, LoopNest};
use presburger_omega::Affine;

fn main() {
    // for i = 2..N-1 { for j = 2..N-1 {
    //     a(i,j) = (2a(i,j) + a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))/6
    // } }
    let mut nest = LoopNest::new();
    let n = nest.symbol("N");
    let i = nest.add_loop(
        "i",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let j = nest.add_loop(
        "j",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let at = |di: i64, dj: i64| {
        ArrayRef::new(
            "a",
            vec![
                Affine::var(i) + Affine::constant(di),
                Affine::var(j) + Affine::constant(dj),
            ],
        )
    };
    let refs = vec![at(0, 0), at(-1, 0), at(1, 0), at(0, -1), at(0, 1)];

    let iterations = nest.iteration_count();
    let locations = distinct_locations(&nest, &refs);
    let lines = distinct_cache_lines(&nest, &refs, 16);

    println!("SOR loop nest, 5-point stencil on a(1:N, 1:N):");
    println!(
        "  distinct locations  (symbolic): {}",
        locations.to_display_string()
    );
    println!();
    println!("  N      iterations   locations   cache lines   flops/line");
    for nv in [10i64, 100, 500, 1000] {
        let it = iterations.eval_i64(&[("N", nv)]).unwrap();
        let loc = locations.eval_i64(&[("N", nv)]).unwrap();
        let ln = lines.eval_i64(&[("N", nv)]).unwrap();
        // ~6 flops per iteration in the SOR body
        let balance = (6 * it) as f64 / ln as f64;
        println!("  {nv:<6} {it:<12} {loc:<11} {ln:<13} {balance:.1}");
    }

    // the paper's headline numbers for N = 500
    assert_eq!(locations.eval_i64(&[("N", 500)]), Some(249_996));
    assert_eq!(lines.eval_i64(&[("N", 500)]), Some(16_000));
}
