//! The supervised shard pool: N bulkhead-isolated servers behind a
//! consistent-hash router and a health-checking supervisor.
//!
//! # Topology
//!
//! A [`ShardPool`] runs `shards` independent [`Server`]s — each with its
//! own admission queue, worker pool, result cache, circuit breaker and
//! telemetry, so one shard's overload, breaker trip or crash never
//! bleeds into another (bulkhead isolation). A router hashes each
//! query's *canonical* formula encoding ([`routing_hash`]) onto a
//! consistent-hash [`Ring`], so equivalent queries always land on the
//! same shard (keeping its LRU cache hot) and growing the pool from N
//! to N+1 shards moves only ~1/(N+1) of the keyspace.
//!
//! # Supervision
//!
//! A supervisor thread probes every shard each `probe_interval_ms`:
//!
//! * **Crash** — a worker that panicked past its unwind boundary shows
//!   up as `workers_alive < expected` (a drop guard decrements the
//!   count at thread exit).
//! * **Wedge** — a shard with in-flight work whose heartbeat (bumped on
//!   every job pop and completion) has not advanced for
//!   `wedge_timeout_ms`.
//!
//! A condemned shard is [`Server::abandon`]ed (admission stopped,
//! wedged threads detached, never joined) and restarted with capped
//! exponential backoff. Its admitted-but-unanswered requests are
//! orphaned and re-dispatched to ring-successor siblings — or, once the
//! `redispatch_budget` is spent or `rescue_after_ms` has passed, rescued
//! with a fresh §4.6 bound pass (`OK … bounded failover lo ; hi`). An
//! admitted request therefore gets **exactly one** reply: exact,
//! bounded, or `ERR` — never silence. Duplicate fulfilment (the
//! orphaned worker finishing anyway) is harmless because replies are
//! pure functions of the query, so both producers publish the identical
//! line ([`Slot::fulfil`]).
//!
//! # Determinism
//!
//! Routing is a pure function of the query, replies are pure functions
//! of the query, and per-connection writers are FIFO — so client
//! transcripts are byte-identical at any shard count, with chaos
//! ([`crate::chaos`]) on or off. `serve_stress` phase 6 and
//! `scripts/check.sh`'s `chaos_gate` hold the pool to exactly that.
//!
//! See DESIGN.md §14 for the full design rationale.

use crate::admission::{self, QuotaLedger};
use crate::chaos::Chaos;
use crate::protocol::{shed_line, Query, ServeError, Verb};
use crate::server::{self, Handle, Refusal, ServeConfig, Server, Service, Slot};
use crate::sync::lock_ok;
use presburger_omega::{parse_formula, Space};
use presburger_trace::metrics::ReqCodec;
use presburger_trace::shard::{render_prometheus, ShardRow, ShardRowSnapshot};
use presburger_trace::{self as trace};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Shard-pool configuration. `Default` gives two shards with default
/// [`ServeConfig`]s, 64 vnodes per shard, a 5 s wedge timeout, a 5 ms
/// probe interval, 10 ms → 1 s restart backoff, and a redispatch budget
/// of 2 hops before the §4.6 fallback.
#[derive(Clone, Debug)]
pub struct ShardPoolConfig {
    /// Number of shards (each a full [`Server`]); at least 1.
    pub shards: usize,
    /// Per-shard server configuration (`shard_index` and `chaos` are
    /// overwritten per shard by the pool).
    pub shard_cfg: ServeConfig,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
    /// A shard with in-flight work whose heartbeat has not advanced for
    /// this long is condemned as wedged.
    pub wedge_timeout_ms: u64,
    /// Supervisor probe cadence.
    pub probe_interval_ms: u64,
    /// Base restart backoff after a condemnation; doubles per
    /// consecutive restart.
    pub restart_backoff_ms: u64,
    /// Backoff cap; also the healthy streak that resets the ladder.
    pub restart_backoff_max_ms: u64,
    /// Orphan re-dispatch hops before the §4.6 `failover` fallback.
    pub redispatch_budget: u32,
    /// Orphan age at which the fallback fires regardless of hops
    /// (deadline-awareness: a request must not wait out serial
    /// restarts).
    pub rescue_after_ms: u64,
    /// Deterministic chaos, shared by every shard. `None` falls back to
    /// `PRESBURGER_CHAOS` via [`Chaos::from_env`] at pool start.
    pub chaos: Option<Arc<Chaos>>,
}

impl Default for ShardPoolConfig {
    fn default() -> ShardPoolConfig {
        ShardPoolConfig {
            shards: 2,
            shard_cfg: ServeConfig::default(),
            vnodes: 64,
            wedge_timeout_ms: 5_000,
            probe_interval_ms: 5,
            restart_backoff_ms: 10,
            restart_backoff_max_ms: 1_000,
            redispatch_budget: 2,
            rescue_after_ms: 3_000,
            chaos: None,
        }
    }
}

/// FNV-1a, the crate's routing hash primitive (stable across runs and
/// platforms, unlike `DefaultHasher`).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: spreads structured inputs (vnode ids, retry
/// attempts) over the full 64-bit space.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic routing key of a query: FNV-1a over the verb, the
/// counted-variable count, the *canonical* interned encoding of the
/// parsed formula ([`presburger_omega::intern::formula_push_key_bytes`])
/// and the polynomial text. Textual variants of the same formula route
/// identically, so a shard's result cache sees every spelling of its
/// keys. Unparsable formulas fall back to raw text — still a pure
/// function of the query. Overrides are deliberately *not* keyed: the
/// same formula at different budgets should hit the same shard's cache
/// path.
pub fn routing_hash(query: &Query) -> u64 {
    let mut key = Vec::with_capacity(96);
    key.push(match query.verb {
        Verb::Count => 0u8,
        Verb::Sum => 1,
    });
    key.extend_from_slice(&(query.vars.len() as u32).to_le_bytes());
    let mut space = Space::new();
    for v in &query.vars {
        space.var(v);
    }
    match parse_formula(&query.formula_text, &mut space) {
        Ok(f) => presburger_omega::intern::formula_push_key_bytes(&f, &mut key),
        Err(_) => {
            key.extend_from_slice(query.formula_text.as_bytes());
            for v in &query.vars {
                key.extend_from_slice(v.as_bytes());
            }
        }
    }
    if let Some(p) = &query.poly_text {
        key.extend_from_slice(p.as_bytes());
    }
    fnv1a(&key)
}

/// A consistent-hash ring: `vnodes` points per shard, a key routes to
/// the first point clockwise from its hash. Growing the pool N→N+1
/// re-routes only the keys that land on the new shard's points —
/// ~1/(N+1) of the keyspace — so shard caches survive re-sizing.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point_hash, shard)`, sorted by hash.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// A ring for `shards` shards with `vnodes` points each. Point
    /// hashes depend only on `(shard, vnode)`, so rings of different
    /// sizes share all points of their common shards.
    pub fn new(shards: usize, vnodes: usize) -> Ring {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                points.push((splitmix64(((s as u64) << 32) | v as u64), s));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        Ring { points }
    }

    /// The shard a key hash routes to: the first ring point at or past
    /// the hash, wrapping at the top.
    pub fn route(&self, hash: u64) -> usize {
        let i = self.points.partition_point(|p| p.0 < hash);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.points.iter().map(|p| p.1).max().map_or(1, |m| m + 1)
    }
}

/// An admitted-but-unanswered request a shard is responsible for.
struct Tracked {
    query: Query,
    slot: Arc<Slot>,
    /// Re-dispatch hops already spent on this request.
    attempts: u32,
    /// Admission to the *pool* (for `rescue_after_ms`).
    since: Instant,
}

/// A request whose shard was condemned before it answered.
struct Orphan {
    query: Query,
    slot: Arc<Slot>,
    /// The shard that lost it (re-dispatch prefers its ring successor;
    /// its row is charged for the re-dispatch or rescue).
    origin: usize,
    attempts: u32,
    since: Instant,
}

/// One shard's supervision state (the [`Server`] plus what the
/// supervisor knows about it).
struct ShardState {
    /// The live server; `None` while condemned and awaiting restart.
    server: Option<Server>,
    /// Submit handle for the current epoch's server.
    handle: Handle,
    /// Restart generation, 0 for the original server.
    epoch: u64,
    /// Condemnations without an intervening healthy streak (drives the
    /// backoff ladder).
    consecutive_restarts: u32,
    /// When the pending restart is due, if condemned.
    restart_at: Option<Instant>,
    /// When the last restart happened (for the healthy-streak reset).
    last_restart: Option<Instant>,
    /// Heartbeat value at the last observed progress.
    last_heartbeat: u64,
    /// When the heartbeat last advanced.
    last_progress: Instant,
    /// Requests admitted to this shard and not yet seen done.
    pending: Vec<Tracked>,
}

struct PoolInner {
    cfg: ShardPoolConfig,
    ring: Ring,
    shards: Mutex<Vec<ShardState>>,
    /// Requests whose shard died; the supervisor places or rescues
    /// them each tick.
    orphans: Mutex<Vec<Orphan>>,
    /// Per-shard routed/redispatched/rescued/restart counters, indexed
    /// by shard. Lock-free so the hot submit path never contends with
    /// the supervisor.
    rows: Vec<Arc<ShardRow>>,
    /// The pool-wide quota ledger (when `shard_cfg.admission.quota` is
    /// set), shared by every shard *including supervisor restarts* so a
    /// client's token bucket survives failover. Metered only at the
    /// pool front door ([`PoolHandle::submit`]) — never inside the
    /// routing loop, where a failover hop would double-charge.
    ledger: Option<Arc<QuotaLedger>>,
    draining: AtomicBool,
    drained: AtomicBool,
}

/// A running supervised shard pool.
pub struct ShardPool {
    inner: Arc<PoolInner>,
    stop: Arc<AtomicBool>,
    supervisor: Option<thread::JoinHandle<()>>,
}

/// A shareable submit/drain handle for a [`ShardPool`]; implements
/// [`Service`], so every connection driver works against it unchanged.
#[derive(Clone)]
pub struct PoolHandle {
    inner: Arc<PoolInner>,
}

fn shard_server_cfg(
    cfg: &ShardPoolConfig,
    index: usize,
    chaos: &Option<Arc<Chaos>>,
) -> ServeConfig {
    let mut sc = cfg.shard_cfg.clone();
    sc.shard_index = index;
    sc.chaos = chaos.clone();
    sc
}

impl ShardPool {
    /// Starts `cfg.shards` servers and the supervisor thread. When
    /// `cfg.chaos` is unset, arms `PRESBURGER_CHAOS` from the
    /// environment (a malformed spec panics — a drill that silently
    /// fails to arm would pass vacuously).
    pub fn start(cfg: ShardPoolConfig) -> ShardPool {
        let chaos = match cfg.chaos.clone() {
            Some(c) => Some(c),
            None => Chaos::from_env().expect("invariant: PRESBURGER_CHAOS must parse if set"),
        };
        let shards_n = cfg.shards.max(1);
        let ring = Ring::new(shards_n, cfg.vnodes);
        let rows: Vec<Arc<ShardRow>> = (0..shards_n).map(|_| Arc::new(ShardRow::new())).collect();
        let ledger = cfg
            .shard_cfg
            .admission
            .quota
            .map(|q| Arc::new(QuotaLedger::new(q, cfg.shard_cfg.admission.max_clients)));
        let now = Instant::now();
        let states: Vec<ShardState> = (0..shards_n)
            .map(|i| {
                let server =
                    Server::start_shared(shard_server_cfg(&cfg, i, &chaos), ledger.clone());
                let handle = server.handle();
                ShardState {
                    server: Some(server),
                    handle,
                    epoch: 0,
                    consecutive_restarts: 0,
                    restart_at: None,
                    last_restart: None,
                    last_heartbeat: 0,
                    last_progress: now,
                    pending: Vec::new(),
                }
            })
            .collect();
        let inner = Arc::new(PoolInner {
            cfg: ShardPoolConfig { chaos, ..cfg },
            ring,
            shards: Mutex::new(states),
            orphans: Mutex::new(Vec::new()),
            rows,
            ledger,
            draining: AtomicBool::new(false),
            drained: AtomicBool::new(false),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let supervisor = {
            let inner = inner.clone();
            let stop = stop.clone();
            thread::Builder::new()
                .name("serve-supervisor".to_string())
                .spawn(move || {
                    let tick = Duration::from_millis(inner.cfg.probe_interval_ms.max(1));
                    while !stop.load(Ordering::Relaxed) {
                        supervise_tick(&inner);
                        thread::sleep(tick);
                    }
                })
                .expect("invariant: spawning the supervisor thread cannot fail here")
        };
        ShardPool {
            inner,
            stop,
            supervisor: Some(supervisor),
        }
    }

    /// A shareable submit/drain handle.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: self.inner.clone(),
        }
    }

    /// Drains every shard, rescues any leftover orphans, stops the
    /// supervisor and joins what can be joined. Returns the final
    /// aggregated stats line.
    pub fn shutdown(mut self) -> String {
        let line = self.handle().drain();
        self.stop.store(true, Ordering::Relaxed);
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        let servers: Vec<Server> = {
            let mut shards = lock_ok(&self.inner.shards);
            shards
                .iter_mut()
                .filter_map(|st| st.server.take())
                .collect()
        };
        for server in servers {
            let _ = server.shutdown();
        }
        line
    }
}

impl Drop for ShardPool {
    /// A pool dropped without [`ShardPool::shutdown`] still stops its
    /// supervisor thread (next tick) instead of leaking it for the
    /// process lifetime.
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl PoolHandle {
    /// Routes and admits a query. The routed shard gets it unless that
    /// shard is mid-restart, in which case the first accepting ring
    /// successor does (failover-on-submit — a condemned shard must not
    /// turn into client-visible sheds). Queue-full backpressure from the
    /// accepting shard *is* delivered as `SHED`. If every shard is down
    /// at once, the request is answered inline with the §4.6 fallback —
    /// never silence.
    ///
    /// Admission (DESIGN.md §16) happens *here*, once, before routing:
    /// the per-client quota is metered against the pool-shared ledger
    /// (so a failover hop can never double-charge), and a request whose
    /// effective deadline is already zero is answered immediately with
    /// §4.6 bounds instead of being queued. Both decisions are charged
    /// to the routed shard's counters, keeping `shards`/`STATS` rows a
    /// pure function of the request stream at any shard count.
    pub fn submit(&self, query: Query) -> Arc<Slot> {
        let inner = &self.inner;
        let lane = query.lane();
        if inner.draining.load(Ordering::Relaxed) {
            let hint = inner.cfg.shard_cfg.retry_after_ms;
            let reason = admission::shed_reason(
                "draining",
                lane,
                hint,
                inner.cfg.shard_cfg.admission.detail,
            );
            return Slot::ready(shed_line(&query.id, hint, &reason));
        }
        let n = inner.rows.len();
        let target = inner.ring.route(routing_hash(&query));
        let evict_now = inner.cfg.shard_cfg.admission.evict_expired
            && server::effective_deadline_ms(&inner.cfg.shard_cfg, &query) == Some(0);
        if inner.ledger.is_some() || evict_now {
            let target_handle = lock_ok(&inner.shards)[target].handle.clone();
            if let Some(line) = target_handle.check_quota(&query) {
                target_handle.note_shed(Refusal::Quota, query.verb, lane);
                return Slot::ready(line);
            }
            if evict_now {
                return Slot::ready(target_handle.evict_reply(&query, lane));
            }
        }
        let slot = Slot::new();
        for off in 0..n {
            let i = (target + off) % n;
            let handle = {
                let shards = lock_ok(&inner.shards);
                let st = &shards[i];
                if st.server.is_none() || st.restart_at.is_some() {
                    continue;
                }
                st.handle.clone()
            };
            match handle.try_enqueue(query.clone(), slot.clone()) {
                Ok(()) => {
                    ShardRow::bump(&inner.rows[i].routed);
                    lock_ok(&inner.shards)[i].pending.push(Tracked {
                        query,
                        slot: slot.clone(),
                        attempts: 0,
                        since: Instant::now(),
                    });
                    return slot;
                }
                Err(refused) => match refused.reason {
                    // The shard was condemned between the pick and the
                    // enqueue: try the next sibling.
                    Refusal::Draining => continue,
                    // Genuine backpressure: deliver the shed.
                    Refusal::QueueFull => {
                        handle.note_shed(Refusal::QueueFull, query.verb, query.lane());
                        return Slot::ready(refused.line);
                    }
                    // Quotas are metered at the front door only;
                    // `try_enqueue` never produces this.
                    Refusal::Quota => unreachable!("try_enqueue never sheds on quota"),
                },
            }
        }
        // Every shard is condemned or restarting: answer inline.
        ShardRow::bump(&inner.rows[target].rescued);
        Slot::ready(server::fallback_reply(
            &query,
            &inner.cfg.shard_cfg.default_budgets,
            inner.cfg.shard_cfg.default_deadline_ms,
        ))
    }

    /// Gracefully drains the pool: stops admitting, drains every shard
    /// in parallel (each under its own drain deadline), rescues anything
    /// still unanswered, and returns the aggregated stats line.
    /// Idempotent.
    pub fn drain(&self) -> String {
        let inner = &self.inner;
        inner.draining.store(true, Ordering::Relaxed);
        let handles: Vec<Handle> = lock_ok(&inner.shards)
            .iter()
            .map(|st| st.handle.clone())
            .collect();
        thread::scope(|scope| {
            for h in &handles {
                scope.spawn(move || {
                    let _ = h.drain();
                });
            }
        });
        // Belt and braces: anything the shard drains could not answer
        // (condemned shards, in-backoff restarts) gets the fallback.
        let leftovers: Vec<Orphan> = {
            let mut shards = lock_ok(&inner.shards);
            let mut v = Vec::new();
            for (i, st) in shards.iter_mut().enumerate() {
                for t in st.pending.drain(..) {
                    if !t.slot.is_done() {
                        v.push(Orphan {
                            query: t.query,
                            slot: t.slot,
                            origin: i,
                            attempts: t.attempts,
                            since: t.since,
                        });
                    }
                }
            }
            v
        };
        let orphans = std::mem::take(&mut *lock_ok(&inner.orphans));
        for o in leftovers.into_iter().chain(orphans) {
            rescue(inner, o);
        }
        inner.drained.store(true, Ordering::Relaxed);
        self.stats_line()
    }

    /// The aggregated `STATS` line: shard count, summed server counters
    /// (current epochs), and the pool-level failover counters.
    pub fn stats_line(&self) -> String {
        let inner = &self.inner;
        let (mut admitted, mut ok, mut errors, mut sheds, mut cache_hits) = (0, 0, 0, 0, 0);
        {
            let shards = lock_ok(&inner.shards);
            for st in shards.iter() {
                let s = st.handle.stats();
                admitted += s.admitted();
                ok += s.ok();
                errors += s.errors();
                sheds += s.sheds();
                cache_hits += s.cache_hits();
            }
        }
        let (mut redispatched, mut rescued, mut restarts) = (0, 0, 0);
        for row in &inner.rows {
            let s = row.snapshot();
            redispatched += s.redispatched;
            rescued += s.rescued;
            restarts += s.restarts;
        }
        format!(
            "STATS shards={} admitted={admitted} ok={ok} errors={errors} sheds={sheds} \
             cache_hits={cache_hits} redispatched={redispatched} rescued={rescued} \
             restarts={restarts}",
            inner.rows.len(),
        )
    }

    /// The `shards` verb's reply: one header plus one row per shard
    /// (state, epoch, health gauges, failover counters, server
    /// counters), `# EOF` terminated.
    pub fn shards_text(&self) -> String {
        let inner = &self.inner;
        let shards = lock_ok(&inner.shards);
        let mut out = format!("SHARDS shards={}\n", shards.len());
        for (i, st) in shards.iter().enumerate() {
            let row = inner.rows[i].snapshot();
            let state = if st.restart_at.is_some() || st.server.is_none() {
                "restarting"
            } else if st.handle.is_drained() {
                "drained"
            } else {
                "healthy"
            };
            let s = st.handle.stats();
            out.push_str(&format!(
                "shard={i} state={state} epoch={} workers={} alive={} inflight={} queued={} \
                 routed={} redispatched={} rescued={} restarts={} crashes={} wedges={} \
                 admitted={} ok={} errors={}\n",
                st.epoch,
                st.handle.expected_workers(),
                st.handle.workers_alive(),
                st.handle.inflight(),
                st.handle.queued(),
                row.routed,
                row.redispatched,
                row.rescued,
                row.restarts,
                row.crashes,
                row.wedges,
                s.admitted(),
                s.ok(),
                s.errors(),
            ));
        }
        out.push_str("# EOF");
        out
    }

    /// The `metrics` verb's reply: the `presburger_shard_*` families
    /// plus the process-wide memoization totals, `# EOF` terminated.
    pub fn metrics_text(&self) -> String {
        let rows: Vec<ShardRowSnapshot> = self.inner.rows.iter().map(|r| r.snapshot()).collect();
        let mut out = render_prometheus(&rows);
        out.push_str(&trace::memo::prometheus_text());
        out.push_str("# EOF");
        out
    }

    /// The `flightrec` verb's reply: every shard's retained slow
    /// requests, in shard order, `# EOF` terminated.
    pub fn flight_dump(&self) -> String {
        let handles: Vec<Handle> = lock_ok(&self.inner.shards)
            .iter()
            .map(|st| st.handle.clone())
            .collect();
        let mut out = String::new();
        for h in handles {
            for r in h.telemetry().flight_records() {
                out.push_str(&r.to_json());
                out.push('\n');
            }
        }
        out.push_str("# EOF");
        out
    }

    /// Whether a pool drain has completed.
    pub fn is_drained(&self) -> bool {
        self.inner.drained.load(Ordering::Relaxed)
    }

    /// Per-shard failover-counter snapshots, indexed by shard (for
    /// harnesses and the bench writer).
    pub fn shard_rows(&self) -> Vec<ShardRowSnapshot> {
        self.inner.rows.iter().map(|r| r.snapshot()).collect()
    }

    /// Number of shards in the pool.
    pub fn shards(&self) -> usize {
        self.inner.rows.len()
    }
}

impl Service for PoolHandle {
    fn submit(&self, query: Query) -> Arc<Slot> {
        PoolHandle::submit(self, query)
    }
    // submit_batch keeps the trait default: each query routes through
    // `PoolHandle::submit`, i.e. a batch scatters across the ring
    // (per-query consistent hashing) and gathers via its slots.
    fn observe_wire(&self, codec: ReqCodec, batch: Option<u64>) {
        // Codec traffic is connection-level, not shard-level: charge it
        // to shard 0's current-epoch telemetry hub so a pool still
        // exposes the per-codec families.
        let h = lock_ok(&self.inner.shards)[0].handle.clone();
        Service::observe_wire(&h, codec, batch);
    }
    fn drain(&self) -> String {
        PoolHandle::drain(self)
    }
    fn stats_line(&self) -> String {
        PoolHandle::stats_line(self)
    }
    fn metrics_text(&self) -> String {
        PoolHandle::metrics_text(self)
    }
    fn flight_dump(&self) -> String {
        PoolHandle::flight_dump(self)
    }
    fn shards_text(&self) -> String {
        PoolHandle::shards_text(self)
    }
    fn is_drained(&self) -> bool {
        PoolHandle::is_drained(self)
    }
    fn wants_client_identity(&self) -> bool {
        self.inner.ledger.is_some()
    }
}

/// Backoff before restart number `consecutive` (1-based): base doubled
/// per consecutive condemnation, capped.
fn backoff_ms(cfg: &ShardPoolConfig, consecutive: u32) -> u64 {
    let exp = consecutive.saturating_sub(1).min(16);
    cfg.restart_backoff_ms
        .saturating_mul(1u64 << exp)
        .min(cfg.restart_backoff_max_ms)
}

/// One supervisor probe: sweep answered pendings, perform due restarts,
/// condemn crashed/wedged shards (orphaning their pendings), and place
/// or rescue orphans.
fn supervise_tick(inner: &Arc<PoolInner>) {
    let now = Instant::now();
    let cfg = &inner.cfg;
    let wedge = Duration::from_millis(cfg.wedge_timeout_ms);
    let pool_draining = inner.draining.load(Ordering::Relaxed);
    let mut new_orphans: Vec<Orphan> = Vec::new();
    {
        let mut shards = lock_ok(&inner.shards);
        for (i, st) in shards.iter_mut().enumerate() {
            st.pending.retain(|t| !t.slot.is_done());
            if let Some(at) = st.restart_at {
                if now >= at && !pool_draining {
                    let server = Server::start_shared(
                        shard_server_cfg(cfg, i, &cfg.chaos),
                        inner.ledger.clone(),
                    );
                    st.handle = server.handle();
                    st.server = Some(server);
                    st.epoch += 1;
                    st.restart_at = None;
                    st.last_restart = Some(now);
                    st.last_heartbeat = 0;
                    st.last_progress = now;
                    ShardRow::bump(&inner.rows[i].restarts);
                }
                continue;
            }
            // A healthy streak as long as the backoff cap resets the
            // ladder.
            if let Some(r) = st.last_restart {
                if now.duration_since(r) >= Duration::from_millis(cfg.restart_backoff_max_ms) {
                    st.consecutive_restarts = 0;
                    st.last_restart = None;
                }
            }
            let h = &st.handle;
            let hb = h.heartbeat();
            if hb != st.last_heartbeat {
                st.last_heartbeat = hb;
                st.last_progress = now;
            }
            let draining = pool_draining || h.is_drained();
            let crashed = !draining && h.workers_alive() < h.expected_workers();
            let wedged =
                !draining && h.inflight() > 0 && now.duration_since(st.last_progress) >= wedge;
            if !(crashed || wedged) {
                continue;
            }
            if crashed {
                ShardRow::bump(&inner.rows[i].crashes);
            } else {
                ShardRow::bump(&inner.rows[i].wedges);
            }
            if let Some(server) = st.server.take() {
                server.abandon();
            }
            st.consecutive_restarts += 1;
            st.restart_at =
                Some(now + Duration::from_millis(backoff_ms(cfg, st.consecutive_restarts)));
            for t in st.pending.drain(..) {
                if t.slot.is_done() {
                    continue;
                }
                new_orphans.push(Orphan {
                    query: t.query,
                    slot: t.slot,
                    origin: i,
                    attempts: t.attempts + 1,
                    since: t.since,
                });
            }
        }
    }
    if !new_orphans.is_empty() {
        lock_ok(&inner.orphans).append(&mut new_orphans);
    }
    place_orphans(inner, now);
}

/// Places each orphan on an accepting shard — the origin's ring
/// successors first, wrapping around to the origin's own replacement —
/// or rescues it with the §4.6 fallback once its budget or deadline is
/// spent. Orphans that fit nowhere yet (every candidate in backoff)
/// stay queued for the next tick.
fn place_orphans(inner: &Arc<PoolInner>, now: Instant) {
    let mut orphans = {
        let mut o = lock_ok(&inner.orphans);
        if o.is_empty() {
            return;
        }
        std::mem::take(&mut *o)
    };
    let rescue_after = Duration::from_millis(inner.cfg.rescue_after_ms);
    let n = inner.rows.len();
    // Snapshot accepting handles once per tick.
    let mut accepting: Vec<Option<Handle>> = Vec::with_capacity(n);
    {
        let shards = lock_ok(&inner.shards);
        for st in shards.iter() {
            if st.server.is_some() && st.restart_at.is_none() && !st.handle.is_drained() {
                accepting.push(Some(st.handle.clone()));
            } else {
                accepting.push(None);
            }
        }
    }
    let mut keep: Vec<Orphan> = Vec::new();
    for o in orphans.drain(..) {
        if o.slot.is_done() {
            continue;
        }
        if o.attempts > inner.cfg.redispatch_budget || now.duration_since(o.since) >= rescue_after {
            rescue(inner, o);
            continue;
        }
        let mut placed = None;
        for off in 1..=n {
            let i = (o.origin + off) % n;
            if let Some(h) = &accepting[i] {
                if h.resubmit(o.query.clone(), o.slot.clone()) {
                    placed = Some(i);
                    break;
                }
            }
        }
        match placed {
            Some(i) => {
                ShardRow::bump(&inner.rows[o.origin].redispatched);
                lock_ok(&inner.shards)[i].pending.push(Tracked {
                    query: o.query,
                    slot: o.slot,
                    attempts: o.attempts,
                    since: o.since,
                });
            }
            None => keep.push(o),
        }
    }
    if !keep.is_empty() {
        lock_ok(&inner.orphans).append(&mut keep);
    }
}

/// Terminal fallback for an orphan nothing could place: a fresh
/// budgeted §4.6 bound pass (`OK … bounded failover lo ; hi`) or `ERR`.
fn rescue(inner: &PoolInner, o: Orphan) {
    if o.slot.is_done() {
        return;
    }
    ShardRow::bump(&inner.rows[o.origin].rescued);
    o.slot.fulfil(server::fallback_reply(
        &o.query,
        &inner.cfg.shard_cfg.default_budgets,
        inner.cfg.shard_cfg.default_deadline_ms,
    ));
}

/// A TCP front-end for a shard pool: accepts connections and serves
/// each on its own thread against the pool, exactly like
/// [`crate::server::TcpServer`] does for a single server.
pub struct PoolTcpServer {
    pool: ShardPool,
    addr: std::net::SocketAddr,
    accept_thread: thread::JoinHandle<()>,
}

impl PoolTcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts accepting.
    pub fn bind(addr: &str, cfg: ShardPoolConfig) -> Result<PoolTcpServer, ServeError> {
        server::validate(&cfg.shard_cfg)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let pool = ShardPool::start(cfg);
        let handle = pool.handle();
        let accept_thread = thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || server::accept_loop(listener, handle))?;
        Ok(PoolTcpServer {
            pool,
            addr: local,
            accept_thread,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// A submit/drain handle.
    pub fn handle(&self) -> PoolHandle {
        self.pool.handle()
    }

    /// Drains the pool and stops accepting. Returns the final
    /// aggregated stats line.
    pub fn shutdown(self) -> String {
        let line = self.pool.shutdown();
        let _ = self.accept_thread.join();
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;
    use crate::protocol::Request;

    fn query(line: &str) -> Query {
        match parse_request(line).expect("test query parses") {
            Request::Query(q) => q,
            other => panic!("expected a query, got {other:?}"),
        }
    }

    #[test]
    fn ring_route_is_stable_and_in_range() {
        let ring = Ring::new(4, 64);
        assert_eq!(ring.shards(), 4);
        for k in 0..1000u64 {
            let h = splitmix64(k);
            let s = ring.route(h);
            assert!(s < 4);
            assert_eq!(s, ring.route(h), "routing must be deterministic");
        }
    }

    #[test]
    fn routing_hash_ignores_spelling_but_not_structure() {
        let a = query("count r1 {x : 1 <= x && x <= 9}");
        let b = query("count r2 {x : 1<=x&&x<=9}");
        let c = query("count r3 {x : 1 <= x && x <= 10}");
        assert_eq!(routing_hash(&a), routing_hash(&b));
        assert_ne!(routing_hash(&a), routing_hash(&c));
    }

    #[test]
    fn routing_hash_ignores_overrides() {
        let a = query("count r1 {x : 1 <= x && x <= 9}");
        let b = query("count r2 deadline_ms=5 {x : 1 <= x && x <= 9}");
        assert_eq!(routing_hash(&a), routing_hash(&b));
    }

    #[test]
    fn pool_answers_and_drains() {
        let cfg = ShardPoolConfig {
            shards: 3,
            shard_cfg: ServeConfig {
                workers: 1,
                default_deadline_ms: None,
                breaker_failures: 0,
                ..ServeConfig::default()
            },
            ..ShardPoolConfig::default()
        };
        let pool = ShardPool::start(cfg);
        let handle = pool.handle();
        let mut slots = Vec::new();
        for i in 0..20 {
            let lo = i % 5;
            slots.push((
                i,
                lo,
                handle.submit(query(&format!("count q{i} {{x : {lo} <= x && x <= 9}}"))),
            ));
        }
        for (i, lo, slot) in slots {
            assert_eq!(slot.wait(), format!("OK q{i} exact {}", 10 - lo));
        }
        let stats = pool.shutdown();
        assert!(stats.starts_with("STATS shards=3 "), "got {stats:?}");
        assert!(stats.contains(" rescued=0 "), "got {stats:?}");
    }
}
