//! The server core: admission queue, worker pool, request processing,
//! drain, and the stdio / TCP connection drivers.
//!
//! # Life of a request
//!
//! 1. A connection driver reads one line and parses it
//!    ([`crate::protocol::parse_request`]). Control verbs and protocol
//!    errors are answered inline; queries go to [`Server::submit`].
//! 2. `submit` either enqueues a [`Job`] (bounded queue) or answers
//!    `SHED` immediately — when the queue is full or the server is
//!    draining. Admission and the draining check happen under one lock,
//!    so a request can never slip in behind a drain.
//! 3. A worker pops the job and runs the whole computation — parsing
//!    the formula, governing the count, rendering the reply — inside
//!    `catch_unwind`. A panic poisons only that request (`ERR …
//!    internal`), never the worker.
//! 4. The response is published through the job's one-shot [`Slot`];
//!    the connection's writer thread emits slots in admission order, so
//!    responses on a connection are FIFO even with many workers.
//!
//! # Ordering and replay
//!
//! With deadline-free requests the entire response stream is a pure
//! function of the request stream: budget trips are deterministic
//! (per-clause accounting, PR 3), cache keys include budget overrides,
//! and per-connection FIFO writers fix the interleaving. `serve_stress`
//! asserts byte-identical transcripts across runs and worker counts.

use crate::admission::{self, AdmissionConfig, Lane, LaneQueues, QuotaDecision, QuotaLedger};
use crate::breaker::{Breaker, Plan};
use crate::cache::ResultCache;
use crate::chaos::{self, ChaosSite};
use crate::protocol::{self, err_line, parse_request, shed_line, Query, Request, ServeError, Verb};
use crate::sync::{lock_ok, wait_ok};
use crate::telemetry::{RequestTelemetry, Telemetry, TelemetrySettings};
use presburger_counting::{
    try_sum_polynomial_bounds, try_sum_polynomial_governed, Budgets, CountError, CountOptions,
    Governor, Outcome,
};
use presburger_omega::{parse_affine, parse_formula, Space};
use presburger_polyq::QPoly;
use presburger_trace::metrics::{AdmitDecision, ReqCodec, ReqLane, ReqOutcome, ReqVerb};
use presburger_trace::{self as trace, Counter};
use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Server configuration. `Default` gives a single-worker server with a
/// 64-deep queue, a 5 s default deadline, a 3-strike breaker and a
/// 256-entry / 1 MiB cache.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Bounded admission-queue depth; a full queue sheds.
    pub queue_depth: usize,
    /// `retry_after_ms` hint on `SHED` replies.
    pub retry_after_ms: u64,
    /// Deadline applied to requests that carry no `deadline_ms`
    /// override. `None` = no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Base budgets merged under per-request overrides.
    pub default_budgets: Budgets,
    /// Consecutive breaker-class failures (internal / deadline) that
    /// open the circuit breaker; `0` disables it.
    pub breaker_failures: u32,
    /// Cooldown before an open breaker half-opens for a probe.
    pub breaker_cooldown_ms: u64,
    /// Result-cache entry bound (`0` disables caching).
    pub cache_entries: usize,
    /// Result-cache byte bound (keys + payloads).
    pub cache_bytes: usize,
    /// Verify mode: recompute every `n`-th cache hit and alarm on
    /// mismatch. `None` disables verification.
    pub verify_every: Option<u64>,
    /// How long a drain waits for in-flight and queued work before
    /// cancelling what remains (cancelled work still answers, with
    /// §4.6 bounds where possible).
    pub drain_deadline_ms: u64,
    /// Hermetic fault injection: a `<site>:<nth>[:panic]` spec applied
    /// to every governed request, equivalent to setting
    /// `PRESBURGER_FAULT` but scoped to this server (for tests).
    pub fault_spec: Option<String>,
    /// Request-scoped telemetry: histograms, flight recorder, event
    /// log (see [`crate::telemetry`]). Observational only — response
    /// bytes are identical at any setting.
    pub telemetry: TelemetrySettings,
    /// Test hook: when set, workers wait on this gate before popping
    /// each job, making queue-full sheds deterministic.
    pub hold: Option<Arc<Gate>>,
    /// Which shard of a [`crate::shard::ShardPool`] this server is
    /// (labels chaos injection). `0` for standalone servers.
    pub shard_index: usize,
    /// Deterministic chaos injection shared by every shard of a pool
    /// (see [`crate::chaos`]). `None` = no chaos.
    pub chaos: Option<Arc<chaos::Chaos>>,
    /// Deadline-aware admission control: priority lanes, per-client
    /// quotas, expired-request eviction, load-derived hints (see
    /// [`crate::admission`], DESIGN.md §16). The defaults preserve the
    /// legacy single-FIFO behavior byte-for-byte.
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            queue_depth: 64,
            retry_after_ms: 50,
            default_deadline_ms: Some(5_000),
            default_budgets: Budgets::unlimited(),
            breaker_failures: 3,
            breaker_cooldown_ms: 1_000,
            cache_entries: 256,
            cache_bytes: 1 << 20,
            verify_every: None,
            drain_deadline_ms: 2_000,
            fault_spec: None,
            telemetry: TelemetrySettings::default(),
            hold: None,
            shard_index: 0,
            chaos: None,
            admission: AdmissionConfig::default(),
        }
    }
}

/// A closable gate workers wait on before taking work (test hook for
/// deterministic shed scenarios).
#[derive(Debug)]
pub struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    /// A new gate, initially open unless `closed`.
    pub fn new(closed: bool) -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(!closed),
            cv: Condvar::new(),
        })
    }

    /// Opens the gate, releasing all waiters.
    pub fn open(&self) {
        let mut open = lock_ok(&self.open);
        *open = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = lock_ok(&self.open);
        while !*open {
            open = wait_ok(&self.cv, open);
        }
    }
}

/// A one-shot response slot: the worker fulfils it, the connection's
/// writer thread waits on it. The consumer reads the line exactly once,
/// so a duplicate fulfilment (possible when the supervisor re-dispatches
/// a request whose original worker later finishes anyway) is harmless —
/// and because replies are pure functions of the query, both producers
/// publish the identical line.
pub struct Slot {
    value: Mutex<Option<String>>,
    cv: Condvar,
    done: AtomicBool,
}

impl Slot {
    /// An empty slot.
    pub fn new() -> Arc<Slot> {
        Arc::new(Slot {
            value: Mutex::new(None),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
        })
    }

    /// An already-fulfilled slot (for responses computed inline).
    pub fn ready(line: String) -> Arc<Slot> {
        Arc::new(Slot {
            value: Mutex::new(Some(line)),
            cv: Condvar::new(),
            done: AtomicBool::new(true),
        })
    }

    /// Publishes the response line.
    pub fn fulfil(&self, line: String) {
        let mut v = lock_ok(&self.value);
        *v = Some(line);
        self.done.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Whether a response line has been published. The supervisor uses
    /// this to tell answered requests from orphaned ones.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Blocks until the response line is available.
    pub fn wait(&self) -> String {
        let mut v = lock_ok(&self.value);
        loop {
            if let Some(line) = v.take() {
                return line;
            }
            v = wait_ok(&self.cv, v);
        }
    }
}

struct Job {
    query: Query,
    slot: Arc<Slot>,
    /// The priority lane the job was admitted on.
    lane: Lane,
    /// Admission time, for the queue-wait histogram and expired-request
    /// eviction.
    enqueued: Instant,
}

/// Why [`Handle::try_enqueue`] refused a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Refusal {
    /// The server is draining (or condemned). The pool treats this as
    /// "shard going away mid-race" and re-routes instead of shedding.
    Draining,
    /// The bounded admission queue is full — genuine backpressure.
    QueueFull,
    /// The client is over its token-bucket quota ([`QuotaLedger`]).
    /// Only front doors produce this (never [`Handle::try_enqueue`]):
    /// metering happens once per arrival, so a pool's failover loop
    /// cannot double-charge the shared ledger.
    Quota,
}

/// A refused enqueue: the reason plus the rendered `SHED` line a caller
/// may deliver (after tallying it via [`Handle::note_shed`]).
pub(crate) struct Refused {
    pub reason: Refusal,
    pub line: String,
}

/// Atomic server statistics, rendered by `STATS` and the final drain
/// line.
#[derive(Default)]
pub struct Stats {
    admitted: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed_queue: AtomicU64,
    shed_drain: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    verify_mismatches: AtomicU64,
    breaker_opens: AtomicU64,
    degraded_first: AtomicU64,
    drain_bounded: AtomicU64,
    queue_depth_peak: AtomicU64,
}

impl Stats {
    fn bump(&self, field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Sheds issued (queue-full + draining).
    pub fn sheds(&self) -> u64 {
        self.shed_queue.load(Ordering::Relaxed) + self.shed_drain.load(Ordering::Relaxed)
    }

    /// Requests admitted to the queue.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// `OK` responses produced.
    pub fn ok(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// `ERR` responses produced.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Cache hits served.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Verify-mode mismatches detected (should stay 0).
    pub fn verify_mismatches(&self) -> u64 {
        self.verify_mismatches.load(Ordering::Relaxed)
    }

    /// Closed→open breaker transitions.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker_opens.load(Ordering::Relaxed)
    }

    /// Requests answered degrade-first while the breaker was open.
    pub fn degraded_first(&self) -> u64 {
        self.degraded_first.load(Ordering::Relaxed)
    }
}

struct Inner {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    inflight: AtomicUsize,
    drain_cancel: Arc<AtomicBool>,
    drained: AtomicBool,
    breaker: Mutex<Breaker>,
    cache: Mutex<ResultCache>,
    stats: Stats,
    telemetry: Telemetry,
    /// Worker threads currently alive. Incremented before each spawn,
    /// decremented by a drop guard at worker exit — a crashed worker
    /// (panic past the unwind boundary) shows up as `alive < workers`
    /// without a drain, which is the supervisor's crash signal.
    workers_alive: AtomicUsize,
    /// Bumped on every job pop and completion. A shard with inflight
    /// work whose heartbeat stops advancing is wedged.
    heartbeat: AtomicU64,
    /// Per-client quota ledger; `None` when quotas are off. A shard
    /// pool passes one shared ledger to every shard
    /// ([`Server::start_shared`]), though only the pool's front door
    /// meters it.
    ledger: Option<Arc<QuotaLedger>>,
}

struct QueueState {
    jobs: LaneQueues<Job>,
    draining: bool,
    shutdown: bool,
}

/// A running server: a worker pool behind a bounded admission queue.
/// Cheap to clone-share via [`Server::handle`]; drop order does not
/// matter (workers exit on drain/shutdown).
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

/// A shareable handle for submitting requests and draining.
#[derive(Clone)]
pub struct Handle {
    inner: Arc<Inner>,
}

impl Server {
    /// Starts the worker pool. A quota ledger (when configured) is
    /// created fresh for this server; shard pools use
    /// [`Server::start_shared`] so all shards meter one ledger.
    pub fn start(cfg: ServeConfig) -> Server {
        let ledger = cfg
            .admission
            .quota
            .map(|q| Arc::new(QuotaLedger::new(q, cfg.admission.max_clients)));
        Server::start_shared(cfg, ledger)
    }

    /// Starts the worker pool with an externally owned quota ledger —
    /// how a [`crate::shard::ShardPool`] gives every shard (including
    /// supervisor restarts) the same per-client clocks.
    pub(crate) fn start_shared(cfg: ServeConfig, ledger: Option<Arc<QuotaLedger>>) -> Server {
        // Cross-request memoization: the shared read-mostly tier makes
        // sub-problem results (eliminations, Smith forms, Faulhaber
        // polynomials) O(1) hits across requests and worker threads.
        // Process-wide and sticky — entries are keyed by canonical
        // encodings, so they can never go stale (see
        // `presburger_trace::memo`).
        trace::memo::enable_shared(true);
        if cfg.chaos.is_some() {
            chaos::install_chaos_hook();
        }
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState {
                jobs: LaneQueues::new(cfg.admission.background_credit),
                draining: false,
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            inflight: AtomicUsize::new(0),
            drain_cancel: Arc::new(AtomicBool::new(false)),
            drained: AtomicBool::new(false),
            breaker: Mutex::new(Breaker::new(cfg.breaker_failures, cfg.breaker_cooldown_ms)),
            cache: Mutex::new(ResultCache::new(cfg.cache_entries, cfg.cache_bytes)),
            stats: Stats::default(),
            telemetry: Telemetry::new(cfg.telemetry.clone()),
            workers_alive: AtomicUsize::new(0),
            heartbeat: AtomicU64::new(0),
            ledger,
            cfg,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                // Count the worker alive before it runs so a freshly
                // started (or restarted) server never reads as crashed.
                inner.workers_alive.fetch_add(1, Ordering::SeqCst);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        struct AliveGuard<'a>(&'a AtomicUsize);
                        impl Drop for AliveGuard<'_> {
                            fn drop(&mut self) {
                                self.0.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        let _alive = AliveGuard(&inner.workers_alive);
                        worker_loop(&inner)
                    })
                    .expect("invariant: spawning a worker thread cannot fail here")
            })
            .collect();
        Server {
            inner,
            workers: handles,
        }
    }

    /// A shareable submit/drain handle.
    pub fn handle(&self) -> Handle {
        Handle {
            inner: self.inner.clone(),
        }
    }

    /// Drains and joins the worker pool. Returns the final stats line.
    pub fn shutdown(mut self) -> String {
        let line = self.handle().drain();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone, so every accepted event is already in the
        // channel; close() flushes them all to the file.
        self.inner.telemetry.close_event_log();
        line
    }

    /// Condemns a crashed or wedged server: stops admission, tells the
    /// workers to exit, and detaches their join handles — a wedged
    /// worker may never return, and the supervisor must not hang with
    /// it. In-flight work is deliberately *not* cancelled: an orphaned
    /// healthy worker that finishes anyway publishes the identical line
    /// its re-dispatched twin computes (see [`Slot::fulfil`]), while a
    /// cancelled one would publish a different, racy answer.
    pub fn abandon(mut self) {
        {
            let mut q = lock_ok(&self.inner.queue);
            q.draining = true;
            q.shutdown = true;
        }
        self.inner.queue_cv.notify_all();
        self.inner.drained.store(true, Ordering::Relaxed);
        self.workers.drain(..);
        self.inner.telemetry.close_event_log();
    }
}

impl Handle {
    /// Admits a query, or sheds it. Always returns a slot that will be
    /// (or already is) fulfilled with exactly one response line.
    ///
    /// This is a quota **front door**: the client's logical clock
    /// advances exactly once per call, before any queue interaction, so
    /// the decision is a pure function of the client's attempt sequence.
    pub fn submit(&self, query: Query) -> Arc<Slot> {
        let verb = query.verb;
        let lane = query.lane();
        // Quota first: a client pays for offered load, whatever becomes
        // of the request afterwards.
        if let Some(line) = self.check_quota(&query) {
            self.note_shed(Refusal::Quota, verb, lane);
            return Slot::ready(line);
        }
        // A request that arrives already expired (deadline_ms=0) is
        // answered with the budgeted §4.6 bounds instead of queueing.
        if self.inner.cfg.admission.evict_expired
            && effective_deadline_ms(&self.inner.cfg, &query) == Some(0)
        {
            return Slot::ready(self.evict_reply(&query, lane));
        }
        let slot = Slot::new();
        match self.try_enqueue(query, slot.clone()) {
            Ok(()) => slot,
            Err(refused) => {
                self.note_shed(refused.reason, verb, lane);
                Slot::ready(refused.line)
            }
        }
    }

    /// Meters one admission attempt against the quota ledger; returns
    /// the rendered `SHED` line when the client is over quota.
    pub(crate) fn check_quota(&self, query: &Query) -> Option<String> {
        let ledger = self.inner.ledger.as_ref()?;
        let client = query.client.as_deref().unwrap_or(ANON_CLIENT);
        match ledger.check(client) {
            QuotaDecision::Admit => None,
            QuotaDecision::Shed { retry_after_ms } => {
                let reason = admission::shed_reason(
                    "quota",
                    query.lane(),
                    retry_after_ms,
                    self.inner.cfg.admission.detail,
                );
                Some(shed_line(&query.id, retry_after_ms, &reason))
            }
        }
    }

    /// Answers an expired request with the budgeted §4.6 bounds (`OK …
    /// bounded evicted lo ; hi`) and tallies it as admitted + ok — the
    /// request *was* accepted and answered, just without burning a
    /// governed run.
    pub(crate) fn evict_reply(&self, query: &Query, lane: Lane) -> String {
        let inner = &self.inner;
        inner.stats.bump(&inner.stats.admitted);
        trace::bump(Counter::ServeRequests);
        let line = bounds_reply(
            query,
            &inner.cfg.default_budgets,
            inner.cfg.default_deadline_ms,
            "evicted",
        );
        if line.starts_with("OK") {
            inner.stats.bump(&inner.stats.ok);
        } else {
            inner.stats.bump(&inner.stats.errors);
        }
        inner
            .telemetry
            .metrics
            .observe_admission(req_lane(lane), AdmitDecision::Evicted);
        line
    }

    /// Admits a whole batch under **one** queue-lock reservation: every
    /// query is admitted or shed in a single critical section, so a
    /// batch can never interleave with other submitters. Partial-shed
    /// semantics: queries are considered in order; once the server is
    /// draining or the queue fills, the remaining queries get `SHED`
    /// slots *in position* while earlier admissions stand. Returns one
    /// slot per query, in input order.
    pub fn submit_batch(&self, queries: Vec<Query>) -> Vec<Arc<Slot>> {
        let inner = &self.inner;
        let mut slots = Vec::with_capacity(queries.len());
        let mut sheds: Vec<(Refusal, Verb, Lane)> = Vec::new();
        // Inner requests that arrived already expired get their
        // positional `OK bounded evicted` reply *after* the lock drops:
        // the decision is made in the critical section (deterministic),
        // the bounds pass is not run under it.
        let mut evictions: Vec<(Arc<Slot>, Query, Lane)> = Vec::new();
        let mut admitted = 0usize;
        {
            let mut q = lock_ok(&inner.queue);
            for query in queries {
                let lane = query.lane();
                // Quota meters every batched arrival, admitted or not —
                // positionally, in frame order (ledger locks nest under
                // the queue lock; nothing takes them the other way).
                if let Some(line) = self.check_quota(&query) {
                    slots.push(Slot::ready(line));
                    sheds.push((Refusal::Quota, query.verb, lane));
                    continue;
                }
                if q.draining || q.shutdown {
                    let reason = admission::shed_reason(
                        "draining",
                        lane,
                        inner.cfg.retry_after_ms,
                        inner.cfg.admission.detail,
                    );
                    slots.push(Slot::ready(shed_line(
                        &query.id,
                        inner.cfg.retry_after_ms,
                        &reason,
                    )));
                    sheds.push((Refusal::Draining, query.verb, lane));
                    continue;
                }
                if inner.cfg.admission.evict_expired
                    && effective_deadline_ms(&inner.cfg, &query) == Some(0)
                {
                    let slot = Slot::new();
                    slots.push(slot.clone());
                    evictions.push((slot, query, lane));
                    continue;
                }
                if q.jobs.len() >= inner.cfg.queue_depth {
                    let hint = self.queue_full_hint(q.jobs.len() as u64, lane);
                    let reason = admission::shed_reason(
                        "queue_full",
                        lane,
                        hint,
                        inner.cfg.admission.detail,
                    );
                    slots.push(Slot::ready(shed_line(&query.id, hint, &reason)));
                    sheds.push((Refusal::QueueFull, query.verb, lane));
                    continue;
                }
                let slot = Slot::new();
                q.jobs.push(
                    lane,
                    Job {
                        query,
                        slot: slot.clone(),
                        lane,
                        enqueued: Instant::now(),
                    },
                );
                admitted += 1;
                let depth = q.jobs.len() as u64;
                inner.stats.bump(&inner.stats.admitted);
                inner
                    .stats
                    .queue_depth_peak
                    .fetch_max(depth, Ordering::Relaxed);
                trace::record_max(Counter::ServeQueueDepthPeak, depth);
                trace::bump(Counter::ServeRequests);
                inner
                    .telemetry
                    .metrics
                    .observe_admission(req_lane(lane), AdmitDecision::Admit);
                slots.push(slot);
            }
        }
        // Tallies and wakeups ride outside the critical section.
        for (reason, verb, lane) in sheds {
            self.note_shed(reason, verb, lane);
        }
        match admitted {
            0 => {}
            1 => inner.queue_cv.notify_one(),
            _ => inner.queue_cv.notify_all(),
        }
        for (slot, query, lane) in evictions {
            slot.fulfil(self.evict_reply(&query, lane));
        }
        slots
    }

    /// The `retry_after_ms` on a `queue_full` shed: the static default,
    /// or — with [`AdmissionConfig::load_hints`] — queue depth × the
    /// lane's observed mean service time.
    fn queue_full_hint(&self, depth: u64, lane: Lane) -> u64 {
        let cfg = &self.inner.cfg;
        if !cfg.admission.load_hints {
            return cfg.retry_after_ms;
        }
        let mean_us = self
            .inner
            .telemetry
            .metrics
            .lane_service(req_lane(lane))
            .mean() as u64;
        admission::load_hint_ms(depth, mean_us, cfg.retry_after_ms, LOAD_HINT_CAP_MS)
    }

    /// Re-admits an orphaned query, re-using the caller's existing slot
    /// so the connection writer waiting on it is none the wiser. Unlike
    /// [`Handle::submit`], a refusal does **not** touch the slot or the
    /// shed counters — the supervisor owns the fallback for requests it
    /// could not place. Returns whether the query was admitted.
    pub fn resubmit(&self, query: Query, slot: Arc<Slot>) -> bool {
        self.try_enqueue(query, slot).is_ok()
    }

    /// Enqueues `(query, slot)` or refuses without touching the slot.
    /// Refusals are not tallied here: only a shed actually *delivered*
    /// to a client counts ([`Handle::note_shed`]); the pool re-routes
    /// mid-restart refusals instead of delivering them.
    pub(crate) fn try_enqueue(&self, query: Query, slot: Arc<Slot>) -> Result<(), Refused> {
        let inner = &self.inner;
        let lane = query.lane();
        let mut q = lock_ok(&inner.queue);
        if q.draining || q.shutdown {
            let reason = admission::shed_reason(
                "draining",
                lane,
                inner.cfg.retry_after_ms,
                inner.cfg.admission.detail,
            );
            return Err(Refused {
                reason: Refusal::Draining,
                line: shed_line(&query.id, inner.cfg.retry_after_ms, &reason),
            });
        }
        if q.jobs.len() >= inner.cfg.queue_depth {
            let hint = self.queue_full_hint(q.jobs.len() as u64, lane);
            let reason =
                admission::shed_reason("queue_full", lane, hint, inner.cfg.admission.detail);
            return Err(Refused {
                reason: Refusal::QueueFull,
                line: shed_line(&query.id, hint, &reason),
            });
        }
        q.jobs.push(
            lane,
            Job {
                query,
                slot,
                lane,
                enqueued: Instant::now(),
            },
        );
        let depth = q.jobs.len() as u64;
        inner.stats.bump(&inner.stats.admitted);
        inner
            .stats
            .queue_depth_peak
            .fetch_max(depth, Ordering::Relaxed);
        trace::record_max(Counter::ServeQueueDepthPeak, depth);
        trace::bump(Counter::ServeRequests);
        inner
            .telemetry
            .metrics
            .observe_admission(req_lane(lane), AdmitDecision::Admit);
        drop(q);
        inner.queue_cv.notify_one();
        Ok(())
    }

    /// Tallies a shed that was actually delivered to a client. Quota
    /// sheds fold into `shed_queue` on the pinned `STATS` line; the
    /// Prometheus `presburger_admission_total` family keeps the split.
    pub(crate) fn note_shed(&self, reason: Refusal, verb: Verb, lane: Lane) {
        let inner = &self.inner;
        let decision = match reason {
            Refusal::Draining => {
                inner.stats.bump(&inner.stats.shed_drain);
                AdmitDecision::ShedDrain
            }
            Refusal::QueueFull => {
                inner.stats.bump(&inner.stats.shed_queue);
                AdmitDecision::ShedQueue
            }
            Refusal::Quota => {
                inner.stats.bump(&inner.stats.shed_queue);
                AdmitDecision::ShedQuota
            }
        };
        trace::bump(Counter::ServeSheds);
        inner.telemetry.metrics.observe_shed(req_verb(verb));
        inner
            .telemetry
            .metrics
            .observe_admission(req_lane(lane), decision);
    }

    /// Gracefully drains the server: stops admitting, waits for queued
    /// and in-flight work up to the drain deadline, then cancels the
    /// rest (cancelled requests still answer — with §4.6 bounds when
    /// possible). Returns the final stats line. Idempotent; secondary
    /// callers get the stats line without re-draining.
    pub fn drain(&self) -> String {
        let inner = &self.inner;
        {
            let mut q = lock_ok(&inner.queue);
            if q.draining {
                // Someone else is draining; fall through to wait below.
            } else {
                q.draining = true;
            }
        }
        inner.queue_cv.notify_all();

        let deadline = Instant::now() + Duration::from_millis(inner.cfg.drain_deadline_ms);
        while Instant::now() < deadline {
            if self.idle() {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        if !self.idle() {
            // Deadline expired: cancel all in-flight governed work and
            // give it a bounded grace period to unwind and answer.
            inner.drain_cancel.store(true, Ordering::Relaxed);
            let grace = Instant::now() + Duration::from_millis(inner.cfg.drain_deadline_ms);
            while Instant::now() < grace && !self.idle() {
                thread::sleep(Duration::from_millis(5));
            }
        }
        {
            let mut q = lock_ok(&inner.queue);
            q.shutdown = true;
        }
        inner.queue_cv.notify_all();
        inner.drained.store(true, Ordering::Relaxed);
        self.stats_line()
    }

    fn idle(&self) -> bool {
        let q = lock_ok(&self.inner.queue);
        q.jobs.is_empty() && self.inner.inflight.load(Ordering::Relaxed) == 0
    }

    /// The `STATS` line: space-separated `key=value` counters.
    pub fn stats_line(&self) -> String {
        let s = &self.inner.stats;
        let breaker = lock_ok(&self.inner.breaker);
        let cache = lock_ok(&self.inner.cache);
        format!(
            "STATS admitted={} ok={} errors={} shed_queue={} shed_drain={} \
             cache_hits={} cache_misses={} cache_entries={} verify_mismatches={} \
             breaker={} breaker_opens={} degraded_first={} drain_bounded={} \
             queue_depth_peak={}",
            s.admitted.load(Ordering::Relaxed),
            s.ok.load(Ordering::Relaxed),
            s.errors.load(Ordering::Relaxed),
            s.shed_queue.load(Ordering::Relaxed),
            s.shed_drain.load(Ordering::Relaxed),
            s.cache_hits.load(Ordering::Relaxed),
            s.cache_misses.load(Ordering::Relaxed),
            cache.len(),
            s.verify_mismatches.load(Ordering::Relaxed),
            breaker.state_name(),
            breaker.opens(),
            s.degraded_first.load(Ordering::Relaxed),
            s.drain_bounded.load(Ordering::Relaxed),
            s.queue_depth_peak.load(Ordering::Relaxed),
        )
    }

    /// Read-only access to the counters (for harnesses).
    pub fn stats(&self) -> &Stats {
        &self.inner.stats
    }

    /// The request-scoped telemetry hub (histograms, flight recorder).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The `metrics` verb's reply: Prometheus text exposition, `# EOF`
    /// terminated.
    pub fn metrics_text(&self) -> String {
        self.inner.telemetry.metrics_text()
    }

    /// The `flightrec` verb's reply: one JSON object per retained slow
    /// request, `# EOF` terminated.
    pub fn flight_dump(&self) -> String {
        self.inner.telemetry.flight_dump()
    }

    /// Whether a drain has completed.
    pub fn is_drained(&self) -> bool {
        self.inner.drained.load(Ordering::Relaxed)
    }

    /// Worker threads currently alive (supervisor health probe).
    pub fn workers_alive(&self) -> usize {
        self.inner.workers_alive.load(Ordering::SeqCst)
    }

    /// Worker threads this server was configured with.
    pub fn expected_workers(&self) -> usize {
        self.inner.cfg.workers.max(1)
    }

    /// Monotone worker progress counter (bumped on every job pop and
    /// completion). Stalls with inflight work mean a wedge.
    pub fn heartbeat(&self) -> u64 {
        self.inner.heartbeat.load(Ordering::Relaxed)
    }

    /// Jobs currently being processed by workers.
    pub fn inflight(&self) -> usize {
        self.inner.inflight.load(Ordering::Relaxed)
    }

    /// Jobs waiting in the admission queue.
    pub fn queued(&self) -> usize {
        lock_ok(&self.inner.queue).jobs.len()
    }
}

/// Maps a protocol verb to its telemetry label.
fn req_verb(verb: Verb) -> ReqVerb {
    match verb {
        Verb::Count => ReqVerb::Count,
        Verb::Sum => ReqVerb::Sum,
    }
}

/// Maps an admission lane to its telemetry label.
fn req_lane(lane: Lane) -> ReqLane {
    match lane {
        Lane::Interactive => ReqLane::Interactive,
        Lane::Batch => ReqLane::Batch,
        Lane::Background => ReqLane::Background,
    }
}

/// The quota identity of a query that reached an in-process front door
/// without a `client=` option or a connection-scoped identity. Outside
/// the id charset, so it can never collide with a real client.
const ANON_CLIENT: &str = "@anon";

/// Cap on a load-derived `queue_full` hint.
const LOAD_HINT_CAP_MS: u64 = 60_000;

/// The deadline a request is subject to while *queued*: its own
/// `deadline_ms` override, falling back to the server default.
pub(crate) fn effective_deadline_ms(cfg: &ServeConfig, query: &Query) -> Option<u64> {
    query.overrides.deadline_ms.or(cfg.default_deadline_ms)
}

fn worker_loop(inner: &Arc<Inner>) {
    inner.telemetry.worker_init();
    let telemetry_on = inner.telemetry.active();
    loop {
        if let Some(gate) = &inner.cfg.hold {
            gate.wait();
        }
        let job = {
            let mut q = lock_ok(&inner.queue);
            loop {
                if let Some((_, job)) = q.jobs.pop() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = wait_ok(&inner.queue_cv, q);
            }
        };
        inner.inflight.fetch_add(1, Ordering::Relaxed);
        inner.heartbeat.fetch_add(1, Ordering::Relaxed);
        // Chaos fires here — after the pop, before the unwind boundary,
        // with no lock held. A `kill` therefore never poisons a lock
        // (drill metrics stay clean) and the held job is provably
        // unanswered, which is exactly what the supervisor must recover.
        if let Some(site) = inner
            .cfg
            .chaos
            .as_ref()
            .and_then(|c| c.on_job(inner.cfg.shard_index))
        {
            match site {
                ChaosSite::Delay => thread::sleep(Duration::from_millis(40)),
                ChaosSite::Kill => std::panic::panic_any(chaos::ChaosKill),
                ChaosSite::Wedge => {
                    // Stall with the job held and the heartbeat frozen —
                    // what a livelocked worker looks like from outside.
                    // Exit (dropping the job) once the shard is
                    // condemned or drained.
                    loop {
                        if lock_ok(&inner.queue).shutdown {
                            inner.inflight.fetch_sub(1, Ordering::Relaxed);
                            return;
                        }
                        thread::sleep(Duration::from_millis(2));
                    }
                }
            }
        }
        let queue_wait = job.enqueued.elapsed();
        let baseline = inner.telemetry.counter_baseline();
        let started = Instant::now();
        // Expired in queue: answer immediately with the budgeted §4.6
        // bounds (the same rescue path shards use) instead of burning a
        // governed run on a reply the client has given up on.
        let evict = inner.cfg.admission.evict_expired
            && effective_deadline_ms(&inner.cfg, &job.query)
                .is_some_and(|d| queue_wait >= Duration::from_millis(d));
        // The outer unwind boundary: a panic anywhere in processing —
        // including inside rendering — poisons only this request.
        let reply = catch_unwind(AssertUnwindSafe(|| {
            if evict {
                evicted_reply(inner, &job.query, job.lane)
            } else {
                process(inner, &job.query, queue_wait)
            }
        }))
        .unwrap_or_else(|_| {
            inner.stats.bump(&inner.stats.errors);
            Reply {
                line: err_line(&job.query.id, "internal", "request processing panicked"),
                outcome: ReqOutcome::Err,
                engine: Duration::ZERO,
                formula: job.query.formula_text.clone(),
            }
        });
        let total = started.elapsed();
        // Fulfil first: telemetry rides behind the response, never in
        // front of it.
        let line = reply.line.clone();
        job.slot.fulfil(line);
        if telemetry_on {
            let counters = baseline.map(|base| trace::snapshot().delta(&base));
            let governor_tripped = counters
                .as_ref()
                .is_some_and(|d| d.get(Counter::GovernorTrips) > 0);
            let spans = inner.telemetry.take_spans();
            inner.telemetry.record(RequestTelemetry {
                id: job.query.id.clone(),
                verb: req_verb(job.query.verb),
                outcome: reply.outcome,
                lane: req_lane(job.lane),
                queue_wait,
                total,
                engine: reply.engine,
                counters,
                governor_tripped,
                formula: reply.formula,
                spans,
            });
        }
        inner.heartbeat.fetch_add(1, Ordering::Relaxed);
        inner.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What `process` hands back to the worker loop: the wire line plus the
/// telemetry the loop cannot reconstruct from the line alone.
struct Reply {
    line: String,
    outcome: ReqOutcome,
    /// Time inside the governed engine (zero for cache hits and parse
    /// errors).
    engine: Duration,
    /// Canonically re-rendered formula (raw text when parsing failed).
    formula: String,
}

/// The pop-time eviction reply: a queued-past-deadline request answered
/// with the budgeted §4.6 bounds. Counted as `ok` (the request *was*
/// answered) plus an `evicted` admission decision; never cached.
fn evicted_reply(inner: &Arc<Inner>, query: &Query, lane: Lane) -> Reply {
    let line = bounds_reply(
        query,
        &inner.cfg.default_budgets,
        inner.cfg.default_deadline_ms,
        "evicted",
    );
    let outcome = if line.starts_with("OK") {
        inner.stats.bump(&inner.stats.ok);
        ReqOutcome::Bounded
    } else {
        inner.stats.bump(&inner.stats.errors);
        ReqOutcome::Err
    };
    inner
        .telemetry
        .metrics
        .observe_admission(req_lane(lane), AdmitDecision::Evicted);
    Reply {
        line,
        outcome,
        engine: Duration::ZERO,
        formula: query.formula_text.clone(),
    }
}

/// Computes the response for one query. Runs on a worker, inside its
/// unwind boundary. `queue_wait` is how long the request sat queued —
/// with [`AdmissionConfig::deadline_propagation`] it shrinks the
/// governed deadline so queue wait cannot overshoot the client's
/// budget.
fn process(inner: &Arc<Inner>, query: &Query, queue_wait: Duration) -> Reply {
    let id = &query.id;
    let raw_err = |line: String| Reply {
        line,
        outcome: ReqOutcome::Err,
        engine: Duration::ZERO,
        formula: query.formula_text.clone(),
    };

    // Parse the formula (and polynomial) into a fresh space.
    let mut space = Space::new();
    for v in &query.vars {
        space.var(v);
    }
    let formula = match parse_formula(&query.formula_text, &mut space) {
        Ok(f) => f,
        Err(e) => {
            inner.stats.bump(&inner.stats.errors);
            return raw_err(err_line(id, "parse", &e.to_string()));
        }
    };
    let poly_affine = match &query.poly_text {
        None => None,
        Some(text) => match parse_affine(text, &mut space) {
            Ok(a) => Some(a),
            Err(e) => {
                inner.stats.bump(&inner.stats.errors);
                return raw_err(err_line(id, "parse", &format!("in polynomial: {e}")));
            }
        },
    };
    let poly = poly_affine
        .as_ref()
        .map(QPoly::from_affine)
        .unwrap_or_else(QPoly::one);
    let vars: Vec<_> = query
        .vars
        .iter()
        .map(|v| {
            space
                .lookup(v)
                .expect("invariant: counted variables were interned above")
        })
        .collect();

    // Canonical cache key: the structural interning encoding of the
    // parsed formula, not its text. Counted variables are interned
    // first (indices 0..n in listed order) and their *names* never
    // appear in a response payload, so only their indices are keyed —
    // alpha-equivalent queries that merely rename the counted variables
    // share an entry. Free symbols, interned by the parser in
    // appearance order, do surface in symbolic answers, so their
    // (index, name) table is part of the key. Budget overrides are
    // keyed too (they change whether an answer is exact or bounded).
    let formula_text = formula.to_string(&space);
    let mut cache_key = Vec::with_capacity(128);
    cache_key.push(match query.verb {
        Verb::Count => 0u8,
        Verb::Sum => 1,
    });
    cache_key.extend_from_slice(&(vars.len() as u32).to_le_bytes());
    for v in &vars {
        cache_key.extend_from_slice(&(v.index() as u32).to_le_bytes());
    }
    cache_key.extend_from_slice(&((space.len() - vars.len()) as u32).to_le_bytes());
    for v in space.iter().skip(vars.len()) {
        let name = space.name(v);
        cache_key.extend_from_slice(&(v.index() as u32).to_le_bytes());
        cache_key.extend_from_slice(&(name.len() as u32).to_le_bytes());
        cache_key.extend_from_slice(name.as_bytes());
    }
    let over = query.overrides.cache_key_part();
    cache_key.extend_from_slice(&(over.len() as u32).to_le_bytes());
    cache_key.extend_from_slice(over.as_bytes());
    presburger_omega::intern::formula_push_key_bytes(&formula, &mut cache_key);
    match &poly_affine {
        None => cache_key.push(0),
        Some(a) => {
            cache_key.push(1);
            a.push_key_bytes(&mut cache_key);
        }
    }

    if let Some((payload, ordinal)) = lock_ok(&inner.cache).get(&cache_key) {
        inner.stats.bump(&inner.stats.cache_hits);
        trace::bump(Counter::ServeCacheHits);
        let verify = matches!(inner.cfg.verify_every, Some(n) if n > 0 && ordinal % n == 0);
        if !verify {
            inner.stats.bump(&inner.stats.ok);
            return Reply {
                line: format!("OK {id} {payload}"),
                outcome: ReqOutcome::CacheHit,
                engine: Duration::ZERO,
                formula: formula_text,
            };
        }
        // Verify mode: recompute this hit and alarm on mismatch.
        let engine_start = Instant::now();
        let (fresh, _) = compute(inner, query, queue_wait, &space, &formula, &vars, &poly);
        let engine = engine_start.elapsed();
        if fresh != payload {
            inner.stats.bump(&inner.stats.verify_mismatches);
            eprintln!(
                "serve: CACHE VERIFY MISMATCH for request {id}: cached {payload:?} vs recomputed {fresh:?}"
            );
            lock_ok(&inner.cache).put(&cache_key, &fresh);
        }
        inner.stats.bump(&inner.stats.ok);
        return Reply {
            line: format!("OK {id} {fresh}"),
            outcome: ReqOutcome::CacheHit,
            engine,
            formula: formula_text,
        };
    }
    inner.stats.bump(&inner.stats.cache_misses);
    trace::bump(Counter::ServeCacheMisses);

    let engine_start = Instant::now();
    let (payload, outcome) = compute(inner, query, queue_wait, &space, &formula, &vars, &poly);
    let engine = engine_start.elapsed();
    let (line, outcome) = match outcome {
        ComputeOutcome::Exact => {
            lock_ok(&inner.cache).put(&cache_key, &payload);
            inner.stats.bump(&inner.stats.ok);
            (format!("OK {id} {payload}"), ReqOutcome::Ok)
        }
        ComputeOutcome::Bounded => {
            inner.stats.bump(&inner.stats.ok);
            (format!("OK {id} {payload}"), ReqOutcome::Bounded)
        }
        ComputeOutcome::Error => {
            inner.stats.bump(&inner.stats.errors);
            (payload, ReqOutcome::Err)
        }
    };
    Reply {
        line,
        outcome,
        engine,
        formula: formula_text,
    }
}

#[derive(PartialEq, Eq)]
enum ComputeOutcome {
    Exact,
    Bounded,
    Error,
}

/// Runs the governed computation per the breaker's plan and renders the
/// response *payload* (the part after `OK <id> `) or, for errors, the
/// full `ERR` line.
fn compute(
    inner: &Arc<Inner>,
    query: &Query,
    queue_wait: Duration,
    space: &Space,
    formula: &presburger_omega::Formula,
    vars: &[presburger_omega::VarId],
    poly: &QPoly,
) -> (String, ComputeOutcome) {
    let id = &query.id;
    let plan = lock_ok(&inner.breaker).plan(Instant::now());

    let opts = CountOptions {
        threads: query.overrides.threads.unwrap_or(1),
        ..CountOptions::default()
    };

    let mut budgets = query.overrides.budgets(&inner.cfg.default_budgets);
    if budgets.deadline.is_none() {
        budgets.deadline = inner.cfg.default_deadline_ms.map(Duration::from_millis);
    }
    // Cooperative deadline propagation: time the request burned in the
    // queue comes out of its execution budget (floored at 1 ms so the
    // governed run still answers — with bounds — instead of hanging the
    // overshoot on the client).
    if inner.cfg.admission.deadline_propagation {
        if let Some(d) = budgets.deadline {
            budgets.deadline = Some(d.saturating_sub(queue_wait).max(Duration::from_millis(1)));
        }
    }

    if plan == Plan::Degrade {
        // Breaker open: skip the exact path entirely, answer with the
        // §4.6 bounds — still governed by the request's budgets, so a
        // degraded reply cannot run away either.
        inner.stats.bump(&inner.stats.degraded_first);
        return match bounds(space, formula, vars, poly, &opts, budgets) {
            Ok((lo, hi)) => (
                format!(
                    "bounded breaker_open {} ; {}",
                    protocol::sanitize(&lo),
                    protocol::sanitize(&hi)
                ),
                ComputeOutcome::Bounded,
            ),
            Err(e) => (
                err_line(id, e.kind(), &e.to_string()),
                ComputeOutcome::Error,
            ),
        };
    }

    let mut gov = Governor::new(budgets).with_cancel_token(inner.drain_cancel.clone());
    if let Some(spec) = &inner.cfg.fault_spec {
        gov = gov
            .with_fault(spec)
            .expect("invariant: cfg.fault_spec was validated at server start");
    }

    let run = catch_unwind(AssertUnwindSafe(|| {
        try_sum_polynomial_governed(space, formula, vars, poly, &opts, &gov)
    }));
    let result = match run {
        Ok(r) => r,
        Err(_) => Err(CountError::Internal(
            "governed run panicked outside its own boundaries".to_string(),
        )),
    };

    let failure = matches!(
        &result,
        Err(CountError::Internal(_) | CountError::Deadline { .. })
            | Ok(Outcome::Bounded {
                why: CountError::Deadline { .. },
                ..
            })
    );
    lock_ok(&inner.breaker).record(plan, failure, Instant::now());
    if failure {
        inner
            .stats
            .breaker_opens
            .store(lock_ok(&inner.breaker).opens(), Ordering::Relaxed);
    }

    match result {
        Ok(Outcome::Exact(v)) => (
            format!("exact {}", protocol::sanitize(&v.to_display_string())),
            ComputeOutcome::Exact,
        ),
        Ok(Outcome::Bounded {
            lower, upper, why, ..
        }) => (
            format!(
                "bounded {} {} ; {}",
                why.kind(),
                protocol::sanitize(&lower.to_display_string()),
                protocol::sanitize(&upper.to_display_string())
            ),
            ComputeOutcome::Bounded,
        ),
        Err(CountError::Cancelled) if inner.drain_cancel.load(Ordering::Relaxed) => {
            // Drain-deadline cancellation: rescue the request with the
            // budgeted §4.6 bounds so it still gets an answer.
            inner.stats.bump(&inner.stats.drain_bounded);
            match bounds(space, formula, vars, poly, &opts, budgets) {
                Ok((lo, hi)) => (
                    format!(
                        "bounded cancelled {} ; {}",
                        protocol::sanitize(&lo),
                        protocol::sanitize(&hi)
                    ),
                    ComputeOutcome::Bounded,
                ),
                Err(_) => (
                    err_line(id, "cancelled", "cancelled by drain deadline"),
                    ComputeOutcome::Error,
                ),
            }
        }
        Err(e) => (
            err_line(id, e.kind(), &e.to_string()),
            ComputeOutcome::Error,
        ),
    }
}

/// Budgeted §4.6 lower/upper bounds for the degrade-first and
/// drain-rescue paths. Governed by the request's merged budgets with
/// the injected fault disarmed (see
/// [`presburger_counting::try_sum_polynomial_bounds`]) and a fresh
/// cancellation token — a drain rescue must not be cancelled by the
/// very drain token that sent it here.
fn bounds(
    space: &Space,
    formula: &presburger_omega::Formula,
    vars: &[presburger_omega::VarId],
    poly: &QPoly,
    opts: &CountOptions,
    budgets: Budgets,
) -> Result<(String, String), CountError> {
    let gov = Governor::new(budgets);
    let r = catch_unwind(AssertUnwindSafe(|| {
        try_sum_polynomial_bounds(space, formula, vars, poly, opts, &gov)
    }));
    match r {
        Ok(Ok((lo, hi))) => Ok((lo.to_display_string(), hi.to_display_string())),
        Ok(Err(e)) => Err(e),
        Err(_) => Err(CountError::Internal("bound pass panicked".to_string())),
    }
}

/// The supervisor's terminal fallback for an orphaned request no shard
/// could take: a fresh budgeted §4.6 bound pass (`OK … bounded failover
/// lo ; hi`) or an `ERR` — never silence. Self-contained (no server
/// state) because the shard that admitted the request is gone.
pub(crate) fn fallback_reply(
    query: &Query,
    default_budgets: &Budgets,
    default_deadline_ms: Option<u64>,
) -> String {
    bounds_reply(query, default_budgets, default_deadline_ms, "failover")
}

/// A self-contained budgeted §4.6 bound reply: `OK <id> bounded <why>
/// lo ; hi`, or an `ERR` when the query does not even parse. Shared by
/// the supervisor's orphan fallback (`why = "failover"`) and
/// expired-request eviction (`why = "evicted"`).
pub(crate) fn bounds_reply(
    query: &Query,
    default_budgets: &Budgets,
    default_deadline_ms: Option<u64>,
    why: &str,
) -> String {
    let id = &query.id;
    let mut space = Space::new();
    for v in &query.vars {
        space.var(v);
    }
    let formula = match parse_formula(&query.formula_text, &mut space) {
        Ok(f) => f,
        Err(e) => return err_line(id, "parse", &e.to_string()),
    };
    let poly = match &query.poly_text {
        None => QPoly::one(),
        Some(text) => match parse_affine(text, &mut space) {
            Ok(a) => QPoly::from_affine(&a),
            Err(e) => return err_line(id, "parse", &format!("in polynomial: {e}")),
        },
    };
    let vars: Vec<_> = query
        .vars
        .iter()
        .map(|v| {
            space
                .lookup(v)
                .expect("invariant: counted variables were interned above")
        })
        .collect();
    let opts = CountOptions {
        threads: query.overrides.threads.unwrap_or(1),
        ..CountOptions::default()
    };
    let mut budgets = query.overrides.budgets(default_budgets);
    // The rescue pass keeps the request's *structural* budget overrides
    // (splinter/clause/depth caps) but runs under the server's default
    // deadline, never the request's own: a rescue fires precisely
    // because that deadline already lapsed (eviction) or the request
    // outlived its shard (failover), and a 0 ms leftover would make the
    // answer-of-last-resort itself fail.
    budgets.deadline = default_deadline_ms.map(Duration::from_millis);
    match bounds(&space, &formula, &vars, &poly, &opts, budgets) {
        Ok((lo, hi)) => format!(
            "OK {id} bounded {why} {} ; {}",
            protocol::sanitize(&lo),
            protocol::sanitize(&hi)
        ),
        Err(e) => err_line(id, e.kind(), &e.to_string()),
    }
}

/// What a connection driver needs from the thing answering requests.
/// Implemented by the single-server [`Handle`] and the shard pool's
/// [`crate::shard::PoolHandle`], so every front-end (stdio, TCP,
/// in-process harnesses) works unchanged against either.
pub trait Service: Clone + Send + Sync + 'static {
    /// Admits or sheds a query; the returned slot is (or will be)
    /// fulfilled with exactly one response line.
    fn submit(&self, query: Query) -> Arc<Slot>;
    /// Admits a batch of queries, one slot per query in input order.
    /// The default scatters each query through [`Service::submit`]
    /// (which is how a shard pool fans a batch across its ring);
    /// single-server handles override it with an atomic one-reservation
    /// admission that defines partial-shed semantics.
    fn submit_batch(&self, queries: Vec<Query>) -> Vec<Arc<Slot>> {
        queries.into_iter().map(|q| self.submit(q)).collect()
    }
    /// Observational hook: a connection driver saw one request frame
    /// (or, with `batch = Some(k)`, a batch frame of `k` inner
    /// requests) on the given codec. Feeds the per-codec request
    /// counters and the batch-size histogram; replies are unaffected.
    fn observe_wire(&self, codec: ReqCodec, batch: Option<u64>) {
        let _ = (codec, batch);
    }
    /// Gracefully drains; returns the final stats line.
    fn drain(&self) -> String;
    /// The `stats` verb's one-line reply.
    fn stats_line(&self) -> String;
    /// The `metrics` verb's Prometheus exposition, `# EOF` terminated.
    fn metrics_text(&self) -> String;
    /// The `flightrec` verb's dump, `# EOF` terminated.
    fn flight_dump(&self) -> String;
    /// The `shards` verb's health/topology block, `# EOF` terminated.
    fn shards_text(&self) -> String;
    /// Whether a drain has completed.
    fn is_drained(&self) -> bool;
    /// Whether the service meters per-client quotas. Connection drivers
    /// then stamp a connection-scoped identity (`@conn-<n>`, outside
    /// the `client=` charset so it can never collide) on queries that
    /// carry none — the default scope the tentpole spec asks for.
    fn wants_client_identity(&self) -> bool {
        false
    }
}

/// Process-wide connection sequence for synthetic `@conn-<n>` quota
/// identities.
static CONN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh connection-scoped quota identity.
pub(crate) fn next_conn_client() -> String {
    format!("@conn-{}", CONN_SEQ.fetch_add(1, Ordering::Relaxed))
}

impl Service for Handle {
    fn submit(&self, query: Query) -> Arc<Slot> {
        Handle::submit(self, query)
    }
    fn submit_batch(&self, queries: Vec<Query>) -> Vec<Arc<Slot>> {
        Handle::submit_batch(self, queries)
    }
    fn observe_wire(&self, codec: ReqCodec, batch: Option<u64>) {
        let m = &self.inner.telemetry.metrics;
        m.observe_codec_requests(codec, batch.unwrap_or(1));
        if let Some(k) = batch {
            m.observe_batch(k);
        }
    }
    fn drain(&self) -> String {
        Handle::drain(self)
    }
    fn stats_line(&self) -> String {
        Handle::stats_line(self)
    }
    fn metrics_text(&self) -> String {
        Handle::metrics_text(self)
    }
    fn flight_dump(&self) -> String {
        Handle::flight_dump(self)
    }
    fn shards_text(&self) -> String {
        // A standalone server is its own single shard.
        format!(
            "SHARDS shards=1\nshard=0 state=standalone epoch=0 workers={} alive={} \
             inflight={} queued={}\n# EOF",
            self.expected_workers(),
            self.workers_alive(),
            self.inflight(),
            self.queued(),
        )
    }
    fn is_drained(&self) -> bool {
        Handle::is_drained(self)
    }
    fn wants_client_identity(&self) -> bool {
        self.inner.ledger.is_some()
    }
}

/// Serves one connection: reads newline-delimited requests from
/// `reader`, answers each with exactly one line on `writer`, in request
/// order. Returns after `drain` (server-wide) or EOF; when
/// `drain_on_eof` is set, EOF triggers a server drain and the final
/// stats line is emitted before returning.
///
/// The codec is auto-detected from the first byte: a connection that
/// opens with the binary magic prefix ([`crate::wire::MAGIC`]) is
/// handed to [`crate::wire::serve_binary_connection`]; anything else —
/// every existing client — gets the text protocol unchanged.
pub fn serve_connection<S: Service>(
    handle: &S,
    mut reader: impl BufRead,
    mut writer: impl Write + Send + 'static,
    drain_on_eof: bool,
) -> Result<(), ServeError> {
    // Peek without consuming: the binary driver re-reads the full
    // preamble itself.
    let binary = reader.fill_buf()?.first() == Some(&crate::wire::MAGIC[0]);
    if binary {
        return crate::wire::serve_binary_connection(handle, reader, writer, drain_on_eof);
    }
    // Per-connection FIFO writer: slots are enqueued in request order
    // and emitted in that order, whatever order workers finish in.
    let (tx, rx) = mpsc::channel::<Arc<Slot>>();
    let writer_thread = thread::Builder::new()
        .name("serve-writer".to_string())
        .spawn(
            move || -> (Box<dyn Write + Send>, Result<(), std::io::Error>) {
                for slot in rx {
                    let line = slot.wait();
                    if let Err(e) = writeln!(writer, "{line}").and_then(|()| writer.flush()) {
                        return (Box::new(writer), Err(e));
                    }
                }
                (Box::new(writer), Ok(()))
            },
        )?;

    // Quota identity of queries on this connection that carry no
    // `client=` option (only minted when the service meters quotas, so
    // quota-free servers stay allocation-identical).
    let conn_client = handle.wants_client_identity().then(next_conn_client);
    let mut saw_drain = false;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                drop(tx);
                let _ = writer_thread.join();
                return Err(ServeError::Io(e));
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        handle.observe_wire(ReqCodec::Text, None);
        let slot = match parse_request(trimmed) {
            Ok(Request::Query(mut q)) => {
                if q.client.is_none() {
                    q.client = conn_client.clone();
                }
                handle.submit(q)
            }
            Ok(Request::Ping(id)) => Slot::ready(match id {
                Some(id) => format!("PONG {id}"),
                None => "PONG".to_string(),
            }),
            Ok(Request::Stats) => Slot::ready(handle.stats_line()),
            Ok(Request::Metrics) => Slot::ready(handle.metrics_text()),
            Ok(Request::FlightRec) => Slot::ready(handle.flight_dump()),
            Ok(Request::Shards) => Slot::ready(handle.shards_text()),
            Ok(Request::Drain) => {
                saw_drain = true;
                let stats = handle.drain();
                Slot::ready(format!("{stats}\nBYE"))
            }
            Err(e) => Slot::ready(err_line(e.id.as_deref().unwrap_or("-"), e.kind, &e.detail)),
        };
        if tx.send(slot).is_err() {
            break; // writer died (broken pipe); stop reading
        }
        if saw_drain {
            break;
        }
    }

    if drain_on_eof && !saw_drain {
        let stats = handle.drain();
        let _ = tx.send(Slot::ready(stats));
    }
    drop(tx);
    match writer_thread.join() {
        Ok((_, Err(e))) => Err(ServeError::Io(e)),
        _ => Ok(()),
    }
}

/// Runs a server over stdin/stdout: one request per line, one response
/// per line, drain on EOF or on a `drain` request. Returns the final
/// stats line.
pub fn run_stdio(cfg: ServeConfig) -> Result<String, ServeError> {
    validate(&cfg)?;
    let server = Server::start(cfg);
    let handle = server.handle();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_connection(&handle, stdin.lock(), stdout, true)?;
    Ok(server.shutdown())
}

/// A TCP front-end: accepts connections and serves each on its own
/// thread until [`TcpServer::drain`] (or a client sends `drain`).
pub struct TcpServer {
    server: Server,
    addr: std::net::SocketAddr,
    accept_thread: thread::JoinHandle<()>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting.
    pub fn bind(addr: &str, cfg: ServeConfig) -> Result<TcpServer, ServeError> {
        validate(&cfg)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let server = Server::start(cfg);
        let handle = server.handle();
        let accept_thread = thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, handle))?;
        Ok(TcpServer {
            server,
            addr: local,
            accept_thread,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// A submit/drain handle.
    pub fn handle(&self) -> Handle {
        self.server.handle()
    }

    /// Drains the server and stops accepting. Returns the final stats
    /// line.
    pub fn shutdown(self) -> String {
        let line = self.server.shutdown();
        let _ = self.accept_thread.join();
        line
    }
}

pub(crate) fn accept_loop<S: Service>(listener: TcpListener, handle: S) {
    loop {
        if handle.is_drained() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let handle = handle.clone();
                let _ = thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        let _ = serve_tcp_connection(&handle, stream);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

fn serve_tcp_connection<S: Service>(handle: &S, stream: TcpStream) -> Result<(), ServeError> {
    stream.set_nonblocking(false)?;
    let reader = std::io::BufReader::new(stream.try_clone()?);
    serve_connection(handle, reader, stream, false)
}

pub(crate) fn validate(cfg: &ServeConfig) -> Result<(), ServeError> {
    if cfg.queue_depth == 0 {
        return Err(ServeError::Config("queue_depth must be at least 1".into()));
    }
    if let Some(spec) = &cfg.fault_spec {
        presburger_trace::govern::parse_fault(spec)
            .map_err(|e| ServeError::Config(format!("fault_spec: {e}")))?;
    }
    Ok(())
}
