//! Poison-tolerant lock helpers for the serving layer.
//!
//! Every mutex in this crate guards data whose invariants hold at all
//! times except *inside* a critical section, and the critical sections
//! never leave partial state behind on unwind (pushes/pops/counter
//! stores are each all-or-nothing). A panic under a held lock — a
//! chaos `kill`, a bug in a worker — therefore poisons the lock without
//! corrupting the data, and refusing to ever take it again would wedge
//! the whole server to punish one dead request. These helpers take the
//! lock anyway and tally the recovery
//! ([`trace::shard::note_lock_recovered`], surfaced as
//! `presburger_serve_lock_recovered_total` and the
//! `serve_lock_recovered` pipeline counter).

use presburger_trace as trace;
use std::sync::{Condvar, Mutex, MutexGuard};

/// `m.lock()`, recovering (and tallying) a poisoned lock.
pub(crate) fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| {
        trace::shard::note_lock_recovered();
        e.into_inner()
    })
}

/// `cv.wait(guard)`, recovering (and tallying) a poisoned lock.
pub(crate) fn wait_ok<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| {
        trace::shard::note_lock_recovered();
        e.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn poisoned_lock_is_recovered_and_tallied() {
        let m = Mutex::new(7u32);
        let before = trace::shard::lock_recovered_total();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_ok(&m), 7);
        assert!(trace::shard::lock_recovered_total() > before);
        // And again: recovery does not un-poison, but keeps working.
        *lock_ok(&m) = 9;
        assert_eq!(*lock_ok(&m), 9);
    }
}
