//! Deterministic chaos injection for the supervised shard pool.
//!
//! `PRESBURGER_CHAOS=<site>:<shard>:<nth>` arms exactly one fault per
//! pool — fired by worker `<shard>` when it pops its `<nth>` job
//! (1-based, counted across restarts) — in the same spirit as the
//! governor's `PRESBURGER_FAULT`:
//!
//! * `kill`  — the worker thread panics past its unwind boundary and
//!   dies (the supervisor must detect the crash and re-dispatch).
//! * `wedge` — the worker stalls holding the job, heartbeat frozen
//!   (the supervisor must detect the stall via the inflight watermark).
//! * `delay` — the worker sleeps briefly, then proceeds (must **not**
//!   trigger the supervisor; answers are unchanged).
//!
//! The injection point is after the job pop with no lock held and
//! before the request's unwind boundary, so a `kill` provably orphans
//! the popped job without poisoning any lock. The one-shot counter
//! lives in the [`Chaos`] value (not a process-global), so concurrent
//! pools — the stress harness runs many per process — each get their
//! own drill.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};

/// What the armed chaos does to the worker (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosSite {
    /// Panic past the unwind boundary: the worker thread dies.
    Kill,
    /// Stall holding the job with the heartbeat frozen.
    Wedge,
    /// Sleep briefly, then process normally.
    Delay,
}

/// Panic payload for [`ChaosSite::Kill`], filtered off stderr by
/// [`install_chaos_hook`] the way governor [`Trip`]s are.
///
/// [`Trip`]: presburger_trace::govern::Trip
pub struct ChaosKill;

/// A parsed, armed chaos spec. Shared (`Arc`) by every shard of one
/// pool; fires at most once per pool.
pub struct Chaos {
    site: ChaosSite,
    shard: usize,
    nth: u64,
    popped: AtomicU64,
    fired: AtomicBool,
}

impl fmt::Debug for Chaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chaos")
            .field("site", &self.site)
            .field("shard", &self.shard)
            .field("nth", &self.nth)
            .field("fired", &self.fired.load(Ordering::Relaxed))
            .finish()
    }
}

impl Chaos {
    /// Parses `<site>:<shard>:<nth>` (site ∈ kill | wedge | delay,
    /// `nth` 1-based).
    pub fn parse(spec: &str) -> Result<Chaos, String> {
        let mut parts = spec.split(':');
        let site = match parts.next() {
            Some("kill") => ChaosSite::Kill,
            Some("wedge") => ChaosSite::Wedge,
            Some("delay") => ChaosSite::Delay,
            Some(other) => {
                return Err(format!(
                    "unknown chaos site {other:?} (expected kill, wedge or delay)"
                ))
            }
            None => return Err("empty chaos spec".to_string()),
        };
        let shard = parts
            .next()
            .ok_or_else(|| "chaos spec needs <site>:<shard>:<nth>".to_string())?
            .parse::<usize>()
            .map_err(|e| format!("bad chaos shard index: {e}"))?;
        let nth = parts
            .next()
            .ok_or_else(|| "chaos spec needs <site>:<shard>:<nth>".to_string())?
            .parse::<u64>()
            .map_err(|e| format!("bad chaos nth: {e}"))?;
        if nth == 0 {
            return Err("chaos nth is 1-based; 0 never fires".to_string());
        }
        if let Some(extra) = parts.next() {
            return Err(format!("trailing chaos spec part {extra:?}"));
        }
        Ok(Chaos {
            site,
            shard,
            nth,
            popped: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        })
    }

    /// The armed spec from `PRESBURGER_CHAOS`, if any. Unparsable specs
    /// are an error — a chaos drill that silently doesn't arm would
    /// pass its gate vacuously.
    pub fn from_env() -> Result<Option<Arc<Chaos>>, String> {
        match std::env::var("PRESBURGER_CHAOS") {
            Ok(spec) if !spec.is_empty() => Chaos::parse(&spec)
                .map(|c| Some(Arc::new(c)))
                .map_err(|e| format!("PRESBURGER_CHAOS: {e}")),
            _ => Ok(None),
        }
    }

    /// Which shard the fault is armed on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Whether the fault has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Called by a worker of shard `shard` after popping a job; returns
    /// the site to fire, at most once per pool.
    pub(crate) fn on_job(&self, shard: usize) -> Option<ChaosSite> {
        if shard != self.shard {
            return None;
        }
        let n = self.popped.fetch_add(1, Ordering::Relaxed) + 1;
        if n == self.nth && !self.fired.swap(true, Ordering::Relaxed) {
            Some(self.site)
        } else {
            None
        }
    }
}

/// Installs (once per process) a panic-hook filter that keeps
/// [`ChaosKill`] unwinds — deliberate, drill-only control flow — off
/// stderr. Every other panic reaches the previously installed hook.
pub(crate) fn install_chaos_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ChaosKill>() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_sites() {
        assert!(matches!(
            Chaos::parse("kill:0:1"),
            Ok(Chaos {
                site: ChaosSite::Kill,
                shard: 0,
                nth: 1,
                ..
            })
        ));
        assert!(matches!(
            Chaos::parse("wedge:3:7"),
            Ok(Chaos {
                site: ChaosSite::Wedge,
                shard: 3,
                nth: 7,
                ..
            })
        ));
        assert!(matches!(
            Chaos::parse("delay:1:2"),
            Ok(Chaos {
                site: ChaosSite::Delay,
                ..
            })
        ));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Chaos::parse("boom:0:1").is_err());
        assert!(Chaos::parse("kill").is_err());
        assert!(Chaos::parse("kill:0").is_err());
        assert!(Chaos::parse("kill:0:0").is_err());
        assert!(Chaos::parse("kill:x:1").is_err());
        assert!(Chaos::parse("kill:0:1:panic").is_err());
    }

    #[test]
    fn fires_exactly_once_on_the_nth_pop_of_its_shard() {
        let c = Chaos::parse("kill:1:3").unwrap();
        assert_eq!(c.on_job(0), None); // wrong shard
        assert_eq!(c.on_job(1), None); // 1st
        assert_eq!(c.on_job(1), None); // 2nd
        assert_eq!(c.on_job(1), Some(ChaosSite::Kill)); // 3rd
        assert!(c.fired());
        assert_eq!(c.on_job(1), None); // never again
        assert_eq!(c.on_job(1), None);
    }
}
