//! The wire protocol: newline-delimited requests, one-line responses.
//!
//! # Request grammar (one request per line)
//!
//! ```text
//! request  := query | "ping" [SP id] | "stats" | "metrics" | "stats/v2"
//!           | "flightrec" | "shards" | "drain"
//! query    := "count" SP id option* SP body
//!           | "sum"   SP id option* SP poly SP body
//! option   := SP key "=" value          (keys below)
//! poly     := affine expression text    (e.g. "x + 2y")
//! body     := "{" vars ":" formula "}"
//! vars     := name ("," name)*
//! formula  := the `.pres` formula syntax of `presburger_omega::parse`
//! ```
//!
//! Blank lines and lines starting with `#` are ignored. Option keys:
//! `deadline_ms`, `max_splinters`, `max_dnf_clauses`, `max_depth`,
//! `max_pieces`, `max_coeff_bits`, `threads`, `prio` (a priority lane:
//! `interactive`, `batch` or `background` — see [`crate::admission`]),
//! and `client` (a quota identity, same charset as an id; defaults to
//! a connection-scoped identity when quotas are on).
//!
//! # Response grammar (exactly one line per request, in request order
//! per connection)
//!
//! ```text
//! response := "OK" SP id SP "exact" SP value
//!           | "OK" SP id SP "bounded" SP why SP value SP ";" SP value
//!           | "ERR" SP id SP kind SP detail
//!           | "SHED" SP id SP "retry_after_ms=" INT SP "reason=" reason
//!           | "PONG" [SP id] | "STATS" SP counters | "BYE"
//! reason   := cause (":" detail)*
//! cause    := "queue_full" | "draining" | "quota"
//! ```
//!
//! A `reason` is always a single space-free token. Its first
//! colon-separated segment is the shed *cause*; with
//! [`AdmissionConfig::detail`](crate::admission::AdmissionConfig) the
//! server appends the shedding lane and the computed wait
//! (`reason=quota:lane=batch:wait_ms=200`). Clients that only care
//! about the cause match the prefix up to the first `:`
//! ([`crate::retry::shed_cause`]).
//!
//! `why` on a bounded reply is the [`CountError::kind`] that degraded
//! the exact pass (`budget`, `deadline`, …), `breaker_open` when the
//! circuit breaker pre-degraded the request, or `cancelled` when a
//! drain deadline bounded in-flight work.
//!
//! Three verbs answer with a *multi-line* block instead of a single
//! line, each terminated by a `# EOF` line so a client knows where the
//! block ends: `metrics` (alias `stats/v2`) returns the request-scoped
//! telemetry registry in Prometheus text exposition format, `flightrec`
//! dumps the slow-request flight recorder as one JSON object per line
//! (see `server::telemetry` and DESIGN.md §12), and `shards` reports
//! per-shard supervision state (`SHARDS shards=N` followed by one
//! `shard=<i> …` row per shard; a standalone server reports itself as
//! its own single shard — see `server::shard` and DESIGN.md §14). The
//! legacy one-line `stats` remains unchanged.

use crate::admission::Lane;
use presburger_counting::Budgets;
use std::fmt;
use std::time::Duration;

/// Longest accepted request id.
pub const MAX_ID_LEN: usize = 64;

/// Longest accepted request line, a cheap guard against garbage floods.
pub const MAX_LINE_LEN: usize = 64 * 1024;

/// The query verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// Count solutions (`(Σ V : P : 1)`).
    Count,
    /// Sum a polynomial (`(Σ V : P : z)`).
    Sum,
}

/// Per-request governor overrides; `None` fields inherit the server
/// defaults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Overrides {
    /// Wall-clock deadline for this request, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Cap on §5.2 splinters per clause.
    pub max_splinters: Option<u64>,
    /// Cap on §2.5 DNF work clauses.
    pub max_dnf_clauses: Option<u64>,
    /// Cap on elimination recursion depth.
    pub max_depth: Option<u64>,
    /// Cap on guarded pieces.
    pub max_pieces: Option<u64>,
    /// Cap on coefficient bit-length.
    pub max_coeff_bits: Option<u64>,
    /// Clause-pipeline worker threads for this request.
    pub threads: Option<usize>,
    /// Priority lane (`prio=`); `None` rides the default `batch` lane.
    pub prio: Option<Lane>,
}

impl Overrides {
    /// Merges these overrides over `base` budgets (an override wins
    /// over the corresponding base field; the base deadline is used
    /// when no `deadline_ms` override is present).
    pub fn budgets(&self, base: &Budgets) -> Budgets {
        Budgets {
            deadline: self
                .deadline_ms
                .map(Duration::from_millis)
                .or(base.deadline),
            max_splinters: self.max_splinters.or(base.max_splinters),
            max_dnf_clauses: self.max_dnf_clauses.or(base.max_dnf_clauses),
            max_depth: self.max_depth.or(base.max_depth),
            max_pieces: self.max_pieces.or(base.max_pieces),
            max_coeff_bits: self.max_coeff_bits.or(base.max_coeff_bits),
        }
    }

    /// A canonical `key=value` rendering for the cache key (budget
    /// overrides change whether an answer is exact or bounded, so
    /// requests with different overrides must not share cache entries).
    /// `prio` and `client` are deliberately excluded: admission
    /// metadata never changes the answer, so all lanes and clients
    /// share one cache entry per canonical query.
    pub fn cache_key_part(&self) -> String {
        let mut out = String::new();
        let mut push = |k: &str, v: Option<u64>| {
            if let Some(v) = v {
                out.push_str(k);
                out.push('=');
                out.push_str(&v.to_string());
                out.push(' ');
            }
        };
        push("deadline_ms", self.deadline_ms);
        push("max_splinters", self.max_splinters);
        push("max_dnf_clauses", self.max_dnf_clauses);
        push("max_depth", self.max_depth);
        push("max_pieces", self.max_pieces);
        push("max_coeff_bits", self.max_coeff_bits);
        out
    }
}

/// One parsed query request (the textual parts are still unparsed —
/// formula/poly parsing happens on a worker, inside its panic
/// isolation boundary).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Request id, echoed on the response line.
    pub id: String,
    /// `count` or `sum`.
    pub verb: Verb,
    /// For `sum`: the affine polynomial text.
    pub poly_text: Option<String>,
    /// The counted variable names, in listed order.
    pub vars: Vec<String>,
    /// The formula text (everything after the first `:` in the body).
    pub formula_text: String,
    /// Per-request governor overrides.
    pub overrides: Overrides,
    /// Quota identity (`client=`). `None` until the connection driver
    /// injects its connection-scoped identity (only when quotas are
    /// on), so requests without an explicit client still meter fairly
    /// per connection. Never part of the cache or routing key.
    pub client: Option<String>,
}

impl Query {
    /// The lane this query rides ([`Lane::Batch`] without a `prio=`).
    pub fn lane(&self) -> Lane {
        self.overrides.prio.unwrap_or(Lane::Batch)
    }
}

/// One parsed request line. `Query` dominates the enum's size (the
/// admission options widened it), but a parsed request is moved into
/// the queue exactly once — boxing would add an allocation per request
/// to save stack bytes nothing holds onto.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Request {
    /// A count/sum query.
    Query(Query),
    /// Liveness probe.
    Ping(Option<String>),
    /// Current server statistics.
    Stats,
    /// Prometheus text exposition of the request-scoped telemetry
    /// registry (`metrics`, alias `stats/v2`). Multi-line, `# EOF`
    /// terminated.
    Metrics,
    /// Dump of the slow-request flight recorder, one JSON object per
    /// line. Multi-line, `# EOF` terminated.
    FlightRec,
    /// Per-shard supervision state (`shards`). Multi-line, `# EOF`
    /// terminated.
    Shards,
    /// Graceful drain: stop admitting, finish or bound in-flight work,
    /// emit a final stats line.
    Drain,
}

/// A malformed request line: the kind and detail of an `ERR` reply,
/// plus the request id when one could be recovered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// The id to echo, if the line got far enough to carry one.
    pub id: Option<String>,
    /// Stable error kind (`protocol`).
    pub kind: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for ProtocolError {}

/// Errors from running a server (`run_stdio` / `TcpServer`).
#[derive(Debug)]
pub enum ServeError {
    /// Socket/stdio failure.
    Io(std::io::Error),
    /// Invalid server configuration.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Config(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Config(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

fn err(id: Option<&str>, detail: impl Into<String>) -> ProtocolError {
    ProtocolError {
        id: id.map(str::to_string),
        kind: "protocol",
        detail: detail.into(),
    }
}

pub(crate) fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':'))
}

/// Parses one request line (the caller has already skipped blank and
/// `#`-comment lines and stripped the newline).
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let line = line.trim();
    if line.len() > MAX_LINE_LEN {
        return Err(err(None, format!("line exceeds {MAX_LINE_LEN} bytes")));
    }
    let mut head_tokens = line.splitn(2, char::is_whitespace);
    let verb_text = head_tokens.next().unwrap_or("");
    match verb_text {
        "ping" => {
            let id = head_tokens.next().map(str::trim).filter(|s| !s.is_empty());
            if let Some(id) = id {
                if !valid_id(id) {
                    return Err(err(None, "invalid ping id"));
                }
            }
            return Ok(Request::Ping(id.map(str::to_string)));
        }
        "stats" => return Ok(Request::Stats),
        "metrics" | "stats/v2" => return Ok(Request::Metrics),
        "flightrec" => return Ok(Request::FlightRec),
        "shards" => return Ok(Request::Shards),
        "drain" => return Ok(Request::Drain),
        "count" | "sum" => {}
        other => {
            return Err(err(
                None,
                format!(
                    "unknown verb {other:?} (expected count, sum, ping, stats, metrics, \
                     flightrec, shards or drain)"
                ),
            ))
        }
    }
    let verb = if verb_text == "count" {
        Verb::Count
    } else {
        Verb::Sum
    };

    // Split off the braced body.
    let brace = line
        .find('{')
        .ok_or_else(|| err(None, "missing '{vars : formula}' body"))?;
    let close = line
        .rfind('}')
        .filter(|&c| c > brace)
        .ok_or_else(|| err(None, "missing closing '}'"))?;
    if !line[close + 1..].trim().is_empty() {
        return Err(err(None, "trailing input after '}'"));
    }
    let head: Vec<&str> = line[..brace].split_whitespace().collect();
    let body = &line[brace + 1..close];

    // head[0] is the verb; head[1] must be the id.
    let id = *head.get(1).ok_or_else(|| err(None, "missing request id"))?;
    if !valid_id(id) {
        return Err(err(
            None,
            format!(
                "invalid request id {id:?} (ASCII [A-Za-z0-9_.:-], at most {MAX_ID_LEN} bytes)"
            ),
        ));
    }

    // Options, then (for sum) the polynomial text.
    let mut overrides = Overrides::default();
    let mut client: Option<String> = None;
    let mut poly_parts: Vec<&str> = Vec::new();
    for tok in &head[2..] {
        if let Some((key, value)) = tok.split_once('=') {
            if poly_parts.is_empty() {
                // String-valued admission options come first; the rest
                // are unsigned integers.
                match key {
                    "prio" => {
                        overrides.prio = Some(Lane::parse(value).ok_or_else(|| {
                            err(
                                Some(id),
                                format!(
                                    "unknown priority {value:?} (expected interactive, batch \
                                     or background)"
                                ),
                            )
                        })?);
                        continue;
                    }
                    "client" => {
                        if !valid_id(value) {
                            return Err(err(
                                Some(id),
                                format!(
                                    "invalid client {value:?} (ASCII [A-Za-z0-9_.:-], at most \
                                     {MAX_ID_LEN} bytes)"
                                ),
                            ));
                        }
                        client = Some(value.to_string());
                        continue;
                    }
                    _ => {}
                }
                let parsed: Result<u64, _> = value.parse();
                let slot = match key {
                    "deadline_ms" => Some(&mut overrides.deadline_ms),
                    "max_splinters" => Some(&mut overrides.max_splinters),
                    "max_dnf_clauses" => Some(&mut overrides.max_dnf_clauses),
                    "max_depth" => Some(&mut overrides.max_depth),
                    "max_pieces" => Some(&mut overrides.max_pieces),
                    "max_coeff_bits" => Some(&mut overrides.max_coeff_bits),
                    "threads" => None,
                    _ => return Err(err(Some(id), format!("unknown option {key:?}"))),
                };
                let value = parsed.map_err(|_| {
                    err(Some(id), format!("option {key} needs an unsigned integer"))
                })?;
                match slot {
                    Some(slot) => *slot = Some(value),
                    None => overrides.threads = Some((value as usize).min(16)),
                }
                continue;
            }
            return Err(err(Some(id), "options must precede the polynomial"));
        }
        poly_parts.push(tok);
    }
    let poly_text = match verb {
        Verb::Count => {
            if !poly_parts.is_empty() {
                return Err(err(
                    Some(id),
                    format!(
                        "unexpected token {:?} (count takes no polynomial)",
                        poly_parts[0]
                    ),
                ));
            }
            None
        }
        Verb::Sum => {
            if poly_parts.is_empty() {
                return Err(err(Some(id), "sum needs a polynomial before the body"));
            }
            Some(poly_parts.join(" "))
        }
    };

    // Body: vars : formula.
    let (vars_text, formula_text) = body
        .split_once(':')
        .ok_or_else(|| err(Some(id), "expected ':' between variables and formula"))?;
    let vars: Vec<String> = vars_text
        .split(',')
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect();
    if vars.is_empty() {
        return Err(err(Some(id), "at least one counted variable is required"));
    }
    if formula_text.trim().is_empty() {
        return Err(err(Some(id), "empty formula"));
    }
    Ok(Request::Query(Query {
        id: id.to_string(),
        verb,
        poly_text,
        vars,
        formula_text: formula_text.to_string(),
        overrides,
        client,
    }))
}

/// Replaces newlines/carriage returns so any interpolated text stays on
/// one response line.
pub fn sanitize(s: &str) -> String {
    if s.contains(['\n', '\r']) {
        s.replace(['\n', '\r'], " ")
    } else {
        s.to_string()
    }
}

/// Renders `OK <id> exact <value>`.
pub fn ok_exact(id: &str, value: &str) -> String {
    format!("OK {id} exact {}", sanitize(value))
}

/// Renders `OK <id> bounded <why> <lower> ; <upper>`.
pub fn ok_bounded(id: &str, why: &str, lower: &str, upper: &str) -> String {
    format!(
        "OK {id} bounded {why} {} ; {}",
        sanitize(lower),
        sanitize(upper)
    )
}

/// Renders `ERR <id> <kind> <detail>`.
pub fn err_line(id: &str, kind: &str, detail: &str) -> String {
    format!("ERR {id} {kind} {}", sanitize(detail))
}

/// Renders `SHED <id> retry_after_ms=<n> reason=<reason>`.
pub fn shed_line(id: &str, retry_after_ms: u64, reason: &str) -> String {
    format!("SHED {id} retry_after_ms={retry_after_ms} reason={reason}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(line: &str) -> Query {
        match parse_request(line).unwrap() {
            Request::Query(q) => q,
            other => panic!("expected a query, got {other:?}"),
        }
    }

    #[test]
    fn parses_count_with_options() {
        let q = query("count r1 deadline_ms=500 max_splinters=8 {i,j : 1 <= i <= j <= n}");
        assert_eq!(q.id, "r1");
        assert_eq!(q.verb, Verb::Count);
        assert_eq!(q.vars, vec!["i", "j"]);
        assert_eq!(q.overrides.deadline_ms, Some(500));
        assert_eq!(q.overrides.max_splinters, Some(8));
        assert_eq!(q.formula_text.trim(), "1 <= i <= j <= n");
        assert!(q.poly_text.is_none());
    }

    #[test]
    fn parses_prio_and_client_options() {
        let q = query("count r1 prio=interactive client=alice {x : 1 <= x <= 9}");
        assert_eq!(q.overrides.prio, Some(Lane::Interactive));
        assert_eq!(q.lane(), Lane::Interactive);
        assert_eq!(q.client.as_deref(), Some("alice"));
        let q = query("sum s1 prio=background x {x : 1 <= x <= 3}");
        assert_eq!(q.lane(), Lane::Background);
        assert!(q.client.is_none());
        // The default lane is batch, and admission metadata never
        // reaches the cache key.
        let q = query("count r2 {x : x = 1}");
        assert_eq!(q.lane(), Lane::Batch);
        let keyed = query("count r3 prio=interactive client=bob deadline_ms=7 {x : x = 1}");
        assert_eq!(keyed.overrides.cache_key_part(), "deadline_ms=7 ");
        // Bad values are protocol errors with the id recovered.
        for line in [
            "count r4 prio=urgent {x : x = 1}",
            "count r4 client=bad!id {x : x = 1}",
            "count r4 client= {x : x = 1}",
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.id.as_deref(), Some("r4"), "line {line:?}");
        }
    }

    #[test]
    fn parses_sum_with_poly() {
        let q = query("sum s7 x + 2y {x,y : 0 <= x <= 3 && 0 <= y <= x}");
        assert_eq!(q.verb, Verb::Sum);
        assert_eq!(q.poly_text.as_deref(), Some("x + 2y"));
        assert_eq!(q.vars, vec!["x", "y"]);
    }

    #[test]
    fn quantifier_colons_stay_in_the_formula() {
        let q = query("count q {x : exists j : 1 <= j <= 3 && x = 2j}");
        assert_eq!(q.vars, vec!["x"]);
        assert_eq!(q.formula_text.trim(), "exists j : 1 <= j <= 3 && x = 2j");
    }

    #[test]
    fn control_verbs() {
        assert!(matches!(parse_request("ping"), Ok(Request::Ping(None))));
        assert!(matches!(
            parse_request("ping p1"),
            Ok(Request::Ping(Some(id))) if id == "p1"
        ));
        assert!(matches!(parse_request("stats"), Ok(Request::Stats)));
        assert!(matches!(parse_request("metrics"), Ok(Request::Metrics)));
        assert!(matches!(parse_request("stats/v2"), Ok(Request::Metrics)));
        assert!(matches!(parse_request("flightrec"), Ok(Request::FlightRec)));
        assert!(matches!(parse_request("shards"), Ok(Request::Shards)));
        assert!(matches!(parse_request("drain"), Ok(Request::Drain)));
    }

    #[test]
    fn malformed_lines_error_without_panic() {
        for line in [
            "",
            "zap r1 {x : x = 1}",
            "count",
            "count {x : x = 1}",
            "count id!bad {x : x = 1}",
            "count r1 x = 1",
            "count r1 {x  x = 1}",
            "count r1 { : x = 1}",
            "count r1 {x : }",
            "count r1 bogus_opt=3 {x : x = 1}",
            "count r1 max_depth=zebra {x : x = 1}",
            "count r1 stray {x : x = 1}",
            "sum r1 {x : x = 1}",
            "count r1 {x : x = 1} trailing",
        ] {
            assert!(parse_request(line).is_err(), "line {line:?} should fail");
        }
    }

    #[test]
    fn error_recovers_id_when_present() {
        let e = parse_request("count r9 bogus_opt=3 {x : x = 1}").unwrap_err();
        assert_eq!(e.id.as_deref(), Some("r9"));
        assert_eq!(e.kind, "protocol");
    }

    #[test]
    fn overrides_merge_over_base() {
        let base = Budgets {
            deadline: Some(Duration::from_millis(1000)),
            max_splinters: Some(100),
            ..Budgets::unlimited()
        };
        let o = Overrides {
            max_splinters: Some(5),
            ..Overrides::default()
        };
        let merged = o.budgets(&base);
        assert_eq!(merged.deadline, Some(Duration::from_millis(1000)));
        assert_eq!(merged.max_splinters, Some(5));
        assert!(merged.max_depth.is_none());
    }

    #[test]
    fn rendering_is_single_line() {
        assert_eq!(ok_exact("a", "1 +\n2"), "OK a exact 1 + 2");
        assert_eq!(
            shed_line("b", 50, "queue_full"),
            "SHED b retry_after_ms=50 reason=queue_full"
        );
        assert_eq!(
            err_line("c", "parse", "bad\nthing"),
            "ERR c parse bad thing"
        );
    }
}
