//! Client-side retry with deterministic jittered backoff.
//!
//! A `SHED` reply is an invitation to come back, not a refusal — but a
//! thundering herd that comes back in lockstep re-sheds itself forever.
//! [`submit_with_retry`] sleeps `max(server hint, base·2^attempt)`
//! scaled by a jitter fraction in `[0.5, 1.0)` that is a *pure function
//! of the request id and the attempt number* — so stress harnesses and
//! drills replay the exact same schedule, while distinct requests still
//! de-correlate.

use crate::shard::{fnv1a, splitmix64};
use std::thread;
use std::time::Duration;

/// Retry schedule for [`submit_with_retry`]. `Default`: up to 4
/// attempts, 10 ms base doubling to a 500 ms cap.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (including the first); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_delay_ms: u64,
    /// Backoff cap.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 500,
        }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt + 1` (0-based `attempt` just
    /// failed) for request `id`, honoring the server's
    /// `retry_after_ms` hint as a floor. Deterministic: jitter comes
    /// from `(id, attempt)`, never a clock or RNG.
    pub fn backoff(&self, id: &str, attempt: u32, hint_ms: Option<u64>) -> Duration {
        let exp = attempt.min(16);
        let base = self
            .base_delay_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_ms);
        let floor = base.max(hint_ms.unwrap_or(0));
        // Jitter fraction in [0.5, 1.0): collapse the herd without ever
        // retrying *before* half the nominal backoff.
        let r = splitmix64(fnv1a(id.as_bytes()) ^ u64::from(attempt));
        let frac = 0.5 + (r >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        Duration::from_micros((floor as f64 * 1000.0 * frac) as u64)
    }
}

/// The `retry_after_ms=` hint on a `SHED` line, if any.
pub fn shed_hint_ms(line: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry_after_ms="))
        .and_then(|v| v.parse().ok())
}

/// Sends a request via `send` until the reply is not a `SHED`, or the
/// policy's attempts are exhausted (the last `SHED` line is then
/// returned — the caller still gets exactly one reply line either way).
/// Sleeps [`RetryPolicy::backoff`] between attempts.
pub fn submit_with_retry(
    policy: &RetryPolicy,
    id: &str,
    mut send: impl FnMut() -> String,
) -> String {
    let attempts = policy.max_attempts.max(1);
    let mut line = send();
    let mut attempt = 0;
    while line.starts_with("SHED") && attempt + 1 < attempts {
        thread::sleep(policy.backoff(id, attempt, shed_hint_ms(&line)));
        line = send();
        attempt += 1;
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_is_parsed_from_shed_lines() {
        assert_eq!(
            shed_hint_ms("SHED q1 retry_after_ms=50 queue_full"),
            Some(50)
        );
        assert_eq!(shed_hint_ms("OK q1 exact 9"), None);
        assert_eq!(shed_hint_ms("SHED q1 retry_after_ms=zap draining"), None);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let b0 = p.backoff("req-7", 0, Some(20));
        assert_eq!(b0, p.backoff("req-7", 0, Some(20)));
        // Floor is max(hint, base): attempt 0 with a 20 ms hint jitters
        // within [10, 20) ms.
        assert!(b0 >= Duration::from_millis(10) && b0 < Duration::from_millis(20));
        // Distinct ids de-correlate (overwhelmingly likely).
        assert_ne!(p.backoff("req-7", 0, None), p.backoff("req-8", 0, None));
        // The cap holds at large attempt counts.
        assert!(p.backoff("req-7", 30, None) < Duration::from_millis(500));
    }

    #[test]
    fn retries_until_not_shed() {
        let mut replies = vec!["OK q1 exact 3", "SHED q1 retry_after_ms=1 queue_full"];
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 2,
        };
        let line = submit_with_retry(&p, "q1", || replies.pop().expect("enough replies").into());
        assert_eq!(line, "OK q1 exact 3");
        assert!(replies.is_empty());
    }

    #[test]
    fn gives_up_after_max_attempts_with_the_last_shed() {
        let p = RetryPolicy {
            max_attempts: 2,
            base_delay_ms: 1,
            max_delay_ms: 1,
        };
        let mut calls = 0;
        let line = submit_with_retry(&p, "q1", || {
            calls += 1;
            "SHED q1 retry_after_ms=1 queue_full".to_string()
        });
        assert_eq!(calls, 2);
        assert!(line.starts_with("SHED"));
    }
}
