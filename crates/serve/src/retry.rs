//! Client-side retry with deterministic jittered backoff.
//!
//! A `SHED` reply is an invitation to come back, not a refusal — but a
//! thundering herd that comes back in lockstep re-sheds itself forever.
//! [`submit_with_retry`] sleeps `max(server hint, base·2^attempt)`
//! scaled by a jitter fraction in `[0.5, 1.0)` that is a *pure function
//! of the request id and the attempt number* — so stress harnesses and
//! drills replay the exact same schedule, while distinct requests still
//! de-correlate.
//!
//! Quota sheds are the exception ([`shed_cause`] == `"quota"`,
//! DESIGN.md §16): the server's `retry_after_ms` is not an estimate but
//! the *computed* refill time of a deterministic token bucket, so the
//! helpers sleep exactly the hint — jitter would only delay past the
//! refill, and retrying hot before it is guaranteed to shed again.

use crate::shard::{fnv1a, splitmix64};
use std::thread;
use std::time::Duration;

/// Retry schedule for [`submit_with_retry`]. `Default`: up to 4
/// attempts, 10 ms base doubling to a 500 ms cap.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (including the first); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_delay_ms: u64,
    /// Backoff cap.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 500,
        }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt + 1` (0-based `attempt` just
    /// failed) for request `id`, honoring the server's
    /// `retry_after_ms` hint as a floor. Deterministic: jitter comes
    /// from `(id, attempt)`, never a clock or RNG.
    pub fn backoff(&self, id: &str, attempt: u32, hint_ms: Option<u64>) -> Duration {
        let exp = attempt.min(16);
        let base = self
            .base_delay_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_ms);
        let floor = base.max(hint_ms.unwrap_or(0));
        // Jitter fraction in [0.5, 1.0): collapse the herd without ever
        // retrying *before* half the nominal backoff.
        let r = splitmix64(fnv1a(id.as_bytes()) ^ u64::from(attempt));
        let frac = 0.5 + (r >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        Duration::from_micros((floor as f64 * 1000.0 * frac) as u64)
    }
}

/// The `retry_after_ms=` hint on a `SHED` line, if any.
pub fn shed_hint_ms(line: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry_after_ms="))
        .and_then(|v| v.parse().ok())
}

/// The root cause of a `SHED` line: the `reason=` token's first
/// `:`-separated segment (`"quota"` out of
/// `reason=quota:lane=batch:wait_ms=200`), ignoring any detail
/// segments the server appended (see [`crate::protocol`]'s response
/// grammar). `None` for non-shed lines and sheds without a `reason=`.
pub fn shed_cause(line: &str) -> Option<&str> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("reason="))
        .and_then(|r| r.split(':').next())
}

/// The sleep before retrying a shed request: quota sheds sleep exactly
/// the server's computed refill hint (deterministic, so jitter only
/// hurts); everything else gets the jittered exponential
/// [`RetryPolicy::backoff`].
fn shed_delay(policy: &RetryPolicy, id: &str, attempt: u32, line: &str) -> Duration {
    let hint = shed_hint_ms(line);
    if shed_cause(line) == Some("quota") {
        return Duration::from_millis(hint.unwrap_or(policy.base_delay_ms));
    }
    policy.backoff(id, attempt, hint)
}

/// Sends a request via `send` until the reply is not a `SHED`, or the
/// policy's attempts are exhausted (the last `SHED` line is then
/// returned — the caller still gets exactly one reply line either way).
/// Sleeps [`RetryPolicy::backoff`] between attempts.
pub fn submit_with_retry(
    policy: &RetryPolicy,
    id: &str,
    mut send: impl FnMut() -> String,
) -> String {
    let attempts = policy.max_attempts.max(1);
    let mut line = send();
    let mut attempt = 0;
    while line.starts_with("SHED") && attempt + 1 < attempts {
        thread::sleep(shed_delay(policy, id, attempt, &line));
        line = send();
        attempt += 1;
    }
    line
}

/// Batch-aware retry: resends only the *inner* requests whose replies
/// were `SHED`, preserving the no-lost-response invariant per inner
/// request rather than per frame. `send` receives the indices (into
/// `ids`) still needing answers and must return exactly one reply line
/// per requested index, in that order — a batched client answers them
/// from one re-batched frame. Between rounds the helper sleeps the
/// *maximum* of the per-id deterministic backoffs (the whole batch
/// travels in one frame, so it waits for its slowest member). Returns
/// one final reply line per id; ids whose retries are exhausted keep
/// their last `SHED` line.
pub fn submit_batch_with_retry(
    policy: &RetryPolicy,
    ids: &[String],
    mut send: impl FnMut(&[usize]) -> Vec<String>,
) -> Vec<String> {
    let attempts = policy.max_attempts.max(1);
    let all: Vec<usize> = (0..ids.len()).collect();
    let mut replies = send(&all);
    assert_eq!(
        replies.len(),
        ids.len(),
        "send must answer every requested index"
    );
    let mut attempt = 0;
    loop {
        let pending: Vec<usize> = (0..ids.len())
            .filter(|&i| replies[i].starts_with("SHED"))
            .collect();
        if pending.is_empty() || attempt + 1 >= attempts {
            return replies;
        }
        let delay = pending
            .iter()
            .map(|&i| shed_delay(policy, &ids[i], attempt, &replies[i]))
            .max()
            .unwrap_or_default();
        thread::sleep(delay);
        let fresh = send(&pending);
        assert_eq!(
            fresh.len(),
            pending.len(),
            "send must answer every requested index"
        );
        for (line, &i) in fresh.into_iter().zip(&pending) {
            replies[i] = line;
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_is_parsed_from_shed_lines() {
        assert_eq!(
            shed_hint_ms("SHED q1 retry_after_ms=50 queue_full"),
            Some(50)
        );
        assert_eq!(shed_hint_ms("OK q1 exact 9"), None);
        assert_eq!(shed_hint_ms("SHED q1 retry_after_ms=zap draining"), None);
    }

    #[test]
    fn shed_cause_extracts_the_first_reason_segment() {
        assert_eq!(
            shed_cause("SHED q1 retry_after_ms=200 reason=quota"),
            Some("quota")
        );
        assert_eq!(
            shed_cause("SHED q1 retry_after_ms=200 reason=quota:lane=batch:wait_ms=200"),
            Some("quota")
        );
        assert_eq!(
            shed_cause("SHED q1 retry_after_ms=50 reason=queue_full:lane=interactive"),
            Some("queue_full")
        );
        assert_eq!(shed_cause("SHED q1 retry_after_ms=50 queue_full"), None);
        assert_eq!(shed_cause("OK q1 exact 9"), None);
    }

    #[test]
    fn quota_sheds_sleep_exactly_the_hint() {
        let p = RetryPolicy::default();
        // A quota shed's delay is the hint verbatim — no jitter, no
        // exponential floor — because the hint is the bucket's computed
        // refill time.
        assert_eq!(
            shed_delay(
                &p,
                "q1",
                0,
                "SHED q1 retry_after_ms=237 reason=quota:lane=batch"
            ),
            Duration::from_millis(237)
        );
        assert_eq!(
            shed_delay(&p, "q1", 3, "SHED q1 retry_after_ms=237 reason=quota"),
            Duration::from_millis(237)
        );
        // Queue-full sheds keep the jittered backoff (attempt 0, hint
        // 237 ⇒ within [118.5, 237) ms).
        let d = shed_delay(&p, "q1", 0, "SHED q1 retry_after_ms=237 reason=queue_full");
        assert!(d >= Duration::from_micros(118_500) && d < Duration::from_millis(237));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let b0 = p.backoff("req-7", 0, Some(20));
        assert_eq!(b0, p.backoff("req-7", 0, Some(20)));
        // Floor is max(hint, base): attempt 0 with a 20 ms hint jitters
        // within [10, 20) ms.
        assert!(b0 >= Duration::from_millis(10) && b0 < Duration::from_millis(20));
        // Distinct ids de-correlate (overwhelmingly likely).
        assert_ne!(p.backoff("req-7", 0, None), p.backoff("req-8", 0, None));
        // The cap holds at large attempt counts.
        assert!(p.backoff("req-7", 30, None) < Duration::from_millis(500));
    }

    #[test]
    fn retries_until_not_shed() {
        let mut replies = vec!["OK q1 exact 3", "SHED q1 retry_after_ms=1 queue_full"];
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 2,
        };
        let line = submit_with_retry(&p, "q1", || replies.pop().expect("enough replies").into());
        assert_eq!(line, "OK q1 exact 3");
        assert!(replies.is_empty());
    }

    #[test]
    fn batch_retry_resends_only_shed_indices() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 2,
        };
        let ids: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let mut calls: Vec<Vec<usize>> = Vec::new();
        let replies = submit_batch_with_retry(&p, &ids, |want| {
            calls.push(want.to_vec());
            match calls.len() {
                // First round: only b sheds.
                1 => vec![
                    "OK a exact 1".into(),
                    "SHED b retry_after_ms=1 reason=queue_full".into(),
                    "OK c exact 3".into(),
                ],
                // Retry round is asked for exactly the shed index.
                _ => {
                    assert_eq!(want, [1]);
                    vec!["OK b exact 2".into()]
                }
            }
        });
        assert_eq!(calls, vec![vec![0, 1, 2], vec![1]]);
        assert_eq!(
            replies,
            vec!["OK a exact 1", "OK b exact 2", "OK c exact 3"]
        );
    }

    #[test]
    fn batch_retry_keeps_the_last_shed_when_exhausted() {
        let p = RetryPolicy {
            max_attempts: 2,
            base_delay_ms: 1,
            max_delay_ms: 1,
        };
        let ids: Vec<String> = vec!["q1".into()];
        let mut calls = 0;
        let replies = submit_batch_with_retry(&p, &ids, |want| {
            calls += 1;
            want.iter()
                .map(|_| "SHED q1 retry_after_ms=1 reason=queue_full".to_string())
                .collect()
        });
        assert_eq!(calls, 2);
        assert!(replies[0].starts_with("SHED"));
    }

    #[test]
    fn gives_up_after_max_attempts_with_the_last_shed() {
        let p = RetryPolicy {
            max_attempts: 2,
            base_delay_ms: 1,
            max_delay_ms: 1,
        };
        let mut calls = 0;
        let line = submit_with_retry(&p, "q1", || {
            calls += 1;
            "SHED q1 retry_after_ms=1 queue_full".to_string()
        });
        assert_eq!(calls, 2);
        assert!(line.starts_with("SHED"));
    }
}
