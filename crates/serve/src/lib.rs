//! presburger-serve: a hardened request-serving layer for the counting
//! engine.
//!
//! Long-running services that answer counting queries need more than a
//! correct engine — they need *overload behavior*: what happens when
//! requests arrive faster than they can be answered, when one request
//! panics a worker, when a stream of adversarial formulas would burn a
//! full deadline each, and when the process has to go away without
//! dropping in-flight work. This crate packages those behaviors around
//! the governed counting pipeline ([`presburger_counting::Governor`]):
//!
//! * **Admission control** — a bounded queue; a full queue (or a
//!   draining server) answers `SHED retry_after_ms=…` instead of
//!   queueing unboundedly ([`server::Server`]). In front of it sits a
//!   deadline-aware admission layer ([`admission`], DESIGN.md §16):
//!   strict-priority lanes (`prio=interactive|batch|background`) with
//!   a background anti-starvation credit, per-client token-bucket
//!   quotas (`client=…`, refilled by a deterministic logical clock so
//!   transcripts stay byte-identical), eviction of requests whose
//!   deadline expired while queued (answered with §4.6 bounds instead
//!   of burning a worker), and load-derived `retry_after_ms` hints.
//! * **Panic isolation** — every request runs under `catch_unwind`; a
//!   poisoned request answers `ERR … internal` and the worker lives.
//! * **Circuit breaking** — after K consecutive internal/deadline
//!   failures, new requests degrade-first to §4.6 bounds until a
//!   half-open probe proves the exact path healthy again
//!   ([`breaker::Breaker`]).
//! * **Result caching** — a bounded LRU keyed by the *canonical*
//!   (re-rendered) query, with an opt-in verify mode that recomputes a
//!   sample of hits and alarms on mismatch ([`cache::ResultCache`]).
//! * **Graceful drain** — stop admitting, finish or cancel-and-bound
//!   in-flight work within a drain deadline, emit a final stats line.
//! * **Request-scoped telemetry** — per-request latency / queue-wait /
//!   overhead / splinter histograms with Prometheus exposition (the
//!   `metrics` verb), a slow-request flight recorder (`flightrec`),
//!   and an opt-in JSONL event log ([`telemetry`], DESIGN.md §12).
//!   Telemetry is observational only: responses and replay transcripts
//!   are byte-identical with it on or off.
//! * **Supervised sharding** — a [`shard::ShardPool`] runs N bulkhead-
//!   isolated servers behind a consistent-hash router and a supervisor
//!   that detects crashed/wedged shards, restarts them with capped
//!   backoff, and re-dispatches orphaned requests to siblings (falling
//!   back to §4.6 bounds) so an admitted request never loses its
//!   response — even with `PRESBURGER_CHAOS` ([`chaos`]) killing a
//!   shard mid-run. Clients pair it with [`retry`]'s deterministic
//!   jittered backoff on `SHED`. (DESIGN.md §14.)
//!
//! The wire protocol is newline-delimited text over stdin/stdout
//! ([`server::run_stdio`]) or TCP ([`server::TcpServer`]); see
//! [`protocol`] for the grammar and DESIGN.md §11 for the design
//! rationale. The `serve_stress` binary floods a server with generated
//! request streams and asserts zero lost/duplicated/misordered
//! responses and byte-identical replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod shard;
mod sync;
pub mod telemetry;
pub mod wire;

pub use admission::{AdmissionConfig, Lane, QuotaConfig, QuotaDecision, QuotaLedger};
pub use breaker::{Breaker, Plan};
pub use cache::ResultCache;
pub use chaos::{Chaos, ChaosSite};
pub use protocol::{parse_request, Overrides, ProtocolError, Query, Request, ServeError, Verb};
pub use retry::{submit_batch_with_retry, submit_with_retry, RetryPolicy};
pub use server::{run_stdio, Gate, Handle, ServeConfig, Server, Service, Slot, TcpServer};
pub use shard::{routing_hash, PoolHandle, PoolTcpServer, Ring, ShardPool, ShardPoolConfig};
pub use telemetry::{FlightRecord, RequestTelemetry, Telemetry, TelemetrySettings};
pub use wire::{serve_binary_connection, BinClient, Reply, WireRequest};
