//! The binary wire protocol: length-prefixed, canonically-encoded
//! frames with batching and pipelining, auto-detected per connection.
//!
//! # Why a second codec
//!
//! The text protocol ([`crate::protocol`]) is one request per line, one
//! reply per line — easy to debug, but every request pays a full text
//! parse and every reply a full text render plus one write syscall.
//! This module adds a compact binary encoding of the *same* requests
//! and replies, plus a batch frame that admits up to
//! [`MAX_BATCH`] requests atomically and answers them with one
//! gathered reply frame. The hard invariant, enforced by the
//! differential tests: **for any request, the binary reply decodes to
//! the byte-identical text reply** ([`Reply::to_text`] of the decoded
//! frame equals the text-path line).
//!
//! # Framing
//!
//! A binary connection opens with a 3-byte client preamble —
//! [`MAGIC`] (2 bytes, first byte `0xB7`, outside ASCII so a text
//! connection can never start with it) followed by a protocol
//! [`VERSION`] byte — which the server echoes back as its accept
//! handshake. An unsupported version is answered with an `ERR` reply
//! frame and the connection closes (version negotiation is
//! fail-fast-and-explicit, not silent downgrade).
//!
//! After the preamble, the stream is a sequence of frames:
//!
//! ```text
//! frame   := tag:u8 len:varint payload[len]
//! varint  := canonical (minimal-length) LEB128, at most MAX_FRAME_LEN
//! ```
//!
//! Request tags occupy `0x01..=0x09`, reply tags `0x81..=0x89` (high
//! bit set). Strings are `varint length + UTF-8 bytes`. The encoding is
//! *canonical*: minimal varints, exact payload consumption (trailing
//! bytes are an error), fixed field order, and a fixed presence-bitmask
//! order for query overrides — so `encode(decode(bytes)) == bytes` for
//! every valid frame, which lets caches and routers key on encoded
//! frames directly.
//!
//! # Batching
//!
//! A batch frame carries `1..=MAX_BATCH` inner request frames (nested
//! batches and `drain` are rejected). Queries in a batch are admitted
//! **atomically** — one queue-lock reservation via
//! [`crate::server::Service::submit_batch`] — with partial-shed
//! semantics: when capacity runs out mid-batch the remaining queries
//! get `SHED` replies *in position*, and every inner request still gets
//! exactly one inner reply, in request order, inside one gathered
//! [`Reply::Batch`] frame (a single `write_all`, writev-style). On a
//! shard pool, batched queries scatter across the ring exactly like
//! single submits and gather back in order.
//!
//! See DESIGN.md §15 for the full byte layout and rationale.

use crate::admission::Lane;
use crate::protocol::{
    self, err_line, ProtocolError, Query, Request, ServeError, Verb, MAX_LINE_LEN,
};
use crate::server::{Service, Slot};
use presburger_trace::metrics::ReqCodec;
use std::io::{Read, Write};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// The two-byte magic prefix of a binary connection. The first byte is
/// outside ASCII, so the text path can never be mistaken for it.
pub const MAGIC: [u8; 2] = [0xB7, 0x50];

/// Current protocol version, carried in the connection preamble.
pub const VERSION: u8 = 1;

/// Hard cap on any varint length field (frame payloads, strings,
/// counts). A length prefix above this is rejected *before* any
/// allocation, so a hostile 8-byte length cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Most inner requests allowed in one batch frame.
pub const MAX_BATCH: usize = 64;

/// The 3-byte connection preamble (client hello and server accept are
/// identical): magic then version.
pub const fn preamble() -> [u8; 3] {
    [MAGIC[0], MAGIC[1], VERSION]
}

// Request frame tags.
const TAG_COUNT: u8 = 0x01;
const TAG_SUM: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_STATS: u8 = 0x04;
const TAG_METRICS: u8 = 0x05;
const TAG_FLIGHTREC: u8 = 0x06;
const TAG_SHARDS: u8 = 0x07;
const TAG_DRAIN: u8 = 0x08;
const TAG_BATCH: u8 = 0x09;

// Reply frame tags (high bit set).
const TAG_OK_EXACT: u8 = 0x81;
const TAG_OK_BOUNDED: u8 = 0x82;
const TAG_ERR: u8 = 0x83;
const TAG_SHED: u8 = 0x84;
const TAG_PONG: u8 = 0x85;
const TAG_STATS_REPLY: u8 = 0x86;
const TAG_BLOCK: u8 = 0x87;
const TAG_BYE: u8 = 0x88;
const TAG_BATCH_REPLY: u8 = 0x89;

/// A malformed-frame error (kind `wire`), distinct from the text
/// protocol's `protocol` kind so clients can tell which codec failed.
fn werr(detail: impl Into<String>) -> ProtocolError {
    ProtocolError {
        id: None,
        kind: "wire",
        detail: detail.into(),
    }
}

/// Appends a canonical LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a length-prefixed UTF-8 string.
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over one frame payload. Every read is
/// checked against the slice length, so the decoder can never over-read
/// — malformed input yields a typed [`ProtocolError`], never a panic.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| werr("truncated frame: expected a byte"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a canonical LEB128 varint: at most 10 bytes, no overflow,
    /// and minimal length (a multi-byte encoding whose final group is
    /// zero could drop that byte, so it is rejected).
    fn varint(&mut self) -> Result<u64, ProtocolError> {
        let mut v: u64 = 0;
        for i in 0..10 {
            let b = self.u8()?;
            let group = u64::from(b & 0x7f);
            if i == 9 && group > 1 {
                return Err(werr("varint overflows u64"));
            }
            v |= group << (7 * i);
            if b & 0x80 == 0 {
                if i > 0 && group == 0 {
                    return Err(werr("non-canonical varint (padded length)"));
                }
                return Ok(v);
            }
        }
        Err(werr("varint longer than 10 bytes"))
    }

    /// Reads a varint that must fit `MAX_FRAME_LEN` (length prefixes,
    /// element counts) — checked *before* any allocation.
    fn len(&mut self) -> Result<usize, ProtocolError> {
        let v = self.varint()?;
        if v > MAX_FRAME_LEN as u64 {
            return Err(werr(format!(
                "length {v} exceeds the {MAX_FRAME_LEN}-byte frame cap"
            )));
        }
        Ok(v as usize)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| werr("truncated frame: string runs past the payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn str_(&mut self) -> Result<String, ProtocolError> {
        let n = self.len()?;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| werr("string is not valid UTF-8"))
    }

    /// Canonicality: a decoded payload must be consumed exactly.
    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(werr(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Appends one `tag + len + payload` frame.
fn put_frame(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// One decoded frame on the request side of a connection: a single
/// request, or a batch of them.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)] // transient, like `Request` itself
pub enum WireRequest {
    /// A single request (same set as the text protocol).
    One(Request),
    /// A batch of `1..=MAX_BATCH` requests, admitted atomically and
    /// answered with one [`Reply::Batch`] frame.
    Batch(Vec<Request>),
}

/// The override presence bitmask, in fixed field order (bit 0 first).
/// Bit 7 is the priority lane (`prio=`), encoded as [`Lane::wire`].
const OVERRIDE_BITS: usize = 8;

fn override_values(q: &Query) -> [Option<u64>; OVERRIDE_BITS] {
    let o = &q.overrides;
    [
        o.deadline_ms,
        o.max_splinters,
        o.max_dnf_clauses,
        o.max_depth,
        o.max_pieces,
        o.max_coeff_bits,
        o.threads.map(|t| t as u64),
        o.prio.map(Lane::wire),
    ]
}

/// Encodes one request as a single frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    let tag = match req {
        Request::Query(q) => {
            put_str(&mut payload, &q.id);
            if q.verb == Verb::Sum {
                put_str(&mut payload, q.poly_text.as_deref().unwrap_or_default());
            }
            put_varint(&mut payload, q.vars.len() as u64);
            for v in &q.vars {
                put_str(&mut payload, v);
            }
            put_str(&mut payload, &q.formula_text);
            let values = override_values(q);
            let mut mask = 0u8;
            for (bit, v) in values.iter().enumerate() {
                if v.is_some() {
                    mask |= 1 << bit;
                }
            }
            payload.push(mask);
            for v in values.iter().flatten() {
                put_varint(&mut payload, *v);
            }
            // Optional trailing client section: emitted only when a
            // quota identity is present (presence byte 1 + string), so
            // every pre-admission encoding stays byte-identical.
            if let Some(client) = &q.client {
                payload.push(1);
                put_str(&mut payload, client);
            }
            match q.verb {
                Verb::Count => TAG_COUNT,
                Verb::Sum => TAG_SUM,
            }
        }
        Request::Ping(id) => {
            match id {
                Some(id) => {
                    payload.push(1);
                    put_str(&mut payload, id);
                }
                None => payload.push(0),
            }
            TAG_PING
        }
        Request::Stats => TAG_STATS,
        Request::Metrics => TAG_METRICS,
        Request::FlightRec => TAG_FLIGHTREC,
        Request::Shards => TAG_SHARDS,
        Request::Drain => TAG_DRAIN,
    };
    let mut out = Vec::with_capacity(payload.len() + 6);
    put_frame(&mut out, tag, &payload);
    out
}

/// Encodes a batch frame of `1..=MAX_BATCH` requests. `drain` cannot
/// ride in a batch (its reply closes the connection mid-frame), and
/// batches cannot nest — both are encoding-time errors here and
/// decoding-time errors on the wire.
pub fn encode_batch(reqs: &[Request]) -> Result<Vec<u8>, ProtocolError> {
    if reqs.is_empty() {
        return Err(werr("empty batch"));
    }
    if reqs.len() > MAX_BATCH {
        return Err(werr(format!(
            "batch of {} exceeds the {MAX_BATCH}-request cap",
            reqs.len()
        )));
    }
    let mut payload = Vec::new();
    put_varint(&mut payload, reqs.len() as u64);
    for req in reqs {
        if matches!(req, Request::Drain) {
            return Err(werr("drain cannot ride in a batch"));
        }
        payload.extend_from_slice(&encode_request(req));
    }
    let mut out = Vec::with_capacity(payload.len() + 6);
    put_frame(&mut out, TAG_BATCH, &payload);
    Ok(out)
}

/// Encodes a [`WireRequest`] (single frame or batch frame).
pub fn encode_wire_request(req: &WireRequest) -> Result<Vec<u8>, ProtocolError> {
    match req {
        WireRequest::One(r) => Ok(encode_request(r)),
        WireRequest::Batch(rs) => encode_batch(rs),
    }
}

fn decode_query(tag: u8, payload: &[u8]) -> Result<Query, ProtocolError> {
    let verb = if tag == TAG_COUNT {
        Verb::Count
    } else {
        Verb::Sum
    };
    let mut cur = Cur::new(payload);
    let id = cur.str_()?;
    if !protocol::valid_id(&id) {
        return Err(werr(format!("invalid request id {id:?}")));
    }
    let poly_text = if verb == Verb::Sum {
        let p = cur.str_()?;
        if p.trim().is_empty() {
            return Err(werr("sum needs a non-empty polynomial"));
        }
        Some(p)
    } else {
        None
    };
    let nvars = cur.len()?;
    if nvars == 0 {
        return Err(werr("at least one counted variable is required"));
    }
    let mut vars = Vec::with_capacity(nvars.min(1024));
    for _ in 0..nvars {
        let v = cur.str_()?;
        if v.trim().is_empty() {
            return Err(werr("empty variable name"));
        }
        vars.push(v);
    }
    let formula_text = cur.str_()?;
    if formula_text.trim().is_empty() {
        return Err(werr("empty formula"));
    }
    if formula_text.len() > MAX_LINE_LEN {
        return Err(werr(format!("formula exceeds {MAX_LINE_LEN} bytes")));
    }
    let mask = cur.u8()?;
    let mut values = [None; OVERRIDE_BITS];
    for (bit, slot) in values.iter_mut().enumerate() {
        if mask & (1 << bit) != 0 {
            *slot = Some(cur.varint()?);
        }
    }
    // Optional trailing client section: present exactly when bytes
    // remain (presence byte must be 1 — a 0 would be a non-canonical
    // way to spell "no client", so it is rejected).
    let client = if cur.pos < cur.buf.len() {
        let presence = cur.u8()?;
        if presence != 1 {
            return Err(werr(format!(
                "client presence byte must be 1, got {presence}"
            )));
        }
        let c = cur.str_()?;
        if !protocol::valid_id(&c) {
            return Err(werr(format!("invalid client {c:?}")));
        }
        Some(c)
    } else {
        None
    };
    cur.finish()?;
    let mut overrides = crate::protocol::Overrides {
        deadline_ms: values[0],
        max_splinters: values[1],
        max_dnf_clauses: values[2],
        max_depth: values[3],
        max_pieces: values[4],
        max_coeff_bits: values[5],
        threads: None,
        prio: None,
    };
    if let Some(t) = values[6] {
        // Canonical: the text path clamps threads to 16; the binary
        // path rejects instead, so decode∘encode is the identity.
        if t > 16 {
            return Err(werr(format!("threads={t} exceeds the cap of 16")));
        }
        overrides.threads = Some(t as usize);
    }
    if let Some(p) = values[7] {
        overrides.prio =
            Some(Lane::from_wire(p).ok_or_else(|| werr(format!("unknown priority lane {p}")))?);
    }
    Ok(Query {
        id,
        verb,
        poly_text,
        vars,
        formula_text,
        overrides,
        client,
    })
}

fn decode_request_payload(tag: u8, payload: &[u8]) -> Result<Request, ProtocolError> {
    match tag {
        TAG_COUNT | TAG_SUM => decode_query(tag, payload).map(Request::Query),
        TAG_PING => {
            let mut cur = Cur::new(payload);
            let has_id = cur.u8()?;
            let req = match has_id {
                0 => Request::Ping(None),
                1 => {
                    let id = cur.str_()?;
                    if !protocol::valid_id(&id) {
                        return Err(werr(format!("invalid ping id {id:?}")));
                    }
                    Request::Ping(Some(id))
                }
                other => {
                    return Err(werr(format!(
                        "ping id-presence byte must be 0/1, got {other}"
                    )))
                }
            };
            cur.finish()?;
            Ok(req)
        }
        TAG_STATS | TAG_METRICS | TAG_FLIGHTREC | TAG_SHARDS | TAG_DRAIN => {
            Cur::new(payload).finish()?;
            Ok(match tag {
                TAG_STATS => Request::Stats,
                TAG_METRICS => Request::Metrics,
                TAG_FLIGHTREC => Request::FlightRec,
                TAG_SHARDS => Request::Shards,
                _ => Request::Drain,
            })
        }
        other => Err(werr(format!("unknown request tag 0x{other:02x}"))),
    }
}

/// Decodes one request-side frame from the front of `buf`. Returns the
/// decoded request and the number of bytes consumed. All malformed
/// input — truncation, oversized lengths, padded varints, unknown tags,
/// trailing bytes — yields a typed [`ProtocolError`]; the decoder never
/// panics and never reads past the declared lengths.
pub fn decode_wire_request(buf: &[u8]) -> Result<(WireRequest, usize), ProtocolError> {
    let mut cur = Cur::new(buf);
    let tag = cur.u8()?;
    let len = cur.len()?;
    let payload = cur.bytes(len)?;
    let consumed = cur.pos;
    if tag == TAG_BATCH {
        return Ok((WireRequest::Batch(decode_batch_payload(payload)?), consumed));
    }
    Ok((
        WireRequest::One(decode_request_payload(tag, payload)?),
        consumed,
    ))
}

/// Decodes a batch frame's payload (the bytes after `tag + len`) into
/// its inner requests. Shared by [`decode_wire_request`] and the
/// connection driver, which already holds the raw payload and must not
/// pay a re-framing copy per batch.
fn decode_batch_payload(payload: &[u8]) -> Result<Vec<Request>, ProtocolError> {
    let mut inner = Cur::new(payload);
    let n = inner.len()?;
    if n == 0 {
        return Err(werr("empty batch"));
    }
    if n > MAX_BATCH {
        return Err(werr(format!(
            "batch of {n} exceeds the {MAX_BATCH}-request cap"
        )));
    }
    let mut reqs = Vec::with_capacity(n);
    for _ in 0..n {
        let rest = &payload[inner.pos..];
        let (req, used) = decode_wire_request(rest)?;
        inner.pos += used;
        match req {
            WireRequest::One(Request::Drain) => return Err(werr("drain cannot ride in a batch")),
            WireRequest::One(r) => reqs.push(r),
            WireRequest::Batch(_) => return Err(werr("batches cannot nest")),
        }
    }
    inner.finish()?;
    Ok(reqs)
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// A typed reply — the binary-side model of every line (or `# EOF`
/// block) the text protocol can emit. [`Reply::from_text`] and
/// [`Reply::to_text`] are exact inverses on every reply a server
/// produces, which is what makes the binary path provably equivalent
/// to the text path: workers keep producing text lines, the binary
/// driver parses them into `Reply` values, and the client's decode +
/// `to_text` reproduces the original line byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `OK <id> exact <value>`.
    OkExact {
        /// Echoed request id.
        id: String,
        /// The exact count/sum rendering (may contain spaces).
        value: String,
    },
    /// `OK <id> bounded <why> <lower> ; <upper>`.
    OkBounded {
        /// Echoed request id.
        id: String,
        /// What degraded the exact pass (`budget`, `deadline`, …).
        why: String,
        /// Lower §4.6 bound rendering.
        lower: String,
        /// Upper §4.6 bound rendering.
        upper: String,
    },
    /// `ERR <id> <kind> <detail>`.
    Err {
        /// Echoed request id (`-` when none was recovered).
        id: String,
        /// Stable error kind.
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// `SHED <id> retry_after_ms=<n> reason=<reason>`.
    Shed {
        /// Echoed request id.
        id: String,
        /// Server backoff hint.
        retry_after_ms: u64,
        /// The shed reason token (`queue_full`, `draining`, `quota`,
        /// optionally extended with `:lane=…:wait_ms=…` detail —
        /// always space-free).
        reason: String,
    },
    /// `PONG [id]`.
    Pong {
        /// Echoed ping id, if the ping carried one.
        id: Option<String>,
    },
    /// A one-line `STATS …` reply.
    Stats {
        /// The full stats line, verbatim.
        line: String,
    },
    /// A multi-line block reply (`metrics`, `flightrec`, `shards`),
    /// `# EOF` terminated.
    Block {
        /// The full block, verbatim (no trailing newline).
        text: String,
    },
    /// The `drain` reply: a final stats line then `BYE`.
    Bye {
        /// The final `STATS …` line.
        stats: String,
    },
    /// A gathered batch reply: one inner reply per inner request, in
    /// request order.
    Batch(Vec<Reply>),
}

impl Reply {
    /// Parses a text-protocol reply (one line, or a multi-line block)
    /// into its typed form. Total: anything that does not match a known
    /// shape becomes [`Reply::Block`] verbatim, so
    /// `from_text(x).to_text() == x` for *every* string.
    pub fn from_text(text: &str) -> Reply {
        if let Some(stats) = text.strip_suffix("\nBYE") {
            if stats.starts_with("STATS ") && !stats.contains('\n') {
                return Reply::Bye {
                    stats: stats.to_string(),
                };
            }
        }
        let block = || Reply::Block {
            text: text.to_string(),
        };
        if text.contains('\n') {
            return block();
        }
        if let Some(rest) = text.strip_prefix("OK ") {
            if let Some((id, rest)) = rest.split_once(' ') {
                if let Some(value) = rest.strip_prefix("exact ") {
                    return Reply::OkExact {
                        id: id.to_string(),
                        value: value.to_string(),
                    };
                }
                if let Some(rest) = rest.strip_prefix("bounded ") {
                    if let Some((why, bounds)) = rest.split_once(' ') {
                        if let Some((lower, upper)) = bounds.split_once(" ; ") {
                            return Reply::OkBounded {
                                id: id.to_string(),
                                why: why.to_string(),
                                lower: lower.to_string(),
                                upper: upper.to_string(),
                            };
                        }
                    }
                }
            }
            return block();
        }
        if let Some(rest) = text.strip_prefix("ERR ") {
            let mut it = rest.splitn(3, ' ');
            if let (Some(id), Some(kind), Some(detail)) = (it.next(), it.next(), it.next()) {
                return Reply::Err {
                    id: id.to_string(),
                    kind: kind.to_string(),
                    detail: detail.to_string(),
                };
            }
            return block();
        }
        if let Some(rest) = text.strip_prefix("SHED ") {
            let mut it = rest.splitn(3, ' ');
            if let (Some(id), Some(retry), Some(reason)) = (it.next(), it.next(), it.next()) {
                if let (Some(ms), Some(reason)) = (
                    retry
                        .strip_prefix("retry_after_ms=")
                        .and_then(|v| v.parse::<u64>().ok())
                        // Canonical: to_text re-renders the number, so
                        // only minimal decimal forms round-trip.
                        .filter(|ms| retry == format!("retry_after_ms={ms}")),
                    reason.strip_prefix("reason=").filter(|r| !r.contains(' ')),
                ) {
                    return Reply::Shed {
                        id: id.to_string(),
                        retry_after_ms: ms,
                        reason: reason.to_string(),
                    };
                }
            }
            return block();
        }
        if text == "PONG" {
            return Reply::Pong { id: None };
        }
        if let Some(id) = text.strip_prefix("PONG ") {
            if !id.is_empty() && !id.contains(' ') {
                return Reply::Pong {
                    id: Some(id.to_string()),
                };
            }
            return block();
        }
        if text.starts_with("STATS ") {
            return Reply::Stats {
                line: text.to_string(),
            };
        }
        block()
    }

    /// Renders the exact text-protocol form. For [`Reply::Batch`], the
    /// inner replies joined by newlines (one logical line per inner
    /// request — what a text connection would have produced for the
    /// same requests).
    pub fn to_text(&self) -> String {
        match self {
            Reply::OkExact { id, value } => format!("OK {id} exact {value}"),
            Reply::OkBounded {
                id,
                why,
                lower,
                upper,
            } => format!("OK {id} bounded {why} {lower} ; {upper}"),
            Reply::Err { id, kind, detail } => format!("ERR {id} {kind} {detail}"),
            Reply::Shed {
                id,
                retry_after_ms,
                reason,
            } => format!("SHED {id} retry_after_ms={retry_after_ms} reason={reason}"),
            Reply::Pong { id } => match id {
                Some(id) => format!("PONG {id}"),
                None => "PONG".to_string(),
            },
            Reply::Stats { line } => line.clone(),
            Reply::Block { text } => text.clone(),
            Reply::Bye { stats } => format!("{stats}\nBYE"),
            Reply::Batch(replies) => {
                let lines: Vec<String> = replies.iter().map(Reply::to_text).collect();
                lines.join("\n")
            }
        }
    }

    /// Encodes this reply as a single frame ([`Reply::Batch`] as one
    /// gathered frame containing the inner reply frames).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let tag = match self {
            Reply::OkExact { id, value } => {
                put_str(&mut payload, id);
                put_str(&mut payload, value);
                TAG_OK_EXACT
            }
            Reply::OkBounded {
                id,
                why,
                lower,
                upper,
            } => {
                put_str(&mut payload, id);
                put_str(&mut payload, why);
                put_str(&mut payload, lower);
                put_str(&mut payload, upper);
                TAG_OK_BOUNDED
            }
            Reply::Err { id, kind, detail } => {
                put_str(&mut payload, id);
                put_str(&mut payload, kind);
                put_str(&mut payload, detail);
                TAG_ERR
            }
            Reply::Shed {
                id,
                retry_after_ms,
                reason,
            } => {
                put_str(&mut payload, id);
                put_varint(&mut payload, *retry_after_ms);
                put_str(&mut payload, reason);
                TAG_SHED
            }
            Reply::Pong { id } => {
                match id {
                    Some(id) => {
                        payload.push(1);
                        put_str(&mut payload, id);
                    }
                    None => payload.push(0),
                }
                TAG_PONG
            }
            Reply::Stats { line } => {
                put_str(&mut payload, line);
                TAG_STATS_REPLY
            }
            Reply::Block { text } => {
                put_str(&mut payload, text);
                TAG_BLOCK
            }
            Reply::Bye { stats } => {
                put_str(&mut payload, stats);
                TAG_BYE
            }
            Reply::Batch(replies) => {
                put_varint(&mut payload, replies.len() as u64);
                for r in replies {
                    payload.extend_from_slice(&r.encode());
                }
                TAG_BATCH_REPLY
            }
        };
        let mut out = Vec::with_capacity(payload.len() + 6);
        put_frame(&mut out, tag, &payload);
        out
    }

    /// Decodes one reply frame from the front of `buf`. Returns the
    /// reply and the bytes consumed; malformed input yields a typed
    /// [`ProtocolError`], never a panic or an over-read.
    pub fn decode(buf: &[u8]) -> Result<(Reply, usize), ProtocolError> {
        let mut cur = Cur::new(buf);
        let tag = cur.u8()?;
        let len = cur.len()?;
        let payload = cur.bytes(len)?;
        let consumed = cur.pos;
        let reply = Reply::decode_payload(tag, payload)?;
        Ok((reply, consumed))
    }

    fn decode_payload(tag: u8, payload: &[u8]) -> Result<Reply, ProtocolError> {
        let mut cur = Cur::new(payload);
        let reply = match tag {
            TAG_OK_EXACT => Reply::OkExact {
                id: cur.str_()?,
                value: cur.str_()?,
            },
            TAG_OK_BOUNDED => Reply::OkBounded {
                id: cur.str_()?,
                why: cur.str_()?,
                lower: cur.str_()?,
                upper: cur.str_()?,
            },
            TAG_ERR => Reply::Err {
                id: cur.str_()?,
                kind: cur.str_()?,
                detail: cur.str_()?,
            },
            TAG_SHED => Reply::Shed {
                id: cur.str_()?,
                retry_after_ms: cur.varint()?,
                reason: cur.str_()?,
            },
            TAG_PONG => {
                let has_id = cur.u8()?;
                match has_id {
                    0 => Reply::Pong { id: None },
                    1 => Reply::Pong {
                        id: Some(cur.str_()?),
                    },
                    other => {
                        return Err(werr(format!(
                            "pong id-presence byte must be 0/1, got {other}"
                        )))
                    }
                }
            }
            TAG_STATS_REPLY => Reply::Stats { line: cur.str_()? },
            TAG_BLOCK => Reply::Block { text: cur.str_()? },
            TAG_BYE => Reply::Bye { stats: cur.str_()? },
            TAG_BATCH_REPLY => {
                let n = cur.len()?;
                if n > MAX_BATCH {
                    return Err(werr(format!(
                        "batch reply of {n} exceeds the {MAX_BATCH}-reply cap"
                    )));
                }
                let mut replies = Vec::with_capacity(n);
                for _ in 0..n {
                    let rest = &payload[cur.pos..];
                    let mut inner = Cur::new(rest);
                    let itag = inner.u8()?;
                    if itag == TAG_BATCH_REPLY {
                        return Err(werr("batch replies cannot nest"));
                    }
                    let ilen = inner.len()?;
                    let ipayload = inner.bytes(ilen)?;
                    replies.push(Reply::decode_payload(itag, ipayload)?);
                    cur.pos += inner.pos;
                }
                Reply::Batch(replies)
            }
            other => return Err(werr(format!("unknown reply tag 0x{other:02x}"))),
        };
        cur.finish()?;
        Ok(reply)
    }
}

// ---------------------------------------------------------------------
// Stream framing
// ---------------------------------------------------------------------

/// A frame-read failure: transport i/o, or malformed framing that the
/// connection cannot resync past.
enum FrameError {
    Io(std::io::Error),
    Malformed(ProtocolError),
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Reads one `tag + len + payload` frame from a stream. `Ok(None)` on a
/// clean EOF at a frame boundary; EOF mid-frame, a padded/oversized
/// length, or an over-long varint are malformed framing.
fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut byte = [0u8; 1];
    let n = r.read(&mut byte)?;
    if n == 0 {
        return Ok(None);
    }
    let tag = byte[0];
    let mut len: u64 = 0;
    for i in 0..10 {
        r.read_exact(&mut byte)
            .map_err(|_| FrameError::Malformed(werr("truncated frame: EOF inside the length")))?;
        let group = u64::from(byte[0] & 0x7f);
        if i == 9 && group > 1 {
            return Err(FrameError::Malformed(werr("varint overflows u64")));
        }
        len |= group << (7 * i);
        if byte[0] & 0x80 == 0 {
            if i > 0 && group == 0 {
                return Err(FrameError::Malformed(werr(
                    "non-canonical varint (padded length)",
                )));
            }
            break;
        }
        if i == 9 {
            return Err(FrameError::Malformed(werr("varint longer than 10 bytes")));
        }
    }
    if len > MAX_FRAME_LEN as u64 {
        return Err(FrameError::Malformed(werr(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        ))));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|_| FrameError::Malformed(werr("truncated frame: EOF inside the payload")))?;
    Ok(Some((tag, payload)))
}

// ---------------------------------------------------------------------
// Connection driver
// ---------------------------------------------------------------------

/// What the binary writer thread emits: a single reply frame, or a
/// gathered batch frame (all inner slots awaited in request order, one
/// `write_all` for the whole frame).
enum Out {
    One(Arc<Slot>),
    Many(Vec<Arc<Slot>>),
}

/// Fans a decoded batch out over the service: queries are admitted
/// atomically via [`Service::submit_batch`] (scattering across a shard
/// ring under a pool), control requests are answered inline — and the
/// reply slots come back in request order.
fn dispatch_batch<S: Service>(
    handle: &S,
    reqs: Vec<Request>,
    saw_drain: &mut bool,
    conn_client: &Option<String>,
) -> Vec<Arc<Slot>> {
    let mut slots: Vec<Option<Arc<Slot>>> = Vec::with_capacity(reqs.len());
    let mut queries = Vec::new();
    let mut query_pos = Vec::new();
    for (i, req) in reqs.into_iter().enumerate() {
        match req {
            Request::Query(mut q) => {
                if q.client.is_none() {
                    q.client = conn_client.clone();
                }
                query_pos.push(i);
                queries.push(q);
                slots.push(None);
            }
            other => slots.push(Some(control_slot(handle, other, saw_drain))),
        }
    }
    let query_slots = handle.submit_batch(queries);
    for (i, slot) in query_pos.into_iter().zip(query_slots) {
        slots[i] = Some(slot);
    }
    slots
        .into_iter()
        .map(|s| s.expect("invariant: every batch position was filled above"))
        .collect()
}

/// Answers a control request inline (same replies as the text driver).
fn control_slot<S: Service>(handle: &S, req: Request, saw_drain: &mut bool) -> Arc<Slot> {
    match req {
        Request::Query(_) => unreachable!("queries are dispatched via submit"),
        Request::Ping(id) => Slot::ready(match id {
            Some(id) => format!("PONG {id}"),
            None => "PONG".to_string(),
        }),
        Request::Stats => Slot::ready(handle.stats_line()),
        Request::Metrics => Slot::ready(handle.metrics_text()),
        Request::FlightRec => Slot::ready(handle.flight_dump()),
        Request::Shards => Slot::ready(handle.shards_text()),
        Request::Drain => {
            *saw_drain = true;
            let stats = handle.drain();
            Slot::ready(format!("{stats}\nBYE"))
        }
    }
}

/// Serves one binary connection: validates the client preamble, echoes
/// the accept preamble, then answers frames in request order — single
/// requests with single reply frames, batch frames with one gathered
/// [`Reply::Batch`] frame. Transport behavior mirrors the text driver
/// ([`crate::server::serve_connection`] delegates here when it sees the
/// magic prefix): a `drain` frame answers with [`Reply::Bye`] and
/// closes; with `drain_on_eof`, EOF triggers a server drain and a final
/// [`Reply::Stats`] frame. Malformed framing is answered with a typed
/// `ERR` reply frame and closes the connection (there is no way to
/// resync); malformed *payloads* in well-formed frames answer `ERR` and
/// the connection continues.
pub fn serve_binary_connection<S: Service>(
    handle: &S,
    mut reader: impl Read,
    mut writer: impl Write + Send + 'static,
    drain_on_eof: bool,
) -> Result<(), ServeError> {
    let mut pre = [0u8; 3];
    reader.read_exact(&mut pre)?;
    if pre[..2] != MAGIC {
        let reply = Reply::Err {
            id: "-".to_string(),
            kind: "wire".to_string(),
            detail: format!("bad magic {:02x}{:02x}", pre[0], pre[1]),
        };
        writer.write_all(&reply.encode())?;
        writer.flush()?;
        return Ok(());
    }
    if pre[2] != VERSION {
        let reply = Reply::Err {
            id: "-".to_string(),
            kind: "wire".to_string(),
            detail: format!(
                "unsupported wire version {} (this server speaks {VERSION})",
                pre[2]
            ),
        };
        writer.write_all(&reply.encode())?;
        writer.flush()?;
        return Ok(());
    }
    writer.write_all(&preamble())?;
    writer.flush()?;

    // Quota identity for requests that carry no explicit `client`
    // field: minted per connection, exactly like the text driver, and
    // only when the service actually meters quotas — so a quota-free
    // server stays behavior-identical.
    let conn_client = handle
        .wants_client_identity()
        .then(crate::server::next_conn_client);

    // Per-connection FIFO writer, exactly like the text driver — but
    // emitting frames, and gathering whole batches into one write.
    let (tx, rx) = mpsc::channel::<Out>();
    let writer_thread = thread::Builder::new()
        .name("serve-bin-writer".to_string())
        .spawn(
            move || -> (Box<dyn Write + Send>, Result<(), std::io::Error>) {
                for out in rx {
                    let frame = match out {
                        Out::One(slot) => Reply::from_text(&slot.wait()).encode(),
                        Out::Many(slots) => {
                            let replies: Vec<Reply> =
                                slots.iter().map(|s| Reply::from_text(&s.wait())).collect();
                            Reply::Batch(replies).encode()
                        }
                    };
                    if let Err(e) = writer.write_all(&frame).and_then(|()| writer.flush()) {
                        return (Box::new(writer), Err(e));
                    }
                }
                (Box::new(writer), Ok(()))
            },
        )?;

    let mut saw_drain = false;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(FrameError::Io(e)) => {
                drop(tx);
                let _ = writer_thread.join();
                return Err(ServeError::Io(e));
            }
            Err(FrameError::Malformed(e)) => {
                // Framing is broken: answer once and close.
                let _ = tx.send(Out::One(Slot::ready(err_line(
                    e.id.as_deref().unwrap_or("-"),
                    e.kind,
                    &e.detail,
                ))));
                break;
            }
        };
        let (tag, payload) = frame;
        let out = if tag == TAG_BATCH {
            match decode_batch_payload(&payload) {
                Ok(reqs) => {
                    handle.observe_wire(ReqCodec::Binary, Some(reqs.len() as u64));
                    Out::Many(dispatch_batch(handle, reqs, &mut saw_drain, &conn_client))
                }
                Err(e) => Out::One(Slot::ready(err_line(
                    e.id.as_deref().unwrap_or("-"),
                    e.kind,
                    &e.detail,
                ))),
            }
        } else {
            handle.observe_wire(ReqCodec::Binary, None);
            match decode_request_payload(tag, &payload) {
                Ok(Request::Query(mut q)) => {
                    if q.client.is_none() {
                        q.client = conn_client.clone();
                    }
                    Out::One(handle.submit(q))
                }
                Ok(req) => Out::One(control_slot(handle, req, &mut saw_drain)),
                Err(e) => Out::One(Slot::ready(err_line(
                    e.id.as_deref().unwrap_or("-"),
                    e.kind,
                    &e.detail,
                ))),
            }
        };
        if tx.send(out).is_err() {
            break; // writer died (broken pipe); stop reading
        }
        if saw_drain {
            break;
        }
    }

    if drain_on_eof && !saw_drain {
        let stats = handle.drain();
        let _ = tx.send(Out::One(Slot::ready(stats)));
    }
    drop(tx);
    match writer_thread.join() {
        Ok((_, Err(e))) => Err(ServeError::Io(e)),
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A minimal binary-protocol client over any `Read + Write` pair
/// (TCP, in-memory pipes): performs the preamble handshake, then sends
/// request/batch frames and decodes reply frames. Used by the
/// calculator's `--binary` client mode and the differential tests.
pub struct BinClient<R: Read, W: Write> {
    reader: R,
    writer: W,
}

fn invalid(e: ProtocolError) -> ServeError {
    ServeError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

impl<R: Read, W: Write> BinClient<R, W> {
    /// Sends the client preamble and validates the server's accept
    /// preamble (magic + matching version).
    pub fn handshake(reader: R, mut writer: W) -> Result<BinClient<R, W>, ServeError> {
        writer.write_all(&preamble())?;
        writer.flush()?;
        let mut client = BinClient { reader, writer };
        let mut ack = [0u8; 3];
        client.reader.read_exact(&mut ack)?;
        if ack != preamble() {
            return Err(invalid(werr(format!(
                "bad server preamble {:02x}{:02x}{:02x}",
                ack[0], ack[1], ack[2]
            ))));
        }
        Ok(client)
    }

    /// Sends one request frame.
    pub fn send(&mut self, req: &Request) -> Result<(), ServeError> {
        self.writer.write_all(&encode_request(req))?;
        self.writer.flush()?;
        Ok(())
    }

    /// Sends one batch frame of `1..=MAX_BATCH` requests.
    pub fn send_batch(&mut self, reqs: &[Request]) -> Result<(), ServeError> {
        let frame = encode_batch(reqs).map_err(invalid)?;
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads and decodes one reply frame.
    pub fn recv(&mut self) -> Result<Reply, ServeError> {
        match read_frame(&mut self.reader) {
            Ok(Some((tag, payload))) => Reply::decode_payload(tag, &payload).map_err(invalid),
            Ok(None) => Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a reply frame",
            ))),
            Err(FrameError::Io(e)) => Err(ServeError::Io(e)),
            Err(FrameError::Malformed(e)) => Err(invalid(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn req(line: &str) -> Request {
        parse_request(line).expect("test request parses")
    }

    #[test]
    fn varints_are_canonical() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cur::new(&buf);
            assert_eq!(cur.varint().unwrap(), v);
            assert!(cur.finish().is_ok());
        }
        // Padded encodings are rejected: 0x80 0x00 is 0 with a spare
        // byte.
        let mut cur = Cur::new(&[0x80, 0x00]);
        assert!(cur.varint().is_err());
        // Over-long encodings are rejected.
        let mut cur = Cur::new(&[0xff; 11]);
        assert!(cur.varint().is_err());
        // Overflow in the 10th byte is rejected.
        let mut cur = Cur::new(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02]);
        assert!(cur.varint().is_err());
    }

    #[test]
    fn requests_round_trip() {
        for line in [
            "count r1 {x : 1 <= x && x <= 9}",
            "count r2 deadline_ms=500 max_splinters=8 {i,j : 1 <= i <= j <= n}",
            "sum s7 x + 2y {x,y : 0 <= x <= 3 && 0 <= y <= x}",
            "sum s8 threads=4 max_depth=9 x {x : 1 <= x <= 5}",
            "count r3 prio=interactive {x : 1 <= x && x <= 9}",
            "count r4 prio=background client=alice {x : x = 1}",
            "sum s9 prio=batch client=c0 deadline_ms=9 x {x : 1 <= x <= 5}",
            "ping",
            "ping p1",
            "stats",
            "metrics",
            "flightrec",
            "shards",
            "drain",
        ] {
            let r = req(line);
            let bytes = encode_request(&r);
            let (decoded, used) = decode_wire_request(&bytes).expect("decodes");
            assert_eq!(used, bytes.len(), "{line}: exact consumption");
            assert_eq!(decoded, WireRequest::One(r), "{line}");
            // Canonical: re-encode is byte-identical.
            assert_eq!(encode_wire_request(&decoded).unwrap(), bytes, "{line}");
        }
    }

    #[test]
    fn batches_round_trip_and_reject_nesting() {
        let reqs = vec![
            req("count a {x : 1 <= x && x <= 3}"),
            req("ping p9"),
            req("sum b x {x : 1 <= x <= 5}"),
        ];
        let frame = encode_batch(&reqs).unwrap();
        let (decoded, used) = decode_wire_request(&frame).unwrap();
        assert_eq!(used, frame.len());
        assert_eq!(decoded, WireRequest::Batch(reqs.clone()));
        assert_eq!(encode_wire_request(&decoded).unwrap(), frame);
        assert!(encode_batch(&[]).is_err());
        assert!(encode_batch(&[req("drain")]).is_err());
        // A hand-built nested batch is rejected at decode.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        payload.extend_from_slice(&frame);
        let mut nested = Vec::new();
        put_frame(&mut nested, TAG_BATCH, &payload);
        assert!(decode_wire_request(&nested).is_err());
    }

    #[test]
    fn replies_round_trip_through_text_and_bytes() {
        let lines = [
            "OK r1 exact 9",
            "OK r1 exact n + 1",
            "OK r2 bounded budget 3 ; 17",
            "OK r2 bounded breaker_open 0 ; n^2",
            "ERR - protocol unknown verb \"zap\"",
            "ERR r3 parse unexpected token",
            "SHED r4 retry_after_ms=50 reason=queue_full",
            "SHED r4 retry_after_ms=50 reason=draining",
            "PONG",
            "PONG p1",
            "STATS admitted=3 ok=3 errors=0",
            "STATS admitted=3 ok=3\nBYE",
            "# metrics\n# EOF",
        ];
        for line in lines {
            let reply = Reply::from_text(line);
            assert_eq!(
                reply.to_text(),
                line,
                "from_text/to_text invert on {line:?}"
            );
            let bytes = reply.encode();
            let (decoded, used) = Reply::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, reply);
            assert_eq!(decoded.encode(), bytes, "canonical re-encode for {line:?}");
        }
        let batch = Reply::Batch(lines[..6].iter().map(|l| Reply::from_text(l)).collect());
        let bytes = batch.encode();
        let (decoded, used) = Reply::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, batch);
    }

    #[test]
    fn unrecognized_lines_fall_back_to_block_verbatim() {
        for line in [
            "",
            "BYE",
            "OK",
            "OK r1",
            "OK r1 bounded budget 3 ; ",
            "SHED r1 retry_after_ms=07 reason=queue_full",
            "SHED r1 retry_after_ms=5 reason=a b",
            "PONG a b",
            "random noise",
            "SHARDS shards=1\nshard=0 state=standalone\n# EOF",
        ] {
            let reply = Reply::from_text(line);
            assert_eq!(reply.to_text(), line, "{line:?} must round-trip");
        }
    }

    #[test]
    fn truncated_and_garbage_frames_yield_typed_errors() {
        let valid = encode_request(&req("count r1 deadline_ms=9 {x : 1 <= x && x <= 9}"));
        for cut in 0..valid.len() {
            match decode_wire_request(&valid[..cut]) {
                Err(e) => assert_eq!(e.kind, "wire"),
                Ok((_, used)) => assert!(used <= cut, "no over-read on truncation"),
            }
        }
        // Oversized declared length.
        let mut oversized = vec![TAG_COUNT];
        put_varint(&mut oversized, (MAX_FRAME_LEN as u64) + 1);
        assert_eq!(decode_wire_request(&oversized).unwrap_err().kind, "wire");
        // Unknown tag.
        let mut unknown = vec![0x7f];
        put_varint(&mut unknown, 0);
        assert_eq!(decode_wire_request(&unknown).unwrap_err().kind, "wire");
        // Trailing bytes inside a declared payload.
        let mut padded_payload = Vec::new();
        put_varint(&mut padded_payload, 0); // ping, no id
        padded_payload.push(0xee);
        let mut padded = Vec::new();
        put_frame(&mut padded, TAG_PING, &padded_payload);
        assert_eq!(decode_wire_request(&padded).unwrap_err().kind, "wire");
    }

    #[test]
    fn query_decode_enforces_protocol_invariants() {
        // threads above the text-path cap is non-canonical.
        let mut q = match req("count r1 threads=4 {x : x = 1}") {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        q.overrides.threads = Some(17);
        let bytes = encode_request(&Request::Query(q));
        assert_eq!(decode_wire_request(&bytes).unwrap_err().kind, "wire");
        // Invalid id.
        let mut q2 = match req("count r1 {x : x = 1}") {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        q2.id = "bad id!".to_string();
        let bytes = encode_request(&Request::Query(q2));
        assert_eq!(decode_wire_request(&bytes).unwrap_err().kind, "wire");
        // Invalid client identity.
        let mut q3 = match req("count r1 client=ok {x : x = 1}") {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        q3.client = Some("bad client!".to_string());
        let bytes = encode_request(&Request::Query(q3));
        assert_eq!(decode_wire_request(&bytes).unwrap_err().kind, "wire");
    }

    #[test]
    fn prio_and_client_sections_are_canonical() {
        // An out-of-range lane value is rejected.
        let q = match req("count r1 prio=background {x : x = 1}") {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        let good = encode_request(&Request::Query(q.clone()));
        // Locate the prio varint: it is the last payload byte (lane 2).
        assert_eq!(*good.last().unwrap(), 2);
        let mut bad = good.clone();
        *bad.last_mut().unwrap() = 3;
        assert_eq!(decode_wire_request(&bad).unwrap_err().kind, "wire");
        // A zero client-presence byte is non-canonical: "no client" is
        // spelled by omitting the section entirely.
        let with_client = match req("count r1 client=c0 {x : x = 1}") {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        let bytes = encode_request(&Request::Query(with_client));
        let plain = encode_request(&Request::Query(q));
        // presence byte sits right after the shared prefix... build a
        // padded frame by hand instead: plain query + presence byte 0.
        let (tag, payload) = (plain[0], &plain[2..]);
        let mut padded_payload = payload.to_vec();
        padded_payload.push(0);
        let mut padded = Vec::new();
        put_frame(&mut padded, tag, &padded_payload);
        assert_eq!(decode_wire_request(&padded).unwrap_err().kind, "wire");
        // And the real client section round-trips canonically.
        let (decoded, used) = decode_wire_request(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(encode_wire_request(&decoded).unwrap(), bytes);
    }
}
