//! A bounded result cache keyed by canonical interned bytes.
//!
//! Keys are *canonical byte encodings*, not request text: the server
//! builds them from the parsed formula's interning key
//! (`presburger_omega::intern::formula_push_key_bytes`), the counted
//! variable indices, the free-symbol name table, and the budget
//! overrides. Textual variants of the same query (`x<=3&&x>=0` vs
//! `0 <= x <= 3`) share an entry, and so do *alpha-equivalent* queries
//! whose counted variables are merely renamed (`{x : 1 <= x <= 9}` vs
//! `{y : 1 <= y <= 9}`) — counted-variable names never appear in a
//! response payload, so they are excluded from the key. Free-symbol
//! names *do* appear in symbolic answers and stay in the key. Budget
//! overrides are part of the key too — a request with a tight splinter
//! cap may legitimately get a different (bounded) answer than an
//! unconstrained one, and transcript replay must stay byte-exact.
//!
//! Eviction is least-recently-used under two independent limits: entry
//! count and total bytes (key + payload). Both guard against unbounded
//! memory growth on long-lived servers; an oversized single payload is
//! simply not cached.

use std::collections::HashMap;

/// One cached response payload.
struct Entry {
    /// LRU stamp: larger = more recently touched.
    stamp: u64,
    /// The rendered response tail (everything after `OK <id> `).
    payload: String,
}

/// A bounded LRU map from canonical query keys to response payloads.
pub struct ResultCache {
    entries: HashMap<Vec<u8>, Entry>,
    max_entries: usize,
    max_bytes: usize,
    bytes: usize,
    clock: u64,
    hits: u64,
}

impl ResultCache {
    /// A cache bounded by `max_entries` entries and `max_bytes` total
    /// key+payload bytes. Either bound may be zero to disable caching.
    pub fn new(max_entries: usize, max_bytes: usize) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            max_entries,
            max_bytes,
            bytes: 0,
            clock: 0,
            hits: 0,
        }
    }

    /// Looks up `key`, refreshing its LRU stamp on a hit. Returns the
    /// payload and the running hit ordinal (1-based, for verify-mode
    /// sampling).
    pub fn get(&mut self, key: &[u8]) -> Option<(String, u64)> {
        self.clock += 1;
        let clock = self.clock;
        let e = self.entries.get_mut(key)?;
        e.stamp = clock;
        self.hits += 1;
        Some((e.payload.clone(), self.hits))
    }

    /// Inserts (or replaces) `key → payload`, evicting least-recently
    /// used entries until both bounds hold. A payload too large to ever
    /// fit is ignored.
    pub fn put(&mut self, key: &[u8], payload: &str) {
        let size = key.len() + payload.len();
        if self.max_entries == 0 || size > self.max_bytes {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.entries.remove(key) {
            self.bytes -= key.len() + old.payload.len();
        }
        while self.entries.len() + 1 > self.max_entries || self.bytes + size > self.max_bytes {
            match self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                Some(oldest) => {
                    let e = self
                        .entries
                        .remove(&oldest)
                        .expect("invariant: min_by_key returned a resident key");
                    self.bytes -= oldest.len() + e.payload.len();
                }
                None => break,
            }
        }
        self.bytes += size;
        self.entries.insert(
            key.to_vec(),
            Entry {
                stamp: self.clock,
                payload: payload.to_string(),
            },
        );
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current resident key+payload bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let mut c = ResultCache::new(4, 1024);
        assert!(c.get(b"k").is_none());
        c.put(b"k", "exact 7");
        let (payload, ordinal) = c.get(b"k").unwrap();
        assert_eq!(payload, "exact 7");
        assert_eq!(ordinal, 1);
        assert_eq!(c.get(b"k").unwrap().1, 2);
    }

    #[test]
    fn evicts_least_recently_used_on_entry_bound() {
        let mut c = ResultCache::new(2, 1024);
        c.put(b"a", "1");
        c.put(b"b", "2");
        c.get(b"a"); // refresh a → b becomes LRU
        c.put(b"c", "3");
        assert!(c.get(b"b").is_none());
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_on_byte_bound() {
        let mut c = ResultCache::new(100, 20);
        c.put(b"aaaa", "111111"); // 10 bytes
        c.put(b"bbbb", "222222"); // 10 bytes
        assert_eq!(c.bytes(), 20);
        c.put(b"cccc", "333333"); // forces eviction of "aaaa" (LRU)
        assert!(c.bytes() <= 20);
        assert!(c.get(b"aaaa").is_none());
        assert!(c.get(b"cccc").is_some());
    }

    #[test]
    fn oversized_payload_is_not_cached() {
        let mut c = ResultCache::new(4, 8);
        c.put(b"key", "a-payload-larger-than-the-cache");
        assert!(c.is_empty());
        assert!(c.get(b"key").is_none());
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = ResultCache::new(4, 1024);
        c.put(b"k", "short");
        let before = c.bytes();
        c.put(b"k", "a rather longer payload");
        assert_eq!(c.len(), 1);
        assert!(c.bytes() > before);
        assert_eq!(c.get(b"k").unwrap().0, "a rather longer payload");
    }

    #[test]
    fn binary_keys_with_shared_prefixes_stay_distinct() {
        let mut c = ResultCache::new(8, 1024);
        c.put(&[0, 1, 2], "first");
        c.put(&[0, 1, 2, 0], "second");
        c.put(&[0, 1], "third");
        assert_eq!(c.get(&[0, 1, 2]).unwrap().0, "first");
        assert_eq!(c.get(&[0, 1, 2, 0]).unwrap().0, "second");
        assert_eq!(c.get(&[0, 1]).unwrap().0, "third");
        assert_eq!(c.len(), 3);
    }
}
