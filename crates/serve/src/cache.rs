//! A bounded result cache keyed by canonical request text.
//!
//! Keys are *canonical*: the formula is re-rendered from its parsed
//! form (`Formula::to_string(&space)`), so textual variants of the same
//! query (`x<=3&&x>=0` vs `0 <= x <= 3`) share an entry, while budget
//! overrides are part of the key — a request with a tight splinter cap
//! may legitimately get a different (bounded) answer than an
//! unconstrained one, and transcript replay must stay byte-exact.
//!
//! Eviction is least-recently-used under two independent limits: entry
//! count and total bytes (key + payload). Both guard against unbounded
//! memory growth on long-lived servers; an oversized single payload is
//! simply not cached.

use std::collections::HashMap;

/// One cached response payload.
struct Entry {
    /// LRU stamp: larger = more recently touched.
    stamp: u64,
    /// The rendered response tail (everything after `OK <id> `).
    payload: String,
}

/// A bounded LRU map from canonical query keys to response payloads.
pub struct ResultCache {
    entries: HashMap<String, Entry>,
    max_entries: usize,
    max_bytes: usize,
    bytes: usize,
    clock: u64,
    hits: u64,
}

impl ResultCache {
    /// A cache bounded by `max_entries` entries and `max_bytes` total
    /// key+payload bytes. Either bound may be zero to disable caching.
    pub fn new(max_entries: usize, max_bytes: usize) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            max_entries,
            max_bytes,
            bytes: 0,
            clock: 0,
            hits: 0,
        }
    }

    /// Looks up `key`, refreshing its LRU stamp on a hit. Returns the
    /// payload and the running hit ordinal (1-based, for verify-mode
    /// sampling).
    pub fn get(&mut self, key: &str) -> Option<(String, u64)> {
        self.clock += 1;
        let clock = self.clock;
        let e = self.entries.get_mut(key)?;
        e.stamp = clock;
        self.hits += 1;
        Some((e.payload.clone(), self.hits))
    }

    /// Inserts (or replaces) `key → payload`, evicting least-recently
    /// used entries until both bounds hold. A payload too large to ever
    /// fit is ignored.
    pub fn put(&mut self, key: &str, payload: &str) {
        let size = key.len() + payload.len();
        if self.max_entries == 0 || size > self.max_bytes {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.entries.remove(key) {
            self.bytes -= key.len() + old.payload.len();
        }
        while self.entries.len() + 1 > self.max_entries || self.bytes + size > self.max_bytes {
            match self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                Some(oldest) => {
                    let e = self
                        .entries
                        .remove(&oldest)
                        .expect("invariant: min_by_key returned a resident key");
                    self.bytes -= oldest.len() + e.payload.len();
                }
                None => break,
            }
        }
        self.bytes += size;
        self.entries.insert(
            key.to_string(),
            Entry {
                stamp: self.clock,
                payload: payload.to_string(),
            },
        );
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current resident key+payload bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let mut c = ResultCache::new(4, 1024);
        assert!(c.get("k").is_none());
        c.put("k", "exact 7");
        let (payload, ordinal) = c.get("k").unwrap();
        assert_eq!(payload, "exact 7");
        assert_eq!(ordinal, 1);
        assert_eq!(c.get("k").unwrap().1, 2);
    }

    #[test]
    fn evicts_least_recently_used_on_entry_bound() {
        let mut c = ResultCache::new(2, 1024);
        c.put("a", "1");
        c.put("b", "2");
        c.get("a"); // refresh a → b becomes LRU
        c.put("c", "3");
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_on_byte_bound() {
        let mut c = ResultCache::new(100, 20);
        c.put("aaaa", "111111"); // 10 bytes
        c.put("bbbb", "222222"); // 10 bytes
        assert_eq!(c.bytes(), 20);
        c.put("cccc", "333333"); // forces eviction of "aaaa" (LRU)
        assert!(c.bytes() <= 20);
        assert!(c.get("aaaa").is_none());
        assert!(c.get("cccc").is_some());
    }

    #[test]
    fn oversized_payload_is_not_cached() {
        let mut c = ResultCache::new(4, 8);
        c.put("key", "a-payload-larger-than-the-cache");
        assert!(c.is_empty());
        assert!(c.get("key").is_none());
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = ResultCache::new(4, 1024);
        c.put("k", "short");
        let before = c.bytes();
        c.put("k", "a rather longer payload");
        assert_eq!(c.len(), 1);
        assert!(c.bytes() > before);
        assert_eq!(c.get("k").unwrap().0, "a rather longer payload");
    }
}
