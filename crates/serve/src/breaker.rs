//! A circuit breaker over the exact counting path.
//!
//! Repeated internal errors or deadline blowouts usually mean the
//! server is being fed adversarial input (or a bug is being tickled);
//! burning a full budget on every such request just converts overload
//! into latency for everyone behind it in the queue. The breaker
//! watches for `K` *consecutive* breaker-class failures
//! ([`CountError::Internal`] / [`CountError::Deadline`] — budget trips
//! are normal degradations and do not count) and, once open, routes new
//! requests straight to the cheap §4.6 bound modes (degrade-first).
//! After a cooldown it *half-opens*: exactly one request is admitted as
//! an exact-path probe, and its outcome decides between closing the
//! breaker and re-opening it for another cooldown.
//!
//! ```text
//!            K consecutive failures
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ cooldown elapsed
//!     │ probe succeeds                   ▼
//!     └───────────────────────────── HalfOpen
//!                  probe fails ▲──────────┘
//!                  (back to Open)
//! ```

use presburger_trace::{self as trace, Counter};
use std::time::Instant;

/// How the breaker wants the next request executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Run the exact governed path (breaker closed).
    Exact,
    /// Run the exact governed path as the half-open probe; the caller
    /// must report the result with [`Breaker::record`].
    ExactProbe,
    /// Skip the exact path: compute §4.6 bounds directly.
    Degrade,
}

#[derive(Clone, Copy, Debug)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// The breaker state machine. Time is passed in (never sampled
/// internally), keeping the transitions deterministic under test.
pub struct Breaker {
    state: State,
    threshold: u32,
    cooldown_ms: u64,
    opens: u64,
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and cooling down for `cooldown_ms` before each probe. A zero
    /// threshold disables the breaker (it never opens).
    pub fn new(threshold: u32, cooldown_ms: u64) -> Breaker {
        Breaker {
            state: State::Closed {
                consecutive_failures: 0,
            },
            threshold,
            cooldown_ms,
            opens: 0,
        }
    }

    /// Decides how the next request should run. May transition
    /// Open → HalfOpen when the cooldown has elapsed (the caller of the
    /// returned [`Plan::ExactProbe`] owns the probe).
    pub fn plan(&mut self, now: Instant) -> Plan {
        match self.state {
            State::Closed { .. } => Plan::Exact,
            State::Open { since } => {
                if now.duration_since(since).as_millis() as u64 >= self.cooldown_ms {
                    self.state = State::HalfOpen;
                    trace::record_max(Counter::ServeBreakerState, 1);
                    Plan::ExactProbe
                } else {
                    Plan::Degrade
                }
            }
            State::HalfOpen => Plan::Degrade,
        }
    }

    /// Reports the outcome of a [`Plan::Exact`] or [`Plan::ExactProbe`]
    /// execution. `failure` means a breaker-class failure (internal
    /// error or deadline), not an ordinary budget degradation.
    pub fn record(&mut self, plan: Plan, failure: bool, now: Instant) {
        match (plan, failure) {
            (Plan::Exact, false) => {
                self.state = State::Closed {
                    consecutive_failures: 0,
                };
            }
            (Plan::Exact, true) => {
                let fails = match self.state {
                    State::Closed {
                        consecutive_failures,
                    } => consecutive_failures + 1,
                    // A stale report from before an open/half-open
                    // transition; count it as one fresh failure.
                    _ => 1,
                };
                if self.threshold > 0 && fails >= self.threshold {
                    self.open(now);
                } else {
                    self.state = State::Closed {
                        consecutive_failures: fails,
                    };
                }
            }
            (Plan::ExactProbe, false) => {
                self.state = State::Closed {
                    consecutive_failures: 0,
                };
                trace::record_max(Counter::ServeBreakerState, 1);
            }
            (Plan::ExactProbe, true) => self.open(now),
            (Plan::Degrade, _) => {}
        }
    }

    fn open(&mut self, now: Instant) {
        self.state = State::Open { since: now };
        self.opens += 1;
        trace::bump(Counter::ServeBreakerOpens);
        trace::record_max(Counter::ServeBreakerState, 2);
    }

    /// The state name for stats lines: `closed`, `open` or `half_open`.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half_open",
        }
    }

    /// Total closed→open transitions since construction.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn opens_after_k_consecutive_failures() {
        let t0 = Instant::now();
        let mut b = Breaker::new(3, 1000);
        for _ in 0..2 {
            assert_eq!(b.plan(t0), Plan::Exact);
            b.record(Plan::Exact, true, t0);
        }
        assert_eq!(b.state_name(), "closed");
        b.record(Plan::Exact, true, t0);
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opens(), 1);
        assert_eq!(b.plan(t0), Plan::Degrade);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let t0 = Instant::now();
        let mut b = Breaker::new(2, 1000);
        b.record(Plan::Exact, true, t0);
        b.record(Plan::Exact, false, t0);
        b.record(Plan::Exact, true, t0);
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn half_open_probe_closes_or_reopens() {
        let t0 = Instant::now();
        let mut b = Breaker::new(1, 50);
        b.record(Plan::Exact, true, t0);
        assert_eq!(b.state_name(), "open");
        // Before cooldown: degrade. After: exactly one probe.
        assert_eq!(b.plan(t0), Plan::Degrade);
        let later = t0 + Duration::from_millis(60);
        assert_eq!(b.plan(later), Plan::ExactProbe);
        assert_eq!(b.state_name(), "half_open");
        // While the probe is in flight, everyone else degrades.
        assert_eq!(b.plan(later), Plan::Degrade);
        // Failed probe → open again, for a fresh cooldown.
        b.record(Plan::ExactProbe, true, later);
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opens(), 2);
        // Successful probe → closed.
        let again = later + Duration::from_millis(60);
        assert_eq!(b.plan(again), Plan::ExactProbe);
        b.record(Plan::ExactProbe, false, again);
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.plan(again), Plan::Exact);
    }

    #[test]
    fn zero_threshold_never_opens() {
        let t0 = Instant::now();
        let mut b = Breaker::new(0, 1000);
        for _ in 0..10 {
            b.record(Plan::Exact, true, t0);
        }
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.opens(), 0);
    }
}
