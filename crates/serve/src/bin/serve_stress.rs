//! serve_stress: the serving layer's protocol-invariant stress harness.
//!
//! Phases (all must pass; the process exits non-zero on any violation):
//!
//! 1. **Replay determinism** — a fixed-seed stream of generated
//!    requests is partitioned across concurrent connections and run at
//!    1 and 4 workers, twice each. Per connection: exactly one response
//!    per request, in request order. Across all four runs: byte-
//!    identical transcripts.
//! 2. **Load shedding** — with workers gated and a tiny queue, excess
//!    requests must shed deterministically with `reason=queue_full`.
//! 3. **Breaker drill** — under an injected worker-panic fault
//!    (`splinters_generated:1:panic`), K splintering requests open the
//!    breaker (degrade-first replies), and after the cooldown a clean
//!    probe closes it again.
//! 4. **Graceful drain** — a drain with queued work answers everything
//!    within the drain deadline; post-drain submissions shed with
//!    `reason=draining`; a zero-deadline drain still loses nothing.
//! 5. **Latency** — sequential round-trip p50/p99 and phase-1
//!    throughput, recorded to `BENCH_serve.json`.
//! 6. **Shard-pool chaos drills** — the supervised [`ShardPool`] at 1,
//!    2 and 4 shards produces transcripts byte-identical to each other
//!    and to the same run with a deterministic `kill` / `wedge` /
//!    `delay` fault armed mid-stream: a killed or wedged shard's
//!    requests are re-dispatched, never lost, never degraded; a `delay`
//!    never trips the supervisor. The jittered-retry client helper
//!    rides out deterministic queue-full sheds.
//! 7. **Binary codec** — the same request stream, re-framed as binary
//!    batch frames, decodes to exactly the text transcript's reply
//!    lines at 1, 2 and 4 shards, chaos off and with a kill drill
//!    armed; batched-binary throughput must strictly beat line-by-line
//!    text on a warm cache (framing cost dominates there), and the
//!    batch retry helper rides out partial sheds. Recorded as the
//!    `phase7` object of `BENCH_serve.json` (schema `serve_bench_v5`).
//! 8. **Admission control** — the deadline-aware admission layer
//!    (DESIGN.md §16): a background flood at 4× queue capacity must
//!    not move the interactive lane's p99 past 3× its unloaded value
//!    and must lose zero replies; the per-client quota drill replays
//!    the worked token-bucket example with exact computed hints; the
//!    eviction drill answers expired requests with §4.6 bounds at
//!    admission and at pop time; and an admission-optioned request
//!    stream replays byte-identically at 1, 2 and 4 shards, chaos off
//!    and under a kill drill. Recorded as the `phase8` object.
//!
//! Honours `PRESBURGER_FAULT` (phase 1 runs with the breaker disabled
//! so env-injected faults stay per-request-deterministic),
//! `PRESBURGER_CHAOS` (an extra phase-6 drill with the env-armed
//! fault), `PRESBURGER_SERVE_SHARDS` (shard count for that drill),
//! `PRESBURGER_SERVE_CHAOS_ONLY=1` (run phase 6 alone — the
//! `chaos_gate` fast path), `PRESBURGER_SERVE_ADMISSION_ONLY=1` (run
//! phase 8 alone) and `PRESBURGER_SERVE_REQUESTS` /
//! `PRESBURGER_SERVE_CONNS` / `PRESBURGER_SERVE_BENCH_OUT`.

use presburger_counting::Budgets;
use presburger_gen::{
    admission_request_lines, batched_request_lines, request_lines, AdmissionMix, GenConfig,
    GenRequest,
};
use presburger_serve::server::{serve_connection, Gate, Server};
use presburger_serve::{
    routing_hash, wire, AdmissionConfig, Chaos, QuotaConfig, RetryPolicy, Ring, ServeConfig,
    ShardPool, ShardPoolConfig,
};
use presburger_trace::json::JsonObject;
use presburger_trace::metrics::{AdmitDecision, ReqLane, ReqVerb};
use presburger_trace::shard::ShardRowSnapshot;
use std::io::{Cursor, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The splinter-heavy workload (the paper's Example 11): ~17 splinters
/// per count, so a `splinters_generated:*` fault always fires on it.
const SPLINTERY: &str = "exists beta : 3beta - alpha >= 0 && -3beta + alpha + 7 >= 0 \
                         && alpha - 2beta - 1 >= 0 && -alpha + 2beta + 5 >= 0";

/// A splinter-free workload: the armed fault can never fire on it, so
/// it doubles as the breaker's recovery probe.
const CLEAN: &str = "1 <= x <= 9";

#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> SharedBuf {
        SharedBuf(Arc::new(Mutex::new(Vec::new())))
    }

    fn take(&self) -> String {
        let bytes = self.0.lock().unwrap().clone();
        String::from_utf8(bytes).expect("invariant: the protocol emits UTF-8 only")
    }

    fn take_bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Replay-safe default budgets: generated formulas can be intractable
/// exactly (the fuzz harness skips them via a wall-clock deadline), but
/// deadlines are not replayable — count budgets are, because they are
/// charged per clause deterministically. Every request then terminates
/// quickly with a deterministic exact, bounded, or error reply.
fn replay_budgets() -> Budgets {
    Budgets {
        max_splinters: Some(512),
        max_dnf_clauses: Some(256),
        max_depth: Some(64),
        max_pieces: Some(20_000),
        max_coeff_bits: Some(512),
        ..Budgets::unlimited()
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// Runs `conns` concurrent connections over a fixed round-robin
/// partition of `requests`; returns the per-connection transcripts and
/// the wall time.
fn run_partitioned(
    workers: usize,
    requests: &[GenRequest],
    conns: usize,
) -> (Vec<String>, Duration) {
    let cfg = ServeConfig {
        workers,
        queue_depth: requests.len() + conns,
        default_deadline_ms: None, // wall-clock-free: replayable
        default_budgets: replay_budgets(),
        breaker_failures: 0, // see module docs: env faults stay per-request
        ..ServeConfig::default()
    };
    let server = Server::start(cfg);
    let started = Instant::now();
    let outputs: Vec<_> = (0..conns).map(|_| SharedBuf::new()).collect();
    thread::scope(|scope| {
        for (c, out) in outputs.iter().enumerate() {
            let handle = server.handle();
            let input: String = requests
                .iter()
                .skip(c)
                .step_by(conns)
                .map(|r| format!("{}\n", r.line))
                .collect();
            let out = out.clone();
            scope.spawn(move || {
                serve_connection(&handle, Cursor::new(input), out, false)
                    .expect("in-memory connection cannot fail");
            });
        }
    });
    let elapsed = started.elapsed();
    server.shutdown();
    (outputs.iter().map(SharedBuf::take).collect(), elapsed)
}

/// Decodes a binary-codec transcript into the flattened text lines its
/// replies stand for. A batch reply contributes one line per *inner*
/// answer (never one per frame), so the text-protocol accounting —
/// [`check_transcript`], [`census`], byte-identity against a text
/// baseline — applies unchanged to either codec.
fn flatten_binary_transcript(bytes: &[u8], label: &str) -> String {
    assert!(
        bytes.len() >= 3 && bytes[..3] == wire::preamble(),
        "{label}: binary transcript does not start with the preamble echo"
    );
    let mut pos = 3;
    let mut lines: Vec<String> = Vec::new();
    while pos < bytes.len() {
        let (reply, used) = wire::Reply::decode(&bytes[pos..])
            .unwrap_or_else(|e| panic!("{label}: undecodable reply frame at byte {pos}: {e:?}"));
        pos += used;
        // `Reply::Batch::to_text` joins inner answers with '\n', so one
        // push flattens the frame into per-answer lines.
        lines.push(reply.to_text());
    }
    lines.join("\n") + "\n"
}

/// Asserts one response per request, in request order, none shed.
/// Reply accounting is per answer *line*: binary transcripts go through
/// [`flatten_binary_transcript`] first, so batched replies count each
/// inner answer exactly once.
fn check_transcript(transcript: &str, expected_ids: &[&str], label: &str) {
    let lines: Vec<&str> = transcript.lines().collect();
    assert_eq!(
        lines.len(),
        expected_ids.len(),
        "{label}: {} responses for {} requests (lost or duplicated)",
        lines.len(),
        expected_ids.len()
    );
    for (line, want) in lines.iter().zip(expected_ids) {
        let mut tok = line.split_whitespace();
        let status = tok.next().unwrap_or("");
        let id = tok.next().unwrap_or("");
        assert!(
            status == "OK" || status == "ERR",
            "{label}: unexpected status line {line:?}"
        );
        assert_eq!(id, *want, "{label}: response out of order: {line:?}");
    }
}

fn phase_replay_determinism(n: usize, conns: usize) -> (usize, Duration) {
    println!("==> phase 1: replay determinism ({n} requests, {conns} connections)");
    let requests = request_lines(0xC0FFEE, n, &GenConfig::default());
    let mut baseline: Option<Vec<String>> = None;
    let mut elapsed = Duration::ZERO;
    for (run, workers) in [(1, 1), (2, 1), (3, 4), (4, 4)] {
        let (transcripts, took) = run_partitioned(workers, &requests, conns);
        for (c, t) in transcripts.iter().enumerate() {
            let ids: Vec<&str> = requests
                .iter()
                .skip(c)
                .step_by(conns)
                .map(|r| r.id.as_str())
                .collect();
            check_transcript(t, &ids, &format!("run {run} (workers={workers}) conn {c}"));
        }
        match &baseline {
            None => {
                baseline = Some(transcripts);
                elapsed = took;
            }
            Some(base) => assert_eq!(
                base, &transcripts,
                "run {run} (workers={workers}): transcript differs from run 1 — replay broken"
            ),
        }
        println!(
            "    run {run}: workers={workers} ok ({} ms)",
            took.as_millis()
        );
    }
    (n, elapsed)
}

fn phase_shedding() {
    println!("==> phase 2: load shedding under a tiny queue");
    let gate = Gate::new(true);
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 2,
        hold: Some(gate.clone()),
        default_deadline_ms: None,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg);
    let handle = server.handle();
    let slots: Vec<_> = (0..6)
        .map(|i| {
            let line = format!("count s{i} {{x : {CLEAN}}}");
            match presburger_serve::parse_request(&line).unwrap() {
                presburger_serve::Request::Query(q) => handle.submit(q),
                _ => unreachable!(),
            }
        })
        .collect();
    // Workers are gated, so exactly queue_depth requests were admitted
    // and the rest shed — deterministically.
    let mut sheds = 0;
    gate.open();
    for (i, slot) in slots.iter().enumerate() {
        let line = slot.wait();
        if line.starts_with("SHED ") {
            assert!(
                line.contains("reason=queue_full"),
                "shed {i} with wrong reason: {line}"
            );
            sheds += 1;
        } else {
            assert!(line.starts_with(&format!("OK s{i} ")), "bad reply: {line}");
        }
    }
    assert_eq!(sheds, 4, "expected exactly 4 sheds from a 2-deep queue");
    assert_eq!(handle.stats().sheds(), 4);
    PHASE2_REQUESTS.store(slots.len() as u64, Ordering::Relaxed);
    let stats = server.shutdown();
    println!("    4/6 shed as required; {stats}");
}

fn submit_line(handle: &presburger_serve::Handle, line: &str) -> String {
    match presburger_serve::parse_request(line).unwrap() {
        presburger_serve::Request::Query(q) => handle.submit(q).wait(),
        _ => unreachable!("stress submits queries only"),
    }
}

fn phase_breaker_drill() {
    println!("==> phase 3: breaker drill (fault splinters_generated:1:panic)");
    let cfg = ServeConfig {
        workers: 1,
        breaker_failures: 3,
        breaker_cooldown_ms: 50,
        default_deadline_ms: None,
        fault_spec: Some("splinters_generated:1:panic".to_string()),
        cache_entries: 0, // every request must hit the engine
        ..ServeConfig::default()
    };
    let server = Server::start(cfg);
    let handle = server.handle();

    // K consecutive worker panics → ERR internal ×3 → breaker opens.
    for i in 0..3 {
        let line = submit_line(&handle, &format!("count b{i} {{alpha : {SPLINTERY}}}"));
        assert!(
            line.starts_with(&format!("ERR b{i} internal ")),
            "fault did not surface as internal: {line}"
        );
    }
    assert_eq!(handle.stats().breaker_opens(), 1, "breaker failed to open");

    // Open breaker: the same request now degrades first — answered
    // with §4.6 bounds, without touching the (faulted) exact path.
    let line = submit_line(&handle, &format!("count b3 {{alpha : {SPLINTERY}}}"));
    assert!(
        line.starts_with("OK b3 bounded breaker_open "),
        "open breaker did not degrade-first: {line}"
    );
    assert!(handle.stats().degraded_first() >= 1);
    assert!(handle.stats_line().contains("breaker=open"));

    // After the cooldown, a clean request is the half-open probe; the
    // fault cannot fire on it (no splinters), so the breaker closes.
    thread::sleep(Duration::from_millis(60));
    let line = submit_line(&handle, &format!("count p0 {{x : {CLEAN}}}"));
    assert!(
        line.starts_with("OK p0 exact "),
        "probe did not succeed: {line}"
    );
    let stats = handle.stats_line();
    assert!(
        stats.contains("breaker=closed"),
        "breaker did not close after the probe: {stats}"
    );
    // And it stays closed for normal traffic.
    let line = submit_line(&handle, &format!("count p1 {{x : {CLEAN}}}"));
    assert!(line.starts_with("OK p1 exact "), "post-recovery: {line}");
    PHASE3_REQUESTS.store(6, Ordering::Relaxed);
    let stats = server.shutdown();
    println!("    opened after 3 internal errors, recovered via probe; {stats}");
}

fn phase_drain() {
    println!("==> phase 4: graceful drain");
    // The drain invariant is "no admitted request loses its response" —
    // with an env fault armed, splintery requests legitimately answer
    // ERR internal instead of OK, and that still counts as answered.
    let fault_armed = std::env::var("PRESBURGER_FAULT").is_ok();
    // A drain with queued work: everything admitted still answers,
    // within the drain deadline.
    let server = Server::start(ServeConfig {
        workers: 2,
        default_deadline_ms: None,
        drain_deadline_ms: 10_000,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let slots: Vec<_> = (0..20)
        .map(|i| {
            let line = format!("count d{i} {{alpha : {SPLINTERY}}}");
            match presburger_serve::parse_request(&line).unwrap() {
                presburger_serve::Request::Query(q) => handle.submit(q),
                _ => unreachable!(),
            }
        })
        .collect();
    let started = Instant::now();
    let stats = handle.drain();
    let took = started.elapsed();
    assert!(
        took < Duration::from_secs(10),
        "drain blew its deadline: {took:?}"
    );
    assert!(stats.starts_with("STATS "), "drain stats line: {stats}");
    for (i, slot) in slots.iter().enumerate() {
        let line = slot.wait();
        assert!(
            line.starts_with(&format!("OK d{i} "))
                || (fault_armed && line.starts_with(&format!("ERR d{i} internal"))),
            "in-flight request lost on drain: {line}"
        );
    }
    // Post-drain submissions shed with reason=draining.
    let line = submit_line(&handle, &format!("count late {{x : {CLEAN}}}"));
    assert!(
        line.starts_with("SHED late ") && line.contains("reason=draining"),
        "post-drain submit was not shed: {line}"
    );
    server.shutdown();

    // A zero-deadline drain cancels immediately but still answers
    // everything (bounded or cancelled — never lost).
    let server = Server::start(ServeConfig {
        workers: 1,
        default_deadline_ms: None,
        drain_deadline_ms: 0,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let slots: Vec<_> = (0..8)
        .map(|i| {
            let line = format!("count z{i} {{alpha : {SPLINTERY}}}");
            match presburger_serve::parse_request(&line).unwrap() {
                presburger_serve::Request::Query(q) => handle.submit(q),
                _ => unreachable!(),
            }
        })
        .collect();
    handle.drain();
    for (i, slot) in slots.iter().enumerate() {
        let line = slot.wait();
        assert!(
            line.starts_with(&format!("OK z{i} "))
                || line.starts_with(&format!("ERR z{i} cancelled"))
                || line.starts_with(&format!("SHED z{i} "))
                || (fault_armed && line.starts_with(&format!("ERR z{i} internal"))),
            "hard drain lost or corrupted a response: {line}"
        );
    }
    PHASE4_REQUESTS.store(20 + 1 + 8, Ordering::Relaxed);
    server.shutdown();
    println!("    clean drain within deadline; hard drain lost nothing");
}

fn phase_latency(n: usize, phase1_n: usize, phase1_elapsed: Duration) {
    println!("==> phase 5: latency ({n} sequential round-trips, histogram-derived)");
    let server = Server::start(ServeConfig {
        workers: 1,
        default_deadline_ms: None,
        default_budgets: replay_budgets(),
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let requests = request_lines(0xBEEF, n, &GenConfig::default());
    for r in &requests {
        match presburger_serve::parse_request(&r.line).unwrap() {
            presburger_serve::Request::Query(q) => {
                handle.submit(q).wait();
            }
            _ => unreachable!(),
        }
    }
    // The exposition the `metrics` verb serves must be well-formed under
    // this live load (full format pinning lives in the golden test).
    let exposition = handle.metrics_text();
    assert!(
        exposition.contains("presburger_requests_total{")
            && exposition.contains("# TYPE presburger_request_duration_us histogram")
            && exposition.ends_with("# EOF"),
        "metrics exposition smoke failed:\n{exposition}"
    );
    server.shutdown();

    // All percentiles come from the request-telemetry histograms: the
    // previous sorted-60-sample math had unbounded tail error, while a
    // log bucket bounds the relative error by its width.
    let metrics = &handle.telemetry().metrics;
    let overall = metrics.duration_merged(None);
    assert_eq!(
        overall.count, n as u64,
        "every round-trip must be observed exactly once"
    );
    let queue_wait = metrics.queue_wait_merged();
    let throughput = phase1_n as f64 / phase1_elapsed.as_secs_f64().max(1e-9);
    println!(
        "    p50={}us p90={}us p99={}us p999={}us queue_wait_p99={}us throughput={throughput:.0} req/s",
        overall.percentile(0.50),
        overall.percentile(0.90),
        overall.percentile(0.99),
        overall.percentile(0.999),
        queue_wait.percentile(0.99),
    );

    let out = std::env::var("PRESBURGER_SERVE_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_serve.json".to_string());
    if !out.is_empty() {
        let mut by_verb = JsonObject::new();
        let mut queue_by_verb = JsonObject::new();
        let mut overhead_by_verb = JsonObject::new();
        let mut splinters_by_verb = JsonObject::new();
        for v in ReqVerb::ALL {
            by_verb.field_raw(v.label(), &metrics.duration_merged(Some(v)).to_json());
            queue_by_verb.field_raw(v.label(), &metrics.queue_wait(v).to_json());
            overhead_by_verb.field_raw(v.label(), &metrics.govern_overhead(v).to_json());
            splinters_by_verb.field_raw(v.label(), &metrics.splinters(v).to_json());
        }
        let mut phases = JsonObject::new();
        phases
            .field_u64("replay", PHASE1_REQUESTS.load(Ordering::Relaxed))
            .field_u64("shedding", PHASE2_REQUESTS.load(Ordering::Relaxed))
            .field_u64("breaker", PHASE3_REQUESTS.load(Ordering::Relaxed))
            .field_u64("drain", PHASE4_REQUESTS.load(Ordering::Relaxed))
            .field_u64("latency", n as u64)
            .field_u64("chaos", PHASE6_REQUESTS.load(Ordering::Relaxed))
            .field_u64("binary", PHASE7_REQUESTS.load(Ordering::Relaxed))
            .field_u64("admission", PHASE8_REQUESTS.load(Ordering::Relaxed));
        let mut obj = JsonObject::new();
        obj.field_str("schema", "serve_bench_v5")
            .field_u64("requests", n as u64)
            .field_u64("p50_us", overall.percentile(0.50))
            .field_u64("p90_us", overall.percentile(0.90))
            .field_u64("p99_us", overall.percentile(0.99))
            .field_u64("p999_us", overall.percentile(0.999))
            .field_f64("throughput_rps", throughput)
            .field_u64("phase1_requests", phase1_n as u64)
            .field_u64("phase1_ms", phase1_elapsed.as_millis() as u64)
            .field_raw("phase_requests", &phases.finish())
            .field_raw("latency_us", &overall.to_json())
            .field_raw("latency_us_by_verb", &by_verb.finish())
            .field_raw("queue_wait_us", &queue_wait.to_json())
            .field_raw("queue_wait_us_by_verb", &queue_by_verb.finish())
            .field_raw("govern_overhead_us_by_verb", &overhead_by_verb.finish())
            .field_raw("splinters_by_verb", &splinters_by_verb.finish());
        if let Some(drills) = CHAOS_DRILLS.lock().unwrap().take() {
            obj.field_raw("chaos_drills", &drills);
        }
        if let Some(p7) = PHASE7_BENCH.lock().unwrap().take() {
            obj.field_raw("phase7", &p7);
        }
        if let Some(p8) = PHASE8_BENCH.lock().unwrap().take() {
            obj.field_raw("phase8", &p8);
        }
        if std::fs::write(&out, obj.finish() + "\n").is_ok() {
            println!("    wrote {out}");
        }
    }
}

/// A deterministic pool config for the chaos phase: bulkhead shards
/// with deep queues (no sheds), replay budgets, a fast supervisor and a
/// rescue deadline far beyond the run (the drills must prove
/// *re-dispatch*, not the §4.6 fallback).
fn chaos_pool_cfg(shards: usize, depth: usize, chaos: Option<Arc<Chaos>>) -> ShardPoolConfig {
    ShardPoolConfig {
        shards,
        shard_cfg: ServeConfig {
            workers: 1,
            queue_depth: depth,
            default_deadline_ms: None,
            default_budgets: replay_budgets(),
            breaker_failures: 0,
            ..ServeConfig::default()
        },
        probe_interval_ms: 2,
        // Far above any legitimate compute in the stress mix (the
        // heartbeat freezes for the whole of one compute, and an
        // oversubscribed box can stretch one to hundreds of ms): only
        // the injected forever-wedge may trip this.
        wedge_timeout_ms: 2_000,
        restart_backoff_ms: 5,
        rescue_after_ms: 60_000,
        chaos,
        ..ShardPoolConfig::default()
    }
}

/// Runs `conns` connections over the fixed round-robin partition of
/// `requests` against a supervised pool. `chaos` must be explicit: the
/// chaos-off baselines pass a disarmed `None` *after* main has cleared
/// `PRESBURGER_CHAOS` from the environment, so an env-armed drill can
/// never leak into them. Returns the per-connection transcripts, the
/// per-shard failover rows, and the final aggregated stats line.
fn run_pool_partitioned(
    shards: usize,
    requests: &[GenRequest],
    conns: usize,
    chaos: Option<Arc<Chaos>>,
) -> (Vec<String>, Vec<ShardRowSnapshot>, String) {
    let pool = ShardPool::start(chaos_pool_cfg(shards, requests.len() + conns, chaos));
    let handle = pool.handle();
    let outputs: Vec<_> = (0..conns).map(|_| SharedBuf::new()).collect();
    thread::scope(|scope| {
        for (c, out) in outputs.iter().enumerate() {
            let handle = handle.clone();
            let input: String = requests
                .iter()
                .skip(c)
                .step_by(conns)
                .map(|r| format!("{}\n", r.line))
                .collect();
            let out = out.clone();
            scope.spawn(move || {
                serve_connection(&handle, Cursor::new(input), out, false)
                    .expect("in-memory connection cannot fail");
            });
        }
    });
    let stats = pool.shutdown();
    (
        outputs.iter().map(SharedBuf::take).collect(),
        handle.shard_rows(),
        stats,
    )
}

/// Reply census of a transcript set: (exact, bounded, err, shed) —
/// the "masked counters" whose equality chaos on/off must preserve.
/// Counts answer lines, not frames: feed binary transcripts through
/// [`flatten_binary_transcript`] so each batched inner answer tallies
/// exactly once.
fn census(transcripts: &[String]) -> (u64, u64, u64, u64) {
    let mut c = (0, 0, 0, 0);
    for line in transcripts.iter().flat_map(|t| t.lines()) {
        let mut tok = line.split_whitespace();
        match (tok.next(), tok.nth(1)) {
            (Some("OK"), Some("exact")) => c.0 += 1,
            (Some("OK"), Some("bounded")) => c.1 += 1,
            (Some("ERR"), _) => c.2 += 1,
            (Some("SHED"), _) => c.3 += 1,
            other => panic!("census: unexpected reply {line:?} ({other:?})"),
        }
    }
    c
}

/// The shard the plurality of `requests` routes to at `shards` shards —
/// the most interesting place to arm chaos (its worker is guaranteed to
/// pop a 3rd job).
fn plurality_shard(requests: &[GenRequest], shards: usize) -> usize {
    let ring = Ring::new(shards, 64);
    let mut routed = vec![0u64; shards];
    for r in requests {
        if let Ok(presburger_serve::Request::Query(q)) = presburger_serve::parse_request(&r.line) {
            routed[ring.route(routing_hash(&q))] += 1;
        }
    }
    (0..shards)
        .max_by_key(|&s| routed[s])
        .expect("at least one shard")
}

/// One chaos drill: run with the fault armed, assert the transcripts
/// are byte-identical to the chaos-off baseline (zero lost, zero
/// degraded, zero reordered) and return the summed failover rows.
#[allow(clippy::too_many_arguments)]
fn chaos_drill(
    label: &str,
    site: &str,
    shards: usize,
    requests: &[GenRequest],
    conns: usize,
    baseline: &[String],
) -> (usize, Vec<ShardRowSnapshot>) {
    let armed = plurality_shard(requests, shards);
    let chaos = Arc::new(
        Chaos::parse(&format!("{site}:{armed}:3")).expect("drill chaos spec always parses"),
    );
    let (transcripts, rows, _) = run_pool_partitioned(shards, requests, conns, Some(chaos.clone()));
    assert!(
        chaos.fired(),
        "{label}: the armed fault never fired (shard {armed} popped < 3 jobs?)"
    );
    assert_eq!(
        baseline,
        &transcripts[..],
        "{label}: transcripts drifted from the chaos-off baseline"
    );
    assert_eq!(
        census(baseline),
        census(&transcripts),
        "{label}: reply census changed under chaos"
    );
    (armed, rows)
}

fn phase_chaos(n: usize, conns: usize, env_chaos: Option<Arc<Chaos>>) {
    println!("==> phase 6: supervised shard-pool chaos drills ({n} requests, {conns} connections)");
    let requests = request_lines(0xC0FFEE, n, &GenConfig::default());
    let ids_for = |c: usize| -> Vec<&str> {
        requests
            .iter()
            .skip(c)
            .step_by(conns)
            .map(|r| r.id.as_str())
            .collect()
    };

    // 6a: chaos off, the pool is transparent — byte-identical
    // transcripts at 1, 2 and 4 shards (replies are pure functions of
    // queries; routing only picks who computes them).
    let mut baselines: std::collections::HashMap<usize, Vec<String>> =
        std::collections::HashMap::new();
    for shards in [1usize, 2, 4] {
        let (transcripts, rows, stats) = run_pool_partitioned(shards, &requests, conns, None);
        for (c, t) in transcripts.iter().enumerate() {
            check_transcript(t, &ids_for(c), &format!("pool shards={shards} conn {c}"));
        }
        let routed: u64 = rows.iter().map(|r| r.routed).sum();
        assert_eq!(
            routed, n as u64,
            "every request must be routed exactly once"
        );
        assert!(
            stats.contains(" rescued=0 ") && stats.contains(" restarts=0"),
            "chaos-off run tripped the supervisor: {stats}"
        );
        if let Some(base) = baselines.get(&1) {
            assert_eq!(
                base, &transcripts,
                "shards={shards}: transcript differs from the 1-shard pool"
            );
        }
        println!("    shards={shards}: ok ({} routed)", routed);
        baselines.insert(shards, transcripts);
    }

    // 6b: deterministic drills. A kill mid-stream at every shard count,
    // a wedge and a delay at 2 shards — transcripts never change.
    let mut drill_rows: Vec<(String, usize, usize, Vec<ShardRowSnapshot>)> = Vec::new();
    for (site, shards) in [
        ("kill", 1),
        ("kill", 2),
        ("kill", 4),
        ("wedge", 2),
        ("delay", 2),
    ] {
        let label = format!("drill {site} shards={shards}");
        let (armed, rows) =
            chaos_drill(&label, site, shards, &requests, conns, &baselines[&shards]);
        let sum = |f: fn(&ShardRowSnapshot) -> u64| -> u64 { rows.iter().map(f).sum() };
        match site {
            "kill" => {
                assert_eq!(rows[armed].crashes, 1, "{label}: crash not detected");
                assert_eq!(sum(|r| r.wedges), 0, "{label}: spurious wedge");
                assert!(rows[armed].restarts >= 1, "{label}: shard not restarted");
                assert!(
                    sum(|r| r.redispatched) >= 1,
                    "{label}: orphan not re-dispatched"
                );
            }
            "wedge" => {
                assert_eq!(rows[armed].wedges, 1, "{label}: wedge not detected");
                assert_eq!(sum(|r| r.crashes), 0, "{label}: spurious crash");
                assert!(rows[armed].restarts >= 1, "{label}: shard not restarted");
                assert!(
                    sum(|r| r.redispatched) >= 1,
                    "{label}: orphan not re-dispatched"
                );
            }
            "delay" => {
                assert_eq!(
                    sum(|r| r.crashes + r.wedges + r.restarts + r.redispatched),
                    0,
                    "{label}: a 40ms delay must not trip the supervisor"
                );
            }
            _ => unreachable!(),
        }
        assert_eq!(
            sum(|r| r.rescued),
            0,
            "{label}: fallback fired instead of re-dispatch"
        );
        println!(
            "    {label}: armed shard {armed}, byte-identical transcripts, \
             crashes={} wedges={} restarts={} redispatched={}",
            sum(|r| r.crashes),
            sum(|r| r.wedges),
            sum(|r| r.restarts),
            sum(|r| r.redispatched),
        );
        drill_rows.push((site.to_string(), shards, armed, rows));
    }

    // 6c: an env-armed drill (`PRESBURGER_CHAOS`), at
    // `PRESBURGER_SERVE_SHARDS` shards: zero lost responses whatever
    // the spec targets (a shard index past the pool, or an nth never
    // reached, simply never fires — the invariant must hold anyway).
    if let Some(chaos) = env_chaos {
        let shards = env_usize("PRESBURGER_SERVE_SHARDS", 2).max(1);
        let base = baselines
            .get(&shards)
            .cloned()
            .unwrap_or_else(|| run_pool_partitioned(shards, &requests, conns, None).0);
        let (transcripts, rows, _) =
            run_pool_partitioned(shards, &requests, conns, Some(chaos.clone()));
        for (c, t) in transcripts.iter().enumerate() {
            check_transcript(t, &ids_for(c), &format!("env drill conn {c}"));
        }
        assert_eq!(
            base, transcripts,
            "env drill: transcripts drifted from the chaos-off baseline"
        );
        println!(
            "    env drill (shards={shards}): fired={} rescued={} — byte-identical",
            chaos.fired(),
            rows.iter().map(|r| r.rescued).sum::<u64>(),
        );
    }

    // 6d: the retry helper rides out deterministic queue-full sheds.
    let gate = Gate::new(true);
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        hold: Some(gate.clone()),
        default_deadline_ms: None,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let held = match presburger_serve::parse_request(&format!("count r0 {{x : {CLEAN}}}")).unwrap()
    {
        presburger_serve::Request::Query(q) => handle.submit(q),
        _ => unreachable!(),
    };
    let opener = thread::spawn({
        let gate = gate.clone();
        move || {
            thread::sleep(Duration::from_millis(30));
            gate.open();
        }
    });
    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay_ms: 15,
        max_delay_ms: 120,
    };
    let mut attempts = 0u32;
    let line = presburger_serve::submit_with_retry(&policy, "r1", || {
        attempts += 1;
        submit_line(&handle, &format!("count r1 {{x : {CLEAN}}}"))
    });
    assert!(
        line.starts_with("OK r1 exact "),
        "retry never landed: {line}"
    );
    assert!(attempts > 1, "the first attempt should have shed");
    assert!(held.wait().starts_with("OK r0 "));
    opener.join().expect("gate opener");
    server.shutdown();
    println!("    retry helper: landed after {attempts} attempts");

    // Record for BENCH_serve.json (consumed by phase 5's writer).
    PHASE6_REQUESTS.store((n * 8) as u64, Ordering::Relaxed);
    let drills =
        presburger_trace::json::array(drill_rows.into_iter().map(|(site, shards, armed, rows)| {
            let mut obj = JsonObject::new();
            obj.field_str("site", &site)
                .field_u64("shards", shards as u64)
                .field_u64("armed", armed as u64)
                .field_raw(
                    "rows",
                    &presburger_trace::json::array(rows.iter().enumerate().map(|(i, r)| {
                        let mut row = JsonObject::new();
                        row.field_u64("shard", i as u64)
                            .field_u64("routed", r.routed)
                            .field_u64("redispatched", r.redispatched)
                            .field_u64("rescued", r.rescued)
                            .field_u64("restarts", r.restarts)
                            .field_u64("crashes", r.crashes)
                            .field_u64("wedges", r.wedges);
                        row.finish()
                    })),
                );
            obj.finish()
        }));
    *CHAOS_DRILLS.lock().unwrap() = Some(drills);
}

fn phase_binary_protocol(n: usize) {
    println!("==> phase 7: binary codec ({n} requests, batches of 1..=16)");
    let cfg = GenConfig::default();
    let requests = request_lines(0xC0FFEE, n, &cfg);
    let batches = batched_request_lines(0xC0FFEE, n, &cfg, 16);
    let parsed: Vec<Vec<presburger_serve::Request>> = batches
        .iter()
        .map(|batch| {
            batch
                .iter()
                .map(|r| presburger_serve::parse_request(&r.line).expect("generated lines parse"))
                .collect()
        })
        .collect();
    let mut frames = Vec::new();
    for batch in &parsed {
        frames.extend_from_slice(&wire::encode_batch(batch).expect("batches are within limits"));
    }
    let mut input = wire::preamble().to_vec();
    input.extend_from_slice(&frames);
    let ids: Vec<&str> = requests.iter().map(|r| r.id.as_str()).collect();

    // 7a: semantic equality against the text protocol at 1, 2 and 4
    // shards (one connection, so both codecs share the request order),
    // chaos off and with a kill drill armed mid-stream. The binary
    // transcript must *decode to* exactly the text transcript.
    for shards in [1usize, 2, 4] {
        let (text, _, _) = run_pool_partitioned(shards, &requests, 1, None);
        let run_binary = |chaos: Option<Arc<Chaos>>, label: &str| -> String {
            // Workers stay gated until the whole stream is queued: the
            // drill must race re-dispatch against the *queue*, not
            // against the client's submission loop — at shards=1 there
            // is no sibling to absorb a submission that lands in the
            // few-ms restart window, and that failover is phase 6's
            // subject, not this phase's.
            let gate = Gate::new(true);
            let mut cfg = chaos_pool_cfg(shards, n + 1, chaos);
            cfg.shard_cfg.hold = Some(gate.clone());
            let pool = ShardPool::start(cfg);
            let handle = pool.handle();
            let out = SharedBuf::new();
            thread::scope(|scope| {
                let conn_handle = handle.clone();
                let conn_out = out.clone();
                let conn_input = Cursor::new(input.clone());
                scope.spawn(move || {
                    serve_connection(&conn_handle, conn_input, conn_out, false)
                        .expect("in-memory binary connection cannot fail");
                });
                for _ in 0..10_000 {
                    let routed: u64 = handle.shard_rows().iter().map(|r| r.routed).sum();
                    if routed >= n as u64 {
                        break;
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                gate.open();
            });
            pool.shutdown();
            flatten_binary_transcript(&out.take_bytes(), label)
        };
        let flat = run_binary(None, &format!("binary shards={shards}"));
        check_transcript(&flat, &ids, &format!("binary shards={shards}"));
        assert_eq!(
            text[0], flat,
            "shards={shards}: binary replies are not semantically identical to text"
        );
        let armed = plurality_shard(&requests, shards);
        let chaos =
            Arc::new(Chaos::parse(&format!("kill:{armed}:3")).expect("drill spec always parses"));
        let label = format!("binary kill drill shards={shards}");
        let chaotic = run_binary(Some(chaos.clone()), &label);
        assert!(chaos.fired(), "{label}: the armed fault never fired");
        assert_eq!(
            flat, chaotic,
            "{label}: binary replies drifted under the drill"
        );
        assert_eq!(
            census(std::slice::from_ref(&flat)),
            census(&[chaotic]),
            "{label}: reply census changed under chaos"
        );
        println!("    shards={shards}: binary == text, kill-drill-stable");
    }

    // 7b: framing-bound throughput. The generated stream's bounded and
    // error replies recompute every pass (only exact answers are
    // cached), so its wall time measures the *engine*, where the codecs
    // are identical by construction. Throughput instead uses a stream
    // of trivial distinct-id queries over a handful of formulas: after
    // one warm pass every answer is a cache hit, 4 workers drain the
    // queue faster than one connection can feed it, and the connection
    // thread's framing and admission are the bottleneck — the regime
    // batching targets: one queue reservation, one worker wake-up and
    // one gathered write per full `MAX_BATCH` frame instead of one
    // lock, one notify, one writer handoff and one write per line.
    // Best-of-5 per codec, interleaved so machine noise hits both;
    // batched binary must *strictly* beat text.
    let total = 8192usize;
    let tp_requests: Vec<GenRequest> = (0..total)
        .map(|i| GenRequest {
            id: format!("t{i}"),
            line: format!("count t{i} {{x : 1 <= x <= {}}}", 1 + i % 9),
        })
        .collect();
    let server = Server::start(ServeConfig {
        workers: 4,
        queue_depth: total + 1,
        default_deadline_ms: None,
        default_budgets: replay_budgets(),
        breaker_failures: 0,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let text_input: String = tp_requests
        .iter()
        .map(|r| format!("{}\n", r.line))
        .collect();
    let mut bin_input = wire::preamble().to_vec();
    {
        // Full frames: the throughput pass measures batching at its
        // design point (mixed sizes are covered by 7a and the
        // round-trip tests).
        let parsed: Vec<presburger_serve::Request> = tp_requests
            .iter()
            .map(|r| presburger_serve::parse_request(&r.line).expect("trivial lines parse"))
            .collect();
        for chunk in parsed.chunks(wire::MAX_BATCH) {
            bin_input.extend_from_slice(&wire::encode_batch(chunk).expect("within limits"));
        }
    }
    let run_text = || -> (String, Duration) {
        let out = SharedBuf::new();
        let started = Instant::now();
        serve_connection(&handle, Cursor::new(text_input.clone()), out.clone(), false)
            .expect("in-memory connection cannot fail");
        (out.take(), started.elapsed())
    };
    let run_bin = || -> (Vec<u8>, Duration) {
        let out = SharedBuf::new();
        let started = Instant::now();
        serve_connection(&handle, Cursor::new(bin_input.clone()), out.clone(), false)
            .expect("in-memory connection cannot fail");
        (out.take_bytes(), started.elapsed())
    };
    let (warm, _) = run_text(); // populate the result cache
    let mut text_best = Duration::MAX;
    let mut bin_best = Duration::MAX;
    for _ in 0..5 {
        let (t, took) = run_text();
        assert_eq!(warm, t, "warm text pass must replay byte-identically");
        text_best = text_best.min(took);
        let (b, took) = run_bin();
        assert_eq!(
            warm,
            flatten_binary_transcript(&b, "binary throughput pass"),
            "binary throughput pass decoded to different replies"
        );
        bin_best = bin_best.min(took);
    }
    server.shutdown();
    let text_rps = total as f64 / text_best.as_secs_f64().max(1e-9);
    let bin_rps = total as f64 / bin_best.as_secs_f64().max(1e-9);
    assert!(
        bin_best < text_best,
        "batched binary ({bin_rps:.0} req/s) did not beat text ({text_rps:.0} req/s) \
         on a warm cache"
    );
    println!(
        "    throughput (warm cache, {total} requests): text={text_rps:.0} req/s \
         binary={bin_rps:.0} req/s ({:.2}x)",
        bin_rps / text_rps
    );

    // 7c: the batch retry helper rides out a *partial* shed — a 4-deep
    // batch against a 2-deep gated queue admits two in position and
    // sheds two; only the shed indices are re-sent.
    let gate = Gate::new(true);
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 2,
        hold: Some(gate.clone()),
        default_deadline_ms: None,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let opener = thread::spawn({
        let gate = gate.clone();
        move || {
            thread::sleep(Duration::from_millis(30));
            gate.open();
        }
    });
    let retry_ids: Vec<String> = (0..4).map(|i| format!("t{i}")).collect();
    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay_ms: 15,
        max_delay_ms: 120,
    };
    let mut rounds = 0u32;
    let mut first_round_sheds = 0usize;
    let replies = presburger_serve::submit_batch_with_retry(&policy, &retry_ids, |want| {
        rounds += 1;
        let queries: Vec<_> = want
            .iter()
            .map(|&i| {
                let line = format!("count {} {{x : {CLEAN}}}", retry_ids[i]);
                match presburger_serve::parse_request(&line).unwrap() {
                    presburger_serve::Request::Query(q) => q,
                    _ => unreachable!(),
                }
            })
            .collect();
        let out: Vec<String> = handle
            .submit_batch(queries)
            .into_iter()
            .map(|s| s.wait())
            .collect();
        if rounds == 1 {
            first_round_sheds = out.iter().filter(|l| l.starts_with("SHED ")).count();
        }
        out
    });
    assert_eq!(
        first_round_sheds, 2,
        "a 4-deep batch on a 2-deep gated queue must shed exactly two"
    );
    assert!(rounds > 1, "the partial shed should have forced a retry");
    for (i, line) in replies.iter().enumerate() {
        assert!(
            line.starts_with(&format!("OK t{i} exact ")),
            "batch retry reply {i} wrong or out of position: {line}"
        );
    }
    opener.join().expect("gate opener");
    server.shutdown();
    println!("    batch retry: 2/4 partial shed healed in {rounds} rounds");

    PHASE7_REQUESTS.store((9 * n + 7 * total + 4) as u64, Ordering::Relaxed);
    let mut p7 = JsonObject::new();
    p7.field_u64("requests", total as u64)
        .field_u64("batch_size", wire::MAX_BATCH as u64)
        .field_f64("text_rps", text_rps)
        .field_f64("binary_rps", bin_rps)
        .field_f64("speedup", bin_rps / text_rps);
    *PHASE7_BENCH.lock().unwrap() = Some(p7.finish());
}

/// Client-side wall-clock p99 over a sample set, in microseconds.
fn p99_us(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[(samples.len() - 1) * 99 / 100]
}

fn phase_admission(n: usize) {
    println!("==> phase 8: deadline-aware admission control");
    // With an env fault armed, splintery requests legitimately answer
    // ERR internal; that still counts as answered (phase 4's rule).
    let fault_armed = std::env::var("PRESBURGER_FAULT").is_ok();

    // 8a: unloaded interactive p99 — the baseline the flooded run is
    // held to. The probe workload is splintery and the cache is off,
    // so every probe pays the same engine cost in both runs; any
    // difference between them is queueing, which is what the lanes
    // control.
    let probes = 50usize;
    let depth = 64usize;
    let mk_server = || {
        Server::start(ServeConfig {
            workers: 2,
            queue_depth: depth,
            default_deadline_ms: None,
            default_budgets: replay_budgets(),
            breaker_failures: 0,
            cache_entries: 0,
            ..ServeConfig::default()
        })
    };
    let probe_line = |i: usize| format!("count i{i} prio=interactive {{alpha : {SPLINTERY}}}");
    let probe_ok = |i: usize, line: &str| {
        line.starts_with(&format!("OK i{i} "))
            || (fault_armed && line.starts_with(&format!("ERR i{i} internal")))
    };
    let server = mk_server();
    let handle = server.handle();
    let mut unloaded: Vec<u64> = Vec::with_capacity(probes);
    for i in 0..probes {
        let started = Instant::now();
        let line = submit_line(&handle, &probe_line(i));
        assert!(probe_ok(i, &line), "unloaded probe: {line}");
        unloaded.push(started.elapsed().as_micros() as u64);
    }
    server.shutdown();
    let unloaded_p99 = p99_us(&mut unloaded);

    // 8b: background flood at 4× queue capacity, interactive probes
    // riding over it. Lanes order service but do not reserve capacity
    // — the shared queue can be momentarily full when a probe lands —
    // so a shed probe yields and re-submits (bounded; the flood is
    // finite and draining).
    let server = mk_server();
    let handle = server.handle();
    let flood_n = 4 * depth;
    let flood: Vec<_> = (0..flood_n)
        .map(|i| {
            let line = format!("count g{i} prio=background {{alpha : {SPLINTERY}}}");
            match presburger_serve::parse_request(&line).unwrap() {
                presburger_serve::Request::Query(q) => handle.submit(q),
                _ => unreachable!(),
            }
        })
        .collect();
    let mut flooded: Vec<u64> = Vec::with_capacity(probes);
    let mut probe_resubmits = 0u64;
    for i in 0..probes {
        let mut landed = false;
        for _ in 0..10_000 {
            let started = Instant::now();
            let line = submit_line(&handle, &probe_line(probes + i));
            if line.starts_with("SHED ") {
                probe_resubmits += 1;
                thread::sleep(Duration::from_millis(1));
                continue;
            }
            assert!(probe_ok(probes + i, &line), "flooded probe: {line}");
            flooded.push(started.elapsed().as_micros() as u64);
            landed = true;
            break;
        }
        assert!(
            landed,
            "probe i{} never landed: queue never drained",
            probes + i
        );
    }
    // Zero lost responses: every flood slot answers exactly once, as
    // either a served reply or a queue-full shed — never silence.
    let mut flood_answered = 0u64;
    let mut flood_shed = 0u64;
    for (i, slot) in flood.iter().enumerate() {
        let line = slot.wait();
        if line.starts_with(&format!("OK g{i} "))
            || (fault_armed && line.starts_with(&format!("ERR g{i} internal")))
        {
            flood_answered += 1;
        } else if line.starts_with(&format!("SHED g{i} ")) {
            assert!(
                line.contains("reason=queue_full"),
                "flood shed with wrong reason: {line}"
            );
            flood_shed += 1;
        } else {
            panic!("flood request g{i} lost or corrupted: {line}");
        }
    }
    assert_eq!(flood_answered + flood_shed, flood_n as u64);
    assert!(flood_shed > 0, "a 4x-capacity flood must shed");
    assert!(
        flood_answered >= depth as u64,
        "at least one queue-full of flood work must be admitted"
    );
    // Cross-check the client-side accounting against the admission
    // telemetry: every decision was observed on the lane that made it.
    let m = &handle.telemetry().metrics;
    assert_eq!(
        m.admission_total(ReqLane::Interactive, AdmitDecision::Admit),
        probes as u64,
        "every probe was admitted exactly once"
    );
    assert_eq!(
        m.admission_total(ReqLane::Interactive, AdmitDecision::ShedQueue),
        probe_resubmits,
        "probe re-submits match the interactive shed count"
    );
    assert_eq!(
        m.admission_total(ReqLane::Background, AdmitDecision::Admit),
        flood_answered
    );
    assert_eq!(
        m.admission_total(ReqLane::Background, AdmitDecision::ShedQueue),
        flood_shed
    );
    server.shutdown();
    let flooded_p99 = p99_us(&mut flooded);
    // The 3× ratio is the invariant; the absolute floor absorbs
    // scheduler jitter on oversubscribed CI boxes, where one
    // descheduled wake-up costs more than three unloaded round trips.
    let bound = (3 * unloaded_p99).max(20_000);
    assert!(
        flooded_p99 <= bound,
        "interactive p99 under flood: {flooded_p99}us > bound {bound}us \
         (unloaded {unloaded_p99}us) — the background flood leaked into the lane"
    );
    println!(
        "    lanes: unloaded p99={unloaded_p99}us flooded p99={flooded_p99}us \
         ({flood_shed}/{flood_n} flood sheds, {probe_resubmits} probe re-submits)"
    );

    // 8c: the quota worked example (DESIGN.md §16) end to end: burst 2
    // tokens, 250 milli-tokens back per attempt, 100 ms advertised per
    // tick. The admit/shed pattern and every computed hint are exact —
    // the ledger runs on a logical clock, not wall time.
    let server = Server::start(ServeConfig {
        workers: 1,
        default_deadline_ms: None,
        admission: AdmissionConfig {
            quota: Some(QuotaConfig {
                burst: 2,
                refill_milli: 250,
                tick_ms: 100,
            }),
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    });
    let handle = server.handle();
    for (id, shed_ms) in [
        ("q1", None),
        ("q2", None),
        ("q3", Some(200u64)),
        ("q4", Some(100)),
        ("q5", None),
        ("q6", Some(300)),
    ] {
        let line = submit_line(&handle, &format!("count {id} client=alice {{x : {CLEAN}}}"));
        match shed_ms {
            None => assert!(
                line.starts_with(&format!("OK {id} exact ")),
                "quota drill admit: {line}"
            ),
            Some(ms) => assert_eq!(
                line,
                format!("SHED {id} retry_after_ms={ms} reason=quota"),
                "quota drill hint drifted"
            ),
        }
    }
    // A different identity meters independently: a fresh bucket bursts.
    let line = submit_line(&handle, &format!("count q7 client=bob {{x : {CLEAN}}}"));
    assert!(line.starts_with("OK q7 exact "), "fresh client: {line}");
    server.shutdown();
    println!("    quota: admit/shed pattern and computed hints exact");

    // 8d: eviction drill. The worker is gated, so only the admission
    // layer can answer: a request that arrives already expired is
    // answered with §4.6 bounds at admission time; one that expires
    // while queued is evicted at pop time; an undeadlined sibling
    // queued behind it still computes exactly.
    let gate = Gate::new(true);
    let server = Server::start(ServeConfig {
        workers: 1,
        hold: Some(gate.clone()),
        default_deadline_ms: None,
        admission: AdmissionConfig {
            evict_expired: true,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let submit = |line: String| match presburger_serve::parse_request(&line).unwrap() {
        presburger_serve::Request::Query(q) => handle.submit(q),
        _ => unreachable!(),
    };
    let dead = submit(format!("count e0 deadline_ms=0 {{x : {CLEAN}}}"));
    assert_eq!(
        dead.wait(),
        "OK e0 bounded evicted 9 ; 9",
        "admission-time eviction must answer while the worker is gated"
    );
    let queued = submit(format!("count e1 deadline_ms=1 {{x : {CLEAN}}}"));
    let fresh = submit(format!("count e2 {{x : {CLEAN}}}"));
    thread::sleep(Duration::from_millis(20));
    gate.open();
    assert_eq!(
        queued.wait(),
        "OK e1 bounded evicted 9 ; 9",
        "pop-time eviction: the deadline lapsed in the queue"
    );
    assert_eq!(fresh.wait(), "OK e2 exact 9", "undeadlined sibling");
    server.shutdown();
    println!("    eviction: §4.6 bounds at admission time and at pop time");

    // 8e: determinism. An admission-optioned stream (prio= and client=
    // mixed in deterministically) replays byte-identically at 1, 2 and
    // 4 shards, chaos off and under a kill drill. One connection pins
    // the ledger's logical-clock order; deep queues keep queue_full —
    // whose outcome depends on wall-clock drain speed — out of the
    // decision space, so only lane and quota decisions fire.
    let requests =
        admission_request_lines(0xC0FFEE, n, &GenConfig::default(), &AdmissionMix::default());
    let ids: Vec<&str> = requests.iter().map(|r| r.id.as_str()).collect();
    let run_one = |shards: usize, chaos: Option<Arc<Chaos>>| -> String {
        let mut cfg = chaos_pool_cfg(shards, requests.len() + 1, chaos);
        cfg.shard_cfg.admission = AdmissionConfig {
            quota: Some(QuotaConfig {
                burst: 4,
                refill_milli: 500,
                tick_ms: 50,
            }),
            detail: true,
            evict_expired: true,
            ..AdmissionConfig::default()
        };
        let pool = ShardPool::start(cfg);
        let handle = pool.handle();
        let input: String = requests.iter().map(|r| format!("{}\n", r.line)).collect();
        let out = SharedBuf::new();
        serve_connection(&handle, Cursor::new(input), out.clone(), false)
            .expect("in-memory connection cannot fail");
        pool.shutdown();
        out.take()
    };
    let check_admission = |transcript: &str, label: &str| -> u64 {
        let lines: Vec<&str> = transcript.lines().collect();
        assert_eq!(
            lines.len(),
            ids.len(),
            "{label}: lost or duplicated replies"
        );
        let mut sheds = 0u64;
        for (line, want) in lines.iter().zip(&ids) {
            let mut tok = line.split_whitespace();
            let status = tok.next().unwrap_or("");
            assert!(
                matches!(status, "OK" | "ERR" | "SHED"),
                "{label}: unexpected status line {line:?}"
            );
            if status == "SHED" {
                assert!(
                    line.contains("reason=quota:"),
                    "{label}: only quota may shed here: {line}"
                );
                sheds += 1;
            }
            assert_eq!(
                tok.next().unwrap_or(""),
                *want,
                "{label}: out of order: {line:?}"
            );
        }
        sheds
    };
    let baseline = run_one(1, None);
    let quota_sheds = check_admission(&baseline, "admission shards=1");
    assert!(quota_sheds > 0, "the admission mix must exercise the quota");
    for shards in [2usize, 4] {
        let t = run_one(shards, None);
        check_admission(&t, &format!("admission shards={shards}"));
        assert_eq!(
            baseline, t,
            "admission decisions drifted at {shards} shards"
        );
    }
    let armed = plurality_shard(&requests, 2);
    let chaos =
        Arc::new(Chaos::parse(&format!("kill:{armed}:3")).expect("drill chaos spec always parses"));
    let t = run_one(2, Some(chaos.clone()));
    assert!(chaos.fired(), "admission kill drill: the fault never fired");
    assert_eq!(
        baseline, t,
        "admission decisions drifted under the kill drill — \
         failover re-metered the shared ledger"
    );
    println!(
        "    determinism: {quota_sheds} quota sheds, byte-identical at 1/2/4 shards \
         and under a kill drill"
    );

    PHASE8_REQUESTS.store(
        (2 * probes + flood_n + 7 + 3 + 4 * n) as u64 + probe_resubmits,
        Ordering::Relaxed,
    );
    let mut p8 = JsonObject::new();
    p8.field_u64("probes", probes as u64)
        .field_u64("unloaded_p99_us", unloaded_p99)
        .field_u64("flooded_p99_us", flooded_p99)
        .field_u64("flood_requests", flood_n as u64)
        .field_u64("flood_answered", flood_answered)
        .field_u64("flood_shed", flood_shed)
        .field_u64("probe_resubmits", probe_resubmits)
        .field_u64("quota_sheds", quota_sheds);
    *PHASE8_BENCH.lock().unwrap() = Some(p8.finish());
}

/// Per-phase request totals, recorded for `BENCH_serve.json`'s
/// `phase_requests` breakdown (phase 1 counts one run, not all four).
static PHASE1_REQUESTS: AtomicU64 = AtomicU64::new(0);
static PHASE2_REQUESTS: AtomicU64 = AtomicU64::new(0);
static PHASE3_REQUESTS: AtomicU64 = AtomicU64::new(0);
static PHASE4_REQUESTS: AtomicU64 = AtomicU64::new(0);
static PHASE6_REQUESTS: AtomicU64 = AtomicU64::new(0);
static PHASE7_REQUESTS: AtomicU64 = AtomicU64::new(0);
static PHASE8_REQUESTS: AtomicU64 = AtomicU64::new(0);

/// Phase 6's drill summary (JSON array), stashed for phase 5's bench
/// writer. `None` when the chaos phase has not run.
static CHAOS_DRILLS: Mutex<Option<String>> = Mutex::new(None);

/// Phase 7's codec-throughput summary (JSON object), stashed for phase
/// 5's bench writer. `None` when the binary phase has not run.
static PHASE7_BENCH: Mutex<Option<String>> = Mutex::new(None);

/// Phase 8's admission summary (JSON object), stashed for phase 5's
/// bench writer. `None` when the admission phase has not run.
static PHASE8_BENCH: Mutex<Option<String>> = Mutex::new(None);

fn main() {
    let n = env_usize("PRESBURGER_SERVE_REQUESTS", 200);
    let conns = env_usize("PRESBURGER_SERVE_CONNS", 4).max(1);
    // Read and clear the env-armed chaos up front: ShardPool::start
    // falls back to the environment, and the chaos-off baselines of
    // phase 6 must stay chaos-off.
    let env_chaos = Chaos::from_env().unwrap_or_else(|e| panic!("{e}"));
    std::env::remove_var("PRESBURGER_CHAOS");
    if std::env::var("PRESBURGER_SERVE_CHAOS_ONLY").is_ok_and(|v| v == "1") {
        phase_chaos(n, conns, env_chaos);
        println!("serve_stress: chaos phase passed");
        return;
    }
    if std::env::var("PRESBURGER_SERVE_ADMISSION_ONLY").is_ok_and(|v| v == "1") {
        phase_admission(n);
        println!("serve_stress: admission phase passed");
        return;
    }
    let (phase1_n, phase1_elapsed) = phase_replay_determinism(n, conns);
    PHASE1_REQUESTS.store(phase1_n as u64, Ordering::Relaxed);
    phase_shedding();
    phase_breaker_drill();
    phase_drain();
    phase_chaos(n, conns, env_chaos);
    phase_binary_protocol(n);
    phase_admission(n);
    phase_latency(n.min(60), phase1_n, phase1_elapsed);
    println!("serve_stress: all phases passed");
}
