//! Deadline-aware admission control: priority lanes, per-client
//! quotas, and load-derived backpressure hints.
//!
//! # Why admission is its own layer
//!
//! The worker queue ([`crate::server`]) is a bounded FIFO: one greedy
//! client can fill it and starve everyone, and a request whose deadline
//! expired while queued still burns a worker. This module supplies the
//! pure, deterministic decision machinery the server threads in front
//! of that queue:
//!
//! * **Priority lanes** ([`Lane`], [`LaneQueues`]) — requests carry an
//!   optional `prio=` override (`interactive` / `batch` / `background`,
//!   default `batch`); pops are strict-priority with an anti-starvation
//!   credit so a saturating interactive flood cannot park background
//!   work forever.
//! * **Per-client quotas** ([`QuotaConfig`], [`QuotaLedger`]) — a
//!   `client=` identity metered by a token bucket whose refill is
//!   driven by a *logical clock* advanced once per admission attempt of
//!   that client, never by wall time. Decisions are therefore a pure
//!   function of each client's attempt sequence: the same request
//!   stream sheds the same requests at any shard count, chaos on or
//!   off, which is what keeps golden transcripts byte-identical.
//! * **Load-derived hints** ([`load_hint_ms`]) — the `retry_after_ms`
//!   on a `queue_full` shed can be computed from queue depth × observed
//!   per-lane service time instead of a static constant.
//!
//! Expired-request *eviction* (the other half of deadline-awareness)
//! lives in the server's admission/pop paths, which own the clocks and
//! the §4.6 bound fallback; this module only decides and meters.
//!
//! See DESIGN.md §16 for the full architecture and rationale.

use std::collections::{HashMap, VecDeque};

/// A request priority lane. Strict-priority scheduling: `Interactive`
/// before `Batch` before `Background`, with an anti-starvation credit
/// for `Background` (see [`LaneQueues::pop`]).
///
/// Requests without a `prio=` override ride the `Batch` lane, so a
/// stream that never mentions priorities behaves exactly like the old
/// single-FIFO server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-sensitive traffic (a compiler inner loop, a REPL).
    Interactive,
    /// The default lane: ordinary request/response traffic.
    Batch,
    /// Best-effort traffic (bulk precomputation, cache warming).
    Background,
}

/// Number of lanes (array dimension for per-lane state).
pub const NUM_LANES: usize = 3;

impl Lane {
    /// Every lane, in strict-priority order (highest first).
    pub const ALL: [Lane; NUM_LANES] = [Lane::Interactive, Lane::Batch, Lane::Background];

    /// Dense index for per-lane arrays (priority order, 0 = highest).
    pub fn index(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Batch => 1,
            Lane::Background => 2,
        }
    }

    /// The protocol-facing name (`prio=` option value and metric
    /// label).
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Batch => "batch",
            Lane::Background => "background",
        }
    }

    /// Parses a `prio=` option value.
    pub fn parse(s: &str) -> Option<Lane> {
        match s {
            "interactive" => Some(Lane::Interactive),
            "batch" => Some(Lane::Batch),
            "background" => Some(Lane::Background),
            _ => None,
        }
    }

    /// The binary-wire encoding (a varint; see `crate::wire`).
    pub fn wire(self) -> u64 {
        self.index() as u64
    }

    /// Decodes the binary-wire value.
    pub fn from_wire(v: u64) -> Option<Lane> {
        match v {
            0 => Some(Lane::Interactive),
            1 => Some(Lane::Batch),
            2 => Some(Lane::Background),
            _ => None,
        }
    }
}

/// Admission-control configuration, part of
/// [`ServeConfig`](crate::server::ServeConfig).
///
/// The defaults are **legacy-preserving**: no quota, static
/// `retry_after_ms` hints, plain one-token shed reasons — so every
/// pre-admission golden transcript replays byte-identically. Features
/// are opted into per deployment (and per drill).
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Per-client token-bucket quota; `None` disables quota metering.
    pub quota: Option<QuotaConfig>,
    /// Compute `queue_full` retry hints from queue depth × observed
    /// per-lane service time instead of the static
    /// `ServeConfig::retry_after_ms`. (Quota hints are always computed
    /// — they come from the deterministic logical clock.)
    pub load_hints: bool,
    /// Extend shed `reason=` tokens with the shedding lane and the
    /// computed wait, e.g. `reason=quota:lane=batch:wait_ms=200`.
    /// Off by default: golden transcripts pin the plain tokens.
    pub detail: bool,
    /// Answer requests whose deadline elapsed while queued with the
    /// §4.6 budgeted bounds at pop time (and requests that arrive
    /// already expired at admission time) instead of burning a worker.
    pub evict_expired: bool,
    /// Shrink a request's execution deadline by its queue wait, so a
    /// request admitted with 100 ms that waited 40 ms runs under a
    /// 60 ms governor budget instead of overshooting.
    pub deadline_propagation: bool,
    /// Anti-starvation credit: after this many strict-priority pops
    /// that bypassed a waiting background request, the next pop takes
    /// the background lane.
    pub background_credit: u64,
    /// Ledger capacity: at most this many distinct client buckets;
    /// clients beyond the cap share one overflow bucket (bounded
    /// memory under an identity flood, still deterministic).
    pub max_clients: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            quota: None,
            load_hints: false,
            detail: false,
            evict_expired: true,
            deadline_propagation: true,
            background_credit: 4,
            max_clients: 1024,
        }
    }
}

/// Per-client token-bucket quota parameters. Costs are metered in
/// *milli-tokens* (one request = 1000) so refill rates below one token
/// per tick stay exact integers — no floats, no rounding drift.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Bucket capacity in whole tokens (burst size); also the initial
    /// fill, so a fresh client can burst immediately.
    pub burst: u64,
    /// Milli-tokens refilled per logical tick (one tick = one
    /// admission attempt by that client). `250` means a steady-state
    /// rate of one admit per four attempts.
    pub refill_milli: u64,
    /// Milliseconds a logical tick is *advertised* as in
    /// `retry_after_ms` hints. Purely a hint scale: the clock itself
    /// never reads wall time.
    pub tick_ms: u64,
}

/// One admission decision from the quota ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuotaDecision {
    /// Under quota: one token consumed, admit the request.
    Admit,
    /// Over quota: shed with this computed backoff hint.
    Shed {
        /// Logical ticks until the bucket can afford a token,
        /// converted to milliseconds via [`QuotaConfig::tick_ms`].
        retry_after_ms: u64,
    },
}

/// Milli-tokens per request.
const TOKEN_MILLI: u64 = 1000;

/// Cap on a computed quota hint (a zero-refill bucket would otherwise
/// advertise an infinite wait).
const QUOTA_HINT_CAP_MS: u64 = 60_000;

/// One client's bucket. The logical clock is implicit: refill happens
/// at the top of every [`Bucket::tick`], i.e. once per admission
/// attempt by this client — so the token level after attempt `n` is a
/// pure function of `n` and the config, independent of wall time,
/// thread interleaving, or what other clients are doing.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens_milli: u64,
}

impl Bucket {
    fn new(cfg: &QuotaConfig) -> Bucket {
        Bucket {
            tokens_milli: cfg.burst.saturating_mul(TOKEN_MILLI),
        }
    }

    /// One admission attempt: refill, then spend or shed.
    fn tick(&mut self, cfg: &QuotaConfig) -> QuotaDecision {
        let cap = cfg.burst.saturating_mul(TOKEN_MILLI);
        self.tokens_milli = self.tokens_milli.saturating_add(cfg.refill_milli).min(cap);
        if self.tokens_milli >= TOKEN_MILLI {
            self.tokens_milli -= TOKEN_MILLI;
            return QuotaDecision::Admit;
        }
        let deficit = TOKEN_MILLI - self.tokens_milli;
        let ticks = if cfg.refill_milli == 0 {
            u64::MAX
        } else {
            deficit.div_ceil(cfg.refill_milli)
        };
        QuotaDecision::Shed {
            retry_after_ms: ticks
                .saturating_mul(cfg.tick_ms)
                .clamp(1, QUOTA_HINT_CAP_MS),
        }
    }
}

/// The per-client quota ledger. A [`ShardPool`](crate::shard::ShardPool)
/// shares **one** ledger across all its shards (behind the pool's
/// submit lock ordering), so quota decisions are identical at any
/// shard count — the decision depends only on the client's attempt
/// sequence, which the pool front door sees in arrival order.
#[derive(Debug)]
pub struct QuotaLedger {
    cfg: QuotaConfig,
    max_clients: usize,
    buckets: std::sync::Mutex<HashMap<String, Bucket>>,
}

/// Key of the shared overflow bucket (outside the id charset, so it
/// can never collide with a real `client=` identity).
const OVERFLOW_CLIENT: &str = "@overflow";

impl QuotaLedger {
    /// A fresh ledger for `cfg` with at most `max_clients` distinct
    /// buckets.
    pub fn new(cfg: QuotaConfig, max_clients: usize) -> QuotaLedger {
        QuotaLedger {
            cfg,
            max_clients: max_clients.max(1),
            buckets: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// Meters one admission attempt by `client`. Advances that
    /// client's logical clock exactly once, whatever the decision.
    pub fn check(&self, client: &str) -> QuotaDecision {
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let key = if buckets.contains_key(client) || buckets.len() < self.max_clients {
            client
        } else {
            OVERFLOW_CLIENT
        };
        let cfg = self.cfg;
        buckets
            .entry(key.to_string())
            .or_insert_with(|| Bucket::new(&cfg))
            .tick(&cfg)
    }

    /// Number of distinct buckets currently held (observability).
    pub fn clients(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

/// Per-lane deques with strict-priority pop and a background
/// anti-starvation credit. Not itself thread-safe: the server keeps it
/// inside the existing queue mutex, so admission stays one critical
/// section.
#[derive(Debug)]
pub struct LaneQueues<T> {
    lanes: [VecDeque<T>; NUM_LANES],
    /// Strict-priority pops that bypassed a waiting background item
    /// since the last background pop.
    starve: u64,
    credit: u64,
}

impl<T> LaneQueues<T> {
    /// Empty queues with the given anti-starvation credit (`0` means
    /// a waiting background item is served on every pop — effectively
    /// round-robin against one higher lane).
    pub fn new(credit: u64) -> LaneQueues<T> {
        LaneQueues {
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            starve: 0,
            credit,
        }
    }

    /// Total queued items across lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }

    /// Queued items in one lane.
    pub fn lane_len(&self, lane: Lane) -> usize {
        self.lanes[lane.index()].len()
    }

    /// Enqueues at the back of `lane` (FIFO within a lane).
    pub fn push(&mut self, lane: Lane, item: T) {
        self.lanes[lane.index()].push_back(item);
    }

    /// Pops the next item: highest-priority non-empty lane, except
    /// that once `credit` consecutive pops have bypassed a waiting
    /// background item, the background lane is served (and the credit
    /// resets). Deterministic: the choice depends only on the queue
    /// contents and the starvation counter.
    pub fn pop(&mut self) -> Option<(Lane, T)> {
        let background_waiting = !self.lanes[Lane::Background.index()].is_empty();
        if background_waiting && self.starve >= self.credit {
            self.starve = 0;
            let item = self.lanes[Lane::Background.index()].pop_front()?;
            return Some((Lane::Background, item));
        }
        for lane in [Lane::Interactive, Lane::Batch] {
            if let Some(item) = self.lanes[lane.index()].pop_front() {
                if background_waiting {
                    self.starve += 1;
                }
                return Some((lane, item));
            }
        }
        let item = self.lanes[Lane::Background.index()].pop_front()?;
        self.starve = 0;
        Some((Lane::Background, item))
    }

    /// Drains every lane, highest priority first (used by shutdown
    /// paths that must answer everything still queued).
    pub fn drain_all(&mut self) -> Vec<(Lane, T)> {
        let mut out = Vec::with_capacity(self.len());
        for lane in Lane::ALL {
            for item in self.lanes[lane.index()].drain(..) {
                out.push((lane, item));
            }
        }
        self.starve = 0;
        out
    }
}

/// A load-derived backpressure hint: how long a shed client should
/// wait before retrying, estimated as the work queued ahead of it
/// (`depth_ahead` requests × `mean_service_us` each), clamped to
/// `[floor_ms, cap_ms]`. The floor keeps the hint at least as patient
/// as the static default; the cap keeps a pathological histogram from
/// advertising an hour.
pub fn load_hint_ms(depth_ahead: u64, mean_service_us: u64, floor_ms: u64, cap_ms: u64) -> u64 {
    let est_ms = depth_ahead.saturating_mul(mean_service_us) / 1000;
    est_ms.clamp(floor_ms, cap_ms.max(floor_ms))
}

/// Renders a shed `reason=` token: the plain cause, or — with
/// [`AdmissionConfig::detail`] — the cause extended with the shedding
/// lane and computed wait (`quota:lane=batch:wait_ms=200`). Colon-
/// separated and space-free, so the token survives the binary wire
/// codec's reason grammar and `retry` helpers can match the cause by
/// prefix.
pub fn shed_reason(cause: &str, lane: Lane, wait_ms: u64, detail: bool) -> String {
    if detail {
        format!("{cause}:lane={}:wait_ms={wait_ms}", lane.name())
    } else {
        cause.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUOTA: QuotaConfig = QuotaConfig {
        burst: 2,
        refill_milli: 250,
        tick_ms: 100,
    };

    /// The worked example pinned by the golden quota session and the
    /// serve_stress quota drill: burst 2, refill 250 milli/tick.
    #[test]
    fn token_bucket_follows_the_worked_example() {
        let ledger = QuotaLedger::new(QUOTA, 16);
        let decisions: Vec<QuotaDecision> = (0..6).map(|_| ledger.check("c1")).collect();
        assert_eq!(
            decisions,
            vec![
                QuotaDecision::Admit,
                QuotaDecision::Admit,
                QuotaDecision::Shed {
                    retry_after_ms: 200
                },
                QuotaDecision::Shed {
                    retry_after_ms: 100
                },
                QuotaDecision::Admit,
                QuotaDecision::Shed {
                    retry_after_ms: 300
                },
            ]
        );
    }

    #[test]
    fn quota_clients_are_independent() {
        let ledger = QuotaLedger::new(QUOTA, 16);
        // Drain c1 to a shed; c2's clock is untouched.
        for _ in 0..3 {
            ledger.check("c1");
        }
        assert_eq!(ledger.check("c2"), QuotaDecision::Admit);
        assert_eq!(ledger.clients(), 2);
    }

    /// The tentpole determinism property: decisions are a pure function
    /// of each client's attempt sequence — three independent ledgers
    /// fed the same interleaved sequence agree decision-for-decision.
    #[test]
    fn quota_decisions_are_deterministic_across_runs() {
        // A deterministic pseudo-random interleaving of 4 clients.
        let seq: Vec<String> = (0..200u64)
            .map(|i| format!("c{}", (i.wrapping_mul(2654435761) >> 7) % 4))
            .collect();
        let runs: Vec<Vec<QuotaDecision>> = (0..3)
            .map(|_| {
                let ledger = QuotaLedger::new(QUOTA, 16);
                seq.iter().map(|c| ledger.check(c)).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        // And per-client subsequences are what a solo run would give:
        // the ledger never couples clients.
        for client in ["c0", "c1", "c2", "c3"] {
            let solo = QuotaLedger::new(QUOTA, 16);
            let expect: Vec<QuotaDecision> = seq
                .iter()
                .filter(|c| c.as_str() == client)
                .map(|_| solo.check(client))
                .collect();
            let got: Vec<QuotaDecision> = runs[0]
                .iter()
                .zip(&seq)
                .filter(|(_, c)| c.as_str() == client)
                .map(|(d, _)| *d)
                .collect();
            assert_eq!(got, expect, "client {client} decisions are self-contained");
        }
    }

    #[test]
    fn ledger_cap_folds_excess_clients_into_one_bucket() {
        let ledger = QuotaLedger::new(QUOTA, 2);
        assert_eq!(ledger.check("a"), QuotaDecision::Admit);
        assert_eq!(ledger.check("b"), QuotaDecision::Admit);
        // c and d share the overflow bucket: two bursts of 2 drain it.
        for _ in 0..2 {
            assert_eq!(ledger.check("c"), QuotaDecision::Admit);
        }
        assert!(matches!(ledger.check("d"), QuotaDecision::Shed { .. }));
        // Known clients keep their own buckets.
        assert_eq!(ledger.check("a"), QuotaDecision::Admit);
        assert_eq!(ledger.clients(), 3, "a, b, and the overflow bucket");
    }

    #[test]
    fn zero_refill_sheds_with_the_capped_hint() {
        let ledger = QuotaLedger::new(
            QuotaConfig {
                burst: 1,
                refill_milli: 0,
                tick_ms: 100,
            },
            4,
        );
        assert_eq!(ledger.check("c"), QuotaDecision::Admit);
        assert_eq!(
            ledger.check("c"),
            QuotaDecision::Shed {
                retry_after_ms: QUOTA_HINT_CAP_MS
            }
        );
    }

    #[test]
    fn lanes_pop_in_strict_priority_order() {
        let mut q = LaneQueues::new(4);
        q.push(Lane::Background, "g1");
        q.push(Lane::Batch, "b1");
        q.push(Lane::Interactive, "i1");
        q.push(Lane::Interactive, "i2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!["i1", "i2", "b1", "g1"]);
    }

    /// The anti-starvation guarantee: under a saturating interactive
    /// flood, a waiting background request is served at least once per
    /// `credit + 1` pops.
    #[test]
    fn background_makes_progress_under_an_interactive_flood() {
        let credit = 4u64;
        let mut q = LaneQueues::new(credit);
        for i in 0..10 {
            q.push(Lane::Background, format!("g{i}"));
        }
        // Saturating flood: re-arm an interactive item before each pop.
        let mut background_served = 0usize;
        let mut since_background = 0u64;
        for pop in 0..200u64 {
            q.push(Lane::Interactive, format!("i{pop}"));
            let (lane, _) = q.pop().expect("queue never empties");
            if lane == Lane::Background {
                background_served += 1;
                since_background = 0;
            } else {
                since_background += 1;
                assert!(
                    since_background <= credit,
                    "background starved past the credit at pop {pop}"
                );
            }
            if background_served == 10 {
                break;
            }
        }
        assert_eq!(background_served, 10, "every background item was served");
    }

    /// The scheduler is a deterministic function of the push/pop
    /// sequence: three replays agree lane-for-lane.
    #[test]
    fn lane_scheduling_is_deterministic_across_runs() {
        let script: Vec<(u64, Lane)> = (0..300u64)
            .map(|i| {
                let r = (i.wrapping_mul(0x9e3779b97f4a7c15) >> 13) % 4;
                let lane = match r {
                    0 => Lane::Interactive,
                    1 | 2 => Lane::Batch,
                    _ => Lane::Background,
                };
                (i, lane)
            })
            .collect();
        let run = || -> Vec<(Lane, u64)> {
            let mut q = LaneQueues::new(3);
            let mut out = Vec::new();
            for (i, lane) in &script {
                q.push(*lane, *i);
                // Pop every other push, then drain.
                if i % 2 == 1 {
                    if let Some(got) = q.pop() {
                        out.push(got);
                    }
                }
            }
            while let Some(got) = q.pop() {
                out.push(got);
            }
            out
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a, run());
        assert_eq!(a.len(), script.len(), "every pushed item pops exactly once");
    }

    #[test]
    fn background_only_traffic_resets_the_credit() {
        let mut q = LaneQueues::new(2);
        q.push(Lane::Background, 1);
        q.push(Lane::Background, 2);
        assert_eq!(q.pop(), Some((Lane::Background, 1)));
        // A normal background pop resets starvation accounting.
        q.push(Lane::Interactive, 10);
        assert_eq!(q.pop(), Some((Lane::Interactive, 10)));
        assert_eq!(q.pop(), Some((Lane::Background, 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn load_hint_scales_and_clamps() {
        // 8 requests ahead at 2 ms each → 16 ms, floored to 50.
        assert_eq!(load_hint_ms(8, 2_000, 50, 10_000), 50);
        // 64 ahead at 5 ms each → 320 ms.
        assert_eq!(load_hint_ms(64, 5_000, 50, 10_000), 320);
        // Pathological service time hits the cap.
        assert_eq!(load_hint_ms(1_000, 1_000_000, 50, 10_000), 10_000);
        // A floor above the cap never inverts the clamp.
        assert_eq!(load_hint_ms(1, 1, 500, 100), 500);
    }

    #[test]
    fn shed_reasons_render_plain_and_detailed() {
        assert_eq!(
            shed_reason("queue_full", Lane::Batch, 50, false),
            "queue_full"
        );
        assert_eq!(
            shed_reason("quota", Lane::Background, 200, true),
            "quota:lane=background:wait_ms=200"
        );
        assert!(!shed_reason("quota", Lane::Interactive, 1, true).contains(' '));
    }

    #[test]
    fn lane_names_and_wire_values_round_trip() {
        for lane in Lane::ALL {
            assert_eq!(Lane::parse(lane.name()), Some(lane));
            assert_eq!(Lane::from_wire(lane.wire()), Some(lane));
        }
        assert_eq!(Lane::parse("urgent"), None);
        assert_eq!(Lane::from_wire(3), None);
    }
}
