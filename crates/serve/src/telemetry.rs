//! Request-scoped telemetry for the serving pipeline: per-request
//! capture, the slow-request flight recorder, and the JSONL event log.
//!
//! Every request that reaches a worker produces one
//! [`RequestTelemetry`]: its queue wait (admission → worker pop),
//! end-to-end latency, governed-engine time, outcome class, and — when
//! counter capture is on — the pipeline-counter delta attributable to
//! just that request (snapshot-diff around the worker's run, the same
//! trick `ForkHandle::finish` uses). [`Telemetry::record`] fans the
//! observation out to three consumers:
//!
//! 1. the histogram/counter registry
//!    ([`presburger_trace::metrics::RequestMetrics`]), exposed by the
//!    `metrics` protocol verb in Prometheus text format — the same
//!    registry the connection drivers feed per-codec request counters
//!    and binary batch-size observations into
//!    (`presburger_codec_requests_total`, `presburger_batch_size`; see
//!    [`crate::wire`]);
//! 2. the **flight recorder** — a bounded ring that retains the *full
//!    evidence* (rendered formula, counter deltas, span tree) for any
//!    request that exceeded the latency threshold or tripped the
//!    governor, dumpable on demand with the `flightrec` verb;
//! 3. the opt-in **JSONL event log** — one sampled event per request,
//!    handed to a dedicated writer thread over a bounded channel. The
//!    worker never blocks on telemetry I/O: on backpressure the event
//!    is dropped and counted (`presburger_events_dropped_total`), and
//!    the writer is line-buffered and fsync-free.
//!
//! Telemetry is strictly observational: it never changes a response
//! byte, so golden-transcript replay stays byte-identical with all of
//! it enabled (`serve_stress` phase 1 runs with the defaults on).

use crate::sync::lock_ok;
use presburger_trace::metrics::{ReqLane, ReqOutcome, ReqVerb, RequestMetrics, RequestObservation};
use presburger_trace::{self as trace, json::JsonObject, PipelineStats, SpanTree};
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::Duration;

/// Telemetry configuration, part of
/// [`ServeConfig`](crate::server::ServeConfig). The default enables
/// the in-memory consumers (histograms, counter capture, flight
/// recorder) and leaves the event log off unless `PRESBURGER_EVENT_LOG`
/// names a path.
#[derive(Clone, Debug)]
pub struct TelemetrySettings {
    /// Record request histograms and counter families (`metrics` verb).
    pub metrics: bool,
    /// Capture per-request pipeline-counter deltas (snapshot-diff on
    /// the worker). Powers splinter attribution, the flight recorder's
    /// counter evidence, and governor-trip detection.
    pub capture_counters: bool,
    /// Capture span trees on workers so flight records carry the full
    /// derivation of a slow request. Costs allocations per span while
    /// on; independent of the engine's answer. **Off by default**: span
    /// tracing forces sub-problem memoization to stand down on the
    /// worker (a memo hit skips the body, so its spans and explain
    /// events could not be reproduced — see
    /// [`presburger_trace::memo::active`]), and cross-request memo hits
    /// are worth more to a serving process than always-on span trees.
    pub capture_spans: bool,
    /// Flight-recorder ring capacity (newest wins); `0` disables it.
    pub flight_records: usize,
    /// A request at least this slow (end-to-end, microseconds) is
    /// flight-recorded even if it tripped nothing.
    pub flight_threshold_us: u64,
    /// JSONL event-log path; `None` disables the log. Defaults from
    /// `PRESBURGER_EVENT_LOG`.
    pub event_log: Option<String>,
    /// Log every `n`-th request (`0` and `1` both mean every request).
    /// Defaults from `PRESBURGER_EVENT_SAMPLE`.
    pub event_sample: u64,
}

impl Default for TelemetrySettings {
    fn default() -> TelemetrySettings {
        TelemetrySettings {
            metrics: true,
            capture_counters: true,
            capture_spans: false,
            flight_records: 64,
            flight_threshold_us: 250_000,
            event_log: std::env::var("PRESBURGER_EVENT_LOG")
                .ok()
                .filter(|p| !p.is_empty()),
            event_sample: std::env::var("PRESBURGER_EVENT_SAMPLE")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(1),
        }
    }
}

impl TelemetrySettings {
    /// Everything off — the configuration `overhead_smoke` measures.
    pub fn disabled() -> TelemetrySettings {
        TelemetrySettings {
            metrics: false,
            capture_counters: false,
            capture_spans: false,
            flight_records: 0,
            flight_threshold_us: u64::MAX,
            event_log: None,
            event_sample: 1,
        }
    }
}

/// Everything measured about one request, assembled on the worker after
/// the reply is rendered (telemetry rides behind the response, never in
/// front of it).
#[derive(Debug)]
pub struct RequestTelemetry {
    /// The request id (echoed on the wire).
    pub id: String,
    /// Request verb.
    pub verb: ReqVerb,
    /// Outcome class of the reply.
    pub outcome: ReqOutcome,
    /// The priority lane the request rode through admission
    /// (`Batch` when it carried no `prio=` override).
    pub lane: ReqLane,
    /// Admission → worker pop.
    pub queue_wait: Duration,
    /// Worker pop → reply rendered (end-to-end execution time).
    pub total: Duration,
    /// Time inside the governed engine run (zero for cache hits and
    /// parse errors).
    pub engine: Duration,
    /// Pipeline-counter delta attributable to this request, when
    /// capture is on.
    pub counters: Option<PipelineStats>,
    /// The governor tripped a budget/deadline/cancel during this
    /// request (derived from the counter delta).
    pub governor_tripped: bool,
    /// The canonically re-rendered formula (or the raw text when
    /// parsing failed) — what a flight record replays from.
    pub formula: String,
    /// Span tree collected on the worker, when span capture is on.
    pub spans: Option<SpanTree>,
}

/// One retained flight-recorder entry: the full evidence for a slow or
/// governor-tripped request.
#[derive(Clone, Debug)]
pub struct FlightRecord {
    /// Monotonic capture sequence number (process-wide).
    pub seq: u64,
    /// Request id.
    pub id: String,
    /// Verb label (`count` / `sum`).
    pub verb: &'static str,
    /// Outcome label (`ok` / `bounded` / `err` / `cache_hit`).
    pub outcome: &'static str,
    /// Queue wait in microseconds.
    pub queue_wait_us: u64,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// Governed-engine time in microseconds.
    pub engine_us: u64,
    /// Whether the governor tripped.
    pub governor_tripped: bool,
    /// Why the record was captured: `slow`, `governor_trip`, or both.
    pub trigger: &'static str,
    /// Canonical formula text.
    pub formula: String,
    /// Nonzero counter deltas as `(name, value)` pairs.
    pub counters: Vec<(&'static str, u64)>,
    /// The span tree, pre-rendered to JSON (kept as text so the ring
    /// holds plain data).
    pub spans_json: Option<String>,
}

impl FlightRecord {
    /// One JSON object (one line of a `flightrec` dump).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("seq", self.seq)
            .field_str("id", &self.id)
            .field_str("verb", self.verb)
            .field_str("outcome", self.outcome)
            .field_str("trigger", self.trigger)
            .field_u64("queue_wait_us", self.queue_wait_us)
            .field_u64("total_us", self.total_us)
            .field_u64("engine_us", self.engine_us)
            .field_bool("governor_tripped", self.governor_tripped)
            .field_str("formula", &self.formula);
        let mut counters = JsonObject::new();
        for (name, v) in &self.counters {
            counters.field_u64(name, *v);
        }
        obj.field_raw("counters", &counters.finish());
        if let Some(spans) = &self.spans_json {
            obj.field_raw("spans", spans);
        }
        obj.finish()
    }
}

/// The per-server telemetry hub, shared by every worker and connection.
pub struct Telemetry {
    settings: TelemetrySettings,
    /// The histogram/counter registry behind the `metrics` verb.
    pub metrics: RequestMetrics,
    flight: Mutex<VecDeque<FlightRecord>>,
    seq: AtomicU64,
    event_log: Option<EventLog>,
}

impl Telemetry {
    /// Builds the hub; opens the event-log writer when configured.
    /// Telemetry must never take a server down: an unopenable log path
    /// disables the log with a warning instead of failing startup.
    pub fn new(settings: TelemetrySettings) -> Telemetry {
        let event_log = settings
            .event_log
            .as_ref()
            .and_then(|path| match EventLog::open(path) {
                Ok(log) => Some(log),
                Err(e) => {
                    eprintln!("serve: event log {path:?} disabled: {e}");
                    None
                }
            });
        Telemetry {
            metrics: RequestMetrics::new(settings.metrics),
            flight: Mutex::new(VecDeque::new()),
            seq: AtomicU64::new(0),
            event_log,
            settings,
        }
    }

    /// The active settings.
    pub fn settings(&self) -> &TelemetrySettings {
        &self.settings
    }

    /// Called once per worker thread before its first job: turns on the
    /// thread-local collection modes the settings need.
    pub fn worker_init(&self) {
        if self.settings.capture_counters {
            trace::enable_counters(true);
        }
        if self.settings.capture_spans && self.settings.flight_records > 0 {
            trace::enable_tracing(true);
        }
    }

    /// Snapshot taken just before a request runs; the delta partner of
    /// [`take_spans`](Telemetry::take_spans).
    pub fn counter_baseline(&self) -> Option<PipelineStats> {
        self.settings.capture_counters.then(trace::snapshot)
    }

    /// Drains the span tree the request just grew on this worker (empty
    /// unless span capture is on).
    pub fn take_spans(&self) -> Option<SpanTree> {
        (self.settings.capture_spans && self.settings.flight_records > 0)
            .then(trace::span::take_tree)
    }

    /// Whether anything at all is being recorded (fast bail for the
    /// worker loop).
    pub fn active(&self) -> bool {
        self.settings.metrics
            || self.settings.capture_counters
            || self.settings.flight_records > 0
            || self.event_log.is_some()
    }

    /// Records one completed request: histograms, flight recorder, and
    /// the sampled event log. Never blocks on I/O.
    pub fn record(&self, telem: RequestTelemetry) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let total_us = telem.total.as_micros() as u64;
        let queue_wait_us = telem.queue_wait.as_micros() as u64;
        let engine_us = telem.engine.as_micros() as u64;

        self.metrics.observe_request(RequestObservation {
            verb: telem.verb,
            outcome: telem.outcome,
            lane: telem.lane,
            duration_us: total_us,
            queue_wait_us,
            govern_overhead_us: total_us.saturating_sub(engine_us),
            splinters: telem
                .counters
                .as_ref()
                .map(trace::metrics::splinters_from_delta),
        });

        let slow = total_us >= self.settings.flight_threshold_us;
        if self.settings.flight_records > 0 && (slow || telem.governor_tripped) {
            let trigger = match (slow, telem.governor_tripped) {
                (true, true) => "slow+governor_trip",
                (true, false) => "slow",
                _ => "governor_trip",
            };
            let record = FlightRecord {
                seq,
                id: telem.id.clone(),
                verb: telem.verb.label(),
                outcome: telem.outcome.label(),
                queue_wait_us,
                total_us,
                engine_us,
                governor_tripped: telem.governor_tripped,
                trigger,
                formula: telem.formula.clone(),
                counters: telem
                    .counters
                    .as_ref()
                    .map(|d| d.nonzero().map(|(c, v)| (c.name(), v)).collect())
                    .unwrap_or_default(),
                spans_json: telem.spans.as_ref().map(SpanTree::to_json),
            };
            let mut ring = lock_ok(&self.flight);
            if ring.len() >= self.settings.flight_records {
                ring.pop_front();
            }
            ring.push_back(record);
            drop(ring);
            self.metrics.bump_flight_records();
        }

        if let Some(log) = &self.event_log {
            let sample = self.settings.event_sample.max(1);
            if seq.is_multiple_of(sample) {
                if log.try_log(self.event_json(seq, &telem)) {
                    self.metrics.bump_events_logged();
                } else {
                    self.metrics.bump_events_dropped();
                }
            }
        }
    }

    /// The structured event for one request (one JSONL line).
    fn event_json(&self, seq: u64, telem: &RequestTelemetry) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("seq", seq)
            .field_str("id", &telem.id)
            .field_str("verb", telem.verb.label())
            .field_str("outcome", telem.outcome.label())
            .field_u64("queue_wait_us", telem.queue_wait.as_micros() as u64)
            .field_u64("total_us", telem.total.as_micros() as u64)
            .field_u64("engine_us", telem.engine.as_micros() as u64)
            .field_bool("governor_tripped", telem.governor_tripped);
        if let Some(delta) = &telem.counters {
            obj.field_raw("counters", &delta.to_json_nonzero());
        }
        obj.finish()
    }

    /// The current flight-recorder contents, oldest first.
    pub fn flight_records(&self) -> Vec<FlightRecord> {
        lock_ok(&self.flight).iter().cloned().collect()
    }

    /// The `flightrec` verb's reply: one JSON object per record, `# EOF`
    /// terminated.
    pub fn flight_dump(&self) -> String {
        let mut out = String::new();
        for r in self.flight_records() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out.push_str("# EOF");
        out
    }

    /// The `metrics` verb's reply: Prometheus text exposition, `# EOF`
    /// terminated (also OpenMetrics' end marker). Alongside the
    /// request-scoped registry it exposes the process-wide memoization
    /// totals ([`presburger_trace::memo::stats`]): hit/miss counters
    /// and the shared-tier residency gauges.
    pub fn metrics_text(&self) -> String {
        let mut out = self.metrics.render_prometheus();
        out.push_str(&trace::memo::prometheus_text());
        out.push_str("# EOF");
        out
    }

    /// Flushes and joins the event-log writer (idempotent). Called on
    /// server shutdown so every accepted event hits the file before the
    /// process moves on.
    pub fn close_event_log(&self) {
        if let Some(log) = &self.event_log {
            log.close();
        }
    }
}

/// The hardened JSONL event-log writer.
///
/// Workers hand lines to a dedicated writer thread over a *bounded*
/// channel with a non-blocking `try_send`: when the writer falls behind
/// (slow disk, stalled pipe), events are dropped and counted instead of
/// ever stalling request processing. The writer is line-buffered
/// (`BufWriter` flushed per line so a crash loses at most the line in
/// flight) and never calls fsync.
pub struct EventLog {
    tx: Mutex<Option<mpsc::SyncSender<String>>>,
    writer: Mutex<Option<thread::JoinHandle<()>>>,
}

/// Bounded depth of the event-log channel: enough to ride out bursts,
/// small enough that a wedged writer costs bounded memory.
const EVENT_LOG_CHANNEL_DEPTH: usize = 1024;

impl EventLog {
    /// Opens (appends to) `path` and starts the writer thread.
    pub fn open(path: &str) -> std::io::Result<EventLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(EventLog::to_writer(file))
    }

    /// Starts an event log over any sink (tests use in-memory and
    /// deliberately slow writers).
    pub fn to_writer(sink: impl Write + Send + 'static) -> EventLog {
        let (tx, rx) = mpsc::sync_channel::<String>(EVENT_LOG_CHANNEL_DEPTH);
        let writer = thread::Builder::new()
            .name("serve-event-log".to_string())
            .spawn(move || {
                let mut out = BufWriter::new(sink);
                for line in rx {
                    // A failed write disables nothing: telemetry must
                    // never take the server down, so we just keep
                    // draining the channel.
                    let _ = writeln!(out, "{line}");
                    let _ = out.flush();
                }
            })
            .expect("invariant: spawning the event-log writer cannot fail here");
        EventLog {
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        }
    }

    /// Enqueues one event line. Returns `false` — without blocking —
    /// when the writer is backed up or closed (the caller counts the
    /// drop).
    pub fn try_log(&self, line: String) -> bool {
        let tx = lock_ok(&self.tx);
        match tx.as_ref() {
            Some(tx) => tx.try_send(line).is_ok(),
            None => false,
        }
    }

    /// Closes the channel and joins the writer, guaranteeing every
    /// accepted line is flushed. Idempotent.
    pub fn close(&self) {
        lock_ok(&self.tx).take();
        let handle = lock_ok(&self.writer).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for EventLog {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex as StdMutex};

    fn telem(id: &str, total_us: u64, tripped: bool) -> RequestTelemetry {
        RequestTelemetry {
            id: id.to_string(),
            verb: ReqVerb::Count,
            outcome: ReqOutcome::Ok,
            lane: ReqLane::Batch,
            queue_wait: Duration::from_micros(5),
            total: Duration::from_micros(total_us),
            engine: Duration::from_micros(total_us / 2),
            counters: None,
            governor_tripped: tripped,
            formula: "1 <= x <= 9".to_string(),
            spans: None,
        }
    }

    #[test]
    fn flight_recorder_triggers_and_ring_bounds() {
        let t = Telemetry::new(TelemetrySettings {
            flight_records: 2,
            flight_threshold_us: 1_000,
            event_log: None,
            ..TelemetrySettings::default()
        });
        t.record(telem("fast", 10, false)); // neither trigger
        t.record(telem("slow1", 5_000, false)); // slow
        t.record(telem("tripped", 10, true)); // governor trip
        t.record(telem("slow2", 9_000, true)); // both; evicts slow1
        let records = t.flight_records();
        assert_eq!(records.len(), 2, "ring keeps the newest two");
        assert_eq!(records[0].id, "tripped");
        assert_eq!(records[0].trigger, "governor_trip");
        assert_eq!(records[1].id, "slow2");
        assert_eq!(records[1].trigger, "slow+governor_trip");
        assert_eq!(t.metrics.flight_records(), 3);
        let dump = t.flight_dump();
        assert!(dump.ends_with("# EOF"));
        assert!(dump.contains("\"id\":\"slow2\""));
        assert!(!dump.contains("\"id\":\"fast\""));
    }

    #[test]
    fn disabled_settings_record_nothing() {
        let t = Telemetry::new(TelemetrySettings::disabled());
        assert!(!t.active());
        t.record(telem("r1", 10_000_000, true));
        assert!(t.flight_records().is_empty());
        assert!(t.metrics.duration_merged(None).is_empty());
    }

    /// A sink whose writes block until the gate opens — forces
    /// channel backpressure deterministically.
    struct GatedSink {
        gate: Arc<(StdMutex<bool>, Condvar)>,
        written: Arc<StdMutex<Vec<u8>>>,
    }

    impl Write for GatedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let (lock, cv) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            self.written.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn event_log_drops_on_backpressure_and_never_blocks() {
        let gate = Arc::new((StdMutex::new(false), Condvar::new()));
        let written = Arc::new(StdMutex::new(Vec::new()));
        let log = EventLog::to_writer(GatedSink {
            gate: gate.clone(),
            written: written.clone(),
        });
        // The writer thread blocks on the first line; everything past
        // the channel depth (+ the one in flight) must be refused
        // without blocking this thread.
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for i in 0..(EVENT_LOG_CHANNEL_DEPTH as u64 + 100) {
            if log.try_log(format!("{{\"seq\":{i}}}")) {
                accepted += 1;
            } else {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "backpressure must drop, not block");
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        log.close();
        let text = String::from_utf8(written.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text.lines().count() as u64,
            accepted,
            "every accepted line is flushed by close()"
        );
        assert!(!log.try_log("after close".to_string()));
    }

    #[test]
    fn event_json_is_one_object_per_line() {
        let t = Telemetry::new(TelemetrySettings {
            event_log: None,
            ..TelemetrySettings::default()
        });
        let line = t.event_json(7, &telem("e1", 42, false));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"id\":\"e1\""));
        assert!(line.contains("\"total_us\":42"));
        assert!(!line.contains('\n'));
    }
}
