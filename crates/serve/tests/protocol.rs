//! Golden-transcript tests: recorded serving sessions replayed
//! byte-for-byte.
//!
//! Each session drives a real server over TCP loopback as an
//! *interactive* client — one request, one awaited response — so every
//! counter in the `STATS` lines is deterministic (queue depth never
//! exceeds one except where a session pipelines deliberately). The
//! expected transcripts are frozen below; any change to response
//! wording, stats fields, breaker behavior, shedding or drain output
//! shows up as a byte diff.
//!
//! To re-record after an intentional protocol change:
//! `PRESBURGER_SERVE_RECORD=1 cargo test -p presburger-serve --test
//! protocol -- --nocapture` and paste the printed transcripts.

use presburger_counting::Budgets;
use presburger_serve::server::Gate;
use presburger_serve::{
    parse_request, routing_hash, AdmissionConfig, Chaos, PoolTcpServer, QuotaConfig, Request,
    RetryPolicy, Ring, ServeConfig, ShardPoolConfig, TcpServer,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// One scripted step: a request line and how many response lines to
/// await before sending the next (0 = fire and forget).
struct Step(&'static str, usize);

/// Runs a scripted session against `cfg`; returns the full response
/// transcript. `gate`, when given, is opened `gate_after_ms` after the
/// last request line is sent (for shed scenarios that pipeline against
/// held workers).
fn run_session(cfg: ServeConfig, steps: &[Step], gate: Option<&Gate>) -> String {
    let server = TcpServer::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect loopback");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut transcript = String::new();
    for Step(line, await_n) in steps {
        writeln!(stream, "{line}").expect("write request");
        stream.flush().expect("flush request");
        for _ in 0..*await_n {
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            transcript.push_str(&response);
        }
    }
    if let Some(gate) = gate {
        std::thread::sleep(Duration::from_millis(100));
        gate.open();
    }
    // Read whatever remains (pipelined responses, drain stats, BYE)
    // until the server closes the connection.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read to EOF");
    transcript.push_str(&rest);
    server.shutdown();
    transcript
}

fn check(label: &str, got: &str, want: &str) {
    if std::env::var("PRESBURGER_SERVE_RECORD").is_ok() {
        println!("=== {label} ===\n{got}=== end {label} ===");
        return;
    }
    assert_eq!(
        got, want,
        "{label}: transcript drifted from the golden recording"
    );
}

/// Deterministic base config: no wall-clock deadline (replayable), one
/// worker.
fn base_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1,
        default_deadline_ms: None,
        ..ServeConfig::default()
    }
}

#[test]
fn golden_normal_session() {
    // Counts, a sum, a cached repeat, protocol and parse errors, ping,
    // stats, drain. Every response in request order.
    let steps = [
        Step("ping", 1),
        Step("ping warmup", 1),
        Step("count c1 {x : 1 <= x <= 9}", 1),
        Step("count c2 {i,j : 1 <= i <= j <= 4}", 1),
        Step("sum c3 x {x : 1 <= x <= 4}", 1),
        Step("count c4 {x : 1 <= x <= n}", 1),
        // Identical to c1 after canonicalization: served from cache.
        Step("count c5 {x : 1 <= x <= 9}", 1),
        // A budget override makes a different cache key, and the
        // splinter cap trips on this body: answered with §4.6 bounds.
        Step(splintery_override_line(), 1),
        Step("count c7 {x : x >= 0}", 1),
        Step("zap c8 {x : x = 1}", 1),
        Step("count c9 {x : 1 <=}", 1),
        Step("count {x : x = 1}", 1),
        Step("stats", 1),
        Step("drain", 0),
    ];
    let got = run_session(base_cfg(), &steps, None);
    let want = "PONG\n\
PONG warmup\n\
OK c1 exact 9\n\
OK c2 exact 10\n\
OK c3 exact 10\n\
OK c4 exact (\u{3a3} : n - 1 >= 0 : n)\n\
OK c5 exact 9\n\
OK c6 bounded budget 25 ; 25\n\
ERR c7 unbounded summation variable x is unbounded\n\
ERR - protocol unknown verb \"zap\" (expected count, sum, ping, stats, metrics, flightrec, shards or drain)\n\
ERR c9 parse parse error at line 1, column 6: expected a term\n\
ERR - protocol missing request id\n\
STATS admitted=8 ok=6 errors=2 shed_queue=0 shed_drain=0 cache_hits=1 cache_misses=6 cache_entries=4 verify_mismatches=0 breaker=closed breaker_opens=0 degraded_first=0 drain_bounded=0 queue_depth_peak=1\n\
STATS admitted=8 ok=6 errors=2 shed_queue=0 shed_drain=0 cache_hits=1 cache_misses=6 cache_entries=4 verify_mismatches=0 breaker=closed breaker_opens=0 degraded_first=0 drain_bounded=0 queue_depth_peak=1\n\
BYE\n";
    check("normal", &got, want);
}

#[test]
fn golden_shed_session() {
    // Workers held shut behind a gate, queue depth 1: the first count
    // is admitted, the next two shed with reason=queue_full. The gate
    // opens after all three are pipelined, the admitted request
    // answers, and responses still arrive strictly in request order.
    let gate = Gate::new(true);
    let cfg = ServeConfig {
        queue_depth: 1,
        hold: Some(gate.clone()),
        ..base_cfg()
    };
    let steps = [
        Step("count s1 {x : 1 <= x <= 3}", 0),
        Step("count s2 {x : 1 <= x <= 3}", 0),
        Step("count s3 {x : 1 <= x <= 3}", 0),
        Step("drain", 0),
    ];
    let got = run_session(cfg, &steps, Some(&gate));
    let want = "OK s1 exact 3\n\
SHED s2 retry_after_ms=50 reason=queue_full\n\
SHED s3 retry_after_ms=50 reason=queue_full\n\
STATS admitted=1 ok=1 errors=0 shed_queue=2 shed_drain=0 cache_hits=0 cache_misses=1 cache_entries=1 verify_mismatches=0 breaker=closed breaker_opens=0 degraded_first=0 drain_bounded=0 queue_depth_peak=1\n\
BYE\n";
    check("shed", &got, want);
}

/// The splinter-heavy Example 11 body: an armed
/// `splinters_generated:1:panic` fault always fires on it, and never on
/// a splinter-free formula.
const SPLINTERY: &str = "exists beta : 3beta - alpha >= 0 && -3beta + alpha + 7 >= 0 \
                         && alpha - 2beta - 1 >= 0 && -alpha + 2beta + 5 >= 0";

/// A leaked `count <id> {alpha : E11}` line (Step holds `&'static`).
fn splintery_line(id: &str) -> &'static str {
    Box::leak(format!("count {id} {{alpha : {SPLINTERY}}}").into_boxed_str())
}

/// Example 11 under a zero splinter budget: always degrades to bounds.
fn splintery_override_line() -> &'static str {
    Box::leak(format!("count c6 max_splinters=0 {{alpha : {SPLINTERY}}}").into_boxed_str())
}

#[test]
fn golden_breaker_open_session() {
    // A 1-strike breaker with an effectively infinite cooldown: the
    // first faulted request opens it, and every later request — even a
    // perfectly healthy one — is answered degrade-first with §4.6
    // bounds instead of touching the poisoned exact path.
    let cfg = ServeConfig {
        breaker_failures: 1,
        breaker_cooldown_ms: 3_600_000,
        fault_spec: Some("splinters_generated:1:panic".to_string()),
        cache_entries: 0,
        ..base_cfg()
    };
    let steps = [
        Step(splintery_line("b1"), 1),
        Step(splintery_line("b2"), 1),
        Step("count b3 {x : 1 <= x <= 9}", 1),
        Step("stats", 1),
        Step("drain", 0),
    ];
    let got = run_session(cfg, &steps, None);
    let want = "ERR b1 internal internal error: injected fault: splinters_generated at 1\n\
OK b2 bounded breaker_open 25 ; 25\n\
OK b3 bounded breaker_open 9 ; 9\n\
STATS admitted=3 ok=2 errors=1 shed_queue=0 shed_drain=0 cache_hits=0 cache_misses=3 cache_entries=0 verify_mismatches=0 breaker=open breaker_opens=1 degraded_first=2 drain_bounded=0 queue_depth_peak=1\n\
STATS admitted=3 ok=2 errors=1 shed_queue=0 shed_drain=0 cache_hits=0 cache_misses=3 cache_entries=0 verify_mismatches=0 breaker=open breaker_opens=1 degraded_first=2 drain_bounded=0 queue_depth_peak=1\n\
BYE\n";
    check("breaker-open", &got, want);
}

#[test]
fn golden_breaker_recovery_session() {
    // Zero cooldown: the breaker opens on the first faulted request and
    // immediately half-opens for the next one. A clean request (the
    // fault cannot fire without splinters) is the probe; it succeeds
    // and closes the breaker, after which exact service resumes.
    let cfg = ServeConfig {
        breaker_failures: 1,
        breaker_cooldown_ms: 0,
        fault_spec: Some("splinters_generated:1:panic".to_string()),
        cache_entries: 0,
        ..base_cfg()
    };
    let steps = [
        Step(splintery_line("r1"), 1),
        Step("count r2 {x : 1 <= x <= 9}", 1),
        Step("count r3 {x : 2 <= x <= 9}", 1),
        Step("stats", 1),
        Step("drain", 0),
    ];
    let got = run_session(cfg, &steps, None);
    let want = "ERR r1 internal internal error: injected fault: splinters_generated at 1\n\
OK r2 exact 9\n\
OK r3 exact 8\n\
STATS admitted=3 ok=2 errors=1 shed_queue=0 shed_drain=0 cache_hits=0 cache_misses=3 cache_entries=0 verify_mismatches=0 breaker=closed breaker_opens=1 degraded_first=0 drain_bounded=0 queue_depth_peak=1\n\
STATS admitted=3 ok=2 errors=1 shed_queue=0 shed_drain=0 cache_hits=0 cache_misses=3 cache_entries=0 verify_mismatches=0 breaker=closed breaker_opens=1 degraded_first=0 drain_bounded=0 queue_depth_peak=1\n\
BYE\n";
    check("breaker-recovery", &got, want);
}

#[test]
fn golden_drain_session() {
    // Drain mid-session: requests before the drain answer normally,
    // the drain emits the final stats and BYE, and the connection
    // closes. A second connection opened after the drain is shed.
    let cfg = ServeConfig {
        default_budgets: Budgets {
            max_splinters: Some(512),
            ..Budgets::unlimited()
        },
        ..base_cfg()
    };
    let server = TcpServer::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    // A second connection, opened before the drain: its serving thread
    // outlives the listener, so post-drain queries on it still get an
    // orderly SHED instead of a dead socket.
    let mut late = TcpStream::connect(addr).expect("second connect");
    let mut late_reader = BufReader::new(late.try_clone().expect("clone second"));
    let mut transcript = String::new();
    for line in ["count d1 {x : 1 <= x <= 5}", "sum d2 x {x : 1 <= x <= 5}"] {
        writeln!(stream, "{line}").expect("write");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        transcript.push_str(&response);
    }
    writeln!(stream, "drain").expect("write drain");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain tail");
    transcript.push_str(&rest);

    let want = "OK d1 exact 5\n\
OK d2 exact 15\n\
STATS admitted=2 ok=2 errors=0 shed_queue=0 shed_drain=0 cache_hits=0 cache_misses=2 cache_entries=2 verify_mismatches=0 breaker=closed breaker_opens=0 degraded_first=0 drain_bounded=0 queue_depth_peak=1\n\
BYE\n";
    check("drain", &transcript, want);

    // The server is drained: a late query on the surviving second
    // connection sheds with reason=draining.
    writeln!(late, "count late {{x : 1 <= x <= 5}}").expect("late write");
    let mut response = String::new();
    late_reader.read_line(&mut response).expect("late read");
    check(
        "drain-late",
        &response,
        "SHED late retry_after_ms=50 reason=draining\n",
    );
    server.shutdown();
}

/// Deterministic pool config: two shards of [`base_cfg`] servers, a
/// fast supervisor, and a long rescue deadline so the sessions exercise
/// re-dispatch (not the §4.6 fallback).
fn pool_base_cfg() -> ShardPoolConfig {
    ShardPoolConfig {
        shards: 2,
        shard_cfg: base_cfg(),
        probe_interval_ms: 2,
        restart_backoff_ms: 10,
        rescue_after_ms: 60_000,
        ..ShardPoolConfig::default()
    }
}

/// The shard a request line routes to at 2 shards (for arming chaos on
/// exactly the shard that will pop it).
fn routed_shard(line: &str) -> usize {
    match parse_request(line).expect("parse") {
        Request::Query(q) => Ring::new(2, 64).route(routing_hash(&q)),
        _ => unreachable!(),
    }
}

/// One interactive pool session: sends each `(line, await_n)` step,
/// sleeping `settle_ms` *before* any step whose line is `"shards"` so
/// the supervisor's restart has landed and the health block is settled.
fn run_pool_session(cfg: ShardPoolConfig, steps: &[Step], settle_ms: u64) -> String {
    let server = PoolTcpServer::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect loopback");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut transcript = String::new();
    for Step(line, await_n) in steps {
        if *line == "shards" {
            std::thread::sleep(Duration::from_millis(settle_ms));
        }
        writeln!(stream, "{line}").expect("write request");
        stream.flush().expect("flush request");
        for _ in 0..*await_n {
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            transcript.push_str(&response);
        }
    }
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read to EOF");
    transcript.push_str(&rest);
    server.shutdown();
    transcript
}

/// The expected post-chaos `shards` block plus tail for a 2-shard
/// session where `armed` was condemned once (`crashes`/`wedges` per
/// `condemned_as`), its request re-dispatched to the sibling, and one
/// follow-up request served by the replacement. The armed index is
/// computed from the routing hash at test time — deterministic, but not
/// worth baking into the literal.
fn failover_want(first_reply: &str, armed: usize, condemned_as: &str, last_reply: &str) -> String {
    let (crashes, wedges) = match condemned_as {
        "crash" => (1, 0),
        "wedge" => (0, 1),
        other => panic!("unknown condemnation {other:?}"),
    };
    let mut rows = String::new();
    for i in 0..2 {
        if i == armed {
            rows.push_str(&format!(
                "shard={i} state=healthy epoch=1 workers=1 alive=1 inflight=0 queued=0 \
                 routed=1 redispatched=1 rescued=0 restarts=1 crashes={crashes} wedges={wedges} \
                 admitted=0 ok=0 errors=0\n"
            ));
        } else {
            rows.push_str(&format!(
                "shard={i} state=healthy epoch=0 workers=1 alive=1 inflight=0 queued=0 \
                 routed=0 redispatched=0 rescued=0 restarts=0 crashes=0 wedges=0 \
                 admitted=1 ok=1 errors=0\n"
            ));
        }
    }
    format!(
        "{first_reply}\n\
         SHARDS shards=2\n\
         {rows}\
         # EOF\n\
         {last_reply}\n\
         STATS shards=2 admitted=2 ok=2 errors=0 sheds=0 cache_hits=0 redispatched=1 \
         rescued=0 restarts=1\n\
         BYE\n"
    )
}

#[test]
fn golden_shard_kill_failover_session() {
    // Chaos kills the armed shard's worker on its first pop — while it
    // holds k1. The supervisor detects the crash, re-dispatches k1 to
    // the sibling (exact answer, not a fallback bound), restarts the
    // shard (epoch=1), and a repeat of the same formula is served by
    // the replacement. Nothing in the transcript is lost or degraded.
    let k1 = "count k1 {x : 1 <= x <= 9}";
    let armed = routed_shard(k1);
    let cfg = ShardPoolConfig {
        chaos: Some(Arc::new(
            Chaos::parse(&format!("kill:{armed}:1")).expect("chaos spec"),
        )),
        ..pool_base_cfg()
    };
    let steps = [
        Step(k1, 1),
        Step("shards", 4),
        Step("count k3 {x : 1 <= x <= 9}", 1),
        Step("drain", 0),
    ];
    let got = run_pool_session(cfg, &steps, 400);
    let want = failover_want("OK k1 exact 9", armed, "crash", "OK k3 exact 9");
    check("shard-kill-failover", &got, &want);
}

#[test]
fn golden_shard_wedge_restart_session() {
    // Chaos wedges the armed shard's worker on its first pop: the
    // heartbeat freezes with w1 in flight, the supervisor condemns the
    // shard after wedge_timeout, re-dispatches w1 to the sibling and
    // restarts the shard. The client just sees its answer arrive.
    let w1 = "count w1 {x : 2 <= x <= 9}";
    let armed = routed_shard(w1);
    let cfg = ShardPoolConfig {
        wedge_timeout_ms: 150,
        chaos: Some(Arc::new(
            Chaos::parse(&format!("wedge:{armed}:1")).expect("chaos spec"),
        )),
        ..pool_base_cfg()
    };
    let steps = [
        Step(w1, 1),
        Step("shards", 4),
        Step("count w3 {x : 2 <= x <= 9}", 1),
        Step("drain", 0),
    ];
    let got = run_pool_session(cfg, &steps, 400);
    let want = failover_want("OK w1 exact 8", armed, "wedge", "OK w3 exact 8");
    check("shard-wedge-restart", &got, &want);
}

#[test]
fn golden_quota_session() {
    // Per-client quota (DESIGN.md §16): burst 2, refill 250 milli-
    // tokens per logical tick, 100 ms advertised per tick. One
    // connection = one client, and the bucket's logical clock advances
    // once per request — so the admit/shed pattern and every computed
    // `retry_after_ms` are pure functions of the request ordinals:
    // admit, admit, shed(200), shed(100), admit, shed(300).
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            quota: Some(QuotaConfig {
                burst: 2,
                refill_milli: 250,
                tick_ms: 100,
            }),
            detail: true,
            ..AdmissionConfig::default()
        },
        ..base_cfg()
    };
    let steps = [
        Step("count q1 {x : 1 <= x <= 9}", 1),
        Step("count q2 {x : 1 <= x <= 9}", 1),
        Step("count q3 {x : 1 <= x <= 9}", 1),
        Step("count q4 {x : 1 <= x <= 9}", 1),
        Step("count q5 {x : 1 <= x <= 9}", 1),
        Step("count q6 {x : 1 <= x <= 9}", 1),
        Step("stats", 1),
        Step("drain", 0),
    ];
    let got = run_session(cfg, &steps, None);
    // Quota sheds fold into shed_queue on the pinned STATS line; the
    // Prometheus admission family keeps the split.
    let want = "OK q1 exact 9\n\
OK q2 exact 9\n\
SHED q3 retry_after_ms=200 reason=quota:lane=batch:wait_ms=200\n\
SHED q4 retry_after_ms=100 reason=quota:lane=batch:wait_ms=100\n\
OK q5 exact 9\n\
SHED q6 retry_after_ms=300 reason=quota:lane=batch:wait_ms=300\n\
STATS admitted=3 ok=3 errors=0 shed_queue=3 shed_drain=0 cache_hits=2 cache_misses=1 cache_entries=1 verify_mismatches=0 breaker=closed breaker_opens=0 degraded_first=0 drain_bounded=0 queue_depth_peak=1\n\
STATS admitted=3 ok=3 errors=0 shed_queue=3 shed_drain=0 cache_hits=2 cache_misses=1 cache_entries=1 verify_mismatches=0 breaker=closed breaker_opens=0 degraded_first=0 drain_bounded=0 queue_depth_peak=1\n\
BYE\n";
    check("quota", &got, want);
}

#[test]
fn golden_eviction_session() {
    // Expired-request eviction (DESIGN.md §16). e0 arrives with
    // `deadline_ms=0` — already expired at admission — and is answered
    // immediately with §4.6 bounds, never queued. e1's 1 ms deadline
    // lapses while the gate holds the worker (~100 ms), so the pop-time
    // check answers it with the same budgeted bounds instead of burning
    // the worker on it; e2 (no deadline) then computes exactly. Both
    // evictions count as admitted+ok: the client got a bounded answer,
    // not a refusal.
    let gate = Gate::new(true);
    let cfg = ServeConfig {
        hold: Some(gate.clone()),
        ..base_cfg()
    };
    let steps = [
        Step("count e0 deadline_ms=0 {x : 1 <= x <= 9}", 1),
        Step("count e1 deadline_ms=1 {x : 1 <= x <= 9}", 0),
        Step("count e2 {x : 1 <= x <= 9}", 0),
        Step("drain", 0),
    ];
    let got = run_session(cfg, &steps, Some(&gate));
    let want = "OK e0 bounded evicted 9 ; 9\n\
OK e1 bounded evicted 9 ; 9\n\
OK e2 exact 9\n\
STATS admitted=3 ok=3 errors=0 shed_queue=0 shed_drain=0 cache_hits=0 cache_misses=1 cache_entries=1 verify_mismatches=0 breaker=closed breaker_opens=0 degraded_first=0 drain_bounded=0 queue_depth_peak=2\n\
BYE\n";
    check("eviction", &got, want);
}

#[test]
fn retry_helper_rides_out_queue_full_sheds() {
    // A 1-deep queue behind a closed gate sheds the second pipelined
    // request; `submit_with_retry` re-sends it after the jittered
    // backoff and — once the gate opens — lands the exact answer. The
    // client keeps the exactly-one-reply invariant from its own side.
    let gate = Gate::new(true);
    let cfg = ServeConfig {
        queue_depth: 1,
        hold: Some(gate.clone()),
        ..base_cfg()
    };
    let server = presburger_serve::Server::start(cfg);
    let handle = server.handle();
    let submit = |line: &str| match parse_request(line).expect("parse") {
        Request::Query(q) => handle.submit(q).wait(),
        _ => unreachable!(),
    };
    // Fill the queue while the gate is shut.
    let held = match parse_request("count h1 {x : 1 <= x <= 3}").expect("parse") {
        Request::Query(q) => handle.submit(q),
        _ => unreachable!(),
    };
    assert!(!held.is_done(), "h1 must be queued behind the gate");
    // A plain submit sheds...
    assert_eq!(
        submit("count h2 {x : 1 <= x <= 3}"),
        "SHED h2 retry_after_ms=50 reason=queue_full"
    );
    // ...while the retry helper opens the gate mid-backoff and lands.
    let opener = std::thread::spawn({
        let gate = gate.clone();
        move || {
            std::thread::sleep(Duration::from_millis(30));
            gate.open();
        }
    });
    let policy = RetryPolicy {
        max_attempts: 8,
        base_delay_ms: 20,
        max_delay_ms: 100,
    };
    let mut attempts = 0;
    let line = presburger_serve::submit_with_retry(&policy, "h3", || {
        attempts += 1;
        submit("count h3 {x : 1 <= x <= 3}")
    });
    assert_eq!(line, "OK h3 exact 3");
    assert!(attempts > 1, "the first attempt must have shed");
    opener.join().expect("opener");
    assert_eq!(held.wait(), "OK h1 exact 3");
    server.shutdown();
}

#[test]
fn verify_mode_detects_poisoned_cache_entries() {
    // Not a golden session: drive the verify path directly through the
    // public server API by exercising a cache hit under verify_every=1
    // (every hit recomputed). A healthy cache must produce zero
    // mismatches; the alarm path is unit-tested via the stats counter.
    let cfg = ServeConfig {
        verify_every: Some(1),
        ..base_cfg()
    };
    let server = presburger_serve::Server::start(cfg);
    let handle = server.handle();
    for id in ["v1", "v2", "v3"] {
        let line = format!("count {id} {{x : 1 <= x <= 6}}");
        let reply = match presburger_serve::parse_request(&line).expect("parse") {
            presburger_serve::Request::Query(q) => handle.submit(q).wait(),
            _ => unreachable!(),
        };
        assert_eq!(reply, format!("OK {id} exact 6"));
    }
    assert_eq!(handle.stats().cache_hits(), 2);
    assert_eq!(handle.stats().verify_mismatches(), 0);
    server.shutdown();
}
