//! Properties of the consistent-hash router (DESIGN.md §14).
//!
//! The load-bearing property is *minimal disruption*: growing a pool
//! from N to N+1 shards must re-route only the keys the new shard's
//! ring points capture — every moved key lands on the new shard, and
//! the moved fraction stays near 1/(N+1) (we allow 2/(N+1) for vnode
//! placement variance). A modulo router would move (N)/(N+1) of the
//! keyspace and cold-start every shard cache on each re-size.

use presburger_serve::{parse_request, routing_hash, Query, Request, Ring};
use proptest::prelude::*;

/// Local key mixer for synthetic routing keys (the ring routes raw
/// `u64` hashes; `routing_hash` itself is exercised below with real
/// queries).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn query(line: &str) -> Query {
    match parse_request(line).expect("test query parses") {
        Request::Query(q) => q,
        other => panic!("expected a query, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N → N+1: moved keys move only *to* the new shard, and few move.
    #[test]
    fn growing_the_ring_is_minimally_disruptive(seed in any::<u64>(), n in 1usize..8) {
        let old = Ring::new(n, 64);
        let new = Ring::new(n + 1, 64);
        let keys = 2_000u64;
        let mut moved = 0u64;
        for k in 0..keys {
            let h = mix(seed.wrapping_add(k));
            let before = old.route(h);
            let after = new.route(h);
            prop_assert!(before < n && after < n + 1);
            if before != after {
                prop_assert_eq!(
                    after, n,
                    "key moved between two old shards ({} -> {})", before, after
                );
                moved += 1;
            }
        }
        let bound = (2.0 * keys as f64) / (n as f64 + 1.0);
        prop_assert!(
            (moved as f64) <= bound,
            "moved {} of {} keys at n={} (bound {})", moved, keys, n, bound
        );
    }

    /// Every shard of a ring takes a nonzero share of a large keyspace
    /// (no shard is starved by vnode placement).
    #[test]
    fn every_shard_owns_keyspace(seed in any::<u64>(), n in 1usize..9) {
        let ring = Ring::new(n, 64);
        let mut hits = vec![0u64; n];
        for k in 0..4_000u64 {
            hits[ring.route(mix(seed.wrapping_add(k)))] += 1;
        }
        for (s, &h) in hits.iter().enumerate() {
            prop_assert!(h > 0, "shard {} of {} owns no keys", s, n);
        }
    }
}

/// `routing_hash` is canonical: whitespace variants of one formula
/// route together at every pool size, and the route is stable across
/// `Ring` constructions.
#[test]
fn textual_variants_route_to_the_same_shard() {
    let variants = [
        "count a {x,y : 1 <= x && x <= 9 && 0 <= y && y <= x}",
        "count b {x,y : 1<=x && x<=9 && 0<=y && y<=x}",
        "count c {x,y :   1 <= x&&x <= 9&&0 <= y&&y <= x}",
    ];
    let hashes: Vec<u64> = variants.iter().map(|l| routing_hash(&query(l))).collect();
    assert!(hashes.windows(2).all(|w| w[0] == w[1]), "{hashes:?}");
    for n in 1..6 {
        let ring = Ring::new(n, 64);
        let shard = ring.route(hashes[0]);
        assert!(shard < n);
        assert_eq!(shard, Ring::new(n, 64).route(hashes[0]));
    }
}

/// Unparsable formulas still route deterministically (raw-text key).
#[test]
fn unparsable_formulas_route_deterministically() {
    let q = query("count bad {x : x <<>> 3}");
    assert_eq!(routing_hash(&q), routing_hash(&q));
    let ring = Ring::new(3, 64);
    assert!(ring.route(routing_hash(&q)) < 3);
}
