//! Binary wire codec: gen-driven round-trip properties, byte-soup
//! decode fuzzing, and text-vs-binary differential replay of the golden
//! serving sessions.
//!
//! The hard guarantee under test: for any request, the binary reply
//! decodes to byte-identical semantic content as the text reply. Every
//! differential below therefore runs the *same* scripted session twice
//! — once over the text codec, once over binary frames against an
//! identically-configured fresh server — and asserts the flattened
//! binary transcript equals the text transcript exactly.
//!
//! Environment knobs (used by `scripts/check.sh`'s `wire_gate`):
//! `PRESBURGER_WIRE_FUZZ_CASES` scales the byte-soup corpus (default
//! 200), `PRESBURGER_WIRE_SHARDS` picks the pool size for the
//! gen-stream differential (default 2). The binary hex golden is
//! re-recorded with `PRESBURGER_SERVE_RECORD=1`.

use presburger_counting::Budgets;
use presburger_gen::{batched_request_lines, request_lines, GenConfig};
use presburger_serve::server::Gate;
use presburger_serve::wire::{self, Reply};
use presburger_serve::{
    parse_request, AdmissionConfig, Chaos, PoolTcpServer, QuotaConfig, Request, RetryPolicy, Ring,
    ServeConfig, ShardPoolConfig, TcpServer,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// Replay-safe budgets (count-charged, never wall-clock): generated
/// formulas all terminate quickly with deterministic replies.
fn replay_budgets() -> Budgets {
    Budgets {
        max_splinters: Some(512),
        max_dnf_clauses: Some(256),
        max_depth: Some(64),
        max_pieces: Some(20_000),
        max_coeff_bits: Some(512),
        ..Budgets::unlimited()
    }
}

// ---------------------------------------------------------------------
// Round-trip properties over generated streams
// ---------------------------------------------------------------------

#[test]
fn gen_requests_round_trip_canonically() {
    let cfg = GenConfig::default();
    for r in request_lines(0xA11CE, 300, &cfg) {
        let req = parse_request(&r.line).expect("generated lines parse");
        let bytes = wire::encode_request(&req);
        let (decoded, used) = wire::decode_wire_request(&bytes)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e:?}", r.line));
        assert_eq!(used, bytes.len(), "{}: exact consumption", r.line);
        assert_eq!(decoded, wire::WireRequest::One(req), "{}", r.line);
        // Canonical: re-encoding the decoded value is byte-identical.
        assert_eq!(
            wire::encode_wire_request(&decoded).expect("re-encode"),
            bytes,
            "{}: non-canonical encoding",
            r.line
        );
        // The declared frame length is exact: with trailing bytes
        // appended, the decoder consumes precisely the original frame.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0xEE, 0xEE, 0xEE]);
        let (_, used) = wire::decode_wire_request(&padded).expect("decode ignores the tail");
        assert_eq!(used, bytes.len(), "{}: declared length drifted", r.line);
    }
}

#[test]
fn gen_batches_round_trip_canonically() {
    let cfg = GenConfig::default();
    for batch in batched_request_lines(0xB0B, 150, &cfg, wire::MAX_BATCH) {
        let reqs: Vec<Request> = batch
            .iter()
            .map(|r| parse_request(&r.line).expect("generated lines parse"))
            .collect();
        let frame = wire::encode_batch(&reqs).expect("within limits");
        let (decoded, used) = wire::decode_wire_request(&frame).expect("batch decodes");
        assert_eq!(used, frame.len());
        assert_eq!(decoded, wire::WireRequest::Batch(reqs));
        assert_eq!(
            wire::encode_wire_request(&decoded).expect("re-encode"),
            frame
        );
    }
}

#[test]
fn gen_replies_round_trip_through_text_and_bytes() {
    // Drive a real server over the generated stream so the reply corpus
    // is whatever the engine actually emits (exact, bounded, symbolic,
    // parse/unbounded errors) rather than hand-picked lines.
    let server = presburger_serve::Server::start(ServeConfig {
        workers: 1,
        default_deadline_ms: None,
        default_budgets: replay_budgets(),
        breaker_failures: 0,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let mut replies: Vec<Reply> = Vec::new();
    for r in request_lines(0xFACADE, 120, &GenConfig::default()) {
        let line = match parse_request(&r.line).expect("generated lines parse") {
            Request::Query(q) => handle.submit(q).wait(),
            _ => unreachable!("gen emits queries only"),
        };
        let reply = Reply::from_text(&line);
        assert_eq!(reply.to_text(), line, "from_text/to_text must invert");
        let bytes = reply.encode();
        let (decoded, used) = Reply::decode(&bytes).expect("reply decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded.to_text(), line);
        assert_eq!(decoded.encode(), bytes, "non-canonical reply encoding");
        replies.push(reply);
    }
    server.shutdown();
    // And the whole corpus as gathered batch frames.
    for chunk in replies.chunks(wire::MAX_BATCH) {
        let batch = Reply::Batch(chunk.to_vec());
        let bytes = batch.encode();
        let (decoded, used) = Reply::decode(&bytes).expect("batch reply decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded.to_text(), batch.to_text());
        assert_eq!(decoded.encode(), bytes);
    }
}

// ---------------------------------------------------------------------
// Byte-soup fuzzing
// ---------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Asserts the decoders' total-function contract on one buffer: never a
/// panic, never an over-read, always a typed `wire` error on rejection.
fn assert_decoders_total(buf: &[u8], what: &str) {
    match wire::decode_wire_request(buf) {
        Ok((_, used)) => assert!(used <= buf.len(), "{what}: request over-read"),
        Err(e) => assert_eq!(e.kind, "wire", "{what}: untyped request error"),
    }
    match Reply::decode(buf) {
        Ok((_, used)) => assert!(used <= buf.len(), "{what}: reply over-read"),
        Err(e) => assert_eq!(e.kind, "wire", "{what}: untyped reply error"),
    }
}

#[test]
fn byte_soup_never_panics_the_decoders() {
    let cases = env_usize("PRESBURGER_WIRE_FUZZ_CASES", 200);
    let mut state = 0x5EED_CAFE_u64;

    // A small valid corpus to truncate and mutate: single frames, a
    // batch frame, and reply frames of every flavor.
    let mut corpus: Vec<Vec<u8>> = Vec::new();
    let reqs = [
        "count r1 {x : 1 <= x <= 9}",
        "sum r2 max_depth=4 2x + y {x,y : 1 <= x <= y <= 5}",
        "ping p1",
        "stats",
        "drain",
    ];
    for line in reqs {
        corpus.push(wire::encode_request(&parse_request(line).expect("parses")));
    }
    let batch: Vec<Request> = reqs[..2]
        .iter()
        .map(|l| parse_request(l).unwrap())
        .collect();
    corpus.push(wire::encode_batch(&batch).expect("batch encodes"));
    for line in [
        "OK r1 exact 9",
        "OK r2 bounded budget 3 ; n + 17",
        "ERR r3 parse bad formula",
        "SHED r4 retry_after_ms=50 reason=queue_full",
        "PONG p1",
        "STATS admitted=1 ok=1",
        "SHARDS shards=1\nrow\n# EOF",
    ] {
        corpus.push(Reply::from_text(line).encode());
    }

    // Truncations: every prefix of every corpus frame.
    for frame in &corpus {
        for cut in 0..frame.len() {
            assert_decoders_total(&frame[..cut], "truncation");
        }
    }

    // Bounded mutation loop: random byte soup, bit-flipped valid
    // frames, and oversized length prefixes — `cases` of each family.
    for i in 0..cases {
        state = splitmix64(state ^ i as u64);

        // Random bytes, 0..=96 long.
        let len = (state % 97) as usize;
        let mut soup = Vec::with_capacity(len);
        let mut s = state;
        for _ in 0..len {
            s = splitmix64(s);
            soup.push(s as u8);
        }
        assert_decoders_total(&soup, "byte soup");

        // One bit flipped somewhere in a valid frame.
        let frame = &corpus[(state >> 8) as usize % corpus.len()];
        let mut flipped = frame.clone();
        let bit = (state >> 16) as usize % (frame.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        assert_decoders_total(&flipped, "bit flip");

        // An oversized or near-limit declared length with no payload.
        let mut oversized = vec![frame[0]];
        let declared = wire::MAX_FRAME_LEN as u64 + (state % 1024);
        let mut v = declared;
        while v >= 0x80 {
            oversized.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        oversized.push(v as u8);
        assert_decoders_total(&oversized, "oversized length");
    }
}

// ---------------------------------------------------------------------
// Differential replay: golden sessions over the binary codec
// ---------------------------------------------------------------------

/// One scripted step: a request line and how many response *lines* to
/// await before sending the next (0 = fire and forget).
struct Step(&'static str, usize);

/// Runs a scripted text session against `addr` (the harness from
/// `tests/protocol.rs`): interactive awaits per step, then drains the
/// socket to EOF. Sleeps `settle_ms` before any `shards` step so
/// supervisor restarts have landed.
fn text_session(
    addr: std::net::SocketAddr,
    steps: &[Step],
    gate: Option<&Gate>,
    settle_ms: u64,
) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect loopback");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut transcript = String::new();
    for Step(line, await_n) in steps {
        if *line == "shards" {
            std::thread::sleep(Duration::from_millis(settle_ms));
        }
        writeln!(stream, "{line}").expect("write request");
        stream.flush().expect("flush request");
        for _ in 0..*await_n {
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            transcript.push_str(&response);
        }
    }
    if let Some(gate) = gate {
        std::thread::sleep(Duration::from_millis(100));
        gate.open();
    }
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read to EOF");
    transcript.push_str(&rest);
    transcript
}

/// Runs the same scripted session over the binary codec and returns the
/// *flattened* text the reply frames decode to. Steps are the same
/// line/await-count scripts: a step is satisfied once its frames have
/// yielded `await_n` text lines (a multi-line block or a `BYE` tail is
/// one frame but several lines).
fn binary_session(
    addr: std::net::SocketAddr,
    steps: &[Step],
    gate: Option<&Gate>,
    settle_ms: u64,
) -> String {
    let stream = TcpStream::connect(addr).expect("connect loopback");
    let reader = stream.try_clone().expect("clone stream");
    let mut client = wire::BinClient::handshake(reader, stream).expect("handshake");
    let mut lines: Vec<String> = Vec::new();
    for Step(line, await_n) in steps {
        if *line == "shards" {
            std::thread::sleep(Duration::from_millis(settle_ms));
        }
        client
            .send(&parse_request(line).expect("script lines parse"))
            .expect("send frame");
        let mut got = 0usize;
        while got < *await_n {
            let reply = client.recv().expect("awaited reply");
            let text = reply.to_text();
            got += text.lines().count();
            lines.push(text);
        }
    }
    if let Some(gate) = gate {
        std::thread::sleep(Duration::from_millis(100));
        gate.open();
    }
    // Drain remaining frames until the server closes the connection.
    loop {
        match client.recv() {
            Ok(reply) => lines.push(reply.to_text()),
            Err(presburger_serve::ServeError::Io(e))
                if e.kind() == std::io::ErrorKind::UnexpectedEof =>
            {
                break
            }
            Err(e) => panic!("binary session tail failed: {e}"),
        }
    }
    if lines.is_empty() {
        String::new()
    } else {
        lines.join("\n") + "\n"
    }
}

/// Asserts a session produces semantically identical transcripts over
/// both codecs, against identically-configured fresh servers.
fn assert_differential(
    label: &str,
    mk_cfg: impl Fn() -> ServeConfig,
    steps: &[Step],
    mk_gate: impl Fn(&ServeConfig) -> Option<Arc<Gate>>,
) {
    let text_cfg = mk_cfg();
    let text_gate = mk_gate(&text_cfg);
    let server = TcpServer::bind("127.0.0.1:0", text_cfg).expect("bind loopback");
    let text = text_session(server.addr(), steps, text_gate.as_deref(), 0);
    server.shutdown();

    let bin_cfg = mk_cfg();
    let bin_gate = mk_gate(&bin_cfg);
    let server = TcpServer::bind("127.0.0.1:0", bin_cfg).expect("bind loopback");
    let binary = binary_session(server.addr(), steps, bin_gate.as_deref(), 0);
    server.shutdown();

    assert_eq!(
        text, binary,
        "{label}: binary replies are not semantically identical to text"
    );
}

/// Deterministic base config mirroring the golden sessions.
fn base_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1,
        default_deadline_ms: None,
        ..ServeConfig::default()
    }
}

/// The splinter-heavy Example 11 body (see `tests/protocol.rs`).
const SPLINTERY: &str = "exists beta : 3beta - alpha >= 0 && -3beta + alpha + 7 >= 0 \
                         && alpha - 2beta - 1 >= 0 && -alpha + 2beta + 5 >= 0";

fn splintery_line(id: &str) -> &'static str {
    Box::leak(format!("count {id} {{alpha : {SPLINTERY}}}").into_boxed_str())
}

#[test]
fn differential_normal_session() {
    let steps = [
        Step("ping", 1),
        Step("ping warmup", 1),
        Step("count c1 {x : 1 <= x <= 9}", 1),
        Step("count c2 {i,j : 1 <= i <= j <= 4}", 1),
        Step("sum c3 x {x : 1 <= x <= 4}", 1),
        Step("count c4 {x : 1 <= x <= n}", 1),
        Step("count c5 {x : 1 <= x <= 9}", 1),
        Step(
            Box::leak(format!("count c6 max_splinters=0 {{alpha : {SPLINTERY}}}").into_boxed_str()),
            1,
        ),
        Step("count c7 {x : x >= 0}", 1),
        Step("stats", 1),
        Step("drain", 0),
    ];
    assert_differential("normal", base_cfg, &steps, |_| None);
}

#[test]
fn differential_shed_session() {
    // The gate holds the worker while three pipelined counts hit a
    // 1-deep queue: one admitted, two shed in position — over either
    // codec.
    let steps = [
        Step("count s1 {x : 1 <= x <= 3}", 0),
        Step("count s2 {x : 1 <= x <= 3}", 0),
        Step("count s3 {x : 1 <= x <= 3}", 0),
        Step("drain", 0),
    ];
    // Each run gets its own fresh gate (built inside `mk_cfg`, handed
    // back out via `mk_gate`) so the text run's open cannot leak into
    // the binary run.
    let mk_cfg = || ServeConfig {
        queue_depth: 1,
        hold: Some(Gate::new(true)),
        ..base_cfg()
    };
    assert_differential("shed", mk_cfg, &steps, |cfg| cfg.hold.clone());
}

#[test]
fn differential_breaker_sessions() {
    // Breaker-open: a 1-strike breaker with an effectively infinite
    // cooldown degrades everything after the first fault.
    let open_steps = [
        Step(splintery_line("b1"), 1),
        Step(splintery_line("b2"), 1),
        Step("count b3 {x : 1 <= x <= 9}", 1),
        Step("stats", 1),
        Step("drain", 0),
    ];
    assert_differential(
        "breaker-open",
        || ServeConfig {
            breaker_failures: 1,
            breaker_cooldown_ms: 3_600_000,
            fault_spec: Some("splinters_generated:1:panic".to_string()),
            cache_entries: 0,
            ..base_cfg()
        },
        &open_steps,
        |_| None,
    );

    // Breaker-recovery: zero cooldown, a clean probe closes it again.
    let recovery_steps = [
        Step(splintery_line("r1"), 1),
        Step("count r2 {x : 1 <= x <= 9}", 1),
        Step("count r3 {x : 2 <= x <= 9}", 1),
        Step("stats", 1),
        Step("drain", 0),
    ];
    assert_differential(
        "breaker-recovery",
        || ServeConfig {
            breaker_failures: 1,
            breaker_cooldown_ms: 0,
            fault_spec: Some("splinters_generated:1:panic".to_string()),
            cache_entries: 0,
            ..base_cfg()
        },
        &recovery_steps,
        |_| None,
    );
}

#[test]
fn differential_quota_session() {
    // The quota worked example (burst 2, refill 250, tick 100 ms) over
    // both codecs: the connection-scoped client identity, the lane
    // field and the detailed `reason=` token all survive the binary
    // frames, so admit/shed decisions and hints replay byte-identically.
    let steps = [
        Step("count q1 {x : 1 <= x <= 9}", 1),
        Step("count q2 {x : 1 <= x <= 9}", 1),
        Step("count q3 {x : 1 <= x <= 9}", 1),
        Step("count q4 {x : 1 <= x <= 9}", 1),
        Step("count q5 {x : 1 <= x <= 9}", 1),
        Step("count q6 {x : 1 <= x <= 9}", 1),
        Step("stats", 1),
        Step("drain", 0),
    ];
    assert_differential(
        "quota",
        || ServeConfig {
            admission: AdmissionConfig {
                quota: Some(QuotaConfig {
                    burst: 2,
                    refill_milli: 250,
                    tick_ms: 100,
                }),
                detail: true,
                ..AdmissionConfig::default()
            },
            ..base_cfg()
        },
        &steps,
        |_| None,
    );
}

#[test]
fn differential_eviction_session() {
    // Admission-time (deadline_ms=0) and pop-time (deadline_ms=1 behind
    // a held worker) eviction produce the same `OK … bounded evicted`
    // replies over either codec; the varint deadline override survives
    // the binary frame.
    let steps = [
        Step("count e0 deadline_ms=0 {x : 1 <= x <= 9}", 1),
        Step("count e1 deadline_ms=1 {x : 1 <= x <= 9}", 0),
        Step("count e2 {x : 1 <= x <= 9}", 0),
        Step("drain", 0),
    ];
    let mk_cfg = || ServeConfig {
        hold: Some(Gate::new(true)),
        ..base_cfg()
    };
    assert_differential("eviction", mk_cfg, &steps, |cfg| cfg.hold.clone());
}

/// Deterministic 2-shard pool config (the `tests/protocol.rs` harness).
fn pool_base_cfg() -> ShardPoolConfig {
    ShardPoolConfig {
        shards: 2,
        shard_cfg: base_cfg(),
        probe_interval_ms: 2,
        restart_backoff_ms: 10,
        rescue_after_ms: 60_000,
        ..ShardPoolConfig::default()
    }
}

fn routed_shard(line: &str) -> usize {
    match parse_request(line).expect("parse") {
        Request::Query(q) => Ring::new(2, 64).route(presburger_serve::routing_hash(&q)),
        _ => unreachable!(),
    }
}

/// Text-vs-binary differential over a `PoolTcpServer` session.
fn assert_pool_differential(
    label: &str,
    mk_cfg: impl Fn() -> ShardPoolConfig,
    steps: &[Step],
    settle_ms: u64,
) {
    let server = PoolTcpServer::bind("127.0.0.1:0", mk_cfg()).expect("bind loopback");
    let text = text_session(server.addr(), steps, None, settle_ms);
    server.shutdown();

    let server = PoolTcpServer::bind("127.0.0.1:0", mk_cfg()).expect("bind loopback");
    let binary = binary_session(server.addr(), steps, None, settle_ms);
    server.shutdown();

    assert_eq!(
        text, binary,
        "{label}: binary replies are not semantically identical to text"
    );
}

#[test]
fn differential_shard_kill_failover_session() {
    let k1 = "count k1 {x : 1 <= x <= 9}";
    let armed = routed_shard(k1);
    let steps = [
        Step(k1, 1),
        Step("shards", 4),
        Step("count k3 {x : 1 <= x <= 9}", 1),
        Step("drain", 0),
    ];
    assert_pool_differential(
        "shard-kill-failover",
        || ShardPoolConfig {
            chaos: Some(Arc::new(
                Chaos::parse(&format!("kill:{armed}:1")).expect("chaos spec"),
            )),
            ..pool_base_cfg()
        },
        &steps,
        400,
    );
}

#[test]
fn differential_shard_wedge_restart_session() {
    let w1 = "count w1 {x : 2 <= x <= 9}";
    let armed = routed_shard(w1);
    let steps = [
        Step(w1, 1),
        Step("shards", 4),
        Step("count w3 {x : 2 <= x <= 9}", 1),
        Step("drain", 0),
    ];
    assert_pool_differential(
        "shard-wedge-restart",
        || ShardPoolConfig {
            wedge_timeout_ms: 150,
            chaos: Some(Arc::new(
                Chaos::parse(&format!("wedge:{armed}:1")).expect("chaos spec"),
            )),
            ..pool_base_cfg()
        },
        &steps,
        400,
    );
}

/// Blocks until every generated request has been routed to a shard
/// queue (workers are gate-held, so nothing has been popped yet).
fn await_all_queued(handle: &presburger_serve::PoolHandle, n: usize) {
    for _ in 0..10_000 {
        let routed: u64 = handle.shard_rows().iter().map(|r| r.routed).sum();
        if routed as usize >= n {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("requests never finished queueing");
}

#[test]
fn differential_gen_stream_over_pool() {
    // The generated request stream, replayed as pipelined text and as
    // binary batch frames, against `PRESBURGER_WIRE_SHARDS`-shard pools
    // (`wire_gate` runs this at 1 and 4). Batched replies must flatten
    // to exactly the text transcript, drain tail included. Workers are
    // gate-held until everything is queued in BOTH runs so the drain
    // stats (`queue_depth_peak` in particular) are deterministic.
    let shards = env_usize("PRESBURGER_WIRE_SHARDS", 2).max(1);
    let n = 80;
    let cfg = GenConfig::default();
    let requests = request_lines(0xD1FF, n, &cfg);
    let mk_cfg = |gate: Arc<Gate>| ShardPoolConfig {
        shards,
        shard_cfg: ServeConfig {
            workers: 1,
            queue_depth: n + 8,
            default_deadline_ms: None,
            default_budgets: replay_budgets(),
            breaker_failures: 0,
            hold: Some(gate),
            ..ServeConfig::default()
        },
        probe_interval_ms: 2,
        restart_backoff_ms: 10,
        rescue_after_ms: 60_000,
        ..ShardPoolConfig::default()
    };

    let gate = Gate::new(true);
    let server = PoolTcpServer::bind("127.0.0.1:0", mk_cfg(gate.clone())).expect("bind loopback");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for r in &requests {
        writeln!(stream, "{}", r.line).expect("write");
    }
    stream.flush().expect("flush");
    await_all_queued(&server.handle(), n);
    gate.open();
    let mut text = String::new();
    for _ in 0..n {
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        text.push_str(&response);
    }
    writeln!(stream, "drain").expect("drain");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain tail");
    text.push_str(&rest);
    server.shutdown();

    let gate = Gate::new(true);
    let server = PoolTcpServer::bind("127.0.0.1:0", mk_cfg(gate.clone())).expect("bind loopback");
    let tcp = TcpStream::connect(server.addr()).expect("connect");
    let reader = tcp.try_clone().expect("clone");
    let mut client = wire::BinClient::handshake(reader, tcp).expect("handshake");
    let batches = batched_request_lines(0xD1FF, n, &cfg, 16);
    for batch in &batches {
        let reqs: Vec<Request> = batch
            .iter()
            .map(|r| parse_request(&r.line).expect("parses"))
            .collect();
        client.send_batch(&reqs).expect("send batch");
    }
    await_all_queued(&server.handle(), n);
    gate.open();
    let mut lines: Vec<String> = Vec::new();
    for _ in 0..batches.len() {
        lines.push(client.recv().expect("batch reply").to_text());
    }
    client
        .send(&parse_request("drain").expect("parses"))
        .expect("send drain");
    lines.push(client.recv().expect("bye").to_text());
    server.shutdown();
    let binary = lines.join("\n") + "\n";

    assert_eq!(
        text, binary,
        "gen-stream differential at {shards} shards: binary != text"
    );
}

#[test]
fn batch_partial_shed_is_positional() {
    // A 4-request batch frame against a 2-deep gated queue: the first
    // two inner requests are admitted, the rest shed *in position* —
    // the batch reply keeps one answer per inner request, in order.
    let gate = Gate::new(true);
    let cfg = ServeConfig {
        queue_depth: 2,
        hold: Some(gate.clone()),
        ..base_cfg()
    };
    let server = TcpServer::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let tcp = TcpStream::connect(server.addr()).expect("connect");
    let reader = tcp.try_clone().expect("clone");
    let mut client = wire::BinClient::handshake(reader, tcp).expect("handshake");
    let reqs: Vec<Request> = (0..4)
        .map(|i| parse_request(&format!("count q{i} {{x : 1 <= x <= 3}}")).expect("parses"))
        .collect();
    client.send_batch(&reqs).expect("send batch");
    std::thread::sleep(Duration::from_millis(50));
    gate.open();
    let reply = client.recv().expect("batch reply");
    let lines: Vec<String> = reply.to_text().lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 4, "one answer per inner request");
    assert_eq!(lines[0], "OK q0 exact 3");
    assert_eq!(lines[1], "OK q1 exact 3");
    assert_eq!(lines[2], "SHED q2 retry_after_ms=50 reason=queue_full");
    assert_eq!(lines[3], "SHED q3 retry_after_ms=50 reason=queue_full");
    server.shutdown();

    // And the batch retry helper heals exactly those positions.
    let policy = RetryPolicy {
        max_attempts: 3,
        base_delay_ms: 1,
        max_delay_ms: 2,
    };
    let ids: Vec<String> = (0..4).map(|i| format!("q{i}")).collect();
    let mut round = 0;
    let healed = presburger_serve::submit_batch_with_retry(&policy, &ids, |want| {
        round += 1;
        match round {
            1 => lines.clone(),
            _ => want.iter().map(|&i| format!("OK q{i} exact 3")).collect(),
        }
    });
    let want: Vec<String> = (0..4).map(|i| format!("OK q{i} exact 3")).collect();
    assert_eq!(healed, want);
    assert!(round > 1, "the shed positions must be resent");
}

// ---------------------------------------------------------------------
// Binary hex golden
// ---------------------------------------------------------------------

/// Reads one reply frame's raw bytes off the socket (accumulating into
/// `buf`), so the golden pins the server's actual wire bytes rather
/// than a re-encoding.
fn read_raw_reply(stream: &mut TcpStream, buf: &mut Vec<u8>, pos: &mut usize) -> Reply {
    loop {
        if let Ok((reply, used)) = Reply::decode(&buf[*pos..]) {
            *pos += used;
            return reply;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read reply bytes");
        assert!(n > 0, "eof before a complete reply frame");
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn hex_lines(bytes: &[u8]) -> String {
    let mut out = String::new();
    for chunk in bytes.chunks(32) {
        for b in chunk {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
    }
    out
}

#[test]
fn golden_binary_normal_session() {
    // An interactive binary session whose raw reply byte stream —
    // preamble echo plus every reply frame — is pinned as a hexdump.
    // Interactive awaits keep `queue_depth_peak` deterministic; the
    // batch step's atomic 3-deep admission is deterministic too.
    // Re-record with PRESBURGER_SERVE_RECORD=1.
    let server = TcpServer::bind("127.0.0.1:0", base_cfg()).expect("bind loopback");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(&wire::preamble())
        .expect("send client preamble");

    let mut raw: Vec<u8> = Vec::new();
    // Preamble echo.
    while raw.len() < 3 {
        let mut chunk = [0u8; 64];
        let n = stream.read(&mut chunk).expect("read preamble echo");
        assert!(n > 0, "eof before the preamble echo");
        raw.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(raw[..3], wire::preamble(), "server preamble");
    let mut pos = 3usize;

    for line in ["ping g0", "count g1 {x : 1 <= x <= 9}"] {
        stream
            .write_all(&wire::encode_request(&parse_request(line).expect("parses")))
            .expect("send frame");
        read_raw_reply(&mut stream, &mut raw, &mut pos);
    }
    let batch: Vec<Request> = [
        "count g2 {i,j : 1 <= i <= j <= 4}",
        "sum g3 x {x : 1 <= x <= 4}",
        "count g4 {x : 1 <= x <= 9}", // cache hit on g1's entry
    ]
    .iter()
    .map(|l| parse_request(l).expect("parses"))
    .collect();
    stream
        .write_all(&wire::encode_batch(&batch).expect("encodes"))
        .expect("send batch");
    read_raw_reply(&mut stream, &mut raw, &mut pos);
    for line in ["stats", "drain"] {
        stream
            .write_all(&wire::encode_request(&parse_request(line).expect("parses")))
            .expect("send frame");
        read_raw_reply(&mut stream, &mut raw, &mut pos);
    }
    // The server closes after the drain reply.
    let mut tail = Vec::new();
    stream.read_to_end(&mut tail).expect("read close");
    raw.extend_from_slice(&tail);
    assert_eq!(pos, raw.len(), "undecoded trailing reply bytes");
    server.shutdown();

    let got = hex_lines(&raw);
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/wire/normal_session.hex"
    );
    if std::env::var("PRESBURGER_SERVE_RECORD").is_ok() {
        std::fs::write(golden, &got).expect("record golden");
        println!("recorded {golden}");
        return;
    }
    let want =
        std::fs::read_to_string(golden).expect("golden recorded (PRESBURGER_SERVE_RECORD=1)");
    assert_eq!(got, want, "binary wire bytes drifted from the golden");
}
