//! Telemetry integration tests: the Prometheus exposition golden
//! (stable label ordering), the flight-recorder fault drill, the JSONL
//! event log, and the `metrics`/`flightrec` wire verbs.
//!
//! The exposition golden lives in `tests/golden/metrics.prom` with
//! every sample value masked to `V` (latencies vary run to run; the
//! *series set, label ordering, and line structure* must not). To
//! re-record after an intentional exposition change:
//! `PRESBURGER_SERVE_RECORD=1 cargo test -p presburger-serve --test
//! metrics` rewrites the golden in place.

use presburger_serve::{parse_request, Request, ServeConfig, Server, TcpServer, TelemetrySettings};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Deterministic base config: one worker, no wall-clock deadline.
fn base_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1,
        default_deadline_ms: None,
        ..ServeConfig::default()
    }
}

/// Submits one request line and waits for its reply.
fn ask(handle: &presburger_serve::Handle, line: &str) -> String {
    match parse_request(line).expect("request parses") {
        Request::Query(q) => handle.submit(q).wait(),
        _ => panic!("ask() is for queries"),
    }
}

/// The splinter-heavy Example 11 body (same one the protocol goldens
/// use): a `splinters_generated` fault or budget always trips on it.
const SPLINTERY: &str = "exists beta : 3beta - alpha >= 0 && -3beta + alpha + 7 >= 0 \
                         && alpha - 2beta - 1 >= 0 && -alpha + 2beta + 5 >= 0";

/// Masks every sample value in a Prometheus exposition: the text after
/// the last space on each non-comment line becomes `V`. Structure —
/// metric names, labels, bucket bounds, ordering — is untouched.
fn mask_values(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            out.push_str(line);
        } else if let Some(pos) = line.rfind(' ') {
            out.push_str(&line[..pos]);
            out.push_str(" V");
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn golden_metrics_exposition() {
    // One deterministic request per {verb, outcome} series: exact,
    // cache hit, sum, budget-bounded, parse error, then a post-drain
    // shed. Values that depend on wall time are masked; everything
    // else — which series exist, their label order, all 32 cumulative
    // bucket lines per series — is pinned byte-for-byte.
    let server = Server::start(base_cfg());
    let handle = server.handle();
    assert_eq!(ask(&handle, "count m1 {x : 1 <= x <= 9}"), "OK m1 exact 9");
    assert_eq!(ask(&handle, "count m2 {x : 1 <= x <= 9}"), "OK m2 exact 9");
    assert_eq!(ask(&handle, "sum m3 x {x : 1 <= x <= 4}"), "OK m3 exact 10");
    assert_eq!(
        ask(
            &handle,
            &format!("count m4 max_splinters=0 {{alpha : {SPLINTERY}}}")
        ),
        "OK m4 bounded budget 25 ; 25"
    );
    assert!(ask(&handle, "count m5 {x : 1 <=}").starts_with("ERR m5 parse"));
    handle.drain();
    assert!(ask(&handle, "count m6 {x : 1 <= x <= 9}").starts_with("SHED m6"));

    let text = handle.metrics_text();
    // The labeled counter family is fully deterministic: one request
    // per series, in stable declaration order.
    for want in [
        "presburger_requests_total{verb=\"count\",outcome=\"ok\"} 1",
        "presburger_requests_total{verb=\"count\",outcome=\"bounded\"} 1",
        "presburger_requests_total{verb=\"count\",outcome=\"shed\"} 1",
        "presburger_requests_total{verb=\"count\",outcome=\"err\"} 1",
        "presburger_requests_total{verb=\"count\",outcome=\"cache_hit\"} 1",
        "presburger_requests_total{verb=\"sum\",outcome=\"ok\"} 1",
    ] {
        assert!(text.contains(want), "missing {want:?} in:\n{text}");
    }
    // Histogram invariants: buckets are cumulative, +Inf equals _count.
    assert!(text.contains(
        "presburger_request_duration_us_bucket{verb=\"count\",outcome=\"ok\",le=\"+Inf\"} 1"
    ));
    assert!(text.contains("presburger_request_duration_us_count{verb=\"count\",outcome=\"ok\"} 1"));
    assert!(text.ends_with("# EOF"));
    // The memo totals are process-wide (other tests in this binary may
    // bump them between two renders), so stability is asserted on the
    // masked form: series set, label order, and line structure.
    assert_eq!(
        mask_values(&text),
        mask_values(&handle.metrics_text()),
        "exposition structure must be stable"
    );
    for want in [
        "# TYPE presburger_memo_hits_total counter",
        "# TYPE presburger_memo_misses_total counter",
        "# TYPE presburger_memo_shared_entries gauge",
        "# TYPE presburger_memo_shared_bytes gauge",
    ] {
        assert!(text.contains(want), "missing {want:?} in:\n{text}");
    }
    // Admission families (DESIGN.md §16): every request above rode the
    // default batch lane; the post-drain shed is a drain decision.
    for want in [
        "# TYPE presburger_admission_total counter",
        "presburger_admission_total{lane=\"batch\",decision=\"admit\"}",
        "presburger_admission_total{lane=\"batch\",decision=\"shed_drain\"} 1",
        "# TYPE presburger_lane_queue_wait_us histogram",
        "# TYPE presburger_lane_service_us histogram",
    ] {
        assert!(text.contains(want), "missing {want:?} in:\n{text}");
    }

    let masked = mask_values(&text);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var("PRESBURGER_SERVE_RECORD").is_ok() {
        std::fs::write(golden_path, &masked).expect("record golden");
    } else {
        let want = std::fs::read_to_string(golden_path).expect("golden exists");
        assert_eq!(
            masked, want,
            "masked exposition drifted from tests/golden/metrics.prom \
             (re-record with PRESBURGER_SERVE_RECORD=1 if intentional)"
        );
    }
    server.shutdown();
}

#[test]
fn flight_recorder_captures_faulted_request() {
    // The check.sh drill: with PRESBURGER_FAULT=splinters_generated:1
    // armed process-wide (or the equivalent hermetic fault_spec when
    // run standalone), a splintery request trips the governor and the
    // flight recorder must retain the full evidence. The latency
    // threshold is pushed out of reach so the governor trip is the
    // only possible trigger.
    let env_fault = std::env::var("PRESBURGER_FAULT").is_ok();
    let cfg = ServeConfig {
        fault_spec: (!env_fault).then(|| "splinters_generated:1".to_string()),
        telemetry: TelemetrySettings {
            flight_threshold_us: u64::MAX,
            // Span capture is opt-in (it stands the memo down); this
            // drill asserts the retained span tree, so turn it on.
            capture_spans: true,
            ..TelemetrySettings::default()
        },
        ..base_cfg()
    };
    let server = Server::start(cfg);
    let handle = server.handle();
    // A clean request first: no splinters, so the fault cannot fire and
    // nothing may be flight-recorded for it.
    assert_eq!(
        ask(&handle, "count ok1 {x : 1 <= x <= 9}"),
        "OK ok1 exact 9"
    );
    let reply = ask(&handle, &format!("count f1 {{alpha : {SPLINTERY}}}"));
    assert!(
        reply.starts_with("OK f1 bounded") || reply.starts_with("ERR f1"),
        "faulted request must trip, got {reply:?}"
    );
    server.shutdown(); // barrier: telemetry for both requests is recorded

    let dump = handle.flight_dump();
    assert!(dump.contains("\"id\":\"f1\""), "dump was:\n{dump}");
    assert!(!dump.contains("\"id\":\"ok1\""), "dump was:\n{dump}");
    assert!(dump.ends_with("# EOF"));
    let record = dump
        .lines()
        .find(|l| l.contains("\"id\":\"f1\""))
        .expect("f1 record");
    assert!(record.contains("\"governor_tripped\":true"));
    assert!(record.contains("\"trigger\":\"governor_trip\""));
    assert!(
        record.contains("\"governor_trips\":"),
        "counter delta attached"
    );
    assert!(record.contains("alpha"), "rendered formula retained");
    assert!(record.contains("\"spans\":"), "span tree retained");
    assert_eq!(handle.telemetry().metrics.flight_records(), 1);
}

#[test]
fn event_log_writes_sampled_jsonl() {
    let path = std::env::temp_dir().join(format!(
        "presburger_events_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let cfg = ServeConfig {
        telemetry: TelemetrySettings {
            event_log: Some(path.to_string_lossy().into_owned()),
            event_sample: 2,
            ..TelemetrySettings::default()
        },
        ..base_cfg()
    };
    let server = Server::start(cfg);
    let handle = server.handle();
    for i in 1..=4 {
        let reply = ask(&handle, &format!("count e{i} {{x : 1 <= x <= {i}}}"));
        assert_eq!(reply, format!("OK e{i} exact {i}"));
    }
    server.shutdown(); // flushes and joins the event-log writer

    let text = std::fs::read_to_string(&path).expect("event log written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "sample=2 logs every other request:\n{text}");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL: {line}"
        );
        assert!(line.contains("\"verb\":\"count\""));
        assert!(line.contains("\"outcome\":\"ok\""));
        assert!(line.contains("\"counters\":{"));
    }
    // With one worker, sampling by sequence number is deterministic:
    // seq 0 (e1) and seq 2 (e3).
    assert!(lines[0].contains("\"id\":\"e1\""));
    assert!(lines[1].contains("\"id\":\"e3\""));
    assert_eq!(handle.telemetry().metrics.events_dropped(), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn metrics_and_flightrec_verbs_over_tcp() {
    // The wire path: `metrics` and `flightrec` answer inline with
    // multi-line, `# EOF`-terminated blocks, interleaved FIFO with
    // query replies on the same connection.
    let server = TcpServer::bind("127.0.0.1:0", base_cfg()).expect("bind loopback");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    writeln!(stream, "count t1 {{x : 1 <= x <= 7}}").expect("write");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert_eq!(reply.trim_end(), "OK t1 exact 7");

    for verb in ["metrics", "stats/v2", "flightrec"] {
        writeln!(stream, "{verb}").expect("write");
        let mut block = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read block line");
            let done = line.trim_end() == "# EOF";
            block.push_str(&line);
            if done {
                break;
            }
        }
        if verb != "flightrec" {
            assert!(
                block.contains("# TYPE presburger_request_duration_us histogram"),
                "{verb} block was:\n{block}"
            );
            assert!(block.contains("presburger_requests_total{"));
        }
    }
    writeln!(stream, "drain").expect("write drain");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain tail");
    assert!(rest.contains("BYE"));
    server.shutdown();
}
