//! Symbolic counting and summation over Presburger formulas — the core
//! of Pugh, *Counting Solutions to Presburger Formulas: How and Why*
//! (PLDI 1994).
//!
//! Given a Presburger formula `P` with free variables split into
//! *summation variables* `V` and *symbolic constants*, this crate
//! computes the paper's
//!
//! ```text
//! (Σ V : P : z)
//! ```
//!
//! — the sum of the polynomial `z` over all integer assignments of `V`
//! satisfying `P` — as a **guarded quasi-polynomial** in the symbolic
//! constants. `(Σ V : P : 1)` is the number of solutions.
//!
//! # Example
//!
//! ```
//! use presburger_omega::{Affine, Formula, Space};
//! use presburger_counting::count_solutions;
//!
//! let mut s = Space::new();
//! let n = s.symbol("n");
//! let i = s.var("i");
//! let j = s.var("j");
//! // 1 ≤ i ≤ j ≤ n  — the triangle: n(n+1)/2 points
//! let f = Formula::and(vec![
//!     Formula::le(Affine::constant(1), Affine::var(i)),
//!     Formula::le(Affine::var(i), Affine::var(j)),
//!     Formula::le(Affine::var(j), Affine::var(n)),
//! ]);
//! let count = count_solutions(&s, &f, &[i, j]);
//! assert_eq!(count.eval_i64(&[("n", 10)]), Some(55));
//! assert_eq!(count.eval_i64(&[("n", 0)]), Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod basic;
pub mod convex;
pub mod enumerate;
pub mod general;
pub mod govern;
pub mod minmax;
pub mod pipeline;
pub mod projected;

pub use govern::{
    try_count_solutions_governed, try_sum_polynomial_bounds, try_sum_polynomial_governed, Budgets,
    ClauseStatus, DegradePolicy, Governor, Outcome,
};

use presburger_arith::{Int, Rat};
use presburger_omega::{Formula, Space, VarId};
use presburger_polyq::{GuardedValue, QPoly};

/// Whether to compute exact answers or cheaper bounds (§4.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// Exact symbolic answer (may splinter and introduce mod atoms).
    #[default]
    Exact,
    /// An upper bound on the sum (requires a non-negative summand).
    UpperBound,
    /// A lower bound on the sum (requires a non-negative summand).
    LowerBound,
}

/// Options for the counting engine.
#[derive(Clone, Copy, Debug)]
pub struct CountOptions {
    /// Exact or approximate computation.
    pub mode: Mode,
    /// Use the paper's §4.2 four-piece decomposition instead of direct
    /// telescoping (for ablation studies; results are identical).
    pub four_piece: bool,
    /// Run complete redundant-constraint elimination before each
    /// variable choice (§4.4 step 1). Disabling this reproduces the
    /// Tawbi-style behaviour the paper compares against (ablation A1).
    pub remove_redundant: bool,
    /// Worker threads draining the clause-task pipeline: `1` runs the
    /// tasks inline on the calling thread, `0` means one worker per
    /// available core. Results are byte-identical at every setting —
    /// the task decomposition and merge order never depend on
    /// scheduling.
    pub threads: usize,
    /// Memoize pure sub-computations (variable eliminations with their
    /// splinter sets, Smith normal forms, Faulhaber power sums) across
    /// clauses — and, when the serving layer enables the shared tier,
    /// across requests. Answers and trace counters are byte-identical
    /// either way (hits replay the counter delta the original
    /// computation charged); only the `memo_*` meta-counters and
    /// wall-clock time differ. Defaults to the `PRESBURGER_MEMO`
    /// environment variable (`0`/`false`/`off` disable), else on.
    pub memo: bool,
}

impl Default for CountOptions {
    /// The default thread count honours the `PRESBURGER_THREADS`
    /// environment variable — read **per call**, so tests (and long-
    /// running services) that change the variable after the first count
    /// are not silently ignored — falling back to `1`, the sequential
    /// behaviour.
    fn default() -> CountOptions {
        CountOptions {
            mode: Mode::Exact,
            four_piece: false,
            remove_redundant: true,
            threads: default_threads(),
            memo: default_memo(),
        }
    }
}

fn default_threads() -> usize {
    std::env::var("PRESBURGER_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(1)
}

/// Like [`default_threads`], `PRESBURGER_MEMO` is read per call so a
/// test (or a long-running service) flipping it is never silently
/// ignored. Anything other than `0`, `false` or `off` leaves the memo
/// on.
fn default_memo() -> bool {
    !std::env::var("PRESBURGER_MEMO")
        .map(|s| {
            let s = s.trim().to_ascii_lowercase();
            s == "0" || s == "false" || s == "off"
        })
        .unwrap_or(false)
}

/// RAII guard installing the thread's memo flag for the duration of an
/// engine entry point, restoring the previous state on exit (entries
/// nest when a caller's summand callback re-enters the engine).
pub(crate) struct MemoScope {
    prev: bool,
}

impl MemoScope {
    pub(crate) fn install(on: bool) -> MemoScope {
        let prev = presburger_trace::memo_enabled();
        presburger_trace::set_memo_enabled(on);
        MemoScope { prev }
    }
}

impl Drop for MemoScope {
    fn drop(&mut self) {
        presburger_trace::set_memo_enabled(self.prev);
    }
}

/// Errors reported by the counting engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CountError {
    /// A summation variable is unbounded (the sum diverges).
    Unbounded {
        /// Name of the unbounded variable.
        var: String,
    },
    /// The computation exceeded its recursion budget.
    TooComplex(String),
    /// A [`Governor`] budget was exhausted.
    BudgetExceeded {
        /// Stable name of the exhausted resource (a counter name or an
        /// engine fuel pool such as `wildcard_projection_fuel`).
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// The amount spent when the trip fired.
        spent: u64,
    },
    /// The [`Governor`] wall-clock deadline passed.
    Deadline {
        /// The configured deadline in milliseconds.
        limit_ms: u64,
        /// Elapsed milliseconds when the miss was observed.
        elapsed_ms: u64,
    },
    /// The [`Governor`] cancellation token was set.
    Cancelled,
    /// A clause worker panicked; the panic was caught, the pipeline
    /// completed, and the message is reported here instead of aborting
    /// the process.
    Internal(String),
}

impl CountError {
    /// A stable machine-readable name for the error variant, used by
    /// the serving layer's wire protocol and the calculator's JSON
    /// error objects.
    pub fn kind(&self) -> &'static str {
        match self {
            CountError::Unbounded { .. } => "unbounded",
            CountError::TooComplex(_) => "too_complex",
            CountError::BudgetExceeded { .. } => "budget",
            CountError::Deadline { .. } => "deadline",
            CountError::Cancelled => "cancelled",
            CountError::Internal(_) => "internal",
        }
    }

    /// Whether a governed run may degrade this error to §4.6 bounds
    /// (budget-style exhaustion: yes; divergence, cancellation and
    /// panics: no).
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            CountError::BudgetExceeded { .. }
                | CountError::Deadline { .. }
                | CountError::TooComplex(_)
        )
    }
}

impl std::fmt::Display for CountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CountError::Unbounded { var } => {
                write!(f, "summation variable {var} is unbounded")
            }
            CountError::TooComplex(what) => write!(f, "computation too complex: {what}"),
            CountError::BudgetExceeded {
                resource,
                limit,
                spent,
            } => write!(
                f,
                "budget exceeded: {resource} limit {limit}, spent {spent}"
            ),
            CountError::Deadline {
                limit_ms,
                elapsed_ms,
            } => write!(
                f,
                "deadline exceeded: {limit_ms} ms limit, {elapsed_ms} ms elapsed"
            ),
            CountError::Cancelled => write!(f, "cancelled"),
            CountError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for CountError {}

/// Errors from evaluating a [`Symbolic`] result at a concrete point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The value mentions a symbol the caller did not bind.
    MissingSymbol {
        /// Name of the first unbound symbol encountered.
        name: String,
    },
    /// The value is not an integer at that point (for counts this
    /// indicates a bug — counts are always integral).
    NotIntegral {
        /// The rational value, rendered.
        value: String,
    },
}

impl EvalError {
    /// A stable machine-readable name for the error variant (see
    /// [`CountError::kind`]).
    pub fn kind(&self) -> &'static str {
        match self {
            EvalError::MissingSymbol { .. } => "missing_symbol",
            EvalError::NotIntegral { .. } => "not_integral",
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::MissingSymbol { name } => write!(f, "no binding for symbol {name}"),
            EvalError::NotIntegral { value } => {
                write!(f, "value {value} is not an integer")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A symbolic result together with the space its guards refer to.
///
/// Counting may intern fresh auxiliary variables, so the result carries
/// its own copy of the space for evaluation and printing.
#[derive(Clone, Debug)]
pub struct Symbolic {
    /// The space in which guards and polynomials are interpreted.
    pub space: Space,
    /// The guarded quasi-polynomial value.
    pub value: GuardedValue,
}

impl Symbolic {
    /// Evaluates the result with symbols bound by name.
    ///
    /// Returns `None` if the value is not an integer at that point
    /// (indicating a bug — counts are always integral).
    ///
    /// # Panics
    ///
    /// Panics if a mentioned symbol has no binding; service callers
    /// should prefer [`Symbolic::try_eval_i64`].
    pub fn eval_i64(&self, bindings: &[(&str, i64)]) -> Option<i64> {
        match self.try_eval_i64(bindings) {
            Ok(v) => Some(v),
            Err(EvalError::NotIntegral { .. }) => None,
            Err(e @ EvalError::MissingSymbol { .. }) => panic!("{e}"),
        }
    }

    /// Evaluates to an exact rational with symbols bound by name.
    ///
    /// # Panics
    ///
    /// Panics if a mentioned symbol has no binding; service callers
    /// should prefer [`Symbolic::try_eval_rat`].
    pub fn eval_rat(&self, bindings: &[(&str, i64)]) -> Rat {
        self.try_eval_rat(bindings)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Symbolic::eval_i64`]: reports an unbound
    /// symbol or a non-integral value as an [`EvalError`] instead of
    /// panicking / losing the distinction in an `Option`.
    pub fn try_eval_i64(&self, bindings: &[(&str, i64)]) -> Result<i64, EvalError> {
        let r = self.try_eval_rat(bindings)?;
        r.to_int()
            .and_then(|i| i.to_i64())
            .ok_or_else(|| EvalError::NotIntegral {
                value: r.to_string(),
            })
    }

    /// Fallible version of [`Symbolic::eval_rat`]: reports the first
    /// unbound symbol as [`EvalError::MissingSymbol`] instead of
    /// panicking.
    pub fn try_eval_rat(&self, bindings: &[(&str, i64)]) -> Result<Rat, EvalError> {
        // `GuardedValue::eval` drives evaluation through an infallible
        // assignment closure; record the first miss on the side (and
        // substitute zero to keep going) rather than threading Results
        // through every guard and polynomial.
        let missing: std::cell::RefCell<Option<String>> = std::cell::RefCell::new(None);
        let value = self.value.eval(&self.space, &|v| {
            let name = self.space.name(v);
            match bindings.iter().find(|(n, _)| *n == name) {
                Some((_, val)) => Int::from(*val),
                None => {
                    missing.borrow_mut().get_or_insert_with(|| name.to_string());
                    Int::zero()
                }
            }
        });
        match missing.into_inner() {
            Some(name) => Err(EvalError::MissingSymbol { name }),
            None => Ok(value),
        }
    }

    /// Evaluates with an arbitrary assignment function.
    pub fn eval_with(&self, assign: &dyn Fn(VarId) -> Int) -> Rat {
        self.value.eval(&self.space, assign)
    }

    /// Number of guarded pieces in the answer.
    pub fn num_pieces(&self) -> usize {
        self.value.pieces().len()
    }

    /// Renders the value in the paper's `(Σ : P : z)` notation.
    pub fn to_display_string(&self) -> String {
        self.value.to_string(&self.space)
    }

    /// Adds another symbolic value (e.g. combining footprints of two
    /// arrays). Both must stem from the same base [`Space`]: the
    /// variables they share by index must agree by name.
    ///
    /// # Panics
    ///
    /// Panics if the spaces disagree on a shared variable name.
    pub fn add(&self, other: &Symbolic) -> Symbolic {
        let mut space = self.space.clone();
        space.absorb(&other.space);
        let mut value = self.value.clone();
        value.add(other.value.clone());
        value.compact();
        Symbolic { space, value }
    }

    /// Scales the value by a rational factor (e.g. bytes per element).
    pub fn scale(&self, k: &Rat) -> Symbolic {
        Symbolic {
            space: self.space.clone(),
            value: self.value.scale(k),
        }
    }
}

/// Counts the integer solutions of `f` over `vars`, symbolically in the
/// remaining free variables.
///
/// # Panics
///
/// Panics if the count is infinite (a variable is unbounded) or the
/// computation exceeds its budget; use [`try_count_solutions`] for a
/// fallible version.
pub fn count_solutions(space: &Space, f: &Formula, vars: &[VarId]) -> Symbolic {
    try_count_solutions(space, f, vars, &CountOptions::default())
        .unwrap_or_else(|e| panic!("count_solutions failed: {e}"))
}

/// Fallible, configurable version of [`count_solutions`].
pub fn try_count_solutions(
    space: &Space,
    f: &Formula,
    vars: &[VarId],
    opts: &CountOptions,
) -> Result<Symbolic, CountError> {
    try_sum_polynomial(space, f, vars, &QPoly::one(), opts)
}

/// Sums `poly` over the integer solutions of `f` in `vars` (the paper's
/// `(Σ V : P : z)`).
///
/// # Panics
///
/// Panics when the sum diverges or the computation exceeds its budget;
/// use [`try_sum_polynomial`] for a fallible version.
pub fn sum_polynomial(space: &Space, f: &Formula, vars: &[VarId], poly: &QPoly) -> Symbolic {
    try_sum_polynomial(space, f, vars, poly, &CountOptions::default())
        .unwrap_or_else(|e| panic!("sum_polynomial failed: {e}"))
}

/// Fallible, configurable version of [`sum_polynomial`].
pub fn try_sum_polynomial(
    space: &Space,
    f: &Formula,
    vars: &[VarId],
    poly: &QPoly,
    opts: &CountOptions,
) -> Result<Symbolic, CountError> {
    let _memo = MemoScope::install(opts.memo);
    let mut space = space.clone();
    let value = general::sum_formula(f, vars, poly, &mut space, opts)?;
    Ok(Symbolic { space, value })
}
