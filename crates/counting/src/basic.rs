//! Simple and basic sums (§4.1–§4.2) as a standalone API.
//!
//! These are the building blocks the convex engine uses internally,
//! exposed directly for callers that just need `Σ_{i=L}^{U} iᵖ` with
//! affine bounds, in both of the forms the paper discusses:
//!
//! * [`simple_sum`] — §4.1's `(Σ i : 1 ≤ i ≤ n : iᵖ)` with guard
//!   `1 ≤ n`;
//! * [`basic_sum`] — §4.2's general bounds via the four-piece
//!   decomposition (each piece reduces to a simple sum over `1..k`);
//! * [`basic_sum_telescoped`] — the telescoped equivalent this
//!   implementation prefers (one piece, guard `L ≤ U`).
//!
//! The two general forms are algebraically identical under their
//! guards; the property tests below verify this, and ablation A1 in
//! the bench crate measures the difference in piece count.

use presburger_arith::{Int, Rat};
use presburger_omega::{Affine, Conjunct, VarId};
use presburger_polyq::faulhaber::power_sum;
use presburger_polyq::{GuardedValue, QPoly};

/// §4.1: `(Σ i : 1 ≤ i ≤ n : iᵖ)` — a Faulhaber polynomial guarded by
/// `1 ≤ n`.
///
/// ```
/// use presburger_omega::Space;
/// use presburger_counting::basic::simple_sum;
///
/// let mut s = Space::new();
/// let n = s.var("n");
/// let v = simple_sum(2, n);
/// assert_eq!(v.eval_i64(&s, &[("n", 4)]), Some(30));
/// assert_eq!(v.eval_i64(&s, &[("n", -3)]), Some(0)); // guarded
/// ```
pub fn simple_sum(p: u32, n: VarId) -> GuardedValue {
    let mut guard = Conjunct::new();
    guard.add_geq(Affine::from_terms(&[(n, 1)], -1)); // n >= 1
    GuardedValue::piece(guard, power_sum(p, n))
}

/// §4.2: `Σ_{i=L}^{U} iᵖ` for arbitrary affine bounds, via the paper's
/// four-piece decomposition. Every piece's guard is affine; the pieces
/// overlap additively (they are contributions, not cases).
///
/// `scratch` must be a variable not mentioned by `lower`/`upper`.
pub fn basic_sum(p: u32, lower: &Affine, upper: &Affine, scratch: VarId) -> GuardedValue {
    assert!(
        !lower.mentions(scratch) && !upper.mentions(scratch),
        "scratch variable must not appear in the bounds"
    );
    let nonempty = upper - lower; // U − L ≥ 0
    let mut out = GuardedValue::zero();
    if p == 0 {
        // count: U − L + 1
        let mut g = Conjunct::new();
        g.add_geq(nonempty);
        let mut range = upper - lower;
        range.add_constant(&Int::one());
        out.push(g, QPoly::from_affine(&range));
        return out;
    }
    let f = power_sum(p, scratch);
    let f_at = |x: QPoly| f.substitute(scratch, &x);
    let sign = if p.is_multiple_of(2) {
        Rat::one()
    } else {
        -Rat::one()
    };
    let u = QPoly::from_affine(upper);
    let l = QPoly::from_affine(lower);
    // (Σ 1≤i≤U) when U ≥ 1
    {
        let mut g = Conjunct::new();
        g.add_geq(nonempty.clone());
        let mut e = upper.clone();
        e.add_constant(&Int::from(-1));
        g.add_geq(e);
        out.push(g, f_at(u.clone()));
    }
    // −(Σ 1≤i≤L−1) when L ≥ 2
    {
        let mut g = Conjunct::new();
        g.add_geq(nonempty.clone());
        let mut e = lower.clone();
        e.add_constant(&Int::from(-2));
        g.add_geq(e);
        out.push(g, -f_at(l.clone() - QPoly::one()));
    }
    // +(−1)ᵖ(Σ 1≤i≤−L) when L ≤ −1
    {
        let mut g = Conjunct::new();
        g.add_geq(nonempty.clone());
        let mut e = -lower;
        e.add_constant(&Int::from(-1));
        g.add_geq(e);
        out.push(g, f_at(-l).scale(&sign));
    }
    // −(−1)ᵖ(Σ 1≤i≤−U−1) when U ≤ −2
    {
        let mut g = Conjunct::new();
        g.add_geq(nonempty);
        let mut e = -upper;
        e.add_constant(&Int::from(-2));
        g.add_geq(e);
        out.push(g, -f_at(-u - QPoly::one()).scale(&sign));
    }
    out
}

/// The telescoped form of [`basic_sum`]: one piece
/// `Fₚ(U) − Fₚ(L−1)` guarded by `L ≤ U` (valid for negative bounds too
/// because `Fₚ(n) − Fₚ(n−1) = nᵖ` is a polynomial identity).
pub fn basic_sum_telescoped(
    p: u32,
    lower: &Affine,
    upper: &Affine,
    scratch: VarId,
) -> GuardedValue {
    assert!(
        !lower.mentions(scratch) && !upper.mentions(scratch),
        "scratch variable must not appear in the bounds"
    );
    let mut g = Conjunct::new();
    g.add_geq(upper - lower);
    let value = presburger_polyq::faulhaber::sum_powers(
        p,
        &QPoly::from_affine(lower),
        &QPoly::from_affine(upper),
        scratch,
    );
    GuardedValue::piece(g, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_omega::Space;
    use proptest::prelude::*;

    fn brute(p: u32, l: i64, u: i64) -> i128 {
        (l as i128..=u as i128).map(|i| i.pow(p)).sum()
    }

    #[test]
    fn simple_sums_match_paper_table() {
        // §4.1 example: Σ i² = n(n+1)(2n+1)/6 guarded by 1 ≤ n
        let mut s = Space::new();
        let n = s.var("n");
        let v = simple_sum(2, n);
        assert_eq!(v.eval_i64(&s, &[("n", 10)]), Some(385));
        assert_eq!(v.eval_i64(&s, &[("n", 0)]), Some(0));
        assert_eq!(v.pieces().len(), 1);
    }

    #[test]
    fn four_piece_concrete() {
        let mut s = Space::new();
        let scratch = s.var("t");
        let l = s.var("l");
        let u = s.var("u");
        for p in 0..=4u32 {
            let v = basic_sum(p, &Affine::var(l), &Affine::var(u), scratch);
            for lv in -5i64..=5 {
                for uv in -5i64..=5 {
                    let expected = if lv <= uv { brute(p, lv, uv) } else { 0 };
                    let got = v.eval(&s, &|w| {
                        if w == l {
                            Int::from(lv)
                        } else {
                            Int::from(uv)
                        }
                    });
                    assert_eq!(got, Rat::from(Int::from(expected)), "p={p} L={lv} U={uv}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn four_piece_equals_telescoped(p in 0u32..=5, lv in -20i64..20, uv in -20i64..20) {
            let mut s = Space::new();
            let scratch = s.var("t");
            let l = s.var("l");
            let u = s.var("u");
            let four = basic_sum(p, &Affine::var(l), &Affine::var(u), scratch);
            let tele = basic_sum_telescoped(p, &Affine::var(l), &Affine::var(u), scratch);
            let assign = |w: VarId| if w == l { Int::from(lv) } else { Int::from(uv) };
            prop_assert_eq!(four.eval(&s, &assign), tele.eval(&s, &assign));
        }
    }

    #[test]
    fn piece_counts() {
        let mut s = Space::new();
        let scratch = s.var("t");
        let l = s.var("l");
        let u = s.var("u");
        let four = basic_sum(3, &Affine::var(l), &Affine::var(u), scratch);
        let tele = basic_sum_telescoped(3, &Affine::var(l), &Affine::var(u), scratch);
        assert_eq!(four.pieces().len(), 4);
        assert_eq!(tele.pieces().len(), 1);
    }
}
