//! Projected sums (§4.5.2): reducing an arbitrary clause to a convex
//! sum by re-parametrizing the solution lattice with the Smith normal
//! form.
//!
//! A clause produced by the Omega test may constrain the summation
//! variables through equalities, stride constraints, and existential
//! wildcards. `sum_clause` — the entry point used for every clause of
//! the disjoint DNF — eliminates each in turn:
//!
//! 1. wildcards are projected out exactly (disjoint splintering);
//! 2. strides on summation variables become equalities with fresh
//!    *parameter* variables (the determined quotient);
//! 3. the equality system `A·ȳ = rhs(s̄)` over the summation variables
//!    and parameters is solved with the Smith normal form
//!    `U·A·V = D`: divisibility conditions on the symbolic right-hand
//!    side become stride *guards*, determined coordinates become
//!    (rational) affine expressions of the symbols, and the free
//!    coordinates become the new summation variables — an affine 1-1
//!    mapping exactly as in the paper;
//! 4. what remains is a convex sum (§4.4).

use crate::convex::sum_convex;
use crate::{CountError, CountOptions, Mode};
use presburger_arith::{lcm, smith::smith_normal_form, Int, Matrix};
use presburger_omega::dnf::project_wildcards;
use presburger_omega::eliminate::Shadow;
use presburger_omega::{Affine, Conjunct, Space, VarId};
use presburger_polyq::{GuardedValue, QPoly};

/// Shared state threaded through the counting recursion.
pub(crate) struct Ctx<'a> {
    /// The variable space (fresh parameters are interned here).
    pub space: &'a mut Space,
    opts: &'a CountOptions,
    budget: u64,
    /// Current [`sum_clause`] recursion depth, reported as the
    /// `sum_depth` gauge (which the governor can cap).
    depth: u64,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(space: &'a mut Space, opts: &'a CountOptions) -> Ctx<'a> {
        Ctx {
            space,
            opts,
            budget: 100_000,
            depth: 0,
        }
    }

    /// Consumes one unit of work; errors when the budget is exhausted.
    pub(crate) fn spend(&mut self) -> Result<(), CountError> {
        if self.budget == 0 {
            return Err(CountError::TooComplex(
                "summation recursion budget exhausted".to_string(),
            ));
        }
        self.budget -= 1;
        Ok(())
    }

    pub(crate) fn mode(&self) -> Mode {
        self.opts.mode
    }

    pub(crate) fn four_piece(&self) -> bool {
        self.opts.four_piece
    }

    pub(crate) fn opts_redundancy(&self) -> bool {
        self.opts.remove_redundant
    }
}

/// Sums `z` over the integer points of an arbitrary clause (§4.5).
pub(crate) fn sum_clause(
    c: &Conjunct,
    vars: &[VarId],
    z: &QPoly,
    ctx: &mut Ctx<'_>,
) -> Result<GuardedValue, CountError> {
    // Depth bookkeeping around the real body: the gauge is what the
    // governor's elimination-recursion budget charges against. The
    // counter is not restored on unwind, but a trip discards the whole
    // Ctx with it.
    ctx.depth += 1;
    presburger_trace::record_max(presburger_trace::Counter::SumDepth, ctx.depth);
    let r = sum_clause_inner(c, vars, z, ctx);
    ctx.depth -= 1;
    r
}

fn sum_clause_inner(
    c: &Conjunct,
    vars: &[VarId],
    z: &QPoly,
    ctx: &mut Ctx<'_>,
) -> Result<GuardedValue, CountError> {
    ctx.spend()?;
    let _span = presburger_trace::span("sum_clause");
    let mut c = c.clone();
    c.normalize();
    if c.is_false() || z.is_zero() {
        return Ok(GuardedValue::zero());
    }

    // 1. project wildcards out (exactly, with disjoint splinters so the
    //    resulting clauses can be summed independently).
    let has_wildcards = {
        let mentioned = c.mentioned_vars();
        c.wildcards().iter().any(|w| mentioned.contains(w))
    };
    if has_wildcards {
        let parts = project_wildcards(&c, ctx.space, Shadow::ExactDisjoint);
        let mut acc = GuardedValue::zero();
        for p in parts {
            acc.add(sum_clause(&p, vars, z, ctx)?);
        }
        return Ok(acc);
    }

    // 2. strides on summation variables → equalities with fresh
    //    parameter variables (γ = e/m is determined by the point).
    let mut strides_on_vars = Vec::new();
    let mut kept_strides = Vec::new();
    for (m, e) in c.strides() {
        if e.mentions_any(vars) {
            strides_on_vars.push((m.clone(), e.clone()));
        } else {
            kept_strides.push((m.clone(), e.clone()));
        }
    }
    let has_eq_on_vars = c.eqs().iter().any(|e| e.mentions_any(vars));
    if strides_on_vars.is_empty() && !has_eq_on_vars {
        return sum_convex(&c, vars, z, ctx);
    }

    // Build the equality system over unknowns = (summation variables
    // mentioned in equalities/strides) ∪ (stride parameters).
    let mut work = Conjunct::new();
    for e in c.geqs() {
        work.add_geq(e.clone());
    }
    for (m, e) in kept_strides {
        work.add_stride(m, e);
    }
    let mut eqs: Vec<Affine> = Vec::new();
    for e in c.eqs() {
        eqs.push(e.clone());
    }
    let mut unknowns: Vec<VarId> = Vec::new();
    let mut stride_params: Vec<VarId> = Vec::new();
    for (m, e) in strides_on_vars {
        let gamma = ctx.space.fresh("g");
        stride_params.push(gamma);
        // e − m·γ = 0
        eqs.push(e.add_scaled(&Affine::var(gamma), &-m));
    }
    // split equalities into those touching summation vars / params and
    // pure symbol guards
    let relevant = |e: &Affine| e.mentions_any(vars) || e.mentions_any(&stride_params);
    let mut sys: Vec<Affine> = Vec::new();
    for e in eqs {
        if relevant(&e) {
            sys.push(e);
        } else {
            work.add_eq(e); // symbols-only guard
        }
    }
    for v in vars {
        if sys.iter().any(|e| e.mentions(*v)) {
            unknowns.push(*v);
        }
    }
    unknowns.extend(stride_params.iter().copied());

    // A·ȳ + rhs(s̄) = 0
    let rows = sys.len();
    let cols = unknowns.len();
    let mut a = Matrix::zero(rows, cols);
    let mut rhs: Vec<Affine> = Vec::with_capacity(rows);
    for (i, e) in sys.iter().enumerate() {
        let mut rest = e.clone();
        for (j, u) in unknowns.iter().enumerate() {
            a[(i, j)] = e.coeff(*u);
            rest.set_coeff(*u, Int::zero());
        }
        rhs.push(-&rest); // A·ȳ = −rest
    }

    let snf = smith_normal_form(&a);
    // h = U·rhs (affine in symbols)
    let h: Vec<Affine> = (0..rows)
        .map(|i| {
            let mut acc = Affine::zero();
            for (j, r) in rhs.iter().enumerate() {
                acc = acc.add_scaled(r, &snf.u[(i, j)]);
            }
            acc
        })
        .collect();

    // determine ẑ coordinates: ẑᵢ = hᵢ/dᵢ for i < rank, fresh free
    // parameters for i ≥ rank; rows past the rank require hᵢ = 0.
    // `Determined` carries an inline-storage `Affine` (272 bytes); the
    // vector is short-lived and per-conjunct, so no boxing.
    #[allow(clippy::large_enum_variant)]
    #[derive(Clone)]
    enum Coord {
        Determined { num: Affine, den: Int },
        Free(VarId),
    }
    let mut coords: Vec<Coord> = Vec::with_capacity(cols);
    #[allow(clippy::needless_range_loop)] // i indexes both D and h
    for i in 0..cols {
        if i < snf.rank {
            let d = snf.d[(i, i)].clone();
            let hi = h[i].clone();
            if d.is_one() {
                coords.push(Coord::Determined {
                    num: hi,
                    den: Int::one(),
                });
            } else if hi.is_constant() {
                if !d.divides(hi.constant_term()) {
                    return Ok(GuardedValue::zero()); // no integer solutions
                }
                coords.push(Coord::Determined {
                    num: Affine::constant(hi.constant_term().div_floor(&d)),
                    den: Int::one(),
                });
            } else {
                // divisibility becomes a stride guard on the symbols
                work.add_stride(d.clone(), hi.clone());
                coords.push(Coord::Determined { num: hi, den: d });
            }
        } else {
            let t = ctx.space.fresh("t");
            coords.push(Coord::Free(t));
        }
    }
    // rows past the rank have an all-zero diagonal: 0 = hᵢ must hold
    for hi in h.iter().skip(snf.rank) {
        if hi.is_constant() {
            if !hi.constant_term().is_zero() {
                return Ok(GuardedValue::zero());
            }
        } else {
            work.add_eq(hi.clone()); // symbols-only guard equality
        }
    }

    // ȳⱼ = Σₖ V[j,k]·ẑₖ as rational affine (num/den)
    struct RatAffine {
        num: Affine,
        den: Int,
    }
    let ybar: Vec<RatAffine> = (0..cols)
        .map(|j| {
            // common denominator
            let mut den = Int::one();
            for (k, coord) in coords.iter().enumerate() {
                if snf.v[(j, k)].is_zero() {
                    continue;
                }
                if let Coord::Determined { den: dk, .. } = coord {
                    den = lcm(&den, dk);
                }
            }
            let mut num = Affine::zero();
            for (k, coord) in coords.iter().enumerate() {
                let vj = &snf.v[(j, k)];
                if vj.is_zero() {
                    continue;
                }
                match coord {
                    Coord::Determined { num: nk, den: dk } => {
                        let scale = vj * &(&den / dk);
                        num = num.add_scaled(nk, &scale);
                    }
                    Coord::Free(t) => {
                        let cur = num.coeff(*t) + vj * &den;
                        num.set_coeff(*t, cur);
                    }
                }
            }
            RatAffine { num, den }
        })
        .collect();

    // rewrite the inequalities: scale each by the lcm of the involved
    // denominators so the substituted constraint stays integral
    let mut new_clause = Conjunct::new();
    for e in work.eqs() {
        new_clause.add_eq(e.clone());
    }
    for (m, e) in work.strides() {
        new_clause.add_stride(m.clone(), e.clone());
    }
    for e in work.geqs() {
        let mut scale = Int::one();
        for (j, u) in unknowns.iter().enumerate() {
            if !e.coeff(*u).is_zero() {
                scale = lcm(&scale, &ybar[j].den);
            }
        }
        let mut out = Affine::zero();
        // scaled non-unknown part
        let mut rest = e.clone();
        for u in &unknowns {
            rest.set_coeff(*u, Int::zero());
        }
        out = out.add_scaled(&rest, &scale);
        for (j, u) in unknowns.iter().enumerate() {
            let cj = e.coeff(*u);
            if cj.is_zero() {
                continue;
            }
            let k = &cj * &(&scale / &ybar[j].den);
            out = out.add_scaled(&ybar[j].num, &k);
        }
        new_clause.add_geq(out);
    }

    // substitute into the summand
    let mut new_z = z.clone();
    for (j, u) in unknowns.iter().enumerate() {
        if !new_z.mentions(*u) {
            continue;
        }
        // integrality of num/den on the solution set is guaranteed by
        // the stride guards added above
        new_z = new_z.substitute_rational(*u, &ybar[j].num, &ybar[j].den);
    }

    // the new summation variables: untouched old ones + free parameters
    let mut new_vars: Vec<VarId> = vars
        .iter()
        .copied()
        .filter(|v| !unknowns.contains(v))
        .collect();
    for coord in &coords {
        if let Coord::Free(t) = coord {
            new_vars.push(*t);
        }
    }

    sum_clause(&new_clause, &new_vars, &new_z, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_arith::Rat;

    fn count(c: &Conjunct, vars: &[VarId], space: &mut Space) -> GuardedValue {
        let opts = CountOptions::default();
        let mut ctx = Ctx::new(space, &opts);
        sum_clause(c, vars, &QPoly::one(), &mut ctx).expect("countable")
    }

    #[test]
    fn equality_line_segment() {
        // count (x, y) with x + y = n, 0 ≤ x, 0 ≤ y  ⇒  n + 1 (n ≥ 0)
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        let mut c = Conjunct::new();
        c.add_eq(Affine::from_terms(&[(x, 1), (y, 1), (n, -1)], 0));
        c.add_geq(Affine::var(x));
        c.add_geq(Affine::var(y));
        let v = count(&c, &[x, y], &mut s);
        for nv in -2i64..=8 {
            let expected = if nv >= 0 { nv + 1 } else { 0 };
            assert_eq!(
                v.eval(&s, &|w| {
                    assert_eq!(w, n);
                    Int::from(nv)
                }),
                Rat::from(expected),
                "n={nv}"
            );
        }
    }

    #[test]
    fn stride_on_count_var() {
        // count x with 0 ≤ x ≤ n and 3 | x  ⇒  ⌊n/3⌋ + 1 for n ≥ 0
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let mut c = Conjunct::new();
        c.add_geq(Affine::var(x));
        c.add_geq(Affine::from_terms(&[(x, -1), (n, 1)], 0));
        c.add_stride(Int::from(3), Affine::var(x));
        let v = count(&c, &[x], &mut s);
        for nv in -3i64..=12 {
            let expected = if nv >= 0 { nv / 3 + 1 } else { 0 };
            assert_eq!(
                v.eval(&s, &|_| Int::from(nv)),
                Rat::from(expected),
                "n={nv}"
            );
        }
    }

    #[test]
    fn diagonal_equality_with_modulus() {
        // count (x, y): 2x = 3y, 0 ≤ x ≤ n  ⇒  x ∈ {0, 3, 6, …} ⇒ ⌊n/3⌋+1
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        let mut c = Conjunct::new();
        c.add_eq(Affine::from_terms(&[(x, 2), (y, -3)], 0));
        c.add_geq(Affine::var(x));
        c.add_geq(Affine::from_terms(&[(x, -1), (n, 1)], 0));
        let v = count(&c, &[x, y], &mut s);
        for nv in 0i64..=12 {
            let expected = nv / 3 + 1;
            assert_eq!(
                v.eval(&s, &|_| Int::from(nv)),
                Rat::from(expected),
                "n={nv}"
            );
        }
    }

    #[test]
    fn wildcard_projection_before_counting() {
        // count x: ∃α: x = 2α ∧ 1 ≤ α ≤ n  ⇒  n for n ≥ 1
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let alpha = s.fresh("a");
        let mut c = Conjunct::new();
        c.add_wildcard(alpha);
        c.add_eq(Affine::from_terms(&[(x, 1), (alpha, -2)], 0));
        c.add_geq(Affine::from_terms(&[(alpha, 1)], -1));
        c.add_geq(Affine::from_terms(&[(alpha, -1), (n, 1)], 0));
        let v = count(&c, &[x], &mut s);
        for nv in -1i64..=7 {
            let expected = nv.max(0);
            assert_eq!(
                v.eval(&s, &|_| Int::from(nv)),
                Rat::from(expected),
                "n={nv}"
            );
        }
    }
}
