//! Summation over convex regions (§4.1–§4.4).
//!
//! `sum_convex` sums a quasi-polynomial over the integer points of a
//! conjunction of inequalities, one variable at a time:
//!
//! 1. remove redundant constraints;
//! 2. pick the variable with the fewest bounds, preferring bounds that
//!    need no floors or ceilings (§4.4);
//! 3. split multiple upper/lower bounds into *disjoint* cases;
//! 4. with a single `β ≤ b·v` / `a·v ≤ α` pair:
//!    * unit coefficients — telescope with Faulhaber polynomials,
//!      guarding with `β ≤ α` (§4.2);
//!    * non-unit with symbolic-only bound expressions — substitute
//!      `⌊α/a⌋ = (α − (α mod a))/a`, producing mod atoms (§4.2.1), with
//!      the guard obtained from exact disjoint elimination of `v`;
//!    * non-unit with bounds involving deeper summation variables —
//!      splinter on `α mod a` (§4.2.1) and restart through the
//!      projected-sum transform;
//!    * in approximate modes, use rational bound substitutions and the
//!      real/dark shadow guards instead of splintering (§4.6).

use crate::projected::{sum_clause, Ctx};
use crate::{CountError, Mode};
use presburger_arith::{Int, Rat};
use presburger_omega::eliminate::{eliminate, Shadow};
use presburger_omega::{Affine, Conjunct, VarId};
use presburger_polyq::faulhaber::sum_powers;
use presburger_polyq::{GuardedValue, QPoly};
use presburger_trace::{self as trace, Counter};

/// Sums `z` over the integer points of `c` in the variables `vars`.
///
/// Preconditions (enforced by [`crate::projected::sum_clause`], the
/// public entry): `c` has no wildcards and no equality or stride
/// constraints mentioning a variable of `vars`.
pub(crate) fn sum_convex(
    c: &Conjunct,
    vars: &[VarId],
    z: &QPoly,
    ctx: &mut Ctx<'_>,
) -> Result<GuardedValue, CountError> {
    ctx.spend()?;
    let mut c = c.clone();
    c.normalize();
    if c.is_false() || z.is_zero() {
        return Ok(GuardedValue::zero());
    }
    // Base case: everything summed; the clause is the guard.
    if vars.is_empty() {
        if !presburger_omega::feasible::is_feasible(&c, ctx.space) {
            return Ok(GuardedValue::zero());
        }
        trace::bump(Counter::ConvexLeafPieces);
        trace::explain(|| format!("leaf piece: {}", c.to_string(ctx.space)));
        return Ok(GuardedValue::piece(c, z.clone()));
    }
    // Normalization can (re)introduce equalities on summation
    // variables — e.g. an opposite inequality pair collapsing to an
    // equality. Route those back through the projected transform.
    if vars.iter().any(|v| {
        c.eqs().iter().any(|e| e.mentions(*v)) || c.strides().iter().any(|(_, e)| e.mentions(*v))
    }) {
        return sum_clause(&c, vars, z, ctx);
    }

    // §4.4 step 1: remove redundant constraints. (The complete test;
    // the ablation A1 disables this through CountOptions.)
    if ctx.opts_redundancy() {
        c = presburger_omega::redundant::remove_redundant(&c, ctx.space);
        if c.is_false() {
            return Ok(GuardedValue::zero());
        }
    }

    // §4.4 step 2: pick a variable.
    let v = pick_variable(&c, vars, ctx)?;
    trace::explain(|| {
        format!(
            "sum over {} (innermost of {} vars)",
            ctx.space.name(v),
            vars.len()
        )
    });
    let rest_vars: Vec<VarId> = vars.iter().copied().filter(|x| *x != v).collect();

    // If the summand's mod atoms mention v, the polynomial is only
    // piecewise in v: split on v's residue first (§4.2.1 splintering).
    // The added stride sends the clause back through the projected
    // transform, which substitutes v = m·t + r; the canonicalized mod
    // atoms then drop v.
    if let Some((_, m)) = z.mod_atoms().into_iter().find(|(e, _)| e.mentions(v)) {
        let mut acc = GuardedValue::zero();
        let mut r = Int::zero();
        while r < m {
            let mut cl = c.clone();
            let mut e = Affine::var(v);
            e.add_constant(&-r.clone());
            cl.add_stride(m.clone(), e);
            acc.add(sum_clause(&cl, vars, z, ctx)?);
            r += &Int::one();
        }
        return Ok(acc);
    }

    let (lowers, uppers, _) = c.bounds_on(v);
    if lowers.is_empty() || uppers.is_empty() {
        return Err(CountError::Unbounded {
            var: ctx.space.name(v).to_string(),
        });
    }

    // §4.4 steps 3–4: split multiple bounds into disjoint cases.
    if uppers.len() > 1 {
        return split_bounds(&c, v, vars, z, ctx, /*upper=*/ true);
    }
    if lowers.len() > 1 {
        return split_bounds(&c, v, vars, z, ctx, /*upper=*/ false);
    }

    let lo = &lowers[0];
    let up = &uppers[0];
    let b = &lo.coeff;
    let a = &up.coeff;

    if a.is_one() && b.is_one() {
        // §4.2 with exact integral bounds β ≤ v ≤ α.
        let pieces = telescope_pieces(z, v, &lo.expr, &up.expr, ctx);
        let base = without_var(&c, v);
        let mut acc = GuardedValue::zero();
        for (extra, inner) in pieces {
            let mut cl = base.clone();
            for g in extra {
                cl.add_geq(g);
            }
            acc.add(sum_convex(&cl, &rest_vars, &inner, ctx)?);
        }
        return Ok(acc);
    }

    // Non-unit coefficients: rational bounds (§4.2.1).
    match ctx.mode() {
        Mode::Exact => {
            // Symbolic answer with mod atoms: v ranges over
            // [⌈β/b⌉, ⌊α/a⌋]. The bound expressions may mention deeper
            // summation variables; their mod atoms are dealt with when
            // those variables are summed (the residue split above).
            let lq = ceil_q(&lo.expr, b);
            let uq = floor_q(&up.expr, a);
            let inner = telescope(z, v, &lq, &uq);
            // Exact, disjoint guards: the projection of the clause.
            let guards = eliminate(&c, v, ctx.space, Shadow::ExactDisjoint);
            let mut acc = GuardedValue::zero();
            for g in guards.clauses {
                acc.add(sum_clause(&g, &rest_vars, &inner, ctx)?);
            }
            Ok(acc)
        }
        Mode::UpperBound | Mode::LowerBound => {
            let upper_mode = ctx.mode() == Mode::UpperBound;
            // §4.6: replace ⌊α/a⌋ and ⌈β/b⌉ by rational bounds and the
            // guard by the real (upper) or dark (lower) shadow.
            let (lq, uq) = if upper_mode {
                // widest range: L' = β/b, U' = α/a
                (
                    QPoly::from_affine(&lo.expr).scale(&Rat::new(Int::one(), b.clone())),
                    QPoly::from_affine(&up.expr).scale(&Rat::new(Int::one(), a.clone())),
                )
            } else {
                // narrowest range: L' = (β+b−1)/b, U' = (α−a+1)/a
                let mut lo2 = lo.expr.clone();
                lo2.add_constant(&(b - &Int::one()));
                let mut up2 = up.expr.clone();
                up2.add_constant(&(&Int::one() - a));
                (
                    QPoly::from_affine(&lo2).scale(&Rat::new(Int::one(), b.clone())),
                    QPoly::from_affine(&up2).scale(&Rat::new(Int::one(), a.clone())),
                )
            };
            let inner = telescope(z, v, &lq, &uq);
            let shadow = if upper_mode {
                Shadow::Real
            } else {
                Shadow::Dark
            };
            let guards = eliminate(&c, v, ctx.space, shadow);
            let mut acc = GuardedValue::zero();
            for g in guards.clauses {
                acc.add(sum_clause(&g, &rest_vars, &inner, ctx)?);
            }
            Ok(acc)
        }
    }
}

/// §4.4 step 2: prefer variables whose bounds are floor-free (unit
/// coefficients) and few.
fn pick_variable(c: &Conjunct, vars: &[VarId], ctx: &mut Ctx<'_>) -> Result<VarId, CountError> {
    let mut best: Option<(VarId, u64)> = None;
    for v in vars {
        let (lowers, uppers, _) = c.bounds_on(*v);
        if lowers.is_empty() || uppers.is_empty() {
            // unbounded (or not mentioned at all): the sum diverges
            return Err(CountError::Unbounded {
                var: ctx.space.name(*v).to_string(),
            });
        }
        let unit =
            lowers.iter().all(|b| b.coeff.is_one()) && uppers.iter().all(|b| b.coeff.is_one());
        let pairs = (lowers.len() * uppers.len()) as u64;
        let cost = pairs + if unit { 0 } else { 1000 };
        if best.as_ref().is_none_or(|(_, bc)| cost < *bc) {
            best = Some((*v, cost));
        }
    }
    Ok(best
        .expect(
            "invariant: pick_variable is only called with the non-empty list \
             of summation variables the clause still mentions",
        )
        .0)
}

/// §4.4 step 3: replace p upper (or lower) bounds with p disjoint
/// cases; in case `i`, bound `i` is the extremal one.
fn split_bounds(
    c: &Conjunct,
    v: VarId,
    vars: &[VarId],
    z: &QPoly,
    ctx: &mut Ctx<'_>,
    upper: bool,
) -> Result<GuardedValue, CountError> {
    let (lowers, uppers, _) = c.bounds_on(v);
    let bounds = if upper { &uppers } else { &lowers };
    let mut acc = GuardedValue::zero();
    for i in 0..bounds.len() {
        // start from the clause without any of the competing bounds
        let mut cl = Conjunct::new();
        for w in c.wildcards() {
            cl.add_wildcard(*w);
        }
        for e in c.eqs() {
            cl.add_eq(e.clone());
        }
        for (m, e) in c.strides() {
            cl.add_stride(m.clone(), e.clone());
        }
        for e in c.geqs() {
            let coeff = e.coeff(v);
            let is_competing = if upper {
                coeff.is_negative()
            } else {
                coeff.is_positive()
            };
            if !is_competing {
                cl.add_geq(e.clone());
            }
        }
        // re-add the chosen bound
        let bi = &bounds[i];
        if upper {
            // a·v ≤ α  ⇒  α − a·v ≥ 0
            let mut e = bi.expr.clone();
            e.set_coeff(v, -bi.coeff.clone());
            cl.add_geq(e);
        } else {
            // β ≤ b·v  ⇒  b·v − β ≥ 0
            let mut e = -&bi.expr;
            e.set_coeff(v, bi.coeff.clone());
            cl.add_geq(e);
        }
        // ordering constraints making case i the unique extremal bound
        for (j, bj) in bounds.iter().enumerate() {
            if j == i {
                continue;
            }
            // upper: bound_i ≤ bound_j  ⇔  a_j·α_i ≤ a_i·α_j
            // lower: bound_i ≥ bound_j  ⇔  b_j·β_i ≥ b_i·β_j
            let lhs = Affine::zero().add_scaled(&bi.expr, &bj.coeff);
            let rhs = Affine::zero().add_scaled(&bj.expr, &bi.coeff);
            let mut ord = if upper { &rhs - &lhs } else { &lhs - &rhs };
            if j < i {
                // strict for earlier bounds: ties go to the lowest index
                ord.add_constant(&Int::from(-1));
            }
            cl.add_geq(ord);
        }
        cl.normalize();
        if cl.is_false() {
            continue;
        }
        trace::bump(Counter::ConvexSplitCases);
        trace::explain(|| {
            format!(
                "case {i}: {} bound {} of {} is extremal for {}",
                if upper { "upper" } else { "lower" },
                i + 1,
                bounds.len(),
                ctx.space.name(v),
            )
        });
        acc.add(sum_convex(&cl, vars, z, ctx)?);
    }
    Ok(acc)
}

/// The clause without the constraints mentioning `v`.
fn without_var(c: &Conjunct, v: VarId) -> Conjunct {
    let mut r = Conjunct::new();
    for w in c.wildcards() {
        r.add_wildcard(*w);
    }
    for e in c.eqs() {
        if !e.mentions(v) {
            r.add_eq(e.clone());
        }
    }
    for e in c.geqs() {
        if !e.mentions(v) {
            r.add_geq(e.clone());
        }
    }
    for (m, e) in c.strides() {
        if !e.mentions(v) {
            r.add_stride(m.clone(), e.clone());
        }
    }
    r
}

/// `Σ_{v=L}^{U} z(v)` by telescoping Faulhaber polynomials (§4.2–§4.3).
/// Valid wherever `L ≤ U`; the caller supplies the guard.
pub(crate) fn telescope(z: &QPoly, v: VarId, lower: &QPoly, upper: &QPoly) -> QPoly {
    let coeffs = z.coefficients_in(v);
    let mut acc = QPoly::zero();
    for (p, cp) in coeffs.into_iter().enumerate() {
        if cp.is_zero() {
            continue;
        }
        acc = acc + cp * sum_powers(p as u32, lower, upper, v);
    }
    acc
}

/// Telescoping with integral affine bounds, returning `(extra guards,
/// value)` pieces. The default path produces one piece guarded by
/// `β ≤ α`; with [`crate::CountOptions::four_piece`] set, the paper's
/// §4.2 decomposition is used instead (five pieces, identical total).
fn telescope_pieces(
    z: &QPoly,
    v: VarId,
    beta: &Affine,
    alpha: &Affine,
    ctx: &Ctx<'_>,
) -> Vec<(Vec<Affine>, QPoly)> {
    let nonempty = alpha - beta; // α − β ≥ 0
    if !ctx.four_piece() {
        let inner = telescope(z, v, &QPoly::from_affine(beta), &QPoly::from_affine(alpha));
        return vec![(vec![nonempty], inner)];
    }
    // §4.2: Σ_{i=L}^{U} iᵖ =
    //     (Σ 1≤i≤U: iᵖ)            when U ≥ 1
    //   − (Σ 1≤i≤L−1: iᵖ)          when L ≥ 2
    //   + (−1)ᵖ (Σ 1≤i≤−L: iᵖ)     when L ≤ −1
    //   − (−1)ᵖ (Σ 1≤i≤−U−1: iᵖ)   when U ≤ −2
    // all under the guard L ≤ U; p = 0 contributes U − L + 1 directly.
    let coeffs = z.coefficients_in(v);
    let one = QPoly::one();
    let mut pieces: Vec<(Vec<Affine>, QPoly)> = Vec::new();
    // p = 0 piece
    if !coeffs[0].is_zero() {
        let mut range = QPoly::from_affine(alpha) - QPoly::from_affine(beta) + one.clone();
        range = coeffs[0].clone() * range;
        pieces.push((vec![nonempty.clone()], range));
    }
    let mut p1 = QPoly::zero(); // Σ over 1..U
    let mut p2 = QPoly::zero(); // −Σ over 1..L−1
    let mut p3 = QPoly::zero(); // (−1)^p Σ over 1..−L
    let mut p4 = QPoly::zero(); // −(−1)^p Σ over 1..−U−1
    for (p, cp) in coeffs.iter().enumerate().skip(1) {
        if cp.is_zero() {
            continue;
        }
        let p = p as u32;
        let sign = if p.is_multiple_of(2) {
            Rat::one()
        } else {
            -Rat::one()
        };
        let f_at = |x: &QPoly| presburger_polyq::faulhaber::power_sum(p, v).substitute(v, x);
        let u = QPoly::from_affine(alpha);
        let l = QPoly::from_affine(beta);
        p1 = p1 + cp.clone() * f_at(&u);
        p2 = p2 - cp.clone() * f_at(&(l.clone() - QPoly::one()));
        p3 = p3 + (cp.clone() * f_at(&(-l.clone()))).scale(&sign);
        p4 = p4 - (cp.clone() * f_at(&(-u.clone() - QPoly::one()))).scale(&sign);
    }
    // guards: U ≥ 1; L ≥ 2; L ≤ −1; U ≤ −2 (each together with L ≤ U)
    let g_u1 = {
        let mut e = alpha.clone();
        e.add_constant(&Int::from(-1));
        e
    };
    let g_l2 = {
        let mut e = beta.clone();
        e.add_constant(&Int::from(-2));
        e
    };
    let g_lneg = {
        let mut e = -beta;
        e.add_constant(&Int::from(-1));
        e
    };
    let g_uneg = {
        let mut e = -alpha;
        e.add_constant(&Int::from(-2));
        e
    };
    for (g, poly) in [(g_u1, p1), (g_l2, p2), (g_lneg, p3), (g_uneg, p4)] {
        if !poly.is_zero() {
            pieces.push((vec![nonempty.clone(), g], poly));
        }
    }
    pieces
}

/// `⌊e/d⌋` as a quasi-polynomial: `(e − (e mod d))/d` (§4.2.1).
pub(crate) fn floor_q(e: &Affine, d: &Int) -> QPoly {
    if d.is_one() {
        return QPoly::from_affine(e);
    }
    if e.is_constant() {
        return QPoly::constant(Rat::from(e.constant_term().div_floor(d)));
    }
    let inv = Rat::new(Int::one(), d.clone());
    (QPoly::from_affine(e) - QPoly::modulo(e, d)).scale(&inv)
}

/// `⌈e/d⌉ = −⌊−e/d⌋` as a quasi-polynomial.
pub(crate) fn ceil_q(e: &Affine, d: &Int) -> QPoly {
    -floor_q(&-e, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_omega::Space;

    #[test]
    fn floor_ceil_qpolys() {
        let mut s = Space::new();
        let n = s.var("n");
        let f = floor_q(&Affine::var(n), &Int::from(3));
        let cq = ceil_q(&Affine::var(n), &Int::from(3));
        for nv in -9i64..=9 {
            assert_eq!(
                f.eval(&|_| Int::from(nv)),
                Rat::from(Int::from(nv).div_floor(&Int::from(3))),
                "floor n={nv}"
            );
            assert_eq!(
                cq.eval(&|_| Int::from(nv)),
                Rat::from(Int::from(nv).div_ceil(&Int::from(3))),
                "ceil n={nv}"
            );
        }
    }

    #[test]
    fn telescope_quadratic() {
        let mut s = Space::new();
        let i = s.var("i");
        let n = s.var("n");
        // Σ_{i=1}^{n} (i² + i)
        let z = QPoly::var(i) * QPoly::var(i) + QPoly::var(i);
        let t = telescope(&z, i, &QPoly::one(), &QPoly::var(n));
        for nv in 1i64..=8 {
            let brute: i64 = (1..=nv).map(|x| x * x + x).sum();
            assert_eq!(t.eval(&|_| Int::from(nv)), Rat::from(brute), "n={nv}");
        }
    }

    #[test]
    fn constant_fold_floor() {
        let f = floor_q(&Affine::constant(-7), &Int::from(2));
        assert_eq!(f.as_constant(), Some(Rat::from(-4)));
    }
}
