//! Bounds-first adaptive counting (§4):
//!
//! > "It may often be preferable to compute both an upper and lower
//! > bound on the sum. Only if these values are far apart may it be
//! > worthwhile to compute the exact answer."
//!
//! [`count_with_bounds`] computes the §4.6 upper and lower bounds (no
//! splintering, cheap); [`count_adaptive`] additionally evaluates the
//! gap at caller-supplied sample points and falls back to the exact
//! engine only when the relative gap exceeds a tolerance.

use crate::{try_count_solutions, CountError, CountOptions, Mode, Symbolic};
use presburger_omega::{Formula, Space, VarId};

/// The result of an adaptive count.
#[derive(Clone, Debug)]
pub struct AdaptiveCount {
    /// A guaranteed lower bound on the count.
    pub lower: Symbolic,
    /// A guaranteed upper bound on the count.
    pub upper: Symbolic,
    /// The exact count — present only when the bounds were too far
    /// apart at some sample point.
    pub exact: Option<Symbolic>,
    /// The largest relative gap observed at the sample points.
    pub max_relative_gap: f64,
}

impl AdaptiveCount {
    /// The best available symbolic answer: the exact count if it was
    /// computed, otherwise the upper bound.
    pub fn best(&self) -> &Symbolic {
        self.exact.as_ref().unwrap_or(&self.upper)
    }
}

/// Computes §4.6 lower and upper bounds on the count (each a single
/// cheap pass — no splintering).
///
/// # Errors
///
/// Returns an error when the count diverges or the computation exceeds
/// its budget.
pub fn count_with_bounds(
    space: &Space,
    f: &Formula,
    vars: &[VarId],
) -> Result<(Symbolic, Symbolic), CountError> {
    presburger_trace::bump(presburger_trace::Counter::AdaptiveBoundsPasses);
    let lower = try_count_solutions(
        space,
        f,
        vars,
        &CountOptions {
            mode: Mode::LowerBound,
            ..CountOptions::default()
        },
    )?;
    let upper = try_count_solutions(
        space,
        f,
        vars,
        &CountOptions {
            mode: Mode::UpperBound,
            ..CountOptions::default()
        },
    )?;
    Ok((lower, upper))
}

/// Bounds-first counting: evaluates the gap between the §4.6 bounds at
/// `samples` and computes the exact answer only when
/// `(upper − lower) / max(1, upper)` exceeds `rel_tol` somewhere.
///
/// # Errors
///
/// Returns an error when the count diverges or the computation exceeds
/// its budget.
pub fn count_adaptive(
    space: &Space,
    f: &Formula,
    vars: &[VarId],
    samples: &[&[(&str, i64)]],
    rel_tol: f64,
) -> Result<AdaptiveCount, CountError> {
    let (lower, upper) = count_with_bounds(space, f, vars)?;
    let mut max_gap = 0.0f64;
    for bindings in samples {
        let lo = lower.eval_rat(bindings).to_f64();
        let hi = upper.eval_rat(bindings).to_f64();
        let gap = (hi - lo) / hi.max(1.0);
        if gap > max_gap {
            max_gap = gap;
        }
    }
    let exact = if max_gap > rel_tol {
        presburger_trace::bump(presburger_trace::Counter::AdaptiveExactFallbacks);
        presburger_trace::explain(|| {
            format!("bounds gap {max_gap:.3} > tolerance {rel_tol:.3}: exact fallback")
        });
        Some(try_count_solutions(
            space,
            f,
            vars,
            &CountOptions::default(),
        )?)
    } else {
        None
    };
    Ok(AdaptiveCount {
        lower,
        upper,
        exact,
        max_relative_gap: max_gap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_omega::Affine;

    fn strided_formula(s: &mut Space) -> (Formula, VarId) {
        let x = s.var("x");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::le(Affine::constant(0), Affine::var(x)),
            Formula::le(Affine::term(x, 7), Affine::var(n)),
        ]);
        let _ = n;
        (f, x)
    }

    #[test]
    fn bounds_bracket_exact() {
        let mut s = Space::new();
        let (f, x) = strided_formula(&mut s);
        let (lo, hi) = count_with_bounds(&s, &f, &[x]).unwrap();
        let exact = crate::count_solutions(&s, &f, &[x]);
        for nv in 0i64..=40 {
            let l = lo.eval_rat(&[("n", nv)]);
            let e = exact.eval_rat(&[("n", nv)]);
            let u = hi.eval_rat(&[("n", nv)]);
            assert!(l <= e && e <= u, "n={nv}: {l} <= {e} <= {u} violated");
        }
    }

    #[test]
    fn tight_tolerance_triggers_exact() {
        let mut s = Space::new();
        let (f, x) = strided_formula(&mut s);
        // ⌊n/7⌋+1 vs bounds differing by ~1: at small n the relative
        // gap is large, so a tight tolerance forces the exact answer.
        let r = count_adaptive(&s, &f, &[x], &[&[("n", 3)]], 0.05).unwrap();
        assert!(r.exact.is_some());
        assert_eq!(r.best().eval_i64(&[("n", 3)]), Some(1));
    }

    #[test]
    fn loose_tolerance_skips_exact() {
        let mut s = Space::new();
        let (f, x) = strided_formula(&mut s);
        // at n = 70_000 the relative gap is ~1/10_000
        let r = count_adaptive(&s, &f, &[x], &[&[("n", 70_000)]], 0.01).unwrap();
        assert!(r.exact.is_none());
        assert!(r.max_relative_gap < 0.01);
        // and best() (the upper bound) is within tolerance of truth
        let truth = 70_000 / 7 + 1;
        let best = r.best().eval_rat(&[("n", 70_000)]).to_f64();
        assert!((best - truth as f64).abs() / truth as f64 <= 0.01);
    }

    #[test]
    fn exact_region_has_zero_gap() {
        // unit-coefficient bounds: the §4.6 bounds coincide with exact
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let f = Formula::between(Affine::constant(1), x, Affine::var(n));
        let r = count_adaptive(&s, &f, &[x], &[&[("n", 17)]], 0.0).unwrap();
        assert!(r.exact.is_none(), "no gap, no exact pass needed");
        assert_eq!(r.best().eval_i64(&[("n", 17)]), Some(17));
        let _ = n;
    }
}
