//! The min/max answer form the paper developed and rejected (§6):
//!
//! > "We have developed a way of introducing min's and max's into the
//! > result. Although it sometimes allows us to avoid splitting a
//! > summation because of a multiple upper or lower bound, the results
//! > tend to be much more complicated. We have decided that in general
//! > it is not worth generating min's and max's."
//!
//! [`sum_var_minmax`] sums a polynomial over one variable with
//! *multiple* unit-coefficient bounds without any case split: the
//! bounds collapse into `max(L₁, L₂, …) ≤ v ≤ min(U₁, U₂, …)` and the
//! telescoped Faulhaber form is guarded by `p(U − L + 1)`. The
//! experiments compare the resulting expression complexity against the
//! guarded-piece answer of the main engine (ablation A5).

use crate::CountError;
use presburger_omega::{Conjunct, VarId};
use presburger_polyq::mexpr::{faulhaber_mexpr, MExpr};

/// The result of a min/max summation.
#[derive(Clone, Debug)]
pub struct MinMaxSum {
    /// The single closed-form expression.
    pub expr: MExpr,
    /// How many bounds were folded into `min`/`max` (0 means the sum
    /// had single bounds and gained nothing from this form).
    pub folded_bounds: usize,
}

/// Sums `Σₖ coeffs[k]·vᵏ` over the values of `v` admitted by the
/// inequalities of `c` that mention `v` — without splitting multiple
/// bounds.
///
/// Constraints of `c` not mentioning `v` are ignored (they guard the
/// enclosing context); every constraint mentioning `v` must have a
/// unit coefficient on `v` (the natural habitat of this answer form —
/// rational bounds would force mod terms anyway).
///
/// # Errors
///
/// Returns [`CountError::TooComplex`] if a bound has a non-unit
/// coefficient on `v`, and [`CountError::Unbounded`] if `v` lacks a
/// lower or upper bound.
pub fn sum_var_minmax(c: &Conjunct, v: VarId, coeffs: &[MExpr]) -> Result<MinMaxSum, CountError> {
    let (lowers, uppers, _) = c.bounds_on(v);
    if lowers.is_empty() || uppers.is_empty() {
        return Err(CountError::Unbounded {
            var: format!("v{}", v.index()),
        });
    }
    if lowers
        .iter()
        .chain(uppers.iter())
        .any(|b| !b.coeff.is_one())
    {
        return Err(CountError::TooComplex(
            "min/max summation requires unit bound coefficients".to_string(),
        ));
    }
    let fold = |bounds: &[presburger_omega::Bound], is_min: bool| -> MExpr {
        let mut it = bounds.iter().map(|b| MExpr::from_affine(&b.expr));
        let first = it.next().expect(
            "invariant: fold is only applied to the bound lists already \
             checked non-empty above (the Unbounded early-return)",
        );
        it.fold(first, |acc, e| {
            if is_min {
                MExpr::min2(acc, e)
            } else {
                MExpr::max2(acc, e)
            }
        })
    };
    let upper = fold(&uppers, true);
    let lower = fold(&lowers, false);
    let folded_bounds = (lowers.len() - 1) + (uppers.len() - 1);

    // p(U − L + 1) · Σₖ coeffs[k]·(Fₖ(U) − Fₖ(L−1))
    let mut total = Vec::new();
    for (k, cf) in coeffs.iter().enumerate() {
        if *cf == MExpr::int(0) {
            continue;
        }
        let f_u = faulhaber_mexpr(k as u32, &upper);
        let lm1 = MExpr::Add(vec![lower.clone(), MExpr::int(-1)]);
        let f_l = faulhaber_mexpr(k as u32, &lm1);
        total.push(MExpr::Mul(vec![
            cf.clone(),
            MExpr::Add(vec![f_u, MExpr::Mul(vec![MExpr::int(-1), f_l])]),
        ]));
    }
    let range = MExpr::Add(vec![
        upper,
        MExpr::Mul(vec![MExpr::int(-1), lower]),
        MExpr::int(1),
    ]);
    let expr = MExpr::Mul(vec![MExpr::pos(range), MExpr::Add(total)]);
    Ok(MinMaxSum {
        expr,
        folded_bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_arith::{Int, Rat};
    use presburger_omega::{Affine, Space};

    /// Σ_{x : 1 ≤ x ≤ n ∧ x ≤ m} 1 = max(0, min(n, m)) — one
    /// expression instead of the exact engine's two pieces.
    #[test]
    fn double_upper_bound_without_split() {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let m = s.var("m");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], -1));
        c.add_geq(Affine::from_terms(&[(n, 1), (x, -1)], 0));
        c.add_geq(Affine::from_terms(&[(m, 1), (x, -1)], 0));
        let r = sum_var_minmax(&c, x, &[MExpr::int(1)]).unwrap();
        assert_eq!(r.folded_bounds, 1);
        assert!(r.expr.minmax_count() >= 2); // a min and the p()
        for nv in -2i64..=6 {
            for mv in -2i64..=6 {
                let expect = nv.min(mv).max(0);
                let got = r.expr.eval(&|w| {
                    if w == n {
                        Int::from(nv)
                    } else {
                        Int::from(mv)
                    }
                });
                assert_eq!(got, Rat::from(expect), "n={nv} m={mv}");
            }
        }
    }

    /// Quadratic summand with two lower bounds.
    #[test]
    fn double_lower_bound_quadratic() {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let m = s.var("m");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1), (n, -1)], 0)); // x >= n
        c.add_geq(Affine::from_terms(&[(x, 1), (m, -1)], 0)); // x >= m
        c.add_geq(Affine::from_terms(&[(x, -1)], 10)); // x <= 10
        let r = sum_var_minmax(&c, x, &[MExpr::int(0), MExpr::int(0), MExpr::int(1)]).unwrap();
        for nv in -2i64..=12 {
            for mv in -2i64..=12 {
                let lo = nv.max(mv);
                let brute: i64 = (lo..=10).map(|x| x * x).sum();
                let got = r.expr.eval(&|w| {
                    if w == n {
                        Int::from(nv)
                    } else {
                        Int::from(mv)
                    }
                });
                assert_eq!(got, Rat::from(brute), "n={nv} m={mv}");
            }
        }
    }

    #[test]
    fn non_unit_coefficient_is_rejected() {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], 0));
        c.add_geq(Affine::from_terms(&[(n, 1), (x, -2)], 0)); // 2x <= n
        assert!(matches!(
            sum_var_minmax(&c, x, &[MExpr::int(1)]),
            Err(CountError::TooComplex(_))
        ));
    }

    #[test]
    fn unbounded_is_rejected() {
        let mut s = Space::new();
        let x = s.var("x");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], 0));
        assert!(matches!(
            sum_var_minmax(&c, x, &[MExpr::int(1)]),
            Err(CountError::Unbounded { .. })
        ));
    }

    /// The paper's verdict: the min/max answer is "much more
    /// complicated" — measure it against the guarded form.
    #[test]
    fn complexity_comparison() {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let m = s.var("m");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], -1));
        c.add_geq(Affine::from_terms(&[(n, 1), (x, -1)], 0));
        c.add_geq(Affine::from_terms(&[(m, 1), (x, -1)], 0));
        let mm = sum_var_minmax(&c, x, &[MExpr::int(0), MExpr::int(1)]).unwrap();
        // guarded form via the exact engine
        let f = c.to_formula();
        let exact = crate::sum_polynomial(&s, &f, &[x], &presburger_polyq::QPoly::var(x));
        // both agree numerically…
        for nv in 0i64..=6 {
            for mv in 0i64..=6 {
                let lo = 1;
                let hi = nv.min(mv);
                let brute: i64 = (lo..=hi).sum();
                assert_eq!(
                    mm.expr
                        .eval(&|w| if w == n { Int::from(nv) } else { Int::from(mv) }),
                    Rat::from(brute)
                );
                assert_eq!(exact.eval_i64(&[("n", nv), ("m", mv)]), Some(brute));
            }
        }
        // …but the min/max form carries min/max operators while the
        // guarded form carries pieces: the paper's trade-off.
        assert!(mm.expr.minmax_count() >= 2);
        assert!(exact.num_pieces() >= 2);
    }
}
