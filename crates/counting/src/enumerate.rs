//! Brute-force lattice-point enumeration — the ground truth every
//! symbolic result in this repository is validated against.

use presburger_arith::{Int, Rat};
use presburger_omega::{Dnf, Formula, Space, VarId};
use presburger_polyq::QPoly;

/// Counts the assignments of `vars` within `range` (each variable
/// independently) satisfying the **quantifier-free** formula `f`, with
/// the remaining free variables fixed by `sym`.
///
/// # Panics
///
/// Panics if `f` contains quantifiers (simplify to a [`Dnf`] and use
/// [`count_dnf`] instead).
pub fn count_formula(
    f: &Formula,
    vars: &[VarId],
    range: std::ops::RangeInclusive<i64>,
    sym: &dyn Fn(VarId) -> Int,
) -> u64 {
    sum_formula(f, vars, range, sym, &QPoly::one())
        .to_int()
        .expect("invariant: summing the constant 1 always yields an integer")
        .to_i64()
        .expect("invariant: a brute-force count over an i64 range fits in i64") as u64
}

/// Sums `poly` over the satisfying assignments (quantifier-free `f`).
///
/// # Panics
///
/// Panics if `f` contains quantifiers.
pub fn sum_formula(
    f: &Formula,
    vars: &[VarId],
    range: std::ops::RangeInclusive<i64>,
    sym: &dyn Fn(VarId) -> Int,
    poly: &QPoly,
) -> Rat {
    let mut acc = Rat::zero();
    let mut point = vec![0i64; vars.len()];
    enumerate(vars, &range, &mut point, 0, &mut |point| {
        let assign = |v: VarId| {
            vars.iter()
                .position(|x| *x == v)
                .map(|i| Int::from(point[i]))
                .unwrap_or_else(|| sym(v))
        };
        if f.eval_quantifier_free(&assign) {
            acc += &poly.eval(&assign);
        }
    });
    acc
}

/// Counts points of a simplified [`Dnf`] (handles wildcards through the
/// feasibility test, so quantified formulas are supported after
/// simplification).
pub fn count_dnf(
    dnf: &Dnf,
    space: &Space,
    vars: &[VarId],
    range: std::ops::RangeInclusive<i64>,
    sym: &dyn Fn(VarId) -> Int,
) -> u64 {
    let mut count = 0u64;
    let mut point = vec![0i64; vars.len()];
    enumerate(vars, &range, &mut point, 0, &mut |point| {
        let assign = |v: VarId| {
            vars.iter()
                .position(|x| *x == v)
                .map(|i| Int::from(point[i]))
                .unwrap_or_else(|| sym(v))
        };
        if dnf.contains_point(space, &assign) {
            count += 1;
        }
    });
    count
}

fn enumerate(
    vars: &[VarId],
    range: &std::ops::RangeInclusive<i64>,
    point: &mut Vec<i64>,
    depth: usize,
    visit: &mut dyn FnMut(&[i64]),
) {
    if depth == vars.len() {
        visit(point);
        return;
    }
    for v in range.clone() {
        point[depth] = v;
        enumerate(vars, range, point, depth + 1, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_omega::Affine;

    #[test]
    fn counts_triangle() {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::le(Affine::constant(1), Affine::var(i)),
            Formula::le(Affine::var(i), Affine::var(j)),
            Formula::le(Affine::var(j), Affine::var(n)),
        ]);
        let c = count_formula(&f, &[i, j], -1..=12, &|_| Int::from(5));
        assert_eq!(c, 15); // 5·6/2
    }

    #[test]
    fn sums_polynomial() {
        let mut s = Space::new();
        let i = s.var("i");
        let f = Formula::between(Affine::constant(1), i, Affine::constant(4));
        let sq = QPoly::var(i) * QPoly::var(i);
        let total = sum_formula(&f, &[i], 0..=10, &|_| Int::zero(), &sq);
        assert_eq!(total, Rat::from(30)); // 1+4+9+16
    }

    #[test]
    fn dnf_counting_with_strides() {
        let mut s = Space::new();
        let x = s.var("x");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(0), x, Affine::constant(10)),
            Formula::stride(3, Affine::var(x)),
        ]);
        let d = presburger_omega::dnf::simplify(&f, &mut s, &Default::default());
        let c = count_dnf(&d, &s, &[x], -2..=12, &|_| Int::zero());
        assert_eq!(c, 4); // 0,3,6,9
    }
}
