//! General sums over arbitrary Presburger formulas (§4.5).
//!
//! The formula is simplified to **disjoint** DNF (§4.5.1 — overlapping
//! clauses would double-count; the paper's alternative, inclusion–
//! exclusion, needs `2^k − 1` summations for `k` clauses), then each
//! clause is summed independently through the projected transform
//! (§4.5.2) and the convex engine (§4.4). The per-clause work runs on
//! the deterministic task pipeline ([`crate::pipeline`]): with
//! [`CountOptions::threads`] > 1 the clauses are summed concurrently,
//! with byte-identical results at any thread count.

use crate::pipeline::run_clause_tasks;
use crate::{CountError, CountOptions};
use presburger_omega::dnf::{simplify, SimplifyOptions};
use presburger_omega::{Formula, Space, VarId};
use presburger_polyq::{GuardedValue, QPoly};

/// Computes `(Σ vars : f : z)` as a guarded quasi-polynomial over the
/// remaining free variables of `f`.
pub fn sum_formula(
    f: &Formula,
    vars: &[VarId],
    z: &QPoly,
    space: &mut Space,
    opts: &CountOptions,
) -> Result<GuardedValue, CountError> {
    let _span = presburger_trace::span("sum_formula");
    let dnf = simplify(f, space, &SimplifyOptions::disjoint());
    let acc = run_clause_tasks(dnf.clauses, vars, z, space, opts)?;
    Ok(polish(acc, space, opts))
}

/// Polishes a merged answer: compacts equal-guard pieces and strips
/// redundant constraints from each guard (§2.3 — guards come out of
/// the engine with shadow by-products). Shared by the plain and the
/// [governed](crate::govern) entry points.
pub(crate) fn polish(
    mut acc: GuardedValue,
    space: &mut Space,
    opts: &CountOptions,
) -> GuardedValue {
    acc.compact();
    if opts.remove_redundant {
        acc = acc.map_guards(|g| presburger_omega::redundant::remove_redundant(g, space));
        acc.compact();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use presburger_arith::{Int, Rat};
    use presburger_omega::Affine;

    /// Helper: count with the engine and compare against brute force
    /// for every n in `ns`.
    fn check_count(
        space: &Space,
        f: &Formula,
        vars: &[VarId],
        sym: VarId,
        ns: std::ops::RangeInclusive<i64>,
        brute_range: std::ops::RangeInclusive<i64>,
    ) {
        let mut s = space.clone();
        let v = sum_formula(f, vars, &QPoly::one(), &mut s, &CountOptions::default())
            .expect("countable");
        for nv in ns {
            let expected = {
                let mut sp = space.clone();
                let d = simplify(f, &mut sp, &SimplifyOptions::default());
                enumerate::count_dnf(&d, &sp, vars, brute_range.clone(), &|w| {
                    assert_eq!(w, sym);
                    Int::from(nv)
                })
            };
            let got = v.eval(&s, &|_| Int::from(nv));
            assert_eq!(
                got,
                Rat::from(expected as i64),
                "n={nv}: {}",
                v.to_string(&s)
            );
        }
    }

    #[test]
    fn rectangle() {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::var(n)),
            Formula::between(Affine::constant(1), j, Affine::var(n)),
        ]);
        check_count(&s, &f, &[i, j], n, -2..=7, -1..=8);
    }

    #[test]
    fn union_of_intervals() {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        // [1, n] ∪ [5, 12] — overlapping for n ≥ 5
        let f = Formula::or(vec![
            Formula::between(Affine::constant(1), x, Affine::var(n)),
            Formula::between(Affine::constant(5), x, Affine::constant(12)),
        ]);
        check_count(&s, &f, &[x], n, -2..=15, -3..=20);
    }

    #[test]
    fn strided_interval() {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(0), x, Affine::var(n)),
            Formula::stride(4, Affine::var(x) + Affine::constant(1)),
        ]);
        check_count(&s, &f, &[x], n, -2..=13, -2..=15);
    }

    #[test]
    fn rational_upper_bound() {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        // 1 ≤ x ∧ 3x ≤ n  ⇒  ⌊n/3⌋ points
        let f = Formula::and(vec![
            Formula::le(Affine::constant(1), Affine::var(x)),
            Formula::le(Affine::term(x, 3), Affine::var(n)),
        ]);
        check_count(&s, &f, &[x], n, -2..=13, -1..=6);
    }

    #[test]
    fn triangle_with_rational_inner_bound() {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        // 1 ≤ j ≤ n ∧ 1 ≤ i ∧ 2i ≤ 3j  (Example 6 shape)
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), j, Affine::var(n)),
            Formula::le(Affine::constant(1), Affine::var(i)),
            Formula::le(Affine::term(i, 2), Affine::term(j, 3)),
        ]);
        check_count(&s, &f, &[i, j], n, -1..=8, -1..=13);
    }

    #[test]
    fn negation_produces_holes() {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        // 0 ≤ x ≤ n ∧ ¬(3 ≤ x ≤ 5)
        let f = Formula::and(vec![
            Formula::between(Affine::constant(0), x, Affine::var(n)),
            Formula::not(Formula::between(
                Affine::constant(3),
                x,
                Affine::constant(5),
            )),
        ]);
        check_count(&s, &f, &[x], n, -2..=9, -1..=11);
    }

    #[test]
    fn sum_of_squares() {
        let mut s = Space::new();
        let i = s.var("i");
        let n = s.var("n");
        let f = Formula::between(Affine::constant(1), i, Affine::var(n));
        let z = QPoly::var(i) * QPoly::var(i);
        let mut s2 = s.clone();
        let v = sum_formula(&f, &[i], &z, &mut s2, &CountOptions::default()).unwrap();
        for nv in -2i64..=8 {
            let brute: i64 = (1..=nv).map(|x| x * x).sum();
            assert_eq!(v.eval(&s2, &|_| Int::from(nv)), Rat::from(brute), "n={nv}");
        }
    }

    #[test]
    fn exists_in_formula() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        // count x: ∃y: x = 3y ∧ 0 ≤ y ∧ x ≤ n
        let f = Formula::exists(
            vec![y],
            Formula::and(vec![
                Formula::eq(Affine::var(x), Affine::term(y, 3)),
                Formula::le(Affine::constant(0), Affine::var(y)),
                Formula::le(Affine::var(x), Affine::var(n)),
            ]),
        );
        check_count(&s, &f, &[x], n, -2..=10, -2..=12);
    }

    #[test]
    fn two_symbols() {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let m = s.var("m");
        // the paper's intro example: 1 ≤ i ≤ n ∧ i ≤ j ≤ m
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::var(n)),
            Formula::between(Affine::var(i), j, Affine::var(m)),
        ]);
        let mut s2 = s.clone();
        let v = sum_formula(
            &f,
            &[i, j],
            &QPoly::one(),
            &mut s2,
            &CountOptions::default(),
        )
        .unwrap();
        for nv in -1i64..=6 {
            for mv in -1i64..=6 {
                let mut brute = 0i64;
                for iv in 1..=nv {
                    for jv in iv..=mv {
                        let _ = jv;
                        brute += 1;
                    }
                }
                let got = v.eval(&s2, &|w| {
                    if w == n {
                        Int::from(nv)
                    } else {
                        Int::from(mv)
                    }
                });
                assert_eq!(got, Rat::from(brute), "n={nv} m={mv}");
            }
        }
    }

    #[test]
    fn unbounded_is_an_error() {
        let mut s = Space::new();
        let x = s.var("x");
        let f = Formula::le(Affine::constant(0), Affine::var(x));
        let r = sum_formula(
            &f,
            &[x],
            &QPoly::one(),
            &mut s.clone(),
            &CountOptions::default(),
        );
        assert!(matches!(r, Err(CountError::Unbounded { .. })));
    }

    #[test]
    fn empty_region_is_zero_everywhere() {
        let mut s = Space::new();
        let x = s.var("x");
        let f = Formula::and(vec![
            Formula::le(Affine::constant(5), Affine::var(x)),
            Formula::le(Affine::var(x), Affine::constant(3)),
        ]);
        let v = sum_formula(
            &f,
            &[x],
            &QPoly::one(),
            &mut s.clone(),
            &CountOptions::default(),
        )
        .unwrap();
        assert!(v.is_zero());
    }
}
