//! The engine core: a deterministic, parallel clause-task pipeline.
//!
//! §4.5.1's disjoint DNF makes each clause of a formula summable
//! *independently* — this module cashes that independence in. Every
//! clause becomes a self-contained, `Send`-able [`ClauseTask`] carrying
//! its own [forked](Space::fork_many) variable space, so no task needs
//! `&mut` access to shared state. A work queue is drained either inline
//! (`threads = 1`, the default) or by `std::thread::scope` workers.
//!
//! # Determinism guarantee
//!
//! Results are **byte-identical at every thread count**:
//!
//! - the task decomposition (one task per clause, in DNF clause order)
//!   is fixed before any worker starts;
//! - each task's forked space block is assigned by clause order, so the
//!   fresh variables a task interns are a pure function of the input —
//!   never of scheduling;
//! - partial results land in a slot indexed by the task's sequence
//!   number and are merged (and the forked spaces
//!   [adopted](Space::adopt)) in that order after all tasks finish.
//!
//! Trace counters measured on workers are folded back into the calling
//! thread through [`presburger_trace::fork_scope`]; totals equal the
//! sequential run's. Span subtrees are grafted under the caller's open
//! span (their relative order across workers follows worker index, and
//! timings naturally vary run to run).

use crate::projected::{sum_clause, Ctx};
use crate::{CountError, CountOptions};
use presburger_omega::{Conjunct, Space, VarId};
use presburger_polyq::{GuardedValue, QPoly};
use presburger_trace as trace;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One independent unit of work: a clause of the disjoint DNF together
/// with a private fork of the variable space. Everything it touches is
/// owned, so the task can run on any thread.
pub(crate) struct ClauseTask {
    /// Position of the clause in the DNF — the merge slot.
    seq: usize,
    clause: Conjunct,
    space: Space,
}

/// Resolves a [`CountOptions::threads`] request to a concrete worker
/// count: `0` means one per available core.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Sums `z` over every clause and merges the partial results in clause
/// order. The clauses must be pairwise disjoint (the caller obtains
/// them from `SimplifyOptions::disjoint()`); fresh variables any task
/// interns are adopted back into `space`.
///
/// Every task runs to completion even when one fails, so the work done
/// (and the trace counters) do not depend on scheduling; the error
/// reported is the one from the earliest clause.
pub(crate) fn run_clause_tasks(
    clauses: Vec<Conjunct>,
    vars: &[VarId],
    z: &QPoly,
    space: &mut Space,
    opts: &CountOptions,
) -> Result<GuardedValue, CountError> {
    let n = clauses.len();
    if n == 0 {
        return Ok(GuardedValue::zero());
    }
    let forks = space.fork_many(n);
    let tasks: VecDeque<ClauseTask> = clauses
        .into_iter()
        .zip(forks)
        .enumerate()
        .map(|(seq, (clause, space))| ClauseTask { seq, clause, space })
        .collect();

    let threads = resolve_threads(opts.threads).min(n);
    let mut slots: Vec<Option<(Space, Result<GuardedValue, CountError>)>> =
        (0..n).map(|_| None).collect();

    if threads <= 1 {
        for mut task in tasks {
            let r = run_task(&mut task, vars, z, opts);
            slots[task.seq] = Some((task.space, r));
        }
    } else {
        let queue = Mutex::new(tasks);
        let fork = trace::fork_scope();
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let queue = &queue;
                    s.spawn(move || {
                        let handle = fork.begin();
                        let mut done = Vec::new();
                        loop {
                            let task = queue.lock().expect("queue poisoned").pop_front();
                            let Some(mut task) = task else { break };
                            let r = run_task(&mut task, vars, z, opts);
                            done.push((task.seq, task.space, r));
                        }
                        (done, handle.finish())
                    })
                })
                .collect();
            for w in workers {
                let (done, part) = w.join().expect("clause worker panicked");
                trace::merge_fork_part(part);
                for (seq, task_space, r) in done {
                    slots[seq] = Some((task_space, r));
                }
            }
        });
    }

    // Deterministic merge: clause order, independent of which worker
    // computed what.
    let mut acc = GuardedValue::zero();
    let mut first_err: Option<CountError> = None;
    for slot in slots {
        let (task_space, r) = slot.expect("every clause task ran");
        space.adopt(&task_space);
        match r {
            Ok(v) => {
                if first_err.is_none() {
                    acc.add(v);
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(acc),
    }
}

fn run_task(
    task: &mut ClauseTask,
    vars: &[VarId],
    z: &QPoly,
    opts: &CountOptions,
) -> Result<GuardedValue, CountError> {
    let _span = trace::span_dyn(|| format!("clause task #{}", task.seq));
    let mut ctx = Ctx::new(&mut task.space, opts);
    sum_clause(&task.clause, vars, z, &mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_request_resolution() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }
}
