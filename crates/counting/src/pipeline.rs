//! The engine core: a deterministic, parallel clause-task pipeline.
//!
//! §4.5.1's disjoint DNF makes each clause of a formula summable
//! *independently* — this module cashes that independence in. Every
//! clause becomes a self-contained, `Send`-able [`ClauseTask`] carrying
//! its own [forked](Space::fork_many) variable space, so no task needs
//! `&mut` access to shared state. A work queue is drained either inline
//! (`threads = 1`, the default) or by `std::thread::scope` workers.
//!
//! # Determinism guarantee
//!
//! Results are **byte-identical at every thread count**:
//!
//! - the task decomposition (one task per clause, in DNF clause order)
//!   is fixed before any worker starts;
//! - each task's forked space block is assigned by clause order, so the
//!   fresh variables a task interns are a pure function of the input —
//!   never of scheduling;
//! - partial results land in a slot indexed by the task's sequence
//!   number and are merged (and the forked spaces
//!   [adopted](Space::adopt)) in that order after all tasks finish.
//!
//! Trace counters measured on workers are folded back into the calling
//! thread through [`presburger_trace::fork_scope`]; totals equal the
//! sequential run's. Span subtrees are grafted under the caller's open
//! span (their relative order across workers follows worker index, and
//! timings naturally vary run to run).
//!
//! # Panic isolation
//!
//! Each task body runs under [`std::panic::catch_unwind`]: a panic (or
//! a governor budget [trip](presburger_trace::govern::trip)) in one
//! clause is caught on the worker, converted to a [`CountError`], and
//! merged in clause order like any other per-task result — the
//! remaining tasks still run, and the process never aborts.

use crate::govern::{error_from_panic, Runtime};
use crate::projected::{sum_clause, Ctx};
use crate::{CountError, CountOptions};
use presburger_omega::{Conjunct, Space, VarId};
use presburger_polyq::{GuardedValue, QPoly};
use presburger_trace as trace;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// One independent unit of work: a clause of the disjoint DNF together
/// with a private fork of the variable space. Everything it touches is
/// owned, so the task can run on any thread.
pub(crate) struct ClauseTask {
    /// Position of the clause in the DNF — the merge slot.
    seq: usize,
    clause: Conjunct,
    space: Space,
}

/// Resolves a [`CountOptions::threads`] request to a concrete worker
/// count: `0` means one per available core.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// What one clause task produced: its forked space (to be adopted by
/// the caller, in clause order), the clause it summed (kept so a
/// governed run can re-sum it under §4.6 bound modes), and the result.
pub(crate) struct TaskOutcome {
    pub(crate) space: Space,
    pub(crate) clause: Conjunct,
    pub(crate) result: Result<GuardedValue, CountError>,
}

/// Sums `z` over every clause and merges the partial results in clause
/// order. The clauses must be pairwise disjoint (the caller obtains
/// them from `SimplifyOptions::disjoint()`); fresh variables any task
/// interns are adopted back into `space`.
///
/// Every task runs to completion even when one fails, so the work done
/// (and the trace counters) do not depend on scheduling; the error
/// reported is the one from the earliest clause.
pub(crate) fn run_clause_tasks(
    clauses: Vec<Conjunct>,
    vars: &[VarId],
    z: &QPoly,
    space: &mut Space,
    opts: &CountOptions,
) -> Result<GuardedValue, CountError> {
    let outcomes = run_clause_tasks_raw(clauses, vars, z, space, opts, None);
    let mut acc = GuardedValue::zero();
    let mut first_err: Option<CountError> = None;
    for out in outcomes {
        space.adopt(&out.space);
        match out.result {
            Ok(v) => {
                if first_err.is_none() {
                    acc.add(v);
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(acc),
    }
}

/// The pipeline core: runs every clause task (inline or on scoped
/// workers) and returns the per-task outcomes **in clause order**,
/// leaving space adoption and result merging to the caller. With
/// `gov: Some(..)` each task installs a governed region for its
/// duration, so budget trips are charged per task.
pub(crate) fn run_clause_tasks_raw(
    clauses: Vec<Conjunct>,
    vars: &[VarId],
    z: &QPoly,
    space: &mut Space,
    opts: &CountOptions,
    gov: Option<&Runtime>,
) -> Vec<TaskOutcome> {
    let n = clauses.len();
    if n == 0 {
        return Vec::new();
    }
    let forks = space.fork_many(n);
    let tasks: VecDeque<ClauseTask> = clauses
        .into_iter()
        .zip(forks)
        .enumerate()
        .map(|(seq, (clause, space))| ClauseTask { seq, clause, space })
        .collect();

    let threads = resolve_threads(opts.threads).min(n);
    let mut slots: Vec<Option<TaskOutcome>> = (0..n).map(|_| None).collect();

    if threads <= 1 {
        for mut task in tasks {
            let result = run_task_caught(&mut task, vars, z, opts, gov);
            slots[task.seq] = Some(TaskOutcome {
                space: task.space,
                clause: task.clause,
                result,
            });
        }
    } else {
        let queue = Mutex::new(tasks);
        let fork = trace::fork_scope();
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let queue = &queue;
                    let fork = fork.clone();
                    s.spawn(move || {
                        let handle = fork.begin();
                        let mut done = Vec::new();
                        loop {
                            // A task body cannot poison the lock (its
                            // panics are caught inside run_task_caught),
                            // but stay tolerant anyway: the queue is a
                            // plain VecDeque, valid at every point.
                            let task = queue
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .pop_front();
                            let Some(mut task) = task else { break };
                            let result = run_task_caught(&mut task, vars, z, opts, gov);
                            done.push((
                                task.seq,
                                TaskOutcome {
                                    space: task.space,
                                    clause: task.clause,
                                    result,
                                },
                            ));
                        }
                        (done, handle.finish())
                    })
                })
                .collect();
            for w in workers {
                let (done, part) = w.join().expect(
                    "invariant: worker bodies catch task panics (run_task_caught), \
                     so a worker thread itself never panics",
                );
                trace::merge_fork_part(part);
                for (seq, outcome) in done {
                    slots[seq] = Some(outcome);
                }
            }
        });
    }

    slots
        .into_iter()
        .map(|s| s.expect("invariant: the queue drains fully, so every slot was filled"))
        .collect()
}

/// Runs one task under `catch_unwind`, installing the governed region
/// (when present) inside the boundary so both budget trips and genuine
/// panics surface as per-task `CountError`s.
fn run_task_caught(
    task: &mut ClauseTask,
    vars: &[VarId],
    z: &QPoly,
    opts: &CountOptions,
    gov: Option<&Runtime>,
) -> Result<GuardedValue, CountError> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _g = gov.map(Runtime::enter_task);
        run_task(task, vars, z, opts)
    }));
    result.unwrap_or_else(|payload| Err(error_from_panic(payload)))
}

fn run_task(
    task: &mut ClauseTask,
    vars: &[VarId],
    z: &QPoly,
    opts: &CountOptions,
) -> Result<GuardedValue, CountError> {
    let _span = trace::span_dyn(|| format!("clause task #{}", task.seq));
    let mut ctx = Ctx::new(&mut task.space, opts);
    sum_clause(&task.clause, vars, z, &mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_request_resolution() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }
}
