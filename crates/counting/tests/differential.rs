//! Heavier differential tests for the counting engine: deeper nests,
//! mixed strides/equalities/negations with a symbolic parameter, and
//! polynomial summands — all validated against the shared brute-force
//! oracle (`presburger_gen::oracle`).

use presburger_arith::{Int, Rat};
use presburger_counting::{try_count_solutions, try_sum_polynomial, CountOptions};
use presburger_gen::oracle::{brute_force, brute_sum};
use presburger_omega::{Affine, Formula, Space, VarId};
use presburger_polyq::QPoly;
use proptest::prelude::*;

fn check_against_brute(
    s: &Space,
    f: &Formula,
    vars: &[VarId],
    brute_range: std::ops::RangeInclusive<i64>,
    ns: std::ops::RangeInclusive<i64>,
) -> Result<(), TestCaseError> {
    let sym = try_count_solutions(s, f, vars, &CountOptions::default())
        .map_err(|e| TestCaseError::fail(format!("count failed: {e}")))?;
    for nv in ns {
        let brute = brute_force(f, vars, brute_range.clone(), &|_| Int::from(nv));
        prop_assert_eq!(sym.eval_i64(&[("n", nv)]), Some(brute as i64), "n={}", nv);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Four-deep triangular-ish nests with a random tail constraint.
    #[test]
    fn four_deep_nests(a in -2i64..=2, b in -2i64..=2, k in -4i64..=8) {
        let mut s = Space::new();
        let v: Vec<VarId> = (0..4).map(|d| s.var(&format!("v{d}"))).collect();
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), v[0], Affine::var(n)),
            Formula::between(Affine::constant(1), v[1], Affine::var(v[0])),
            Formula::between(Affine::var(v[1]), v[2], Affine::var(n)),
            Formula::between(Affine::constant(1), v[3], Affine::var(v[2])),
            Formula::ge(Affine::from_terms(&[(v[0], a), (v[3], b)], k)),
        ]);
        check_against_brute(&s, &f, &v, 0..=6, 0..=5)?;
    }

    /// Strides on several variables at once.
    #[test]
    fn multi_stride(m1 in 2i64..=3, m2 in 2i64..=4, r in 0i64..=1) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(0), x, Affine::var(n)),
            Formula::between(Affine::var(x), y, Affine::var(n)),
            Formula::stride(m1, Affine::var(x) + Affine::constant(r)),
            Formula::stride(m2, Affine::var(y) - Affine::var(x)),
        ]);
        check_against_brute(&s, &f, &[x, y], -1..=12, -1..=11)?;
    }

    /// Equality chains through several variables.
    #[test]
    fn equality_chains(c1 in 1i64..=3, c2 in 1i64..=3, off in -2i64..=2) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let z = s.var("z");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::eq(Affine::term(x, c1), Affine::term(y, c2) + Affine::constant(off)),
            Formula::eq(Affine::var(z), Affine::var(x) + Affine::var(y)),
            Formula::between(Affine::constant(-5), x, Affine::constant(9)),
            Formula::between(Affine::constant(-5), y, Affine::var(n)),
            Formula::between(Affine::constant(-12), z, Affine::constant(16)),
        ]);
        check_against_brute(&s, &f, &[x, y, z], -12..=18, -2..=9)?;
    }

    /// Nested negations (a hole inside a hole).
    #[test]
    fn nested_negations(h0 in 0i64..=3, h1 in 0i64..=2) {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let inner_hole = Formula::between(
            Affine::constant(h0),
            x,
            Affine::constant(h0 + 4),
        );
        let islet = Formula::between(
            Affine::constant(h0 + h1),
            x,
            Affine::constant(h0 + h1 + 1),
        );
        // box ∧ ¬(hole ∧ ¬islet): box minus hole, plus the islet back
        let f = Formula::and(vec![
            Formula::between(Affine::constant(-2), x, Affine::var(n)),
            Formula::not(Formula::and(vec![inner_hole, Formula::not(islet)])),
        ]);
        check_against_brute(&s, &f, &[x], -6..=14, -3..=12)?;
    }

    /// Quantifier alternation: ∀ inside the counted formula.
    #[test]
    fn forall_inside(w in 1i64..=3) {
        let mut s = Space::new();
        let x = s.var("x");
        let t = s.var("t");
        let n = s.var("n");
        // count x in [0, n] such that ∀t: (0 ≤ t ≤ w) → (x + t ≤ n)
        // ⇔ x ≤ n − w
        let f = Formula::and(vec![
            Formula::between(Affine::constant(0), x, Affine::var(n)),
            Formula::forall(
                vec![t],
                Formula::implies(
                    Formula::between(Affine::constant(0), t, Affine::constant(w)),
                    Formula::le(Affine::var(x) + Affine::var(t), Affine::var(n)),
                ),
            ),
        ]);
        let sym = try_count_solutions(&s, &f, &[x], &CountOptions::default()).unwrap();
        for nv in -2i64..=10 {
            let expect = (nv - w + 1).max(0);
            prop_assert_eq!(sym.eval_i64(&[("n", nv)]), Some(expect), "n={}", nv);
        }
    }

    /// Cubic summands over triangles.
    #[test]
    fn cubic_summands(c3 in -2i64..=2) {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::var(n)),
            Formula::between(Affine::constant(1), j, Affine::var(i)),
        ]);
        // z = i²·j + c3·j³
        let z = QPoly::var(i) * QPoly::var(i) * QPoly::var(j)
            + (QPoly::var(j) * QPoly::var(j) * QPoly::var(j)).scale(&Rat::from(c3));
        let sym = try_sum_polynomial(&s, &f, &[i, j], &z, &CountOptions::default()).unwrap();
        for nv in 0i64..=7 {
            let brute = brute_sum(&f, &[i, j], 0..=8, &|_| Int::from(nv), &z);
            prop_assert_eq!(sym.eval_rat(&[("n", nv)]), brute, "n={}", nv);
        }
    }

    /// Two symbolic parameters with coupled constraints.
    #[test]
    fn two_symbols_coupled(a in 1i64..=2, b in 1i64..=2) {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let m = s.var("m");
        let f = Formula::and(vec![
            Formula::le(Affine::constant(0), Affine::var(x)),
            Formula::le(Affine::term(x, a), Affine::var(n)),
            Formula::le(Affine::term(x, b), Affine::var(m)),
        ]);
        let sym = try_count_solutions(&s, &f, &[x], &CountOptions::default()).unwrap();
        for nv in -1i64..=8 {
            for mv in -1i64..=8 {
                let brute = (0..=20i64)
                    .filter(|&xv| a * xv <= nv && b * xv <= mv)
                    .count() as i64;
                prop_assert_eq!(
                    sym.eval_i64(&[("n", nv), ("m", mv)]),
                    Some(brute),
                    "n={} m={}",
                    nv,
                    mv
                );
            }
        }
    }
}

/// Determinism: the same query twice gives structurally equal output.
#[test]
fn counting_is_deterministic() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.var("n");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::le(Affine::term(j, 2), Affine::term(i, 3)),
        Formula::le(Affine::constant(1), Affine::var(j)),
    ]);
    let a = try_count_solutions(&s, &f, &[i, j], &CountOptions::default()).unwrap();
    let b = try_count_solutions(&s, &f, &[i, j], &CountOptions::default()).unwrap();
    assert_eq!(a.to_display_string(), b.to_display_string());
}

/// The four-piece option agrees with the default through the whole
/// engine (not just the basic-sums module).
#[test]
fn four_piece_engine_agreement() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.var("n");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(-3), i, Affine::var(n)),
        Formula::between(Affine::var(i) - Affine::constant(2), j, Affine::var(n)),
    ]);
    let z = QPoly::var(i) * QPoly::var(j) + QPoly::var(j);
    let default = try_sum_polynomial(&s, &f, &[i, j], &z, &CountOptions::default()).unwrap();
    let four = try_sum_polynomial(
        &s,
        &f,
        &[i, j],
        &z,
        &CountOptions {
            four_piece: true,
            ..CountOptions::default()
        },
    )
    .unwrap();
    for nv in -5i64..=7 {
        assert_eq!(
            default.eval_rat(&[("n", nv)]),
            four.eval_rat(&[("n", nv)]),
            "n={nv}"
        );
    }
    // negative bounds are exactly where the four-piece guards matter
    let brute = brute_sum(&f, &[i, j], -6..=8, &|_| Int::from(4), &z);
    assert_eq!(default.eval_rat(&[("n", 4)]), brute);
}
