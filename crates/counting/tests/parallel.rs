//! Determinism of the parallel clause pipeline: the engine must produce
//! *structurally identical* results at every thread count, because the
//! task decomposition (clause order, `Space` fork blocks, per-task
//! budgets) is fixed before any worker starts. These tests drive the
//! same randomized multi-clause formulas through `threads = 1`, `2`,
//! and `8` and assert the resulting [`GuardedValue`]s are equal — not
//! just numerically, piece for piece — and that brute-force enumeration
//! agrees on sampled symbol values.

use presburger_arith::Int;
use presburger_counting::{enumerate, try_count_solutions, CountOptions, Symbolic};
use presburger_omega::{Affine, Formula, Space, VarId};
use proptest::prelude::*;

fn count_with_threads(
    s: &Space,
    f: &Formula,
    vars: &[VarId],
    threads: usize,
) -> Result<Symbolic, TestCaseError> {
    let opts = CountOptions {
        threads,
        ..CountOptions::default()
    };
    try_count_solutions(s, f, vars, &opts)
        .map_err(|e| TestCaseError::fail(format!("count failed (threads={threads}): {e}")))
}

/// Counts `f` at `threads` ∈ {1, 2, 8}, asserts the three results are
/// structurally identical, and checks the first against brute force for
/// every `n` in `ns`.
fn check_thread_counts(
    s: &Space,
    f: &Formula,
    vars: &[VarId],
    brute_range: std::ops::RangeInclusive<i64>,
    ns: std::ops::RangeInclusive<i64>,
) -> Result<(), TestCaseError> {
    let seq = count_with_threads(s, f, vars, 1)?;
    for threads in [2usize, 8] {
        let par = count_with_threads(s, f, vars, threads)?;
        prop_assert_eq!(
            &seq.value,
            &par.value,
            "GuardedValue differs between threads=1 and threads={}",
            threads
        );
        prop_assert_eq!(
            seq.to_display_string(),
            par.to_display_string(),
            "display differs between threads=1 and threads={}",
            threads
        );
    }
    for nv in ns {
        let brute = enumerate::count_formula(f, vars, brute_range.clone(), &|_| Int::from(nv));
        prop_assert_eq!(seq.eval_i64(&[("n", nv)]), Some(brute as i64), "n={}", nv);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unions of shifted boxes: each disjunct becomes (at least) one
    /// clause task, so the pipeline genuinely fans out.
    #[test]
    fn interval_unions(k in 2usize..=6, w in 1i64..=4) {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let f = Formula::or(
            (0..k as i64)
                .map(|o| {
                    Formula::between(
                        Affine::constant(1 + 2 * o),
                        x,
                        Affine::var(n) + Affine::constant(2 * o + w),
                    )
                })
                .collect(),
        );
        check_thread_counts(&s, &f, &[x], -2..=30, -2..=8)?;
    }

    /// 2-D union with strides and a coupling constraint: clause tasks
    /// that each splinter further inside the worker.
    #[test]
    fn strided_union_2d(m in 2i64..=3, r in 0i64..=1, c in 1i64..=3) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        let band = Formula::and(vec![
            Formula::between(Affine::constant(0), x, Affine::var(n)),
            Formula::between(Affine::var(x), y, Affine::var(n)),
            Formula::stride(m, Affine::var(x) + Affine::constant(r)),
        ]);
        let blob = Formula::and(vec![
            Formula::between(Affine::constant(-2), x, Affine::constant(4)),
            Formula::le(Affine::term(y, 2), Affine::term(x, 3) + Affine::constant(c)),
            Formula::le(Affine::constant(-3), Affine::var(y)),
        ]);
        let f = Formula::or(vec![band, blob]);
        check_thread_counts(&s, &f, &[x, y], -4..=12, -1..=9)?;
    }

    /// Negation-induced DNF blowup: box minus a union of holes turns
    /// into many disjoint clauses.
    #[test]
    fn holes_via_negation(h in 0i64..=3, g in 2i64..=4) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        let holes = Formula::or(vec![
            Formula::between(Affine::constant(h), x, Affine::constant(h + 1)),
            Formula::between(Affine::constant(h + g), y, Affine::constant(h + g + 1)),
        ]);
        let f = Formula::and(vec![
            Formula::between(Affine::constant(-1), x, Affine::var(n)),
            Formula::between(Affine::constant(-1), y, Affine::var(n)),
            Formula::not(holes),
        ]);
        check_thread_counts(&s, &f, &[x, y], -3..=10, -2..=8)?;
    }

    /// Mixed arity: one equality-constrained clause, one triangular
    /// clause, one strided clause — heterogeneous task costs exercise
    /// out-of-order completion with in-order merge.
    #[test]
    fn heterogeneous_clauses(a in 1i64..=2, off in -1i64..=2) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        let eq_clause = Formula::and(vec![
            Formula::eq(Affine::term(x, a), Affine::var(y) + Affine::constant(off)),
            Formula::between(Affine::constant(0), x, Affine::constant(6)),
            Formula::between(Affine::constant(-4), y, Affine::var(n)),
        ]);
        let tri_clause = Formula::and(vec![
            Formula::between(Affine::constant(1), x, Affine::var(n)),
            Formula::between(Affine::constant(1), y, Affine::var(x)),
        ]);
        let stride_clause = Formula::and(vec![
            Formula::between(Affine::constant(-3), x, Affine::constant(9)),
            Formula::eq(Affine::var(y), Affine::constant(-7)),
            Formula::stride(3, Affine::var(x)),
        ]);
        let f = Formula::or(vec![eq_clause, tri_clause, stride_clause]);
        check_thread_counts(&s, &f, &[x, y], -8..=12, -2..=7)?;
    }
}

/// threads=0 (one worker per core) also matches the sequential answer.
#[test]
fn auto_thread_count_matches_sequential() {
    let mut s = Space::new();
    let x = s.var("x");
    let n = s.var("n");
    let f = Formula::or(
        (0..5i64)
            .map(|o| {
                Formula::between(
                    Affine::constant(1 + 3 * o),
                    x,
                    Affine::var(n) + Affine::constant(3 * o),
                )
            })
            .collect(),
    );
    let seq = try_count_solutions(
        &s,
        &f,
        &[x],
        &CountOptions {
            threads: 1,
            ..CountOptions::default()
        },
    )
    .unwrap();
    let auto = try_count_solutions(
        &s,
        &f,
        &[x],
        &CountOptions {
            threads: 0,
            ..CountOptions::default()
        },
    )
    .unwrap();
    assert_eq!(seq.value, auto.value);
    assert_eq!(seq.to_display_string(), auto.to_display_string());
}

/// More workers than clauses: the surplus threads must be harmless.
#[test]
fn more_threads_than_clauses() {
    let mut s = Space::new();
    let x = s.var("x");
    let n = s.var("n");
    let f = Formula::or(vec![
        Formula::between(Affine::constant(1), x, Affine::var(n)),
        Formula::between(Affine::constant(20), x, Affine::constant(25)),
    ]);
    let seq = try_count_solutions(
        &s,
        &f,
        &[x],
        &CountOptions {
            threads: 1,
            ..CountOptions::default()
        },
    )
    .unwrap();
    let wide = try_count_solutions(
        &s,
        &f,
        &[x],
        &CountOptions {
            threads: 16,
            ..CountOptions::default()
        },
    )
    .unwrap();
    assert_eq!(seq.value, wide.value);
    for nv in -1i64..=30 {
        let brute = enumerate::count_formula(&f, &[x], -2..=40, &|_| Int::from(nv));
        assert_eq!(seq.eval_i64(&[("n", nv)]), Some(brute as i64), "n={nv}");
    }
}
