//! Differential tests of the Omega-test primitives against brute
//! force, on randomized three-variable systems with strides and
//! equalities.

use presburger_arith::Int;
use presburger_gen::oracle::{conjunct_feasible, conjunct_sat};
use presburger_omega::dnf::project_wildcards;
use presburger_omega::eliminate::Shadow;
use presburger_omega::feasible::is_feasible;
use presburger_omega::{Affine, Conjunct, Space, VarId};
use proptest::prelude::*;

const R: i64 = 7;

fn build(
    s: &mut Space,
    geqs: &[(i64, i64, i64, i64)],
    eqs: &[(i64, i64, i64, i64)],
    strides: &[(i64, i64, i64, i64, i64)],
) -> (Conjunct, [VarId; 3]) {
    let x = s.var("x");
    let y = s.var("y");
    let z = s.var("z");
    let mut c = Conjunct::new();
    for v in [x, y, z] {
        c.add_geq(Affine::from_terms(&[(v, 1)], R));
        c.add_geq(Affine::from_terms(&[(v, -1)], R));
    }
    for &(a, b, d, k) in geqs {
        c.add_geq(Affine::from_terms(&[(x, a), (y, b), (z, d)], k));
    }
    for &(a, b, d, k) in eqs {
        c.add_eq(Affine::from_terms(&[(x, a), (y, b), (z, d)], k));
    }
    for &(m, a, b, d, k) in strides {
        if m >= 2 {
            c.add_stride(
                Int::from(m),
                Affine::from_terms(&[(x, a), (y, b), (z, d)], k),
            );
        }
    }
    (c, [x, y, z])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The complete feasibility test agrees with brute force on
    /// bounded systems with inequalities, equalities and strides.
    #[test]
    fn feasibility_matches_brute_force(
        geqs in proptest::collection::vec((-4i64..=4, -4i64..=4, -4i64..=4, -9i64..=9), 0..4),
        eqs in proptest::collection::vec((-3i64..=3, -3i64..=3, -3i64..=3, -6i64..=6), 0..2),
        strides in proptest::collection::vec((2i64..=4, -2i64..=2, -2i64..=2, -2i64..=2, -3i64..=3), 0..2),
    ) {
        let mut s = Space::new();
        let (c, vars) = build(&mut s, &geqs, &eqs, &strides);
        let expected = conjunct_feasible(&c, &vars, -R..=R, &|v| {
            panic!("unbound variable {}", s.name(v))
        });
        prop_assert_eq!(is_feasible(&c, &mut s), expected, "{}", c.to_string(&s));
    }

    /// Projecting away one existential variable is exact, in both
    /// splintering modes, including through strides and equalities.
    #[test]
    fn wildcard_projection_is_exact(
        geqs in proptest::collection::vec((-3i64..=3, -3i64..=3, -3i64..=3, -9i64..=9), 1..4),
        eqs in proptest::collection::vec((-3i64..=3, -3i64..=3, -3i64..=3, -6i64..=6), 0..2),
        strides in proptest::collection::vec((2i64..=3, -2i64..=2, -2i64..=2, -2i64..=2, -3i64..=3), 0..2),
        mode_pick in 0usize..2,
    ) {
        let mut s = Space::new();
        let (mut c, [x, _y, z]) = build(&mut s, &geqs, &eqs, &strides);
        c.add_wildcard(z);
        let mode = [Shadow::ExactOverlapping, Shadow::ExactDisjoint][mode_pick];
        let parts = project_wildcards(&c, &mut s, mode);
        for xv in -R..=R {
            for yv in -R..=R {
                let outer = |v: VarId| if v == x { Int::from(xv) } else { Int::from(yv) };
                let truth = (-R..=R).any(|zv| {
                    conjunct_sat(&c, &|v| if v == z { Int::from(zv) } else { outer(v) })
                });
                let assign = |v: VarId| if v == x { Int::from(xv) } else { Int::from(yv) };
                let hits = parts.iter().filter(|p| p.contains_point(&s, &assign)).count();
                prop_assert_eq!(hits > 0, truth, "mode {:?} x={} y={}", mode, xv, yv);
                if mode == Shadow::ExactDisjoint {
                    prop_assert!(hits <= 1, "overlap at x={} y={}", xv, yv);
                }
            }
        }
    }
}

mod roundtrip {
    use presburger_arith::Int;
    use presburger_omega::dnf::formula_equivalent;
    use presburger_omega::{parse_formula, Affine, Formula, Space};
    use proptest::prelude::*;

    /// Builds a random small formula over x, y, n.
    fn random_formula(s: &mut Space, spec: &[(u8, i64, i64, i64, i64)]) -> Formula {
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        let mut parts = vec![
            Formula::between(Affine::constant(-3), x, Affine::constant(6)),
            Formula::between(Affine::constant(-3), y, Affine::constant(6)),
        ];
        for &(kind, a, b, c, k) in spec {
            let e = Affine::from_terms(&[(x, a), (y, b), (n, c)], k);
            parts.push(match kind % 4 {
                0 => Formula::ge(e),
                1 => Formula::eq0(e),
                2 => Formula::not(Formula::ge(e)),
                _ => Formula::stride(2 + i64::from(kind % 3), e),
            });
        }
        Formula::and(parts)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// print → parse is the identity up to semantic equivalence.
        #[test]
        fn print_parse_roundtrip(
            spec in proptest::collection::vec(
                (any::<u8>(), -3i64..=3, -3i64..=3, -1i64..=1, -5i64..=5),
                0..3,
            )
        ) {
            let mut s = Space::new();
            let f = random_formula(&mut s, &spec);
            let text = f.to_string(&s);
            let g = parse_formula(&text, &mut s)
                .unwrap_or_else(|e| panic!("unparseable printout {text:?}: {e}"));
            prop_assert!(
                formula_equivalent(&f, &g, &mut s),
                "round-trip changed meaning: {}",
                text
            );
        }

        /// quantified formulas also round-trip.
        #[test]
        fn quantified_roundtrip(m in 2i64..=4, lo in -2i64..=2, hi in 3i64..=6) {
            let mut s = Space::new();
            let x = s.var("x");
            let w = s.var("w");
            let f = Formula::and(vec![
                Formula::between(Affine::constant(lo), x, Affine::constant(hi)),
                Formula::exists(
                    vec![w],
                    Formula::and(vec![
                        Formula::eq(Affine::var(x), Affine::term(w, m)),
                        Formula::le(Affine::constant(0), Affine::var(w)),
                    ]),
                ),
            ]);
            let text = f.to_string(&s);
            let g = parse_formula(&text, &mut s)
                .unwrap_or_else(|e| panic!("unparseable printout {text:?}: {e}"));
            for xv in -4i64..=8 {
                let mut s1 = s.clone();
                let d1 = presburger_omega::dnf::simplify(&f, &mut s1, &Default::default());
                let mut s2 = s.clone();
                let d2 = presburger_omega::dnf::simplify(&g, &mut s2, &Default::default());
                prop_assert_eq!(
                    d1.contains_point(&s1, &|_| Int::from(xv)),
                    d2.contains_point(&s2, &|_| Int::from(xv)),
                    "x={} text={}", xv, text
                );
            }
        }
    }
}
