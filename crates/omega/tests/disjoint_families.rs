//! §5.3 conversion on structured clause families: chains, stars
//! (articulation points), grids, and stride-mixed unions — asserting
//! equivalence, disjointness, and that clause counts stay civilized.

use presburger_arith::Int;
use presburger_omega::disjoint::make_disjoint;
use presburger_omega::{Affine, Conjunct, Space, VarId};

fn interval(x: VarId, lo: i64, hi: i64) -> Conjunct {
    let mut c = Conjunct::new();
    c.add_geq(Affine::from_terms(&[(x, 1)], -lo));
    c.add_geq(Affine::from_terms(&[(x, -1)], hi));
    c
}

fn check(
    before: &[Conjunct],
    space: &mut Space,
    x: VarId,
    range: std::ops::RangeInclusive<i64>,
) -> Vec<Conjunct> {
    let after = make_disjoint(before.to_vec(), space);
    for xv in range {
        let assign = |v: VarId| {
            assert_eq!(v, x);
            Int::from(xv)
        };
        let was = before.iter().any(|c| c.contains_point(space, &assign));
        let hits = after
            .iter()
            .filter(|c| c.contains_point(space, &assign))
            .count();
        assert_eq!(hits > 0, was, "coverage differs at {xv}");
        assert!(hits <= 1, "overlap at {xv}: {hits}");
    }
    after
}

/// A star: one long interval overlapping five short disjoint ones.
/// The long interval is the articulation point §5.3 step 3 prefers.
#[test]
fn star_family() {
    let mut s = Space::new();
    let x = s.var("x");
    let mut family = vec![interval(x, 0, 50)];
    for k in 0..5 {
        family.push(interval(x, k * 10, k * 10 + 3));
    }
    let after = check(&family, &mut s, x, -5..=55);
    // the short intervals are all inside the long one: a single clause
    // should survive
    assert_eq!(after.len(), 1, "subset pruning should collapse the star");
}

/// A chain of 5 overlapping intervals.
#[test]
fn chain_family() {
    let mut s = Space::new();
    let x = s.var("x");
    let family: Vec<Conjunct> = (0..5).map(|k| interval(x, k * 4, k * 4 + 6)).collect();
    let after = check(&family, &mut s, x, -3..=30);
    assert!(
        after.len() <= 9,
        "chain of 5 should not explode: got {}",
        after.len()
    );
}

/// Mixed strides and intervals.
#[test]
fn strided_family() {
    let mut s = Space::new();
    let x = s.var("x");
    let mut evens = interval(x, 0, 20);
    evens.add_stride(Int::from(2), Affine::var(x));
    let mut threes = interval(x, 0, 20);
    threes.add_stride(Int::from(3), Affine::var(x));
    let family = vec![evens, threes, interval(x, 8, 11)];
    check(&family, &mut s, x, -2..=22);
}

/// Two dimensions: an L-shaped union plus a bar through it.
#[test]
fn two_dimensional_family() {
    let mut s = Space::new();
    let x = s.var("x");
    let y = s.var("y");
    let boxy = |x0: i64, x1: i64, y0: i64, y1: i64| {
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], -x0));
        c.add_geq(Affine::from_terms(&[(x, -1)], x1));
        c.add_geq(Affine::from_terms(&[(y, 1)], -y0));
        c.add_geq(Affine::from_terms(&[(y, -1)], y1));
        c
    };
    let family = vec![boxy(0, 8, 0, 2), boxy(0, 2, 0, 8), boxy(1, 6, 1, 6)];
    let after = make_disjoint(family.clone(), &mut s);
    for xv in -1i64..=9 {
        for yv in -1i64..=9 {
            let assign = |v: VarId| if v == x { Int::from(xv) } else { Int::from(yv) };
            let was = family.iter().any(|c| c.contains_point(&s, &assign));
            let hits = after
                .iter()
                .filter(|c| c.contains_point(&s, &assign))
                .count();
            assert_eq!(hits > 0, was, "coverage differs at ({xv},{yv})");
            assert!(hits <= 1, "overlap at ({xv},{yv})");
        }
    }
}

/// Diagonal strips (non-axis-aligned overlaps).
#[test]
fn diagonal_strips() {
    let mut s = Space::new();
    let x = s.var("x");
    let y = s.var("y");
    let strip = |lo: i64, hi: i64| {
        let mut c = Conjunct::new();
        // lo <= x + y <= hi within a box
        c.add_geq(Affine::from_terms(&[(x, 1), (y, 1)], -lo));
        c.add_geq(Affine::from_terms(&[(x, -1), (y, -1)], hi));
        c.add_geq(Affine::from_terms(&[(x, 1)], 5));
        c.add_geq(Affine::from_terms(&[(x, -1)], 5));
        c.add_geq(Affine::from_terms(&[(y, 1)], 5));
        c.add_geq(Affine::from_terms(&[(y, -1)], 5));
        c
    };
    let family = vec![strip(-3, 1), strip(0, 4), strip(3, 7)];
    let after = make_disjoint(family.clone(), &mut s);
    for xv in -6i64..=6 {
        for yv in -6i64..=6 {
            let assign = |v: VarId| if v == x { Int::from(xv) } else { Int::from(yv) };
            let was = family.iter().any(|c| c.contains_point(&s, &assign));
            let hits = after
                .iter()
                .filter(|c| c.contains_point(&s, &assign))
                .count();
            assert_eq!(hits > 0, was, "coverage differs at ({xv},{yv})");
            assert!(hits <= 1, "overlap at ({xv},{yv})");
        }
    }
}
