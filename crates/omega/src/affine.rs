//! Affine (linear-plus-constant) integer expressions.

use crate::space::{Space, VarId};
use presburger_arith::{gcd, Int, Row};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression `Σ cᵢ·xᵢ + c` with integer coefficients.
///
/// Zero coefficients are never stored, so structural equality coincides
/// with syntactic equality of the normal form. Coefficients live in an
/// [`arith::Row`](presburger_arith::Row): expressions with at most four
/// variables — the common case — carry their terms inline with no heap
/// spine, mirroring the [`Int`] small-value fast path.
///
/// ```
/// use presburger_omega::{Affine, Space};
///
/// let mut s = Space::new();
/// let x = s.var("x");
/// let e = Affine::var(x) * 3 + Affine::constant(7);
/// assert_eq!(e.coeff(x), presburger_arith::Int::from(3));
/// assert_eq!(e.to_string(&s), "3x + 7");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Affine {
    terms: Row<VarId>,
    constant: Int,
}

impl Affine {
    /// The zero expression.
    pub fn zero() -> Affine {
        Affine::default()
    }

    /// A constant expression.
    pub fn constant(c: impl Into<Int>) -> Affine {
        Affine {
            terms: Row::new(),
            constant: c.into(),
        }
    }

    /// The expression `v` (coefficient 1).
    pub fn var(v: VarId) -> Affine {
        Affine::term(v, 1)
    }

    /// The expression `c·v`.
    pub fn term(v: VarId, c: impl Into<Int>) -> Affine {
        let c = c.into();
        let mut terms = Row::new();
        if !c.is_zero() {
            terms.insert(v, c);
        }
        Affine {
            terms,
            constant: Int::zero(),
        }
    }

    /// Builds `Σ coeffs[i]·vars[i] + c` from parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_terms(pairs: &[(VarId, i64)], c: i64) -> Affine {
        let mut e = Affine::constant(c);
        for &(v, k) in pairs {
            e = e + Affine::term(v, k);
        }
        e
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: VarId) -> Int {
        self.terms.get(&v).cloned().unwrap_or_else(Int::zero)
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Int {
        &self.constant
    }

    /// Returns `true` if the expression is a constant (no variables).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// Iterates over `(variable, coefficient)` pairs (non-zero only).
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Int)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, c))
    }

    /// The variables with non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.keys().copied()
    }

    /// Returns `true` if `v` occurs with non-zero coefficient.
    pub fn mentions(&self, v: VarId) -> bool {
        self.terms.contains_key(&v)
    }

    /// Returns `true` if any variable in `vs` occurs.
    pub fn mentions_any(&self, vs: &[VarId]) -> bool {
        vs.iter().any(|v| self.mentions(*v))
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_vars(&self) -> usize {
        self.terms.len()
    }

    /// The gcd of all variable coefficients (zero for constants).
    pub fn content(&self) -> Int {
        let mut g = Int::zero();
        for c in self.terms.values() {
            g = gcd(&g, c);
        }
        g
    }

    /// Sets the coefficient of `v` (removing the term when zero).
    pub fn set_coeff(&mut self, v: VarId, c: Int) {
        if c.is_zero() {
            self.terms.remove(&v);
        } else {
            self.terms.insert(v, c);
        }
    }

    /// Adds `k` to the constant term.
    pub fn add_constant(&mut self, k: &Int) {
        self.constant += k;
    }

    /// `self + k·other` without consuming either operand.
    pub fn add_scaled(&self, other: &Affine, k: &Int) -> Affine {
        if k.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        for (v, c) in &other.terms {
            let nc = out.coeff(*v) + c * k;
            out.set_coeff(*v, nc);
        }
        out.constant += &(&other.constant * k);
        out
    }

    /// Substitutes `replacement` for `v`: every occurrence `c·v` becomes
    /// `c·replacement`.
    pub fn substitute(&self, v: VarId, replacement: &Affine) -> Affine {
        let c = self.coeff(v);
        if c.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&v);
        out.add_scaled(replacement, &c)
    }

    /// Divides every coefficient and the constant exactly by `d`.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is not divisible by `d` or `d` is zero.
    pub fn div_exact(&self, d: &Int) -> Affine {
        let mut out = Affine::constant(0);
        for (v, c) in &self.terms {
            assert!(d.divides(c), "non-exact division of affine expression");
            out.terms.insert(*v, c / d);
        }
        assert!(d.divides(&self.constant), "non-exact division of constant");
        out.constant = &self.constant / d;
        out
    }

    /// Evaluates the expression under `assign` (a total map for the
    /// variables that occur).
    ///
    /// # Panics
    ///
    /// Panics if a variable is missing from the assignment.
    pub fn eval(&self, assign: &dyn Fn(VarId) -> Int) -> Int {
        let mut acc = self.constant.clone();
        for (v, c) in &self.terms {
            acc += &(c * &assign(*v));
        }
        acc
    }

    /// Appends a canonical byte encoding of the expression to `out`,
    /// for memo-table and cache keys: term count, then `(VarId, coeff)`
    /// pairs in ascending variable order, then the constant. Injective
    /// over expressions in the same space — equal bytes iff structurally
    /// equal — and stable across threads and processes (raw `VarId`
    /// indices, never arena-local handles).
    pub fn push_key_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.terms.len() as u32).to_le_bytes());
        for (v, c) in self.terms.iter() {
            out.extend_from_slice(&(v.index() as u32).to_le_bytes());
            c.push_key_bytes(out);
        }
        self.constant.push_key_bytes(out);
    }

    /// Renders the expression with variable names from `space`.
    pub fn to_string(&self, space: &Space) -> String {
        if self.terms.is_empty() {
            return self.constant.to_string();
        }
        let mut s = String::new();
        for (i, (v, c)) in self.terms.iter().enumerate() {
            let name = space.name(*v);
            if i == 0 {
                if c.is_one() {
                    s.push_str(name);
                } else if *c == Int::from(-1) {
                    s.push('-');
                    s.push_str(name);
                } else {
                    s.push_str(&format!("{c}{name}"));
                }
            } else if c.is_negative() {
                let a = c.abs();
                if a.is_one() {
                    s.push_str(&format!(" - {name}"));
                } else {
                    s.push_str(&format!(" - {a}{name}"));
                }
            } else if c.is_one() {
                s.push_str(&format!(" + {name}"));
            } else {
                s.push_str(&format!(" + {c}{name}"));
            }
        }
        if self.constant.is_positive() {
            s.push_str(&format!(" + {}", self.constant));
        } else if self.constant.is_negative() {
            s.push_str(&format!(" - {}", self.constant.abs()));
        }
        s
    }
}

impl fmt::Debug for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (v, c) in &self.terms {
            write!(f, "{c}·{v:?} + ")?;
        }
        write!(f, "{}", self.constant)
    }
}

impl Add for Affine {
    type Output = Affine;
    fn add(self, rhs: Affine) -> Affine {
        self.add_scaled(&rhs, &Int::one())
    }
}
impl Add for &Affine {
    type Output = Affine;
    fn add(self, rhs: &Affine) -> Affine {
        self.add_scaled(rhs, &Int::one())
    }
}
impl Sub for Affine {
    type Output = Affine;
    fn sub(self, rhs: Affine) -> Affine {
        self.add_scaled(&rhs, &Int::from(-1))
    }
}
impl Sub for &Affine {
    type Output = Affine;
    fn sub(self, rhs: &Affine) -> Affine {
        self.add_scaled(rhs, &Int::from(-1))
    }
}
impl Neg for Affine {
    type Output = Affine;
    fn neg(self) -> Affine {
        Affine::zero().add_scaled(&self, &Int::from(-1))
    }
}
impl Neg for &Affine {
    type Output = Affine;
    fn neg(self) -> Affine {
        Affine::zero().add_scaled(self, &Int::from(-1))
    }
}
impl Mul<i64> for Affine {
    type Output = Affine;
    fn mul(self, k: i64) -> Affine {
        Affine::zero().add_scaled(&self, &Int::from(k))
    }
}
impl Mul<&Int> for &Affine {
    type Output = Affine;
    fn mul(self, k: &Int) -> Affine {
        Affine::zero().add_scaled(self, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Space, VarId, VarId) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        (s, x, y)
    }

    #[test]
    fn construction_and_coeffs() {
        let (_, x, y) = setup();
        let e = Affine::from_terms(&[(x, 2), (y, -3)], 5);
        assert_eq!(e.coeff(x), Int::from(2));
        assert_eq!(e.coeff(y), Int::from(-3));
        assert_eq!(*e.constant_term(), Int::from(5));
        assert_eq!(e.num_vars(), 2);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let (_, x, _) = setup();
        let e = Affine::term(x, 0);
        assert!(e.is_zero());
        let e = Affine::var(x) - Affine::var(x);
        assert!(e.is_zero());
        assert!(!e.mentions(x));
    }

    #[test]
    fn substitution() {
        let (_, x, y) = setup();
        // 2x + 1 with x := y - 3  ->  2y - 5
        let e = Affine::from_terms(&[(x, 2)], 1);
        let r = e.substitute(x, &Affine::from_terms(&[(y, 1)], -3));
        assert_eq!(r, Affine::from_terms(&[(y, 2)], -5));
        // substituting an absent variable is a no-op
        assert_eq!(r.substitute(x, &Affine::constant(99)), r);
    }

    #[test]
    fn content_and_exact_division() {
        let (_, x, y) = setup();
        let e = Affine::from_terms(&[(x, 6), (y, -9)], 12);
        assert_eq!(e.content(), Int::from(3));
        let d = e.div_exact(&Int::from(3));
        assert_eq!(d, Affine::from_terms(&[(x, 2), (y, -3)], 4));
    }

    #[test]
    #[should_panic(expected = "non-exact")]
    fn div_exact_panics_on_remainder() {
        let (_, x, _) = setup();
        let _ = Affine::from_terms(&[(x, 3)], 1).div_exact(&Int::from(3));
    }

    #[test]
    fn eval() {
        let (_, x, y) = setup();
        let e = Affine::from_terms(&[(x, 2), (y, -1)], 4);
        let val = e.eval(&|v| if v == x { Int::from(10) } else { Int::from(3) });
        assert_eq!(val, Int::from(21));
    }

    #[test]
    fn display() {
        let (s, x, y) = setup();
        assert_eq!(Affine::constant(0).to_string(&s), "0");
        assert_eq!(
            Affine::from_terms(&[(x, 1), (y, -2)], -7).to_string(&s),
            "x - 2y - 7"
        );
        assert_eq!(Affine::from_terms(&[(x, -1)], 0).to_string(&s), "-x");
    }
}
