//! Presburger formula AST (§2.6, §3).
//!
//! Formulas are built from linear atoms with the usual connectives and
//! quantifiers. Nonlinear terms in the Presburger fragment — floors,
//! ceilings, and remainders with *constant* divisors (§3.1) — are
//! expressed through [`Desugar`], which introduces the existentially
//! quantified auxiliary variables the paper describes.

use crate::affine::Affine;
use crate::space::{Space, VarId};
use presburger_arith::Int;

/// An atomic linear constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// `e ≥ 0`.
    Ge(Affine),
    /// `e = 0`.
    Eq(Affine),
    /// `m | e` (stride, §3.2); `m ≥ 1`.
    Stride(Int, Affine),
}

impl Constraint {
    /// Evaluates the atom at a concrete point.
    pub fn eval(&self, assign: &dyn Fn(VarId) -> Int) -> bool {
        match self {
            Constraint::Ge(e) => !e.eval(assign).is_negative(),
            Constraint::Eq(e) => e.eval(assign).is_zero(),
            Constraint::Stride(m, e) => m.divides(&e.eval(assign)),
        }
    }
}

/// A Presburger formula over interned variables.
///
/// ```
/// use presburger_omega::{Affine, Formula, Space};
///
/// let mut s = Space::new();
/// let x = s.var("x");
/// // 1 <= x <= 10  ∧  2 | x
/// let f = Formula::and(vec![
///     Formula::le(Affine::constant(1), Affine::var(x)),
///     Formula::le(Affine::var(x), Affine::constant(10)),
///     Formula::stride(2, Affine::var(x)),
/// ]);
/// assert!(f.eval_quantifier_free(&|_| presburger_arith::Int::from(4)));
/// ```
// `Atom` is large because `Affine` stores up to four coefficients
// inline (`arith::Row`) instead of behind a heap pointer — the
// dominant constraint shape pays zero indirection on every walk and
// key encoding. Boxing the atom would undo exactly that trade.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// An atomic constraint.
    Atom(Constraint),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Existential quantification.
    Exists(Vec<VarId>, Box<Formula>),
    /// Universal quantification.
    Forall(Vec<VarId>, Box<Formula>),
}

impl Formula {
    /// The constraint `e ≥ 0`.
    pub fn ge(e: Affine) -> Formula {
        Formula::Atom(Constraint::Ge(e))
    }

    /// The constraint `lhs ≤ rhs`.
    pub fn le(lhs: Affine, rhs: Affine) -> Formula {
        Formula::ge(rhs - lhs)
    }

    /// The constraint `lhs < rhs` (over the integers, `lhs + 1 ≤ rhs`).
    pub fn lt(lhs: Affine, rhs: Affine) -> Formula {
        let mut e = rhs - lhs;
        e.add_constant(&Int::from(-1));
        Formula::ge(e)
    }

    /// The constraint `lhs = rhs`.
    pub fn eq(lhs: Affine, rhs: Affine) -> Formula {
        Formula::Atom(Constraint::Eq(lhs - rhs))
    }

    /// The constraint `e = 0`.
    pub fn eq0(e: Affine) -> Formula {
        Formula::Atom(Constraint::Eq(e))
    }

    /// The stride constraint `m | e`.
    ///
    /// # Panics
    ///
    /// Panics if `m <= 0`.
    pub fn stride(m: impl Into<Int>, e: Affine) -> Formula {
        let m = m.into();
        assert!(m.is_positive(), "stride modulus must be positive");
        Formula::Atom(Constraint::Stride(m, e))
    }

    /// The bounds chain `lo ≤ v ≤ hi`.
    pub fn between(lo: Affine, v: VarId, hi: Affine) -> Formula {
        Formula::and(vec![
            Formula::le(lo, Affine::var(v)),
            Formula::le(Affine::var(v), hi),
        ])
    }

    /// Conjunction (flattens nested `And`s and constant-folds).
    pub fn and(fs: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out
                .pop()
                .expect("invariant: the len() == 1 arm has an element to pop"),
            _ => Formula::And(out),
        }
    }

    /// Disjunction (flattens nested `Or`s and constant-folds).
    pub fn or(fs: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out
                .pop()
                .expect("invariant: the len() == 1 arm has an element to pop"),
            _ => Formula::Or(out),
        }
    }

    /// Negation (removes double negations).
    ///
    /// An associated constructor, not `std::ops::Not` — it takes the
    /// formula by value like the other connective builders.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Existential quantification over `vars`.
    pub fn exists(vars: Vec<VarId>, f: Formula) -> Formula {
        if vars.is_empty() {
            f
        } else {
            Formula::Exists(vars, Box::new(f))
        }
    }

    /// Universal quantification over `vars`.
    pub fn forall(vars: Vec<VarId>, f: Formula) -> Formula {
        if vars.is_empty() {
            f
        } else {
            Formula::Forall(vars, Box::new(f))
        }
    }

    /// The implication `p ⇒ q`.
    pub fn implies(p: Formula, q: Formula) -> Formula {
        Formula::or(vec![Formula::not(p), q])
    }

    /// Substitutes an affine expression for a variable throughout.
    pub fn substitute(&self, v: VarId, replacement: &Affine) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Atom(Constraint::Ge(e)) => {
                Formula::Atom(Constraint::Ge(e.substitute(v, replacement)))
            }
            Formula::Atom(Constraint::Eq(e)) => {
                Formula::Atom(Constraint::Eq(e.substitute(v, replacement)))
            }
            Formula::Atom(Constraint::Stride(m, e)) => {
                Formula::Atom(Constraint::Stride(m.clone(), e.substitute(v, replacement)))
            }
            Formula::And(fs) => {
                Formula::And(fs.iter().map(|f| f.substitute(v, replacement)).collect())
            }
            Formula::Or(fs) => {
                Formula::Or(fs.iter().map(|f| f.substitute(v, replacement)).collect())
            }
            Formula::Not(f) => Formula::Not(Box::new(f.substitute(v, replacement))),
            Formula::Exists(vs, f) => {
                if vs.contains(&v) {
                    self.clone() // shadowed
                } else {
                    Formula::Exists(vs.clone(), Box::new(f.substitute(v, replacement)))
                }
            }
            Formula::Forall(vs, f) => {
                if vs.contains(&v) {
                    self.clone()
                } else {
                    Formula::Forall(vs.clone(), Box::new(f.substitute(v, replacement)))
                }
            }
        }
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> std::collections::BTreeSet<VarId> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<VarId>, out: &mut std::collections::BTreeSet<VarId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(c) => {
                let e = match c {
                    Constraint::Ge(e) | Constraint::Eq(e) | Constraint::Stride(_, e) => e,
                };
                for v in e.vars() {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let n = bound.len();
                bound.extend(vs.iter().copied());
                f.collect_free(bound, out);
                bound.truncate(n);
            }
        }
    }

    /// Renders the formula with variable names from `space`.
    pub fn to_string(&self, space: &Space) -> String {
        match self {
            Formula::True => "true".to_string(),
            Formula::False => "false".to_string(),
            Formula::Atom(Constraint::Ge(e)) => format!("{} >= 0", e.to_string(space)),
            Formula::Atom(Constraint::Eq(e)) => format!("{} = 0", e.to_string(space)),
            Formula::Atom(Constraint::Stride(m, e)) => {
                format!("{} | {}", m, e.to_string(space))
            }
            Formula::And(fs) => {
                let parts: Vec<String> = fs.iter().map(|f| f.to_string(space)).collect();
                format!("({})", parts.join(" && "))
            }
            Formula::Or(fs) => {
                let parts: Vec<String> = fs.iter().map(|f| f.to_string(space)).collect();
                format!("({})", parts.join(" || "))
            }
            Formula::Not(f) => format!("!{}", f.to_string(space)),
            Formula::Exists(vs, f) => {
                let names: Vec<&str> = vs.iter().map(|v| space.name(*v)).collect();
                format!("(exists {} : {})", names.join(","), f.to_string(space))
            }
            Formula::Forall(vs, f) => {
                let names: Vec<&str> = vs.iter().map(|v| space.name(*v)).collect();
                format!("(forall {} : {})", names.join(","), f.to_string(space))
            }
        }
    }

    /// Evaluates a quantifier-free formula at a concrete point.
    ///
    /// # Panics
    ///
    /// Panics if the formula contains a quantifier.
    pub fn eval_quantifier_free(&self, assign: &dyn Fn(VarId) -> Int) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(c) => c.eval(assign),
            Formula::And(fs) => fs.iter().all(|f| f.eval_quantifier_free(assign)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval_quantifier_free(assign)),
            Formula::Not(f) => !f.eval_quantifier_free(assign),
            Formula::Exists(..) | Formula::Forall(..) => {
                panic!("eval_quantifier_free called on a quantified formula")
            }
        }
    }

    /// The number of AST nodes (connectives, quantifiers, atoms and
    /// constants) — the coarse size metric used by the generative test
    /// harness's shrinker.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Not(f) | Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
        }
    }

    /// The number of atomic constraints in the formula.
    pub fn count_atoms(&self) -> usize {
        let mut n = 0;
        self.for_each_atom(&mut |_| n += 1);
        n
    }

    /// Visits every atomic constraint, left to right.
    pub fn for_each_atom<'a>(&'a self, visit: &mut dyn FnMut(&'a Constraint)) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(c) => visit(c),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.for_each_atom(visit);
                }
            }
            Formula::Not(f) | Formula::Exists(_, f) | Formula::Forall(_, f) => {
                f.for_each_atom(visit)
            }
        }
    }
}

/// Builder for formulas containing floors, ceilings and remainders with
/// constant divisors (§3.1).
///
/// Each nonlinear term is replaced by a fresh auxiliary variable plus
/// bounding constraints; [`Desugar::finish`] wraps the body in the
/// corresponding existential quantifier.
///
/// ```
/// use presburger_arith::Int;
/// use presburger_omega::{Affine, Desugar, Formula, Space};
///
/// let mut s = Space::new();
/// let x = s.var("x");
/// let y = s.var("y");
/// // x = floor(y / 3)
/// let mut d = Desugar::new(&mut s);
/// let fl = d.floor_div(Affine::var(y), 3);
/// let f = d.finish(Formula::eq(Affine::var(x), fl));
/// assert!(matches!(f, Formula::Exists(..)));
/// ```
#[derive(Debug)]
pub struct Desugar<'a> {
    space: &'a mut Space,
    wildcards: Vec<VarId>,
    constraints: Vec<Formula>,
}

impl<'a> Desugar<'a> {
    /// Starts a desugaring session.
    pub fn new(space: &'a mut Space) -> Desugar<'a> {
        Desugar {
            space,
            wildcards: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Returns an affine expression equal to `⌊e / c⌋`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn floor_div(&mut self, e: Affine, c: impl Into<Int>) -> Affine {
        let c = c.into();
        assert!(c.is_positive(), "divisor must be positive");
        let alpha = self.space.fresh("fl");
        self.wildcards.push(alpha);
        // c·α ≤ e ≤ c·(α+1) − 1
        let ca = Affine::zero().add_scaled(&Affine::var(alpha), &c);
        self.constraints.push(Formula::le(ca.clone(), e.clone()));
        let mut hi = ca;
        hi.add_constant(&(&c - &Int::one()));
        self.constraints.push(Formula::le(e, hi));
        Affine::var(alpha)
    }

    /// Returns an affine expression equal to `⌈e / c⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn ceil_div(&mut self, e: Affine, c: impl Into<Int>) -> Affine {
        let c = c.into();
        assert!(c.is_positive(), "divisor must be positive");
        let beta = self.space.fresh("cl");
        self.wildcards.push(beta);
        // c·(β−1) + 1 ≤ e ≤ c·β
        let cb = Affine::zero().add_scaled(&Affine::var(beta), &c);
        let mut lo = cb.clone();
        lo.add_constant(&(&Int::one() - &c));
        self.constraints.push(Formula::le(lo, e.clone()));
        self.constraints.push(Formula::le(e, cb));
        Affine::var(beta)
    }

    /// Returns an affine expression equal to `e mod c` (in `[0, c)`).
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn modulo(&mut self, e: Affine, c: impl Into<Int>) -> Affine {
        let c = c.into();
        let q = self.floor_div(e.clone(), c.clone());
        // e mod c = e − c·⌊e/c⌋
        e.add_scaled(&q, &-c)
    }

    /// Wraps `body` with the accumulated auxiliary constraints and
    /// existential quantifiers.
    pub fn finish(self, body: Formula) -> Formula {
        let mut parts = self.constraints;
        parts.push(body);
        Formula::exists(self.wildcards, Formula::and(parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fold_constants() {
        assert_eq!(
            Formula::and(vec![Formula::True, Formula::True]),
            Formula::True
        );
        assert_eq!(
            Formula::and(vec![Formula::False, Formula::True]),
            Formula::False
        );
        assert_eq!(Formula::or(vec![Formula::False]), Formula::False);
        assert_eq!(Formula::not(Formula::not(Formula::True)), Formula::True);
    }

    #[test]
    fn flattening() {
        let mut s = Space::new();
        let x = s.var("x");
        let a = Formula::ge(Affine::var(x));
        let f = Formula::and(vec![a.clone(), Formula::and(vec![a.clone(), a.clone()])]);
        match f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn quantifier_free_eval() {
        let mut s = Space::new();
        let x = s.var("x");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), x, Affine::constant(10)),
            Formula::stride(3, Affine::var(x)),
        ]);
        let sat = |v: i64| f.eval_quantifier_free(&|_| Int::from(v));
        assert!(sat(3) && sat(9));
        assert!(!sat(4) && !sat(12));
    }

    #[test]
    fn free_vars_respect_binding() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let f = Formula::exists(vec![y], Formula::eq(Affine::var(x), Affine::var(y)));
        let fv = f.free_vars();
        assert!(fv.contains(&x));
        assert!(!fv.contains(&y));
    }

    #[test]
    fn substitution_respects_shadowing() {
        let mut s = Space::new();
        let x = s.var("x");
        let f = Formula::exists(vec![x], Formula::ge(Affine::var(x)));
        assert_eq!(f.substitute(x, &Affine::constant(5)), f);
    }

    #[test]
    fn display_round() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let f = Formula::exists(
            vec![y],
            Formula::and(vec![
                Formula::eq(Affine::var(x), Affine::term(y, 2)),
                Formula::stride(3, Affine::var(x)),
            ]),
        );
        let txt = f.to_string(&s);
        assert!(txt.contains("exists y"), "{txt}");
        assert!(txt.contains("3 | x"), "{txt}");
    }

    #[test]
    fn ceil_desugaring_semantics() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let mut d = Desugar::new(&mut s);
        let cl = d.ceil_div(Affine::var(y), 4);
        let f = d.finish(Formula::eq(Affine::var(x), cl));
        let dnf = crate::dnf::simplify(&f, &mut s, &crate::dnf::SimplifyOptions::default());
        for yv in -9i64..=9 {
            for xv in -4i64..=4 {
                let expected = xv == (yv as f64 / 4.0).ceil() as i64;
                let got = dnf.contains_point(&s, &|v| {
                    if v == x {
                        Int::from(xv)
                    } else {
                        Int::from(yv)
                    }
                });
                assert_eq!(got, expected, "x={xv} y={yv}");
            }
        }
    }

    #[test]
    fn floor_desugaring_semantics() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let mut d = Desugar::new(&mut s);
        let fl = d.floor_div(Affine::var(y), 3);
        let f = d.finish(Formula::eq(Affine::var(x), fl));
        // check via DNF simplification + membership
        let dnf = crate::dnf::simplify(&f, &mut s, &crate::dnf::SimplifyOptions::default());
        for yv in -7i64..=7 {
            for xv in -4i64..=4 {
                let expected = xv == (yv as f64 / 3.0).floor() as i64;
                let got = dnf.contains_point(&s, &|v| {
                    if v == x {
                        Int::from(xv)
                    } else {
                        Int::from(yv)
                    }
                });
                assert_eq!(got, expected, "x={xv} y={yv}");
            }
        }
    }

    #[test]
    fn mod_desugaring_semantics() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let mut d = Desugar::new(&mut s);
        let m = d.modulo(Affine::var(y), 4);
        let f = d.finish(Formula::eq(Affine::var(x), m));
        let dnf = crate::dnf::simplify(&f, &mut s, &crate::dnf::SimplifyOptions::default());
        for yv in -9i64..=9 {
            for xv in -1i64..=4 {
                let expected = xv == yv.rem_euclid(4);
                let got = dnf.contains_point(&s, &|v| {
                    if v == x {
                        Int::from(xv)
                    } else {
                        Int::from(yv)
                    }
                });
                assert_eq!(got, expected, "x={xv} y={yv}");
            }
        }
    }
}
