//! Conversion of overlapping DNF into **disjoint** DNF (§5.3).
//!
//! Counting the points of a union clause-by-clause requires the clauses
//! to be pairwise disjoint (§4.5.1) — otherwise inclusion–exclusion
//! needs `2^k − 1` summations. The paper's conversion:
//!
//! 1. drop clauses that are subsets of other clauses;
//! 2. split the clauses into connected components of the overlap graph
//!    (components never interact);
//! 3. within a component, extract one clause `C₁` — preferably an
//!    articulation point of the graph, otherwise the clause with the
//!    fewest constraints — and rewrite `C₁ ∨ rest` as
//!    `C₁ + (¬C₁ ∧ rest)`;
//! 4. shrink `¬C₁` with `gist C₁ given Cⱼ` before distributing, and use
//!    *disjoint negation* `¬c₁ + c₁∧¬c₂ + c₁∧c₂∧¬c₃ + …` so the pieces
//!    never overlap each other.

use crate::conjunct::Conjunct;
use crate::dnf::{negate_clause, prune_subsets};
use crate::feasible::is_feasible;
use crate::redundant::gist;
use crate::space::Space;

/// Extraction rounds shared by every component of one conversion;
/// exhaustion unwinds as a `"disjoint_conversion_fuel"` budget trip.
const DISJOINT_FUEL: u64 = 500;

/// Converts a list of possibly-overlapping clauses into an equivalent
/// list of pairwise-disjoint clauses.
pub fn make_disjoint(clauses: Vec<Conjunct>, space: &mut Space) -> Vec<Conjunct> {
    let _span = presburger_trace::span("make_disjoint");
    let clauses = prune_subsets(clauses, space);
    let mut out = Vec::new();
    let mut fuel = DISJOINT_FUEL;
    for component in components(clauses, space) {
        out.extend(disjoint_component(component, space, &mut fuel));
    }
    out
}

/// Groups clauses into connected components of the overlap graph
/// (§5.3 step 2).
fn components(clauses: Vec<Conjunct>, space: &mut Space) -> Vec<Vec<Conjunct>> {
    let n = clauses.len();
    let adj = overlap_graph(&clauses, space);
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = next;
        while let Some(i) = stack.pop() {
            for j in 0..n {
                if adj[i][j] && comp[j] == usize::MAX {
                    comp[j] = next;
                    stack.push(j);
                }
            }
        }
        next += 1;
    }
    let mut groups: Vec<Vec<Conjunct>> = (0..next).map(|_| Vec::new()).collect();
    for (c, k) in clauses.into_iter().zip(comp) {
        groups[k].push(c);
    }
    groups
}

fn overlap_graph(clauses: &[Conjunct], space: &mut Space) -> Vec<Vec<bool>> {
    let n = clauses.len();
    let mut adj = vec![vec![false; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let mut both = clauses[i].clone();
            both.and(&clauses[j]);
            if is_feasible(&both, space) {
                adj[i][j] = true;
                adj[j][i] = true;
            }
        }
    }
    adj
}

fn disjoint_component(
    mut clauses: Vec<Conjunct>,
    space: &mut Space,
    fuel: &mut u64,
) -> Vec<Conjunct> {
    let mut out = Vec::new();
    loop {
        *fuel -= 1;
        if *fuel == 0 {
            // Input-reachable (§5.3 extraction can keep producing
            // overlap on adversarial unions): unwind as a budget trip
            // instead of aborting the process.
            presburger_trace::govern::trip(
                "disjoint_conversion_fuel",
                DISJOINT_FUEL,
                DISJOINT_FUEL,
            );
        }
        if clauses.len() <= 1 {
            out.extend(clauses);
            return out;
        }
        let adj = overlap_graph(&clauses, space);
        // if the component has become disconnected, split it
        let any_overlap = adj.iter().flatten().any(|b| *b);
        if !any_overlap {
            out.extend(clauses);
            return out;
        }
        // §5.3 step 3: pick an articulation point if one exists,
        // otherwise the clause with the fewest constraints.
        let pick = articulation_point(&adj).unwrap_or_else(|| fewest_constraints(&clauses));
        let c1 = clauses.remove(pick);
        // C₁ goes straight to the output; the rest become ¬C₁ ∧ Cⱼ.
        let mut rest = Vec::new();
        for cj in clauses.drain(..) {
            let mut both = c1.clone();
            both.and(&cj);
            if !is_feasible(&both, space) {
                rest.push(cj); // already disjoint from C₁
                continue;
            }
            // step 4: gist C₁ given Cⱼ before negating
            let g = gist(&c1, &cj, space);
            if g.is_trivially_true() {
                // Cⱼ ⊆ C₁ entirely; drop it
                continue;
            }
            for neg in negate_clause(&g, space) {
                let mut piece = cj.clone();
                piece.and(&neg);
                piece.normalize();
                if !piece.is_false() && is_feasible(&piece, space) {
                    rest.push(piece);
                }
            }
        }
        out.push(c1);
        clauses = rest;
    }
}

/// Finds a vertex whose removal disconnects the graph, if any.
fn articulation_point(adj: &[Vec<bool>]) -> Option<usize> {
    let n = adj.len();
    if n <= 2 {
        return None;
    }
    let count_components = |skip: Option<usize>| -> usize {
        let mut seen = vec![false; n];
        if let Some(skip) = skip {
            seen[skip] = true;
        }
        let mut comps = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            comps += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(i) = stack.pop() {
                for j in 0..n {
                    if adj[i][j] && !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        comps
    };
    let base = count_components(None);
    (0..n).find(|&v| count_components(Some(v)) > base)
}

fn fewest_constraints(clauses: &[Conjunct]) -> usize {
    let size = |c: &Conjunct| c.eqs().len() + c.geqs().len() + c.strides().len();
    (0..clauses.len())
        .min_by_key(|&i| size(&clauses[i]))
        .expect("invariant: fewest_constraints is only called with clauses present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::space::VarId;
    use presburger_arith::Int;

    fn interval(x: VarId, lo: i64, hi: i64) -> Conjunct {
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], -lo));
        c.add_geq(Affine::from_terms(&[(x, -1)], hi));
        c
    }

    fn check_equivalent_and_disjoint(
        before: &[Conjunct],
        after: &[Conjunct],
        space: &Space,
        range: std::ops::RangeInclusive<i64>,
        vars: &[VarId],
    ) {
        assert_eq!(vars.len(), 1, "helper supports 1 free var");
        for xv in range {
            let assign = |_: VarId| Int::from(xv);
            let was = before.iter().any(|c| c.contains_point(space, &assign));
            let hits = after
                .iter()
                .filter(|c| c.contains_point(space, &assign))
                .count();
            assert_eq!(hits > 0, was, "coverage differs at {xv}");
            assert!(hits <= 1, "overlap at {xv}: {hits} clauses");
        }
    }

    #[test]
    fn two_overlapping_intervals() {
        let mut s = Space::new();
        let x = s.var("x");
        let before = vec![interval(x, 1, 6), interval(x, 4, 10)];
        let after = make_disjoint(before.clone(), &mut s);
        check_equivalent_and_disjoint(&before, &after, &s, -2..=12, &[x]);
    }

    #[test]
    fn chain_of_three() {
        let mut s = Space::new();
        let x = s.var("x");
        let before = vec![interval(x, 1, 5), interval(x, 4, 9), interval(x, 8, 12)];
        let after = make_disjoint(before.clone(), &mut s);
        check_equivalent_and_disjoint(&before, &after, &s, -2..=14, &[x]);
    }

    #[test]
    fn disjoint_input_is_unchanged_in_meaning() {
        let mut s = Space::new();
        let x = s.var("x");
        let before = vec![interval(x, 1, 3), interval(x, 7, 9)];
        let after = make_disjoint(before.clone(), &mut s);
        assert_eq!(after.len(), 2);
        check_equivalent_and_disjoint(&before, &after, &s, -2..=11, &[x]);
    }

    #[test]
    fn subset_is_dropped() {
        let mut s = Space::new();
        let x = s.var("x");
        let before = vec![interval(x, 2, 4), interval(x, 1, 10)];
        let after = make_disjoint(before.clone(), &mut s);
        assert_eq!(after.len(), 1);
        check_equivalent_and_disjoint(&before, &after, &s, -2..=12, &[x]);
    }

    #[test]
    fn strided_overlap() {
        let mut s = Space::new();
        let x = s.var("x");
        // evens in 0..=10 and all of 4..=6
        let mut evens = interval(x, 0, 10);
        evens.add_stride(Int::from(2), Affine::var(x));
        let before = vec![evens, interval(x, 4, 6)];
        let after = make_disjoint(before.clone(), &mut s);
        check_equivalent_and_disjoint(&before, &after, &s, -2..=12, &[x]);
    }

    #[test]
    fn two_dimensional_boxes() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let boxy = |x0: i64, x1: i64, y0: i64, y1: i64| {
            let mut c = Conjunct::new();
            c.add_geq(Affine::from_terms(&[(x, 1)], -x0));
            c.add_geq(Affine::from_terms(&[(x, -1)], x1));
            c.add_geq(Affine::from_terms(&[(y, 1)], -y0));
            c.add_geq(Affine::from_terms(&[(y, -1)], y1));
            c
        };
        let before = vec![boxy(0, 4, 0, 4), boxy(2, 6, 2, 6), boxy(5, 8, 0, 3)];
        let after = make_disjoint(before.clone(), &mut s);
        for xv in -1i64..=9 {
            for yv in -1i64..=7 {
                let assign = |v: VarId| if v == x { Int::from(xv) } else { Int::from(yv) };
                let was = before.iter().any(|c| c.contains_point(&s, &assign));
                let hits = after
                    .iter()
                    .filter(|c| c.contains_point(&s, &assign))
                    .count();
                assert_eq!(hits > 0, was, "coverage differs at ({xv},{yv})");
                assert!(hits <= 1, "overlap at ({xv},{yv})");
            }
        }
    }
}
