//! A small text syntax for Presburger formulas, in the spirit of the
//! Omega project's calculator (the library this paper grew into
//! shipped with one).
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! formula  :=  or
//! or       :=  and ( '||' and )*
//! and      :=  unary ( '&&' unary )*
//! unary    :=  '!' unary
//!           |  ('exists'|'forall') name (',' name)* ':' formula
//!           |  '(' formula ')'
//!           |  atom
//! atom     :=  expr ( relop expr )+           chained: 1 <= x <= n
//!           |  expr '|' expr                  stride: 3 | x + 1
//!           |  'true' | 'false'
//! relop    :=  '<=' | '<' | '=' | '>' | '>='
//! expr     :=  term ( ('+'|'-') term )*
//! term     :=  INT | name | INT name | INT '*' name | '-' term
//! ```
//!
//! Variable names are interned into the provided [`Space`] on sight.
//!
//! ```
//! use presburger_omega::{parse_formula, Space};
//!
//! let mut s = Space::new();
//! let f = parse_formula("exists j : 1 <= j <= i && 2j = i", &mut s).unwrap();
//! let i = s.lookup("i").unwrap();
//! # let _ = (f, i);
//! ```

use crate::affine::Affine;
use crate::formula::Formula;
use crate::space::{Space, VarId};
use presburger_arith::Int;
use std::fmt;

/// Error produced when parsing a formula fails.
///
/// Carries the byte offset *and* the 1-based line/column of the error,
/// plus the offending source line so callers can render a caret
/// snippet ([`ParseFormulaError::caret`]). Parsing is total: every
/// malformed input — including deeply nested or non-UTF-8-boundary
/// garbage — produces one of these rather than a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormulaError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the error in the input.
    pub position: usize,
    /// 1-based line number of the error.
    pub line: usize,
    /// 1-based column (in bytes) of the error within its line.
    pub column: usize,
    /// The full source line the error points into.
    pub snippet: String,
}

/// Short alias — the serving layer and the calculator refer to parse
/// failures by this name.
pub type ParseError = ParseFormulaError;

impl ParseFormulaError {
    /// Locates `position` inside `input` and fills in line, column and
    /// the snippet line.
    fn locate(message: String, position: usize, input: &[u8]) -> ParseFormulaError {
        let upto = &input[..position.min(input.len())];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let line_start = upto.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        let line_end = input[line_start..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(input.len(), |i| line_start + i);
        ParseFormulaError {
            message,
            position,
            line,
            column: 1 + position.saturating_sub(line_start),
            snippet: String::from_utf8_lossy(&input[line_start..line_end]).into_owned(),
        }
    }

    /// The offending line with a `^` caret under the error column:
    ///
    /// ```text
    /// 1 <= x <=
    ///          ^
    /// ```
    pub fn caret(&self) -> String {
        let pad = " ".repeat(self.column.saturating_sub(1));
        format!("{}\n{pad}^", self.snippet)
    }
}

impl fmt::Display for ParseFormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}
impl std::error::Error for ParseFormulaError {}

/// Parses a formula from text, interning variable names in `space`.
///
/// # Errors
///
/// Returns a [`ParseFormulaError`] describing the first syntax error.
pub fn parse_formula(input: &str, space: &mut Space) -> Result<Formula, ParseFormulaError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        depth: 0,
        space,
    };
    let f = p.or_formula()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("trailing input"));
    }
    Ok(f)
}

/// Parses an affine expression from text (same `expr` grammar).
///
/// # Errors
///
/// Returns a [`ParseFormulaError`] describing the first syntax error.
pub fn parse_affine(input: &str, space: &mut Space) -> Result<Affine, ParseFormulaError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        depth: 0,
        space,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("trailing input"));
    }
    Ok(e)
}

/// Hard cap on grammar recursion depth. The grammar recurses through
/// `unary` (negation, quantifiers, parentheses) and `term` (unary
/// minus, parenthesized expressions); without a cap, adversarial input
/// like `((((…` or `-----…x` overflows the stack instead of returning
/// an error. 96 levels is far beyond any legitimate formula while
/// keeping worst-case stack use well under the default 2 MiB of a
/// spawned thread — each grammar level holds several `Formula` /
/// `Affine` temporaries, which carry their terms inline (~240 bytes
/// each) since the `arith::Row` small-row representation.
const MAX_DEPTH: usize = 96;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
    space: &'a mut Space,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseFormulaError {
        ParseFormulaError::locate(message.to_string(), self.pos, self.input)
    }

    /// Charges one level of grammar recursion against [`MAX_DEPTH`].
    fn descend(&mut self) -> Result<(), ParseFormulaError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("formula nested too deeply"));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(token.as_bytes()) {
            // keywords must not run into identifier characters
            let end = self.pos + token.len();
            if token.bytes().all(|b| b.is_ascii_alphabetic()) {
                if let Some(&next) = self.input.get(end) {
                    if next.is_ascii_alphanumeric() || next == b'_' {
                        return false;
                    }
                }
            }
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn or_formula(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut parts = vec![self.and_formula()?];
        while self.eat("||") {
            parts.push(self.and_formula()?);
        }
        Ok(Formula::or(parts))
    }

    fn and_formula(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut parts = vec![self.unary()?];
        while self.eat("&&") {
            parts.push(self.unary()?);
        }
        Ok(Formula::and(parts))
    }

    fn unary(&mut self) -> Result<Formula, ParseFormulaError> {
        self.descend()?;
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Formula, ParseFormulaError> {
        if self.eat("!") {
            return Ok(Formula::not(self.unary()?));
        }
        for (kw, is_exists) in [("exists", true), ("forall", false)] {
            if self.eat(kw) {
                let mut vars = vec![self.name()?];
                while self.eat(",") {
                    vars.push(self.name()?);
                }
                if !self.eat(":") {
                    return Err(self.error("expected ':' after quantified variables"));
                }
                // quantifiers bind to the end of the formula
                let body = self.or_formula()?;
                return Ok(if is_exists {
                    Formula::exists(vars, body)
                } else {
                    Formula::forall(vars, body)
                });
            }
        }
        if self.eat("true") {
            return Ok(Formula::True);
        }
        if self.eat("false") {
            return Ok(Formula::False);
        }
        // '(' could open a parenthesized formula or an expression like
        // (x + 1) < y; try formula first, backtracking on failure.
        if self.peek() == Some(b'(') {
            let save = self.pos;
            self.pos += 1;
            if let Ok(f) = self.or_formula() {
                if self.eat(")") {
                    // must not be followed by a relational operator —
                    // otherwise it was an expression after all
                    let after = self.pos;
                    self.skip_ws();
                    let next2 = &self.input[self.pos.min(self.input.len())..];
                    let is_rel = next2.starts_with(b"<")
                        || next2.starts_with(b">")
                        || next2.starts_with(b"=")
                        || next2.starts_with(b"|") && !next2.starts_with(b"||");
                    self.pos = after;
                    if !is_rel {
                        return Ok(f);
                    }
                }
            }
            self.pos = save;
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula, ParseFormulaError> {
        let first = self.expr()?;
        // stride: INT '|' expr (but not '||')
        self.skip_ws();
        if self.input[self.pos..].starts_with(b"|") && !self.input[self.pos..].starts_with(b"||") {
            self.pos += 1;
            let e = self.expr()?;
            let m = first.clone().constant_term().clone();
            if !first.is_constant() || !m.is_positive() {
                return Err(self.error("stride modulus must be a positive integer"));
            }
            return Ok(Formula::stride(m, e));
        }
        // chained comparisons
        let mut parts = Vec::new();
        let mut lhs = first;
        loop {
            let op = if self.eat("<=") {
                "<="
            } else if self.eat(">=") {
                ">="
            } else if self.eat("<") {
                "<"
            } else if self.eat(">") {
                ">"
            } else if self.eat("=") {
                "="
            } else {
                break;
            };
            let rhs = self.expr()?;
            parts.push(match op {
                "<=" => Formula::le(lhs.clone(), rhs.clone()),
                "<" => Formula::lt(lhs.clone(), rhs.clone()),
                ">=" => Formula::le(rhs.clone(), lhs.clone()),
                ">" => Formula::lt(rhs.clone(), lhs.clone()),
                _ => Formula::eq(lhs.clone(), rhs.clone()),
            });
            lhs = rhs;
        }
        if parts.is_empty() {
            return Err(self.error("expected a relational operator"));
        }
        Ok(Formula::and(parts))
    }

    fn expr(&mut self) -> Result<Affine, ParseFormulaError> {
        let mut acc = self.term()?;
        loop {
            if self.eat("+") {
                acc = acc + self.term()?;
            } else if self.peek() == Some(b'-') {
                // careful: don't eat the '-' of '->' style tokens (none
                // in this grammar) — always subtraction here
                self.pos += 1;
                acc = acc - self.term()?;
            } else {
                break;
            }
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<Affine, ParseFormulaError> {
        self.descend()?;
        let r = self.term_inner();
        self.depth -= 1;
        r
    }

    fn term_inner(&mut self) -> Result<Affine, ParseFormulaError> {
        self.skip_ws();
        if self.eat("-") {
            return Ok(-self.term()?);
        }
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let e = self.expr()?;
            if !self.eat(")") {
                return Err(self.error("expected ')'"));
            }
            return Ok(e);
        }
        match self.peek() {
            Some(b) if b.is_ascii_digit() => {
                let k = self.integer()?;
                // multiplication: explicit 2*n / 2*(x+1), or implicit 2n
                // (implicit requires adjacency — "1 garbage" is not 1·garbage)
                let adjacent = self
                    .input
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_');
                let explicit = self.eat("*");
                match self.peek() {
                    Some(c) if (explicit || adjacent) && (c.is_ascii_alphabetic() || c == b'_') => {
                        let v = self.name()?;
                        Ok(Affine::zero().add_scaled(&Affine::var(v), &k))
                    }
                    Some(b'(') if explicit => {
                        self.pos += 1;
                        let e = self.expr()?;
                        if !self.eat(")") {
                            return Err(self.error("expected ')'"));
                        }
                        Ok(Affine::zero().add_scaled(&e, &k))
                    }
                    _ if explicit => Err(self.error("expected a variable after '*'")),
                    _ => Ok(Affine::constant(k)),
                }
            }
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                let v = self.name()?;
                Ok(Affine::var(v))
            }
            _ => Err(self.error("expected a term")),
        }
    }

    fn integer(&mut self) -> Result<Int, ParseFormulaError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected an integer"));
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .expect("invariant: a run of ASCII digits is valid UTF-8");
        text.parse::<Int>()
            .map_err(|_| self.error("invalid integer"))
    }

    fn name(&mut self) -> Result<VarId, ParseFormulaError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric() || self.input[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos || self.input[start].is_ascii_digit() {
            return Err(self.error("expected a variable name"));
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .expect("invariant: a run of ASCII alphanumerics/underscores is valid UTF-8");
        if ["exists", "forall", "true", "false"].contains(&text) {
            self.pos = start;
            return Err(self.error("keyword used as a variable name"));
        }
        Ok(self.space.var(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat(f: &Formula, assign: &[(&str, i64)], space: &Space) -> bool {
        f.eval_quantifier_free(&|v| {
            let name = space.name(v);
            let (_, val) = assign
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("no binding for {name}"));
            Int::from(*val)
        })
    }

    #[test]
    fn chained_comparison() {
        let mut s = Space::new();
        let f = parse_formula("1 <= x <= n", &mut s).unwrap();
        assert!(sat(&f, &[("x", 3), ("n", 5)], &s));
        assert!(!sat(&f, &[("x", 0), ("n", 5)], &s));
        assert!(!sat(&f, &[("x", 6), ("n", 5)], &s));
    }

    #[test]
    fn implicit_multiplication() {
        let mut s = Space::new();
        let f = parse_formula("2x + 3y = 12", &mut s).unwrap();
        assert!(sat(&f, &[("x", 3), ("y", 2)], &s));
        assert!(!sat(&f, &[("x", 1), ("y", 3)], &s));
        let g = parse_formula("2*x - 3 >= 0", &mut s).unwrap();
        assert!(sat(&g, &[("x", 2)], &s));
        assert!(!sat(&g, &[("x", 1)], &s));
    }

    #[test]
    fn strides_and_negation() {
        let mut s = Space::new();
        let f = parse_formula("3 | x + 1 && !(x = 5)", &mut s).unwrap();
        assert!(sat(&f, &[("x", 2)], &s));
        assert!(!sat(&f, &[("x", 5)], &s)); // 3 | 6 but excluded
        assert!(!sat(&f, &[("x", 3)], &s));
    }

    #[test]
    fn connectives_and_parens() {
        let mut s = Space::new();
        let f = parse_formula("(x >= 0 && x <= 4) || x = 10", &mut s).unwrap();
        assert!(sat(&f, &[("x", 2)], &s));
        assert!(sat(&f, &[("x", 10)], &s));
        assert!(!sat(&f, &[("x", 7)], &s));
    }

    #[test]
    fn quantifiers_parse_and_simplify() {
        let mut s = Space::new();
        let f = parse_formula("exists y : x = 2y && 1 <= y <= 4", &mut s).unwrap();
        let d = crate::dnf::simplify(&f, &mut s, &crate::dnf::SimplifyOptions::default());
        let x = s.lookup("x").unwrap();
        for xv in 0i64..=10 {
            assert_eq!(
                d.contains_point(&s, &|v| {
                    assert_eq!(v, x);
                    Int::from(xv)
                }),
                [2, 4, 6, 8].contains(&xv),
                "x={xv}"
            );
        }
    }

    #[test]
    fn forall_parses() {
        let mut s = Space::new();
        let f = parse_formula("forall t : (0 <= t <= 2) || t > x", &mut s).unwrap();
        assert!(matches!(f, Formula::Forall(..)));
    }

    #[test]
    fn negative_terms_and_parens_in_exprs() {
        let mut s = Space::new();
        let f = parse_formula("-x + 2(y - 1) >= 0", &mut s);
        // 2(…) requires explicit '*': this should fail cleanly…
        assert!(f.is_err());
        let f = parse_formula("-x + 2*(y - 1) >= 0", &mut s).unwrap();
        assert!(sat(&f, &[("x", 2), ("y", 2)], &s));
        assert!(!sat(&f, &[("x", 3), ("y", 2)], &s));
    }

    #[test]
    fn error_positions() {
        let mut s = Space::new();
        let e = parse_formula("1 <= x <=", &mut s).unwrap_err();
        assert!(e.position >= 8, "{e}");
        assert!(parse_formula("x + ", &mut s).is_err());
        assert!(parse_formula("x >= 1 garbage", &mut s).is_err());
        assert!(parse_formula("exists : x = 1", &mut s).is_err());
    }

    #[test]
    fn errors_carry_line_column_and_caret() {
        let mut s = Space::new();
        let e = parse_formula("1 <= x &&\n2 <= y <=", &mut s).unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(e.column >= 9, "{e}");
        assert_eq!(e.snippet, "2 <= y <=");
        let caret = e.caret();
        let mut lines = caret.lines();
        assert_eq!(lines.next(), Some("2 <= y <="));
        let marker = lines.next().unwrap();
        assert!(marker.trim_end() == format!("{}^", " ".repeat(e.column - 1)));
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let mut s = Space::new();
        // parenthesized formulas, unary minus and negation all recurse
        for input in [
            format!("{}x = 1{}", "(".repeat(100_000), ")".repeat(100_000)),
            format!("{}x = 1", "!".repeat(100_000)),
            format!("{}x >= 0", "-".repeat(100_000)),
        ] {
            let e = parse_formula(&input, &mut s).unwrap_err();
            assert!(e.message.contains("nested too deeply"), "{e}");
        }
        // ...but reasonable nesting is unaffected
        let input = format!("{}x = 1{}", "(".repeat(30), ")".repeat(30));
        assert!(parse_formula(&input, &mut s).is_ok());
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // a cheap in-crate fuzz: mutated/truncated well-formed inputs
        // plus byte soup must all return Ok/Err, never panic
        let seeds = [
            "exists j : 1 <= j <= i && 2j = i",
            "count { } : <=",
            "1 <= x <= n && 3 | x + 1",
            "((((",
            "\u{fffd}\u{2264} x \n\t|| 2 |",
        ];
        let mut s = Space::new();
        for seed in seeds {
            for cut in 0..seed.len() {
                if seed.is_char_boundary(cut) {
                    let _ = parse_formula(&seed[..cut], &mut s);
                }
            }
            for junk in ["|", "||", "&&", "9", "\n^", "exists"] {
                let mutated = format!("{seed}{junk}");
                let _ = parse_formula(&mutated, &mut s);
            }
        }
    }

    #[test]
    fn keywords_are_reserved() {
        let mut s = Space::new();
        assert!(parse_formula("true", &mut s).is_ok());
        assert!(parse_formula("exists = 3", &mut s).is_err());
        // identifiers that merely start with a keyword are fine
        let f = parse_formula("truth >= 0", &mut s).unwrap();
        assert!(sat(&f, &[("truth", 1)], &s));
    }

    #[test]
    fn parse_affine_expr() {
        let mut s = Space::new();
        let e = parse_affine("3x - 2y + 7", &mut s).unwrap();
        let x = s.lookup("x").unwrap();
        let y = s.lookup("y").unwrap();
        assert_eq!(e.coeff(x), Int::from(3));
        assert_eq!(e.coeff(y), Int::from(-2));
        assert_eq!(*e.constant_term(), Int::from(7));
    }

    #[test]
    fn end_to_end_with_counting_shapes() {
        // the paper's Example 6 in calculator syntax
        let mut s = Space::new();
        let f = parse_formula("1 <= i && 1 <= j <= n && 2i <= 3j", &mut s).unwrap();
        let i = s.lookup("i").unwrap();
        let j = s.lookup("j").unwrap();
        let d = crate::dnf::simplify(&f, &mut s, &crate::dnf::SimplifyOptions::default());
        // spot check membership
        let member = |iv: i64, jv: i64, nv: i64| {
            d.contains_point(&s, &|v| {
                if v == i {
                    Int::from(iv)
                } else if v == j {
                    Int::from(jv)
                } else {
                    Int::from(nv)
                }
            })
        };
        assert!(member(1, 1, 3));
        assert!(member(3, 2, 3));
        assert!(!member(4, 2, 3));
        assert!(!member(1, 4, 3));
    }
}
