//! Integer variable elimination: real shadow, dark shadow, and the
//! paper's two splintering algorithms (Figure 1).
//!
//! Eliminating `z` from a conjunction combines every lower bound
//! `β ≤ b·z` with every upper bound `a·z ≤ α`:
//!
//! * the **real shadow** constraint `a·β ≤ b·α` is satisfied by every
//!   point whose fiber contains a *rational* `z` — an upper
//!   approximation of the integer projection;
//! * the **dark shadow** constraint `a·β + (a−1)(b−1) ≤ b·α` guarantees
//!   an *integer* `z` exists — a lower approximation;
//! * when `a = 1` or `b = 1` for every pair the two coincide and the
//!   projection is exact;
//! * otherwise the points missed by the dark shadow are covered by
//!   finitely many **splinters**, each carrying an equality on `z` that
//!   allows exact elimination via [`crate::eqelim`].
//!
//! [`eliminate`] implements four modes; `ExactDisjoint` reproduces the
//! disjoint splintering of §5.2 where the result clauses are pairwise
//! disjoint *in the projected space* — the property the counting engine
//! needs (§4.5.1).

use crate::affine::Affine;
use crate::conjunct::{Bound, Conjunct};
use crate::eqelim::eliminate_via_equality;
use crate::space::{Space, VarId};
use presburger_arith::Int;
use presburger_trace::{self as trace, Counter};

/// How to approximate (or not) when eliminating an integer variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shadow {
    /// Keep only the real shadow: an **over**-approximation (§4.6).
    Real,
    /// Keep only the dark shadow: an **under**-approximation (§4.6).
    Dark,
    /// Exact; splinters may overlap (Figure 1, left).
    ExactOverlapping,
    /// Exact; result clauses are disjoint in the projected space
    /// (Figure 1, right / §5.2).
    ExactDisjoint,
}

/// Result of an elimination.
#[derive(Clone, Debug)]
pub struct Eliminated {
    /// Whether the union of `clauses` is exactly the integer projection.
    pub exact: bool,
    /// Whether the clauses are guaranteed pairwise disjoint.
    pub disjoint: bool,
    /// The projection, as a disjunction of conjuncts.
    pub clauses: Vec<Conjunct>,
}

/// Eliminates `v` (treated as existentially quantified) from `c`.
///
/// Strides mentioning `v` are converted to wildcard equalities first;
/// an equality mentioning `v` always gives a single exact clause.
///
/// When memoization is [active](presburger_trace::memo::active) the
/// stride-free path — a pure function of the normalized conjunct — is
/// served from the memo table under `MemoDomain::Eliminate`, keyed on
/// the conjunct's canonical bytes plus `v` and the mode. The
/// stride-on-`v` path interns fresh wildcards into `space`
/// ([`Conjunct::stride_to_wildcard`]), so its result depends on space
/// state and is recomputed every time.
pub fn eliminate(c: &Conjunct, v: VarId, space: &mut Space, mode: Shadow) -> Eliminated {
    let mut c = c.clone();
    c.add_wildcard(v);
    c.normalize();
    if c.is_false() {
        return Eliminated {
            exact: true,
            disjoint: true,
            clauses: vec![],
        };
    }
    if c.strides().iter().any(|(_, e)| e.mentions(v)) {
        c.stride_to_wildcard(space);
        c.normalize();
        if c.is_false() {
            return Eliminated {
                exact: true,
                disjoint: true,
                clauses: vec![],
            };
        }
        // Fresh wildcards were interned just above: the clauses below
        // name them, so this result is a function of `space`, not of
        // the canonical key — never memoize it.
        return eliminate_normalized(&c, v, space, mode);
    }

    use presburger_trace::memo::{self, MemoDomain};
    if !memo::active() {
        return eliminate_normalized(&c, v, space, mode);
    }
    let mut key = Vec::with_capacity(96);
    c.push_key_bytes(&mut key);
    key.extend_from_slice(&(v.index() as u32).to_le_bytes());
    key.push(match mode {
        Shadow::Real => 0,
        Shadow::Dark => 1,
        Shadow::ExactOverlapping => 2,
        Shadow::ExactDisjoint => 3,
    });
    if let Some(hit) = memo::lookup(MemoDomain::Eliminate, &key) {
        if let Ok(r) = hit.downcast::<Eliminated>() {
            return (*r).clone();
        }
    }
    let guard = memo::begin_record();
    let r = eliminate_normalized(&c, v, space, mode);
    let delta = guard.finish();
    let bytes = r
        .clauses
        .iter()
        .map(|cl| 64 + 48 * (cl.eqs().len() + cl.geqs().len() + cl.strides().len()))
        .sum::<usize>();
    memo::record(
        MemoDomain::Eliminate,
        &key,
        std::sync::Arc::new(r.clone()),
        delta,
        bytes,
    );
    r
}

/// The elimination body proper, on a conjunct that is already
/// normalized, carries `v` as a wildcard, and has no stride on `v`
/// (unless called directly from the stride conversion path). Reads
/// `space` only for trace labels.
fn eliminate_normalized(c: &Conjunct, v: VarId, space: &mut Space, mode: Shadow) -> Eliminated {
    let mut c = c.clone();
    if let Some(idx) = c.eqs().iter().position(|e| e.mentions(v)) {
        trace::bump(Counter::EliminateViaEquality);
        trace::explain(|| format!("eliminate {} via equality", space.name(v)));
        let r = eliminate_via_equality(&c, v, idx);
        let clauses = if r.is_false() { vec![] } else { vec![r] };
        return Eliminated {
            exact: true,
            disjoint: true,
            clauses,
        };
    }
    if !c.mentions(v) {
        c.wildcards.retain(|w| *w != v);
        return Eliminated {
            exact: true,
            disjoint: true,
            clauses: vec![c],
        };
    }

    let (lowers, uppers, _) = c.bounds_on(v);
    // Unbounded on one side: an integer v always exists.
    if lowers.is_empty() || uppers.is_empty() {
        let mut r = base_without(&c, v);
        r.normalize();
        return Eliminated {
            exact: true,
            disjoint: true,
            clauses: if r.is_false() { vec![] } else { vec![r] },
        };
    }

    let all_exact =
        lowers.iter().all(|l| l.coeff.is_one()) || uppers.iter().all(|u| u.coeff.is_one());
    // pairwise exactness is what actually matters
    let pair_exact = lowers
        .iter()
        .all(|l| uppers.iter().all(|u| l.coeff.is_one() || u.coeff.is_one()));
    let _ = all_exact;

    if pair_exact || mode == Shadow::Real {
        trace::bump(Counter::EliminateReal);
        trace::explain(|| {
            format!(
                "eliminate {}: real shadow{}",
                space.name(v),
                if pair_exact {
                    " (exact)"
                } else {
                    " (over-approx)"
                }
            )
        });
        let mut r = base_without(&c, v);
        add_shadow(&mut r, &lowers, &uppers, false);
        r.normalize();
        return Eliminated {
            exact: pair_exact,
            disjoint: true,
            clauses: if r.is_false() { vec![] } else { vec![r] },
        };
    }
    if mode == Shadow::Dark {
        trace::bump(Counter::EliminateDark);
        trace::explain(|| format!("eliminate {}: dark shadow (under-approx)", space.name(v)));
        let mut r = base_without(&c, v);
        add_shadow(&mut r, &lowers, &uppers, true);
        r.normalize();
        return Eliminated {
            exact: false,
            disjoint: true,
            clauses: if r.is_false() { vec![] } else { vec![r] },
        };
    }

    match mode {
        Shadow::ExactOverlapping => {
            trace::bump(Counter::EliminateExactOverlapping);
            let _span = trace::span_dyn(|| {
                format!("eliminate {} (exact, overlapping splinters)", space.name(v))
            });
            let mut clauses = Vec::new();
            let mut dark = base_without(&c, v);
            add_shadow(&mut dark, &lowers, &uppers, true);
            dark.normalize();
            if !dark.is_false() {
                trace::bump(Counter::DarkShadowClauses);
                trace::explain(|| format!("dark shadow: {}", dark.to_string(space)));
                clauses.push(dark);
            }
            // Splinters (Figure 1, left): for each lower bound β ≤ b·v,
            // try b·v = β + i for i = 0 .. ((a_max−1)(b−1)−1)/a_max.
            let amax = uppers
                .iter()
                .map(|u| &u.coeff)
                .max()
                .expect("invariant: the splinter branch requires an upper bound")
                .clone();
            for l in &lowers {
                if l.coeff.is_one() {
                    continue;
                }
                let top = (&(&amax - &Int::one()) * &(&l.coeff - &Int::one()) - Int::one())
                    .div_floor(&amax);
                let mut i = Int::zero();
                while i <= top {
                    trace::bump(Counter::SplintersGenerated);
                    let mut s = c.clone();
                    // b·v - β - i = 0
                    let mut eq = -&l.expr;
                    eq.set_coeff(v, l.coeff.clone());
                    eq.add_constant(&-&i);
                    s.add_eq(eq);
                    s.normalize();
                    let mut kept = false;
                    if !s.is_false() {
                        let idx = s.eqs().iter().position(|e| e.mentions(v)).expect(
                            "invariant: the splinter construction just added an \
                                 equality c·v = e + i that mentions v, and normalize \
                                 never drops an equality over a live variable",
                        );
                        let r = eliminate_via_equality(&s, v, idx);
                        if !r.is_false() {
                            trace::explain(|| {
                                format!(
                                    "splinter {}·{} = β + {i}: {}",
                                    l.coeff,
                                    space.name(v),
                                    r.to_string(space)
                                )
                            });
                            clauses.push(r);
                            kept = true;
                        }
                    }
                    if !kept {
                        trace::bump(Counter::SplintersPruned);
                    }
                    i += &Int::one();
                }
            }
            Eliminated {
                exact: true,
                disjoint: false,
                clauses,
            }
        }
        Shadow::ExactDisjoint => {
            // §5.2: partition the projected space by the first
            // lower×upper pair whose dark-shadow constraint fails, and
            // within it by the (constant) value of b·α − a·β.
            trace::bump(Counter::EliminateExactDisjoint);
            let _span = trace::span_dyn(|| {
                format!("eliminate {} (exact, disjoint splinters)", space.name(v))
            });
            let mut clauses = Vec::new();
            let mut dark = base_without(&c, v);
            add_shadow(&mut dark, &lowers, &uppers, true);
            dark.normalize();
            if !dark.is_false() {
                trace::bump(Counter::DarkShadowClauses);
                trace::explain(|| format!("dark shadow: {}", dark.to_string(space)));
                clauses.push(dark);
            }
            let pairs: Vec<(&Bound, &Bound)> = lowers
                .iter()
                .flat_map(|l| uppers.iter().map(move |u| (l, u)))
                .collect();
            for (k, (l, u)) in pairs.iter().enumerate() {
                let gap = &(&l.coeff - &Int::one()) * &(&u.coeff - &Int::one());
                if gap.is_zero() {
                    continue; // dark == real for this pair, never fails alone
                }
                let mut i = Int::zero();
                while i < gap {
                    // region: earlier pairs' dark constraints hold, and
                    // b·α − a·β = i  (dark for this pair fails).
                    let mut region = c.clone();
                    for (l2, u2) in pairs.iter().take(k) {
                        region.add_geq(dark_constraint(l2, u2));
                    }
                    // b·α − a·β − i = 0  — no v involved
                    let balpha = Affine::zero().add_scaled(&u.expr, &l.coeff);
                    let abeta = Affine::zero().add_scaled(&l.expr, &u.coeff);
                    let mut eq = &balpha - &abeta;
                    eq.add_constant(&-&i);
                    region.add_eq(eq);
                    // within the region: a·β ≤ a·b·v ≤ b·α = a·β + i,
                    // so a·b·v = a·β + j for exactly one j in 0..=i.
                    let mut j = Int::zero();
                    while j <= i {
                        trace::bump(Counter::SplintersGenerated);
                        let mut s = region.clone();
                        let mut eqv = -&abeta;
                        eqv.set_coeff(v, &l.coeff * &u.coeff);
                        eqv.add_constant(&-&j);
                        s.add_eq(eqv);
                        s.normalize();
                        let mut kept = false;
                        if !s.is_false() {
                            if let Some(idx) = s.eqs().iter().position(|e| e.mentions(v)) {
                                let r = eliminate_via_equality(&s, v, idx);
                                if !r.is_false() {
                                    trace::explain(|| {
                                        format!(
                                            "splinter (pair {k}, offset {j}): {}",
                                            r.to_string(space)
                                        )
                                    });
                                    clauses.push(r);
                                    kept = true;
                                }
                            }
                        }
                        if !kept {
                            trace::bump(Counter::SplintersPruned);
                        }
                        j += &Int::one();
                    }
                    i += &Int::one();
                }
            }
            Eliminated {
                exact: true,
                disjoint: true,
                clauses,
            }
        }
        _ => unreachable!(
            "invariant: eliminate_exact is only called for \
             Shadow::ExactOverlapping / Shadow::ExactDisjoint; Real and \
             Dark are dispatched before it"
        ),
    }
}

/// The conjunct without any constraint mentioning `v` (and without `v`
/// in the wildcard list).
fn base_without(c: &Conjunct, v: VarId) -> Conjunct {
    let mut r = Conjunct::new();
    for w in c.wildcards() {
        if *w != v {
            r.add_wildcard(*w);
        }
    }
    for e in c.eqs() {
        if !e.mentions(v) {
            r.add_eq(e.clone());
        }
    }
    for e in c.geqs() {
        if !e.mentions(v) {
            r.add_geq(e.clone());
        }
    }
    for (m, e) in c.strides() {
        if !e.mentions(v) {
            r.add_stride(m.clone(), e.clone());
        }
    }
    r
}

/// The dark- (or real-) shadow constraint for a lower/upper bound pair:
/// `b·α − a·β − (a−1)(b−1) ≥ 0` (dark) or `b·α − a·β ≥ 0` (real).
fn dark_constraint(l: &Bound, u: &Bound) -> crate::affine::Affine {
    let balpha = crate::affine::Affine::zero().add_scaled(&u.expr, &l.coeff);
    let abeta = crate::affine::Affine::zero().add_scaled(&l.expr, &u.coeff);
    let mut e = &balpha - &abeta;
    let gap = &(&l.coeff - &Int::one()) * &(&u.coeff - &Int::one());
    e.add_constant(&-gap);
    e
}

fn add_shadow(r: &mut Conjunct, lowers: &[Bound], uppers: &[Bound], dark: bool) {
    for l in lowers {
        for u in uppers {
            if dark {
                r.add_geq(dark_constraint(l, u));
            } else {
                let balpha = crate::affine::Affine::zero().add_scaled(&u.expr, &l.coeff);
                let abeta = crate::affine::Affine::zero().add_scaled(&l.expr, &u.coeff);
                r.add_geq(&balpha - &abeta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;

    /// Ground truth: does an integer v in [-100, 100] satisfy all the
    /// constraints of `c` once the other variables are fixed?
    fn exists_v(c: &Conjunct, space: &Space, v: VarId, assign: &dyn Fn(VarId) -> Int) -> bool {
        (-100i64..=100)
            .any(|vv| c.contains_point(space, &|x| if x == v { Int::from(vv) } else { assign(x) }))
    }

    fn check_elimination(c: &Conjunct, space: &mut Space, v: VarId, free: VarId, mode: Shadow) {
        let r = eliminate(c, v, space, mode);
        assert!(r.exact, "mode {mode:?} should be exact");
        for fv in -40i64..=40 {
            let assign = |x: VarId| {
                assert_eq!(x, free);
                Int::from(fv)
            };
            let expected = exists_v(c, space, v, &assign);
            let got = r.clauses.iter().any(|cl| cl.contains_point(space, &assign));
            assert_eq!(got, expected, "mode {mode:?}, {}={fv}", space.name(free));
            if mode == Shadow::ExactDisjoint {
                let hits = r
                    .clauses
                    .iter()
                    .filter(|cl| cl.contains_point(space, &assign))
                    .count();
                assert!(hits <= 1, "clauses overlap at {fv}: {hits}");
            }
        }
    }

    /// The paper's §5.2 example: ∃β : 0 ≤ 3β − α ≤ 7 ∧ 1 ≤ α − 2β ≤ 5.
    /// Integer solutions: α = 3, 5 ≤ α ≤ 27, α = 29.
    fn paper_example(space: &mut Space) -> (Conjunct, VarId, VarId) {
        let alpha = space.var("alpha");
        let beta = space.var("beta");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(beta, 3), (alpha, -1)], 0)); // 3β − α ≥ 0
        c.add_geq(Affine::from_terms(&[(beta, -3), (alpha, 1)], 7)); // 3β − α ≤ 7
        c.add_geq(Affine::from_terms(&[(alpha, 1), (beta, -2)], -1)); // α − 2β ≥ 1
        c.add_geq(Affine::from_terms(&[(alpha, -1), (beta, 2)], 5)); // α − 2β ≤ 5
        (c, alpha, beta)
    }

    #[test]
    fn paper_52_overlapping() {
        let mut space = Space::new();
        let (c, alpha, beta) = paper_example(&mut space);
        check_elimination(&c, &mut space, beta, alpha, Shadow::ExactOverlapping);
    }

    #[test]
    fn paper_52_disjoint() {
        let mut space = Space::new();
        let (c, alpha, beta) = paper_example(&mut space);
        check_elimination(&c, &mut space, beta, alpha, Shadow::ExactDisjoint);
    }

    #[test]
    fn paper_52_dark_shadow_is_sound() {
        let mut space = Space::new();
        let (c, _alpha, beta) = paper_example(&mut space);
        let r = eliminate(&c, beta, &mut space, Shadow::Dark);
        assert!(!r.exact);
        // every dark-shadow point must have an integer β
        for av in -5i64..=40 {
            let assign = |_x: VarId| Int::from(av);
            let in_dark = r
                .clauses
                .iter()
                .any(|cl| cl.contains_point(&space, &assign));
            if in_dark {
                assert!(exists_v(&c, &space, beta, &assign), "alpha={av}");
            }
        }
        // and the dark shadow must cover the bulk 5..=27 region
        // (per the analysis in the paper, up to the exact pairing used)
        let mid = |av: i64| {
            r.clauses
                .iter()
                .any(|cl| cl.contains_point(&space, &|_| Int::from(av)))
        };
        assert!(mid(10) && mid(20));
        assert!(!mid(3) && !mid(29), "edges are not in the dark shadow");
    }

    #[test]
    fn real_shadow_is_complete() {
        let mut space = Space::new();
        let (c, alpha, beta) = paper_example(&mut space);
        let r = eliminate(&c, beta, &mut space, Shadow::Real);
        for av in -5i64..=40 {
            let assign = |_x: VarId| Int::from(av);
            if exists_v(&c, &space, beta, &assign) {
                assert!(
                    r.clauses
                        .iter()
                        .any(|cl| cl.contains_point(&space, &assign)),
                    "real shadow must contain alpha={av}"
                );
            }
        }
        let _ = alpha;
    }

    #[test]
    fn exact_when_unit_coefficient() {
        // ∃y: x ≤ y ≤ x + 5 ∧ 2y ≤ z  — lower coeff 1 ⇒ exact, no splinters
        let mut space = Space::new();
        let x = space.var("x");
        let y = space.var("y");
        let z = space.var("z");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(y, 1), (x, -1)], 0));
        c.add_geq(Affine::from_terms(&[(y, -1), (x, 1)], 5));
        c.add_geq(Affine::from_terms(&[(z, 1), (y, -2)], 0));
        let r = eliminate(&c, y, &mut space, Shadow::ExactOverlapping);
        assert!(r.exact);
        assert_eq!(r.clauses.len(), 1);
        for xv in -6i64..=6 {
            for zv in -6i64..=12 {
                let assign = |v: VarId| if v == x { Int::from(xv) } else { Int::from(zv) };
                let expected = (xv..=xv + 5).any(|yv| 2 * yv <= zv);
                let got = r.clauses[0].contains_point(&space, &assign);
                assert_eq!(got, expected, "x={xv} z={zv}");
            }
        }
        let _ = z;
    }

    #[test]
    fn stride_on_v_is_handled() {
        // ∃y: 2 | y ∧ x ≤ y ≤ x + 1  ⇔  true for every x (one of two
        // consecutive integers is even)
        let mut space = Space::new();
        let x = space.var("x");
        let y = space.var("y");
        let mut c = Conjunct::new();
        c.add_stride(Int::from(2), Affine::var(y));
        c.add_geq(Affine::from_terms(&[(y, 1), (x, -1)], 0));
        c.add_geq(Affine::from_terms(&[(y, -1), (x, 1)], 1));
        let r = eliminate(&c, y, &mut space, Shadow::ExactOverlapping);
        assert!(r.exact);
        for xv in -10i64..=10 {
            let got = r
                .clauses
                .iter()
                .any(|cl| cl.contains_point(&space, &|_| Int::from(xv)));
            assert!(got, "x={xv}");
        }
    }

    #[test]
    fn equality_elimination_is_preferred() {
        // ∃y: 3y = x ∧ 0 ≤ y ≤ 5  ⇒  3 | x ∧ 0 ≤ x ≤ 15
        let mut space = Space::new();
        let x = space.var("x");
        let y = space.var("y");
        let mut c = Conjunct::new();
        c.add_eq(Affine::from_terms(&[(y, 3), (x, -1)], 0));
        c.add_geq(Affine::var(y));
        c.add_geq(Affine::from_terms(&[(y, -1)], 5));
        let r = eliminate(&c, y, &mut space, Shadow::ExactOverlapping);
        assert!(r.exact);
        assert_eq!(r.clauses.len(), 1);
        for xv in -3i64..=18 {
            let expected = xv % 3 == 0 && (0..=15).contains(&xv);
            let got = r.clauses[0].contains_point(&space, &|_| Int::from(xv));
            assert_eq!(got, expected, "x={xv}");
        }
    }

    #[test]
    fn unbounded_side_drops_constraints() {
        let mut space = Space::new();
        let x = space.var("x");
        let y = space.var("y");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(y, 2), (x, -1)], 0)); // 2y >= x, no upper
        c.add_geq(Affine::var(x)); // x >= 0
        let r = eliminate(&c, y, &mut space, Shadow::ExactOverlapping);
        assert!(r.exact);
        assert_eq!(r.clauses.len(), 1);
        assert_eq!(r.clauses[0].geqs().len(), 1);
    }
}
