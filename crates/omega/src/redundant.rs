//! Redundant-constraint elimination, the `gist` operator, and
//! implication verification (§2.3–§2.4).
//!
//! Normalization already removes constraints made redundant by a single
//! other constraint (same slope, looser constant). The *complete* test
//! implemented here removes a constraint `c` when `P ∖ {c} ∧ ¬c` is
//! integer-infeasible, which catches redundancy witnessed by arbitrary
//! combinations of the remaining constraints.

use crate::affine::Affine;
use crate::conjunct::Conjunct;
use crate::feasible::is_feasible;
use crate::space::Space;
use presburger_arith::Int;
use presburger_trace::{self as trace, Counter};

/// Removes every inequality of `c` that is implied by the remaining
/// constraints (§2.3). Returns the slimmed conjunct, or a contradiction
/// if `c` is infeasible.
///
/// Per the paper, a *fast but incomplete* test screens constraints
/// first — here, a constraint that is the **only** one bounding some
/// variable from one side is *definitely not redundant* (dropping it
/// would unbound that variable over a non-empty region) and skips the
/// expensive complete test. The single-constraint subsumption test
/// (same slope, weaker constant) already runs inside normalization.
pub fn remove_redundant(c: &Conjunct, space: &mut Space) -> Conjunct {
    let mut c = c.clone();
    c.normalize();
    if c.is_false() {
        return c;
    }
    if !is_feasible(&c, space) {
        return Conjunct::f();
    }
    // Try to drop each inequality in turn. Dropping one constraint can
    // make another non-redundant, so test against the current residual.
    let mut i = 0;
    while i < c.geqs().len() {
        if definitely_not_redundant(&c, i) {
            trace::bump(Counter::RedundantFastSkips);
            i += 1;
            continue;
        }
        let mut trial = c.clone();
        let e = trial.geqs.remove(i);
        // ¬(e ≥ 0)  ≡  −e − 1 ≥ 0
        let mut neg = trial.clone();
        let mut ne = -&e;
        ne.add_constant(&Int::from(-1));
        neg.add_geq(ne);
        if !is_feasible(&neg, space) {
            trace::bump(Counter::RedundantRemovedComplete);
            trace::explain(|| format!("redundant (complete test): {} ≥ 0", e.to_string(space)));
            c = trial; // e was redundant
        } else {
            i += 1;
        }
    }
    c
}

/// Fast incomplete screen (§2.3): the inequality at `idx` is the sole
/// upper (or lower) bound on some variable that no equality pins down,
/// so removing it would enlarge the region — definitely not redundant.
fn definitely_not_redundant(c: &Conjunct, idx: usize) -> bool {
    let e = &c.geqs()[idx];
    'vars: for (v, coeff) in e.iter() {
        // wildcards are projected away — unbounding one need not grow
        // the projection; and variables pinned by equalities are not
        // obviously freed by dropping an inequality
        if c.is_wildcard(v) || c.eqs().iter().any(|q| q.mentions(v)) {
            continue;
        }
        let want_negative = coeff.is_negative();
        for (j, other) in c.geqs().iter().enumerate() {
            if j == idx {
                continue;
            }
            let oc = other.coeff(v);
            if (want_negative && oc.is_negative()) || (!want_negative && oc.is_positive()) {
                continue 'vars; // someone else bounds v from this side
            }
        }
        return true; // sole bound for v on this side
    }
    false
}

/// `gist p given q` (§2.3): a minimal subset `G` of `p`'s constraints
/// such that `G ∧ q  ≡  p ∧ q`. Returns a trivially-true conjunct when
/// `q` already implies all of `p`, and a contradiction when `p ∧ q` is
/// infeasible.
///
/// Wildcards of `q` are treated as free variables here (sound: it only
/// makes the "given" information weaker).
pub fn gist(p: &Conjunct, q: &Conjunct, space: &mut Space) -> Conjunct {
    trace::bump(Counter::GistCalls);
    let mut combined = p.clone();
    combined.and(q);
    combined.normalize();
    if combined.is_false() || !is_feasible(&combined, space) {
        return Conjunct::f();
    }
    let mut result = p.clone();
    result.normalize();
    // inequalities
    let mut i = 0;
    while i < result.geqs().len() {
        let mut rest = result.clone();
        let e = rest.geqs.remove(i);
        let mut ctx = rest.clone();
        ctx.and(q);
        let mut ne = -&e;
        ne.add_constant(&Int::from(-1));
        ctx.add_geq(ne);
        if !is_feasible(&ctx, space) {
            result = rest;
        } else {
            i += 1;
        }
    }
    // equalities: drop when both directions are implied
    let mut i = 0;
    while i < result.eqs().len() {
        let mut rest = result.clone();
        let e = rest.eqs.remove(i);
        let implied = {
            let mut up = rest.clone();
            up.and(q);
            let mut pe = e.clone();
            pe.add_constant(&Int::from(-1));
            up.add_geq(pe); // e >= 1
            let mut down = rest.clone();
            down.and(q);
            let mut ne = -&e;
            ne.add_constant(&Int::from(-1));
            down.add_geq(ne); // e <= -1
            !is_feasible(&up, space) && !is_feasible(&down, space)
        };
        if implied {
            result = rest;
        } else {
            i += 1;
        }
    }
    // strides: drop when the negation is infeasible in context
    let mut i = 0;
    while i < result.strides().len() {
        let mut rest = result.clone();
        let (m, e) = rest.strides.remove(i);
        let mut ctx = rest.clone();
        ctx.and(q);
        add_negated_stride(&mut ctx, &m, &e, space);
        if !is_feasible(&ctx, space) {
            result = rest;
        } else {
            i += 1;
        }
    }
    result.normalize();
    result
}

/// Adds the constraint `¬(m | e)`, i.e. `∃α : m·α < e < m·(α+1)`
/// (§3.2), to `c`.
pub fn add_negated_stride(c: &mut Conjunct, m: &Int, e: &Affine, space: &mut Space) {
    let alpha = space.fresh("n");
    c.add_wildcard(alpha);
    // e - m·α ≥ 1   and   m·α + m − 1 − e ≥ 0  (e ≤ m·α + m − 1)
    let ma = Affine::term(alpha, 1i64);
    let ma = Affine::zero().add_scaled(&ma, m);
    let mut lower = e - &ma;
    lower.add_constant(&Int::from(-1));
    c.add_geq(lower);
    let mut upper = &ma - e;
    upper.add_constant(&(m - &Int::one()));
    c.add_geq(upper);
}

/// Verifies the implication `p ⇒ q` (§2.4): every constraint of `q`
/// must be implied by `p`. Both conjuncts may contain wildcards;
/// `p`'s wildcards are implicitly universally quantified on the left of
/// the implication, which is exactly what the feasibility encoding
/// `p ∧ ¬c` checks.
pub fn implies(p: &Conjunct, q: &Conjunct, space: &mut Space) -> bool {
    // q's wildcards make the right-hand side existential; the
    // constraint-by-constraint check below is only valid when q has no
    // wildcards entangled across constraints. Handle the common cases:
    // no wildcards, or wildcards only in strides (checked via
    // add_negated_stride which re-quantifies).
    for e in q.eqs() {
        let mut up = p.clone();
        let mut pe = e.clone();
        pe.add_constant(&Int::from(-1));
        up.add_geq(pe);
        if is_feasible(&up, space) {
            return false;
        }
        let mut down = p.clone();
        let mut ne = -e;
        ne.add_constant(&Int::from(-1));
        down.add_geq(ne);
        if is_feasible(&down, space) {
            return false;
        }
    }
    for e in q.geqs() {
        let mut ctx = p.clone();
        let mut ne = -e;
        ne.add_constant(&Int::from(-1));
        ctx.add_geq(ne);
        if is_feasible(&ctx, space) {
            return false;
        }
    }
    for (m, e) in q.strides() {
        let mut ctx = p.clone();
        add_negated_stride(&mut ctx, m, e, space);
        if is_feasible(&ctx, space) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VarId;

    fn setup() -> (Space, VarId, VarId) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        (s, x, y)
    }

    #[test]
    fn drops_combination_redundancy() {
        let (mut s, x, y) = setup();
        // x >= 0, y >= 0, x + y >= -5 (redundant by combination)
        let mut c = Conjunct::new();
        c.add_geq(Affine::var(x));
        c.add_geq(Affine::var(y));
        c.add_geq(Affine::from_terms(&[(x, 1), (y, 1)], 5));
        let r = remove_redundant(&c, &mut s);
        assert_eq!(r.geqs().len(), 2);
    }

    #[test]
    fn keeps_necessary_constraints() {
        let (mut s, x, y) = setup();
        let mut c = Conjunct::new();
        c.add_geq(Affine::var(x));
        c.add_geq(Affine::var(y));
        c.add_geq(Affine::from_terms(&[(x, -1), (y, -1)], 10));
        let r = remove_redundant(&c, &mut s);
        assert_eq!(r.geqs().len(), 3);
    }

    #[test]
    fn infeasible_becomes_false() {
        let (mut s, x, _) = setup();
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 2)], -3)); // 2x >= 3
        c.add_geq(Affine::from_terms(&[(x, -2)], 3)); // 2x <= 3
        let r = remove_redundant(&c, &mut s);
        assert!(r.is_false());
    }

    #[test]
    fn integer_redundancy_is_detected() {
        let (mut s, x, _) = setup();
        // 2x >= 1 over the integers is x >= 1, so x >= 1 is redundant.
        // (normalization tightens 2x >= 1 to x >= 1 already; the
        // complete test must agree.)
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 2)], -1));
        c.add_geq(Affine::from_terms(&[(x, 1)], -1));
        let r = remove_redundant(&c, &mut s);
        assert_eq!(r.geqs().len(), 1);
    }

    #[test]
    fn gist_paper_semantics() {
        let (mut s, x, y) = setup();
        // gist (0 <= x <= 10) given (x = y && 0 <= y <= 5)  ->  TRUE-ish
        let mut p = Conjunct::new();
        p.add_geq(Affine::var(x));
        p.add_geq(Affine::from_terms(&[(x, -1)], 10));
        let mut q = Conjunct::new();
        q.add_eq(Affine::from_terms(&[(x, 1), (y, -1)], 0));
        q.add_geq(Affine::var(y));
        q.add_geq(Affine::from_terms(&[(y, -1)], 5));
        let g = gist(&p, &q, &mut s);
        assert!(g.is_trivially_true(), "gist = {}", g.to_string(&s));
    }

    #[test]
    fn gist_keeps_interesting_part() {
        let (mut s, x, y) = setup();
        // gist (x >= 0 && x <= y) given (y <= 100):
        // x >= 0 stays interesting; x <= y stays interesting.
        let mut p = Conjunct::new();
        p.add_geq(Affine::var(x));
        p.add_geq(Affine::from_terms(&[(y, 1), (x, -1)], 0));
        let mut q = Conjunct::new();
        q.add_geq(Affine::from_terms(&[(y, -1)], 100));
        let g = gist(&p, &q, &mut s);
        assert_eq!(g.geqs().len(), 2);
    }

    #[test]
    fn gist_false_when_incompatible() {
        let (mut s, x, _) = setup();
        let mut p = Conjunct::new();
        p.add_geq(Affine::from_terms(&[(x, 1)], -10)); // x >= 10
        let mut q = Conjunct::new();
        q.add_geq(Affine::from_terms(&[(x, -1)], 5)); // x <= 5
        let g = gist(&p, &q, &mut s);
        assert!(g.is_false());
    }

    #[test]
    fn implication() {
        let (mut s, x, y) = setup();
        // (1 <= x <= 5 && x = y) => (0 <= y <= 10)
        let mut p = Conjunct::new();
        p.add_geq(Affine::from_terms(&[(x, 1)], -1));
        p.add_geq(Affine::from_terms(&[(x, -1)], 5));
        p.add_eq(Affine::from_terms(&[(x, 1), (y, -1)], 0));
        let mut q = Conjunct::new();
        q.add_geq(Affine::var(y));
        q.add_geq(Affine::from_terms(&[(y, -1)], 10));
        assert!(implies(&p, &q, &mut s));
        // but not => (y >= 2)
        let mut q2 = Conjunct::new();
        q2.add_geq(Affine::from_terms(&[(y, 1)], -2));
        assert!(!implies(&p, &q2, &mut s));
    }

    #[test]
    fn implication_with_strides() {
        let (mut s, x, _) = setup();
        // 4 | x  =>  2 | x
        let mut p = Conjunct::new();
        p.add_stride(Int::from(4), Affine::var(x));
        let mut q = Conjunct::new();
        q.add_stride(Int::from(2), Affine::var(x));
        assert!(implies(&p, &q, &mut s));
        assert!(!implies(&q, &p, &mut s));
    }

    #[test]
    fn negated_stride_constraint() {
        let (mut s, x, _) = setup();
        // ¬(3 | x) && x = 6  infeasible; && x = 7 feasible
        let mut c = Conjunct::new();
        add_negated_stride(&mut c, &Int::from(3), &Affine::var(x), &mut s);
        let mut c6 = c.clone();
        c6.add_eq(Affine::from_terms(&[(x, 1)], -6));
        assert!(!is_feasible(&c6, &mut s));
        let mut c7 = c.clone();
        c7.add_eq(Affine::from_terms(&[(x, 1)], -7));
        assert!(is_feasible(&c7, &mut s));
    }
}
