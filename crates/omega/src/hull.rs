//! Summarizing a set of constant offsets with linear constraints
//! (§5.1.1).
//!
//! When a loop touches `a[i+Δ]` for a small set of constant offsets Δ
//! (a *uniformly generated set*), the paper summarizes the offsets as
//! the integer points of their convex hull (plus stride constraints),
//! then verifies exactness by counting. Both methods the paper
//! describes are provided:
//!
//! * [`summarize_offsets`] — convex hull + stride detection + counting
//!   check (method 2);
//! * [`zero_one_encoding`] — the 0-1 programming formulation of
//!   \[AI91\] (method 1), which leaves the simplification to the Omega
//!   test and may fail to produce a convex summary.

use crate::affine::Affine;
use crate::conjunct::Conjunct;
use crate::space::{Space, VarId};
use presburger_arith::Int;

/// The result of summarizing a set of offsets.
#[derive(Clone, Debug)]
pub struct OffsetSummary {
    /// Constraints over the offset variables describing the summary
    /// region (convex hull + strides).
    pub conjunct: Conjunct,
    /// Whether the summary is exact (contains exactly the given
    /// points). A non-exact summary is a conservative superset.
    pub exact: bool,
    /// Number of integer points in the summary region.
    pub point_count: u64,
}

/// Summarizes constant offset points (dimension ≤ 3) as convex hull
/// constraints plus stride constraints over `vars` (§5.1.1 method 2).
///
/// # Panics
///
/// Panics if `points` is empty, dimensions are inconsistent with
/// `vars`, or the dimension exceeds 3.
pub fn summarize_offsets(points: &[Vec<i64>], vars: &[VarId]) -> OffsetSummary {
    assert!(!points.is_empty(), "cannot summarize zero offsets");
    let d = vars.len();
    assert!(
        (1..=3).contains(&d),
        "offset summarization supports 1-3 dims"
    );
    assert!(
        points.iter().all(|p| p.len() == d),
        "offset dimension mismatch"
    );
    let mut uniq: Vec<Vec<i64>> = points.to_vec();
    uniq.sort();
    uniq.dedup();

    let mut c = Conjunct::new();
    // bounding box (always sound; exact for rank-deficient sets)
    for j in 0..d {
        let lo = uniq
            .iter()
            .map(|p| p[j])
            .min()
            .expect("invariant: the hull summary is built from at least one point");
        let hi = uniq
            .iter()
            .map(|p| p[j])
            .max()
            .expect("invariant: the hull summary is built from at least one point");
        c.add_geq(Affine::from_terms(&[(vars[j], 1)], -lo));
        c.add_geq(Affine::from_terms(&[(vars[j], -1)], hi));
    }
    // affine-hull equalities from the kernel of the difference matrix
    let p0 = &uniq[0];
    if uniq.len() > 1 {
        let rows = uniq.len() - 1;
        let mut m = presburger_arith::Matrix::zero(rows, d);
        for (i, p) in uniq.iter().skip(1).enumerate() {
            for j in 0..d {
                m[(i, j)] = Int::from(p[j] - p0[j]);
            }
        }
        if let Some(sol) = presburger_arith::smith::solve_diophantine(&m, &vec![Int::zero(); rows])
        {
            // kernel vectors u of the difference matrix: u ⊥ every edge
            for k in 0..sol.basis.cols() {
                let u = sol.basis.col(k);
                let mut e = Affine::zero();
                let mut rhs = Int::zero();
                for j in 0..d {
                    e.set_coeff(vars[j], u[j].clone());
                    rhs += &(&u[j] * &Int::from(p0[j]));
                }
                e.add_constant(&-rhs);
                c.add_eq(e);
            }
        }
    } else {
        // single point: pin every coordinate
        for j in 0..d {
            c.add_eq(Affine::from_terms(&[(vars[j], 1)], -p0[j]));
        }
    }
    // facets: hyperplanes through d-subsets of points
    add_facets(&mut c, &uniq, vars);
    // stride detection: per coordinate and per coordinate difference
    add_strides(&mut c, &uniq, vars);
    c.normalize();

    // exactness check by counting (§5.1.1): enumerate the bounding box
    let count = count_box_points(&c, &uniq, vars);
    OffsetSummary {
        conjunct: c,
        exact: count == uniq.len() as u64,
        point_count: count,
    }
}

fn add_facets(c: &mut Conjunct, points: &[Vec<i64>], vars: &[VarId]) {
    let d = vars.len();
    let n = points.len();
    match d {
        1 => {} // bounding box already is the hull
        2 => {
            for i in 0..n {
                for j in i + 1..n {
                    let (p, q) = (&points[i], &points[j]);
                    let dir = [q[0] - p[0], q[1] - p[1]];
                    if dir == [0, 0] {
                        continue;
                    }
                    // normal to the segment
                    let nvec = [dir[1], -dir[0]];
                    push_halfspace(c, points, vars, &nvec, p);
                }
            }
        }
        3 => {
            for i in 0..n {
                for j in i + 1..n {
                    for k in j + 1..n {
                        let (p, q, r) = (&points[i], &points[j], &points[k]);
                        let u = [q[0] - p[0], q[1] - p[1], q[2] - p[2]];
                        let v = [r[0] - p[0], r[1] - p[1], r[2] - p[2]];
                        let nvec = [
                            u[1] * v[2] - u[2] * v[1],
                            u[2] * v[0] - u[0] * v[2],
                            u[0] * v[1] - u[1] * v[0],
                        ];
                        if nvec == [0, 0, 0] {
                            continue;
                        }
                        push_halfspace(c, points, vars, &nvec, p);
                    }
                }
            }
        }
        _ => unreachable!(
            "invariant: offset summaries are 1-, 2- or 3-dimensional \
             (the caller bounds vars.len() before building the hull)"
        ),
    }
}

/// If all points lie on one side of the hyperplane `n·x = n·p`, adds
/// the corresponding halfspace constraint.
fn push_halfspace(c: &mut Conjunct, points: &[Vec<i64>], vars: &[VarId], nvec: &[i64], p: &[i64]) {
    let b: i64 = nvec.iter().zip(p).map(|(a, x)| a * x).sum();
    let side = |pt: &Vec<i64>| -> i64 { nvec.iter().zip(pt).map(|(a, x)| a * x).sum::<i64>() - b };
    let all_le = points.iter().all(|pt| side(pt) <= 0);
    let all_ge = points.iter().all(|pt| side(pt) >= 0);
    if all_le {
        // n·x ≤ b  ⇒  b − n·x ≥ 0
        let mut e = Affine::constant(b);
        for (j, v) in vars.iter().enumerate() {
            e.set_coeff(*v, Int::from(-nvec[j]));
        }
        c.add_geq(e);
    }
    if all_ge {
        let mut e = Affine::constant(-b);
        for (j, v) in vars.iter().enumerate() {
            e.set_coeff(*v, Int::from(nvec[j]));
        }
        c.add_geq(e);
    }
}

fn add_strides(c: &mut Conjunct, points: &[Vec<i64>], vars: &[VarId]) {
    let d = vars.len();
    let p0 = &points[0];
    fn gcd64(mut a: i64, mut b: i64) -> i64 {
        a = a.abs();
        b = b.abs();
        while b != 0 {
            let r = a % b;
            a = b;
            b = r;
        }
        a
    }
    // per coordinate
    for j in 0..d {
        let g = points.iter().fold(0i64, |acc, p| gcd64(acc, p[j] - p0[j]));
        if g >= 2 {
            c.add_stride(Int::from(g), Affine::from_terms(&[(vars[j], 1)], -p0[j]));
        }
    }
    // per coordinate difference (the paper's "difference of the first
    // two coordinates always a multiple of three")
    for j in 0..d {
        for k in j + 1..d {
            let base = p0[j] - p0[k];
            let g = points
                .iter()
                .fold(0i64, |acc, p| gcd64(acc, (p[j] - p[k]) - base));
            if g >= 2 {
                c.add_stride(
                    Int::from(g),
                    Affine::from_terms(&[(vars[j], 1), (vars[k], -1)], -base),
                );
            }
        }
    }
}

/// Counts the integer points of the (bounded) summary region by
/// enumerating its bounding box.
fn count_box_points(c: &Conjunct, points: &[Vec<i64>], vars: &[VarId]) -> u64 {
    let d = vars.len();
    let lo: Vec<i64> = (0..d)
        .map(|j| {
            points
                .iter()
                .map(|p| p[j])
                .min()
                .expect("invariant: the box is built from at least one point")
        })
        .collect();
    let hi: Vec<i64> = (0..d)
        .map(|j| {
            points
                .iter()
                .map(|p| p[j])
                .max()
                .expect("invariant: the box is built from at least one point")
        })
        .collect();
    let mut count = 0u64;
    let mut cur = lo.clone();
    'outer: loop {
        let sat = c.eqs().iter().all(|e| eval_at(e, vars, &cur).is_zero())
            && c.geqs()
                .iter()
                .all(|e| !eval_at(e, vars, &cur).is_negative())
            && c.strides()
                .iter()
                .all(|(m, e)| m.divides(&eval_at(e, vars, &cur)));
        if sat {
            count += 1;
        }
        // advance odometer
        for j in 0..d {
            cur[j] += 1;
            if cur[j] <= hi[j] {
                continue 'outer;
            }
            cur[j] = lo[j];
        }
        break;
    }
    count
}

fn eval_at(e: &Affine, vars: &[VarId], values: &[i64]) -> Int {
    e.eval(&|v| {
        let idx = vars.iter().position(|x| *x == v).expect(
            "invariant: every constraint built by summarize mentions \
                 only the distance variables in `vars`",
        );
        Int::from(values[idx])
    })
}

/// The 0-1 programming encoding of \[AI91\] (§5.1.1 method 1):
/// `x = Σ zᵢ·pᵢ, Σ zᵢ = 1, 0 ≤ zᵢ ≤ 1` with existential `zᵢ`.
///
/// The caller may attempt to simplify the result with
/// [`crate::dnf::project_wildcards`]; the paper reports this succeeds
/// for 4- and 5-point stencils but not for a 9-point stencil.
pub fn zero_one_encoding(points: &[Vec<i64>], vars: &[VarId], space: &mut Space) -> Conjunct {
    assert!(!points.is_empty());
    let d = vars.len();
    let mut c = Conjunct::new();
    let zs: Vec<VarId> = (0..points.len()).map(|_| space.fresh("z")).collect();
    for z in &zs {
        c.add_wildcard(*z);
        c.add_geq(Affine::var(*z));
        c.add_geq(Affine::from_terms(&[(*z, -1)], 1));
    }
    // Σ zᵢ = 1
    let mut sum = Affine::constant(-1);
    for z in &zs {
        sum.set_coeff(*z, Int::one());
    }
    c.add_eq(sum);
    // xⱼ = Σ zᵢ·pᵢⱼ
    for j in 0..d {
        let mut e = Affine::var(vars[j]);
        for (i, z) in zs.iter().enumerate() {
            e.set_coeff(*z, Int::from(-points[i][j]));
        }
        c.add_eq(e);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(space: &mut Space, d: usize) -> Vec<VarId> {
        (0..d).map(|i| space.var(&format!("d{i}"))).collect()
    }

    #[test]
    fn five_point_stencil_is_exact() {
        // {(0,0), (-1,0), (1,0), (0,-1), (0,1)} — the SOR stencil (§5.1)
        let mut s = Space::new();
        let v = vars(&mut s, 2);
        let pts = vec![vec![0, 0], vec![-1, 0], vec![1, 0], vec![0, -1], vec![0, 1]];
        let sum = summarize_offsets(&pts, &v);
        assert!(sum.exact, "5-point stencil must be exact: {:?}", sum);
        assert_eq!(sum.point_count, 5);
    }

    #[test]
    fn four_point_stencil_is_exact() {
        let mut s = Space::new();
        let v = vars(&mut s, 2);
        let pts = vec![vec![0, 0], vec![-1, 0], vec![0, -1], vec![1, 0]];
        let sum = summarize_offsets(&pts, &v);
        assert!(sum.exact);
    }

    #[test]
    fn nine_point_stencil_is_exact_via_hull() {
        // full 3x3 block: the hull is the box, exact
        let mut s = Space::new();
        let v = vars(&mut s, 2);
        let mut pts = Vec::new();
        for a in -1..=1 {
            for b in -1..=1 {
                pts.push(vec![a, b]);
            }
        }
        let sum = summarize_offsets(&pts, &v);
        assert!(sum.exact);
        assert_eq!(sum.point_count, 9);
    }

    #[test]
    fn strided_offsets() {
        // {0, 3, 6}: hull is [0,6], strides make it exact
        let mut s = Space::new();
        let v = vars(&mut s, 1);
        let sum = summarize_offsets(&[vec![0], vec![3], vec![6]], &v);
        assert!(sum.exact);
        assert_eq!(sum.point_count, 3);
        assert_eq!(sum.conjunct.strides().len(), 1);
    }

    #[test]
    fn inexact_set_is_conservative() {
        // {0, 1, 5}: hull [0,5] has 6 points, strides don't help
        let mut s = Space::new();
        let v = vars(&mut s, 1);
        let sum = summarize_offsets(&[vec![0], vec![1], vec![5]], &v);
        assert!(!sum.exact);
        assert_eq!(sum.point_count, 6);
    }

    #[test]
    fn collinear_diagonal_points() {
        // {(0,0), (1,1), (2,2)}: affine hull equality x = y
        let mut s = Space::new();
        let v = vars(&mut s, 2);
        let sum = summarize_offsets(&[vec![0, 0], vec![1, 1], vec![2, 2]], &v);
        assert!(sum.exact);
        assert_eq!(sum.point_count, 3);
        assert!(!sum.conjunct.eqs().is_empty());
    }

    #[test]
    fn single_point() {
        let mut s = Space::new();
        let v = vars(&mut s, 2);
        let sum = summarize_offsets(&[vec![3, -2]], &v);
        assert!(sum.exact);
        assert_eq!(sum.point_count, 1);
    }

    #[test]
    fn even_triangle_exact_via_strides() {
        // {(0,0), (2,0), (0,2)}: the hull alone has 6 lattice points,
        // but the detected strides 2|x and 2|y cut it to exactly 3.
        let mut s = Space::new();
        let v = vars(&mut s, 2);
        let sum = summarize_offsets(&[vec![0, 0], vec![2, 0], vec![0, 2]], &v);
        assert!(sum.exact);
        assert_eq!(sum.point_count, 3);
    }

    #[test]
    fn skew_triangle_is_inexact() {
        // {(0,0), (2,1), (1,2)}: hull contains the extra point (1,1)
        // and no stride separates it.
        let mut s = Space::new();
        let v = vars(&mut s, 2);
        let sum = summarize_offsets(&[vec![0, 0], vec![2, 1], vec![1, 2]], &v);
        assert!(!sum.exact);
        assert_eq!(sum.point_count, 4);
    }

    #[test]
    fn three_dimensional_hull() {
        // unit tetrahedron corners: 4 lattice points, exact
        let mut s = Space::new();
        let v = vars(&mut s, 3);
        let pts = vec![vec![0, 0, 0], vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        let sum = summarize_offsets(&pts, &v);
        assert!(sum.exact);
        assert_eq!(sum.point_count, 4);
    }

    #[test]
    fn zero_one_encoding_members() {
        let mut s = Space::new();
        let v = vars(&mut s, 2);
        let pts = vec![vec![0, 0], vec![1, 0], vec![0, 1]];
        let c = zero_one_encoding(&pts, &v, &mut s);
        for xv in -1i64..=2 {
            for yv in -1i64..=2 {
                let expected = pts.contains(&vec![xv, yv]);
                let got = c.contains_point(&s, &|var| {
                    if var == v[0] {
                        Int::from(xv)
                    } else {
                        Int::from(yv)
                    }
                });
                assert_eq!(got, expected, "({xv},{yv})");
            }
        }
    }
}
