//! Simplification of arbitrary Presburger formulas to (disjoint)
//! disjunctive normal form (§2.5–§2.6, §4.5).
//!
//! The pipeline is the one the paper sketches: push the formula into
//! DNF clause by clause, eliminating existential quantifiers exactly as
//! they are encountered (so that negation only ever sees clauses whose
//! wildcards appear in stride constraints, which are negatable), prune
//! infeasible and subsumed clauses, optionally remove redundant
//! constraints with the complete test, and optionally convert the
//! result to *disjoint* DNF (§5).

use crate::conjunct::Conjunct;
use crate::eliminate::{eliminate, Shadow};
use crate::eqelim::solve_wildcard_equalities;
use crate::feasible::is_feasible;
use crate::formula::{Constraint, Formula};
use crate::redundant::{add_negated_stride, implies, remove_redundant};
use crate::space::{Space, VarId};
use presburger_arith::Int;
use presburger_trace::{self as trace, Counter};

/// A formula in disjunctive normal form: the union of its clauses.
#[derive(Clone, Debug, Default)]
pub struct Dnf {
    /// The clauses; their union is the denoted set.
    pub clauses: Vec<Conjunct>,
    /// Whether the clauses are known to be pairwise disjoint.
    pub disjoint: bool,
}

impl Dnf {
    /// The empty (false) DNF.
    pub fn empty() -> Dnf {
        Dnf {
            clauses: vec![],
            disjoint: true,
        }
    }

    /// Returns `true` if the DNF has no clauses (denotes ∅).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Membership test for a concrete point (wildcards are solved).
    pub fn contains_point(&self, space: &Space, assign: &dyn Fn(VarId) -> Int) -> bool {
        self.clauses.iter().any(|c| c.contains_point(space, assign))
    }

    /// Number of clauses containing the point — used by tests to verify
    /// disjointness.
    pub fn multiplicity(&self, space: &Space, assign: &dyn Fn(VarId) -> Int) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.contains_point(space, assign))
            .count()
    }

    /// Renders the DNF with variable names from `space`.
    pub fn to_string(&self, space: &Space) -> String {
        if self.clauses.is_empty() {
            return "FALSE".to_string();
        }
        self.clauses
            .iter()
            .map(|c| format!("{{ {} }}", c.to_string(space)))
            .collect::<Vec<_>>()
            .join(if self.disjoint { " + " } else { " v " })
    }
}

/// Options controlling [`simplify`].
#[derive(Clone, Copy, Debug)]
pub struct SimplifyOptions {
    /// Run the complete redundant-constraint elimination on each clause.
    pub complete_redundancy: bool,
    /// Drop clauses subsumed by other clauses.
    pub subset_pruning: bool,
    /// Convert the result to disjoint DNF (§5.3).
    pub disjoint: bool,
}

impl Default for SimplifyOptions {
    fn default() -> SimplifyOptions {
        SimplifyOptions {
            complete_redundancy: true,
            subset_pruning: true,
            disjoint: false,
        }
    }
}

impl SimplifyOptions {
    /// Options for disjoint DNF output.
    pub fn disjoint() -> SimplifyOptions {
        SimplifyOptions {
            disjoint: true,
            ..SimplifyOptions::default()
        }
    }
}

/// Simplifies an arbitrary Presburger formula to DNF (§2.6).
pub fn simplify(f: &Formula, space: &mut Space, opts: &SimplifyOptions) -> Dnf {
    let _span = trace::span("simplify");
    let mut clauses = to_dnf(f, space);
    trace::add(Counter::DnfClausesIn, clauses.len() as u64);
    // clean each clause
    let mut kept = Vec::new();
    for mut c in clauses.drain(..) {
        solve_wildcard_equalities(&mut c, space);
        if c.is_false() || !is_feasible(&c, space) {
            continue;
        }
        if opts.complete_redundancy {
            c = remove_redundant(&c, space);
            if c.is_false() {
                continue;
            }
        }
        kept.push(c);
    }
    if opts.subset_pruning {
        kept = prune_subsets(kept, space);
    }
    trace::add(Counter::DnfClausesClean, kept.len() as u64);
    trace::explain(|| format!("DNF cleanup: {} clause(s) kept", kept.len()));
    if opts.disjoint {
        let disjoint = crate::disjoint::make_disjoint(kept, space);
        trace::add(Counter::DnfClausesDisjoint, disjoint.len() as u64);
        trace::explain(|| format!("disjoint DNF: {} clause(s)", disjoint.len()));
        Dnf {
            clauses: disjoint,
            disjoint: true,
        }
    } else {
        let disjoint = kept.len() <= 1;
        Dnf {
            clauses: kept,
            disjoint,
        }
    }
}

/// Verifies the implication `p ⇒ q` between arbitrary Presburger
/// formulas (§2.4): `p ∧ ¬q` must be infeasible.
///
/// ```
/// use presburger_omega::{Affine, Formula, Space};
/// use presburger_omega::dnf::formula_implies;
///
/// let mut s = Space::new();
/// let x = s.var("x");
/// let p = Formula::between(Affine::constant(2), x, Affine::constant(5));
/// let q = Formula::between(Affine::constant(0), x, Affine::constant(9));
/// assert!(formula_implies(&p, &q, &mut s));
/// assert!(!formula_implies(&q, &p, &mut s));
/// ```
pub fn formula_implies(p: &Formula, q: &Formula, space: &mut Space) -> bool {
    let counterexample = Formula::and(vec![p.clone(), Formula::not(q.clone())]);
    let d = simplify(
        &counterexample,
        space,
        &SimplifyOptions {
            complete_redundancy: false,
            subset_pruning: false,
            disjoint: false,
        },
    );
    d.clauses.iter().all(|c| !is_feasible(c, space))
}

/// Verifies that two arbitrary Presburger formulas denote the same set
/// (§2.6 "simplify and/or verify arbitrary Presburger formulas").
pub fn formula_equivalent(p: &Formula, q: &Formula, space: &mut Space) -> bool {
    formula_implies(p, q, space) && formula_implies(q, p, space)
}

/// Drops clauses that are subsets of other clauses (§5.3 step 1).
pub fn prune_subsets(clauses: Vec<Conjunct>, space: &mut Space) -> Vec<Conjunct> {
    let mut kept: Vec<Conjunct> = Vec::new();
    'outer: for c in clauses {
        let mut i = 0;
        while i < kept.len() {
            if implies(&c, &kept[i], space) {
                continue 'outer; // c ⊆ kept[i]
            }
            if implies(&kept[i], &c, space) {
                kept.remove(i); // kept[i] ⊆ c
            } else {
                i += 1;
            }
        }
        kept.push(c);
    }
    kept
}

fn to_dnf(f: &Formula, space: &mut Space) -> Vec<Conjunct> {
    match f {
        Formula::True => vec![Conjunct::new()],
        Formula::False => vec![],
        Formula::Atom(c) => {
            let mut conj = Conjunct::new();
            match c {
                Constraint::Ge(e) => conj.add_geq(e.clone()),
                Constraint::Eq(e) => conj.add_eq(e.clone()),
                Constraint::Stride(m, e) => {
                    if !m.is_one() {
                        conj.add_stride(m.clone(), e.clone());
                    }
                }
            }
            vec![conj]
        }
        Formula::And(fs) => {
            let mut acc = vec![Conjunct::new()];
            for sub in fs {
                let sub_clauses = to_dnf(sub, space);
                acc = cross(&acc, &sub_clauses);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
        Formula::Or(fs) => {
            let mut acc = Vec::new();
            for sub in fs {
                acc.extend(to_dnf(sub, space));
            }
            acc
        }
        Formula::Not(g) => negate_dnf(&to_dnf(g, space), space),
        Formula::Exists(vs, g) => {
            // rename bound variables to fresh wildcards (capture-free)
            let mut body = (**g).clone();
            let mut fresh = Vec::new();
            for v in vs {
                let hint = space.name(*v).to_string();
                let w = space.fresh(&hint);
                body = body.substitute(*v, &crate::affine::Affine::var(w));
                fresh.push(w);
            }
            let mut clauses = to_dnf(&body, space);
            for c in &mut clauses {
                for w in &fresh {
                    c.add_wildcard(*w);
                }
            }
            clauses
        }
        Formula::Forall(vs, g) => {
            let inner = Formula::not((**g).clone());
            let f2 = Formula::not(Formula::exists(vs.clone(), inner));
            to_dnf(&f2, space)
        }
    }
}

fn cross(a: &[Conjunct], b: &[Conjunct]) -> Vec<Conjunct> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for ca in a {
        for cb in b {
            let mut c = ca.clone();
            c.and(cb);
            c.normalize();
            if !c.is_false() {
                // charged per clause *as the expansion happens* so a
                // governed run can trip mid-blowup (§2.5 is the
                // exponential step of DNF conversion)
                trace::bump(Counter::DnfWorkClauses);
                out.push(c);
            }
        }
    }
    out
}

/// Negates a union of clauses: `¬(∨ᵢ cᵢ) = ∧ᵢ ¬cᵢ`.
fn negate_dnf(clauses: &[Conjunct], space: &mut Space) -> Vec<Conjunct> {
    let mut acc = vec![Conjunct::new()];
    for c in clauses {
        let neg = negate_clause(c, space);
        acc = cross(&acc, &neg);
        // prune early: negation chains explode otherwise (§2.5)
        acc.retain(|cl| is_feasible(cl, space));
        if acc.is_empty() {
            break;
        }
    }
    acc
}

/// Negates a single clause, returning the disjunction of the negations
/// of its constraints (disjoint by construction, §5.3 step 4:
/// `¬c₁ + c₁∧¬c₂ + c₁∧c₂∧¬c₃ + …`).
///
/// Wildcards are projected out of the clause first so that only stride
/// constraints carry hidden quantifiers — and those negate exactly
/// (§3.2; the quasilinear-constraint approach of \[AI91\] was
/// incomplete here, per \[PW93a\]).
pub fn negate_clause(c: &Conjunct, space: &mut Space) -> Vec<Conjunct> {
    let parts = project_wildcards(c, space, Shadow::ExactOverlapping);
    // ¬(∨ parts) = ∧ ¬part
    let mut acc = vec![Conjunct::new()];
    for p in &parts {
        let neg = negate_stride_clause(p, space);
        acc = cross(&acc, &neg);
        acc.retain(|cl| is_feasible(cl, space));
        if acc.is_empty() {
            break;
        }
    }
    acc
}

/// Disjoint negation of a wildcard-free (up to strides) clause.
fn negate_stride_clause(c: &Conjunct, space: &mut Space) -> Vec<Conjunct> {
    let mut out = Vec::new();
    let mut prefix = Conjunct::new();
    for e in c.eqs() {
        // ¬(e = 0): e ≥ 1  or  e ≤ −1 (disjoint)
        let mut up = prefix.clone();
        let mut pe = e.clone();
        pe.add_constant(&Int::from(-1));
        up.add_geq(pe);
        out.push(up);
        let mut down = prefix.clone();
        let mut ne = -e;
        ne.add_constant(&Int::from(-1));
        down.add_geq(ne);
        out.push(down);
        prefix.add_eq(e.clone());
    }
    for e in c.geqs() {
        let mut neg = prefix.clone();
        let mut ne = -e;
        ne.add_constant(&Int::from(-1));
        neg.add_geq(ne);
        out.push(neg);
        prefix.add_geq(e.clone());
    }
    for (m, e) in c.strides() {
        let mut neg = prefix.clone();
        add_negated_stride(&mut neg, m, e, space);
        out.push(neg);
        prefix.add_stride(m.clone(), e.clone());
    }
    for o in &mut out {
        o.normalize();
    }
    out.retain(|o| !o.is_false());
    out
}

/// Projects all wildcards out of a clause, producing a disjunction of
/// clauses whose wildcards (if any) occur only inside stride
/// constraints' implicit quantifiers. This converts the paper's
/// *projected format* into *stride format* (§2.1).
pub fn project_wildcards(c: &Conjunct, space: &mut Space, mode: Shadow) -> Vec<Conjunct> {
    const FUEL: u64 = 2000;
    let mut work = vec![c.clone()];
    let mut out = Vec::new();
    let mut fuel = FUEL;
    while let Some(mut c) = work.pop() {
        fuel -= 1;
        if fuel == 0 {
            // Input-reachable (pathological wildcard systems splinter
            // here): unwind as a budget trip so the counting pipeline
            // reports a structured error — or degrades to §4.6 bounds
            // — instead of aborting.
            trace::govern::trip("wildcard_projection_fuel", FUEL, FUEL);
        }
        solve_wildcard_equalities(&mut c, space);
        if c.is_false() {
            continue;
        }
        // wildcard in an inequality: Fourier-eliminate it
        if let Some(w) = c
            .wildcards()
            .iter()
            .copied()
            .find(|w| c.geqs().iter().any(|e| e.mentions(*w)))
        {
            let r = eliminate(&c, w, space, mode);
            work.extend(r.clauses);
            continue;
        }
        // wildcard in several strides (and nowhere else): convert the
        // strides to equalities so the equality solver can merge them
        if c.wildcards()
            .iter()
            .any(|w| c.strides().iter().filter(|(_, e)| e.mentions(*w)).count() >= 2)
        {
            c.stride_to_wildcard(space);
            work.push(c);
            continue;
        }
        // remaining wildcards occur in at most one stride each; the
        // normalization rule folds them into the stride's modulus.
        c.normalize();
        if !c.is_false() {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;

    #[test]
    fn simplify_box_union() {
        let mut s = Space::new();
        let x = s.var("x");
        // (1 <= x <= 3) v (2 <= x <= 5)  — overlapping boxes
        let f = Formula::or(vec![
            Formula::between(Affine::constant(1), x, Affine::constant(3)),
            Formula::between(Affine::constant(2), x, Affine::constant(5)),
        ]);
        let d = simplify(&f, &mut s, &SimplifyOptions::default());
        for xv in -1i64..=7 {
            assert_eq!(
                d.contains_point(&s, &|_| Int::from(xv)),
                (1..=5).contains(&xv),
                "x={xv}"
            );
        }
        // disjoint version must not double-count
        let d = simplify(&f, &mut s, &SimplifyOptions::disjoint());
        for xv in 1i64..=5 {
            assert_eq!(d.multiplicity(&s, &|_| Int::from(xv)), 1, "x={xv}");
        }
    }

    #[test]
    fn negation_of_conjunction() {
        let mut s = Space::new();
        let x = s.var("x");
        // ¬(2 <= x <= 5)
        let f = Formula::not(Formula::between(
            Affine::constant(2),
            x,
            Affine::constant(5),
        ));
        let d = simplify(&f, &mut s, &SimplifyOptions::default());
        for xv in -4i64..=9 {
            assert_eq!(
                d.contains_point(&s, &|_| Int::from(xv)),
                !(2..=5).contains(&xv),
                "x={xv}"
            );
        }
    }

    #[test]
    fn negation_of_stride() {
        let mut s = Space::new();
        let x = s.var("x");
        let f = Formula::not(Formula::stride(3, Affine::var(x)));
        let d = simplify(&f, &mut s, &SimplifyOptions::default());
        for xv in -7i64..=7 {
            assert_eq!(
                d.contains_point(&s, &|_| Int::from(xv)),
                xv.rem_euclid(3) != 0,
                "x={xv}"
            );
        }
    }

    #[test]
    fn exists_projection_with_strides() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        // ∃y: x = 2y ∧ 1 ≤ y ≤ 4  ≡  x ∈ {2,4,6,8}
        let f = Formula::exists(
            vec![y],
            Formula::and(vec![
                Formula::eq(Affine::var(x), Affine::term(y, 2)),
                Formula::between(Affine::constant(1), y, Affine::constant(4)),
            ]),
        );
        let d = simplify(&f, &mut s, &SimplifyOptions::default());
        for xv in -1i64..=10 {
            assert_eq!(
                d.contains_point(&s, &|_| Int::from(xv)),
                [2, 4, 6, 8].contains(&xv),
                "x={xv}"
            );
        }
    }

    #[test]
    fn forall_via_double_negation() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        // ∀y: (1 ≤ y ≤ 3) → (y ≤ x)   ≡   x ≥ 3
        let f = Formula::forall(
            vec![y],
            Formula::implies(
                Formula::between(Affine::constant(1), y, Affine::constant(3)),
                Formula::le(Affine::var(y), Affine::var(x)),
            ),
        );
        let d = simplify(&f, &mut s, &SimplifyOptions::default());
        for xv in -2i64..=6 {
            assert_eq!(d.contains_point(&s, &|_| Int::from(xv)), xv >= 3, "x={xv}");
        }
    }

    #[test]
    fn formula_verification() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        // (∃y: x = 2y ∧ 0 ≤ y ≤ 5)  ⇒  (0 ≤ x ≤ 10)
        let p = Formula::exists(
            vec![y],
            Formula::and(vec![
                Formula::eq(Affine::var(x), Affine::term(y, 2)),
                Formula::between(Affine::constant(0), y, Affine::constant(5)),
            ]),
        );
        let q = Formula::between(Affine::constant(0), x, Affine::constant(10));
        assert!(formula_implies(&p, &q, &mut s));
        assert!(!formula_implies(&q, &p, &mut s)); // odd x break it
                                                   // equivalence: the two stride representations of "even in 0..10"
        let r = Formula::and(vec![
            Formula::between(Affine::constant(0), x, Affine::constant(10)),
            Formula::stride(2, Affine::var(x)),
        ]);
        assert!(formula_equivalent(&p, &r, &mut s));
    }

    #[test]
    fn equivalence_distinguishes_strides() {
        let mut s = Space::new();
        let x = s.var("x");
        let in_box = Formula::between(Affine::constant(0), x, Affine::constant(11));
        let twos = Formula::and(vec![in_box.clone(), Formula::stride(2, Affine::var(x))]);
        let fours = Formula::and(vec![in_box, Formula::stride(4, Affine::var(x))]);
        assert!(formula_implies(&fours, &twos, &mut s));
        assert!(!formula_equivalent(&fours, &twos, &mut s));
    }

    #[test]
    fn paper_section_26_example() {
        // 1≤i≤2n ∧ 1≤i'≤2n ∧ i=i' ∧
        //   (¬∃i'',j: 1≤i''≤2n ∧ 1≤j≤n−1 ∧ i<i'' ∧ i''=i' ∧ 2j=i'')
        //   ∧ (¬∃i'',j: 1≤i''≤2n ∧ 1≤j≤n−1 ∧ i<i'' ∧ i''=i' ∧ 2j+1=i'')
        // simplifies to (1=i'=i≤n... ) — we verify pointwise equality
        // with the paper's reported simplification
        // (1 ≤ i = i' ≤ 2n ∧ nothing-after) ≡ (i = i' = 2n ∧ 1≤n) ∨ (i=i'=2n−1 ∧ 1≤n)…
        // Rather than trusting a transcription, compare against brute force.
        let mut s = Space::new();
        let i = s.var("i");
        let ip = s.var("ip");
        let n = s.var("n");
        let i2 = s.var("i2");
        let j = s.var("j");
        let base = |s2: &mut Space| {
            let _ = s2;
            Formula::and(vec![
                Formula::between(Affine::constant(1), i, Affine::term(n, 2)),
                Formula::between(Affine::constant(1), ip, Affine::term(n, 2)),
                Formula::eq(Affine::var(i), Affine::var(ip)),
            ])
        };
        let inner = |parity: i64| {
            Formula::exists(
                vec![i2, j],
                Formula::and(vec![
                    Formula::between(Affine::constant(1), i2, Affine::term(n, 2)),
                    Formula::between(
                        Affine::constant(1),
                        j,
                        Affine::term(n, 1) - Affine::constant(1),
                    ),
                    Formula::lt(Affine::var(i), Affine::var(i2)),
                    Formula::eq(Affine::var(i2), Affine::var(ip)),
                    Formula::eq(
                        Affine::term(j, 2) + Affine::constant(parity),
                        Affine::var(i2),
                    ),
                ]),
            )
        };
        let f = Formula::and(vec![
            base(&mut s),
            Formula::not(inner(0)),
            Formula::not(inner(1)),
        ]);
        let d = simplify(&f, &mut s, &SimplifyOptions::default());
        // brute-force reference over small n
        for nv in 0i64..=4 {
            for iv in 0..=2 * nv + 1 {
                for ipv in 0..=2 * nv + 1 {
                    let base_ok = 1 <= iv && iv <= 2 * nv && 1 <= ipv && ipv <= 2 * nv && iv == ipv;
                    let blocked = (1..=2 * nv).any(|i2v| {
                        (1..=nv - 1).any(|jv| {
                            iv < i2v && i2v == ipv && (2 * jv == i2v || 2 * jv + 1 == i2v)
                        })
                    });
                    let expected = base_ok && !blocked;
                    let got = d.contains_point(&s, &|v| {
                        if v == i {
                            Int::from(iv)
                        } else if v == ip {
                            Int::from(ipv)
                        } else {
                            Int::from(nv)
                        }
                    });
                    assert_eq!(got, expected, "n={nv} i={iv} i'={ipv}");
                }
            }
        }
    }
}
