//! Structurally-hashed interning arena for affine terms and conjuncts.
//!
//! The counting pipeline keeps re-encountering structurally identical
//! sub-objects: the same affine bound shows up in every splinter of a
//! clause, and under heavy similar traffic the same conjunct arrives in
//! request after request. The [`Arena`] gives each distinct structure
//! one small, copyable handle ([`TermId`] / [`ConjId`]) plus a cached
//! canonical byte encoding ([`Arena::term_key`] / [`Arena::conj_key`])
//! — the exact bytes the memo layer (`presburger_trace::memo`) and the
//! serving result cache key on.
//!
//! Structural hashing is by canonical encoding: two objects intern to
//! the same handle **iff** their `push_key_bytes` encodings agree,
//! which (the encodings being injective) is iff they are structurally
//! equal. The handles themselves are arena-local and must never leak
//! into memo keys — only the canonical bytes are stable across
//! threads, requests, and processes.
//!
//! Each thread owns one arena ([`with_arena`]); entries are immortal
//! within it (handles are never invalidated) and the whole arena is
//! dropped wholesale by [`clear`] when a size cap is exceeded — the
//! same no-stale-entries invalidation story as the memo tables, see
//! DESIGN.md §13.

use crate::affine::Affine;
use crate::conjunct::Conjunct;
use crate::formula::{Constraint, Formula};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to an interned affine term in a thread's [`Arena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

/// Handle to an interned conjunct in a thread's [`Arena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConjId(u32);

/// Entries per thread arena before it is dropped wholesale.
const ARENA_MAX_ENTRIES: usize = 1 << 16;

/// A structurally-hashed interning arena: one handle and one cached
/// canonical encoding per distinct structure.
#[derive(Default)]
pub struct Arena {
    term_ids: HashMap<Arc<[u8]>, TermId>,
    terms: Vec<(Affine, Arc<[u8]>)>,
    conj_ids: HashMap<Arc<[u8]>, ConjId>,
    conjs: Vec<(Conjunct, Arc<[u8]>)>,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Interns `e`, returning its handle. Structurally equal terms get
    /// equal handles; distinct structures get distinct handles.
    pub fn intern_term(&mut self, e: &Affine) -> TermId {
        let mut bytes = Vec::with_capacity(16);
        e.push_key_bytes(&mut bytes);
        let key: Arc<[u8]> = Arc::from(bytes);
        if let Some(&id) = self.term_ids.get(&key) {
            return id;
        }
        if self.terms.len() >= ARENA_MAX_ENTRIES {
            self.term_ids.clear();
            self.terms.clear();
        }
        let id = TermId(self.terms.len() as u32);
        self.term_ids.insert(key.clone(), id);
        self.terms.push((e.clone(), key));
        id
    }

    /// Interns `c`, returning its handle.
    pub fn intern_conj(&mut self, c: &Conjunct) -> ConjId {
        let mut bytes = Vec::with_capacity(64);
        c.push_key_bytes(&mut bytes);
        let key: Arc<[u8]> = Arc::from(bytes);
        if let Some(&id) = self.conj_ids.get(&key) {
            return id;
        }
        if self.conjs.len() >= ARENA_MAX_ENTRIES {
            self.conj_ids.clear();
            self.conjs.clear();
        }
        let id = ConjId(self.conjs.len() as u32);
        self.conj_ids.insert(key.clone(), id);
        self.conjs.push((c.clone(), key));
        id
    }

    /// The interned term behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different arena generation.
    pub fn term(&self, id: TermId) -> &Affine {
        &self.terms[id.0 as usize].0
    }

    /// The interned conjunct behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different arena generation.
    pub fn conj(&self, id: ConjId) -> &Conjunct {
        &self.conjs[id.0 as usize].0
    }

    /// The cached canonical encoding of the term behind `id` — the
    /// stable bytes to build memo/cache keys from (never the handle).
    pub fn term_key(&self, id: TermId) -> &Arc<[u8]> {
        &self.terms[id.0 as usize].1
    }

    /// The cached canonical encoding of the conjunct behind `id`.
    pub fn conj_key(&self, id: ConjId) -> &Arc<[u8]> {
        &self.conjs[id.0 as usize].1
    }

    /// Number of distinct terms interned.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of distinct conjuncts interned.
    pub fn num_conjs(&self) -> usize {
        self.conjs.len()
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::new());
}

/// Runs `f` with the current thread's arena.
pub fn with_arena<R>(f: impl FnOnce(&mut Arena) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// Drops the current thread's arena wholesale (handles from before this
/// call must not be dereferenced afterwards).
pub fn clear() {
    ARENA.with(|a| *a.borrow_mut() = Arena::new());
}

/// Interns a conjunct in the thread arena and returns its canonical key
/// bytes — the common one-shot path for memo keying.
pub fn conj_key_bytes(c: &Conjunct) -> Arc<[u8]> {
    with_arena(|a| {
        let id = a.intern_conj(c);
        a.conj_key(id).clone()
    })
}

/// Appends a canonical byte encoding of `f` to `out`: a tag per node,
/// children length-prefixed, atoms via the affine/Int encoders, and
/// quantifier binders as raw `VarId` indices. Injective over formulas
/// in the same space, stable across threads and processes.
pub fn formula_push_key_bytes(f: &Formula, out: &mut Vec<u8>) {
    match f {
        Formula::True => out.push(0),
        Formula::False => out.push(1),
        Formula::Atom(c) => {
            out.push(2);
            constraint_push_key_bytes(c, out);
        }
        Formula::And(parts) => {
            out.push(3);
            out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
            for p in parts {
                formula_push_key_bytes(p, out);
            }
        }
        Formula::Or(parts) => {
            out.push(4);
            out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
            for p in parts {
                formula_push_key_bytes(p, out);
            }
        }
        Formula::Not(p) => {
            out.push(5);
            formula_push_key_bytes(p, out);
        }
        Formula::Exists(vs, p) => {
            out.push(6);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                out.extend_from_slice(&(v.index() as u32).to_le_bytes());
            }
            formula_push_key_bytes(p, out);
        }
        Formula::Forall(vs, p) => {
            out.push(7);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                out.extend_from_slice(&(v.index() as u32).to_le_bytes());
            }
            formula_push_key_bytes(p, out);
        }
    }
}

/// Appends a canonical byte encoding of an atomic constraint.
pub fn constraint_push_key_bytes(c: &Constraint, out: &mut Vec<u8>) {
    match c {
        Constraint::Ge(e) => {
            out.push(0);
            e.push_key_bytes(out);
        }
        Constraint::Eq(e) => {
            out.push(1);
            e.push_key_bytes(out);
        }
        Constraint::Stride(m, e) => {
            out.push(2);
            m.push_key_bytes(out);
            e.push_key_bytes(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;
    use proptest::prelude::*;

    fn affine_of(pairs: &[(u32, i64)], c: i64, s: &mut Space) -> Affine {
        let vars: Vec<_> = (0..8).map(|i| s.var(&format!("x{i}"))).collect();
        let terms: Vec<_> = pairs
            .iter()
            .map(|&(v, k)| (vars[v as usize % 8], k))
            .collect();
        Affine::from_terms(&terms, c)
    }

    #[test]
    fn equal_terms_same_id_unequal_distinct() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let a = Affine::from_terms(&[(x, 2), (y, -1)], 3);
        let b = Affine::from_terms(&[(y, -1), (x, 2)], 3); // same structure
        let c = Affine::from_terms(&[(x, 2), (y, -1)], 4); // differs in constant
        let mut arena = Arena::new();
        let ia = arena.intern_term(&a);
        let ib = arena.intern_term(&b);
        let ic = arena.intern_term(&c);
        assert_eq!(ia, ib, "structurally equal terms share a handle");
        assert_ne!(ia, ic, "distinct structures get distinct handles");
        assert_eq!(arena.num_terms(), 2);
        assert_eq!(arena.term(ia), &a);
        assert_eq!(arena.term_key(ia), arena.term_key(ib));
    }

    #[test]
    fn conjunct_interning_is_canonical() {
        let mut s = Space::new();
        let x = s.var("x");
        let mut c1 = Conjunct::new();
        c1.add_geq(Affine::var(x) - Affine::constant(1));
        let mut c2 = c1.clone();
        c2.normalize();
        c1.normalize();
        let mut arena = Arena::new();
        let i1 = arena.intern_conj(&c1);
        let i2 = arena.intern_conj(&c2);
        assert_eq!(i1, i2);
        let mut c3 = Conjunct::new();
        c3.add_geq(Affine::var(x) - Affine::constant(2));
        c3.normalize();
        assert_ne!(arena.intern_conj(&c3), i1);
    }

    #[test]
    fn formula_keys_distinguish_structure() {
        let mut s = Space::new();
        let x = s.var("x");
        let atom = Formula::ge(Affine::var(x));
        let enc = |f: &Formula| {
            let mut b = Vec::new();
            formula_push_key_bytes(f, &mut b);
            b
        };
        let and = Formula::and(vec![atom.clone(), atom.clone()]);
        let or = Formula::or(vec![atom.clone(), atom.clone()]);
        assert_ne!(enc(&and), enc(&or), "And/Or tags differ");
        assert_eq!(enc(&and), enc(&and.clone()));
        let not = Formula::Not(Box::new(atom.clone()));
        assert_ne!(enc(&atom), enc(&not));
    }

    proptest! {
        /// Interning is canonical: handles are equal iff the terms are
        /// structurally equal.
        #[test]
        fn intern_canonical(a in proptest::collection::vec((0u32..8, -9i64..9), 0..5),
                            ca in -20i64..20,
                            b in proptest::collection::vec((0u32..8, -9i64..9), 0..5),
                            cb in -20i64..20)
        {
            let mut s = Space::new();
            let ea = affine_of(&a, ca, &mut s);
            let mut s2 = Space::new();
            let eb = affine_of(&b, cb, &mut s2);
            let mut arena = Arena::new();
            let ia = arena.intern_term(&ea);
            let ib = arena.intern_term(&eb);
            prop_assert_eq!(ia == ib, ea == eb);
            // and re-interning is stable
            prop_assert_eq!(arena.intern_term(&ea), ia);
            prop_assert_eq!(arena.intern_term(&eb), ib);
        }
    }
}
