//! The Omega test (§2): integer linear constraint manipulation for the
//! `presburger` workspace.
//!
//! This crate implements the constraint substrate of Pugh's *Counting
//! Solutions to Presburger Formulas* (PLDI 1994):
//!
//! * [`Space`] / [`VarId`] — variable interning;
//! * [`Affine`] — affine integer expressions;
//! * [`Formula`] — the Presburger AST with [`Desugar`] for floors,
//!   ceilings and mods (§3);
//! * [`Conjunct`] — conjunctions with wildcards and strides (the
//!   stride/projected formats of §2.1);
//! * [`eliminate`](eliminate::eliminate) — real/dark shadow and exact
//!   splintered elimination, overlapping and disjoint (Fig. 1, §5.2);
//! * [`feasible`](feasible::is_feasible) — the complete integer
//!   satisfiability test (§2.2);
//! * [`redundant`] — redundant-constraint removal, `gist`, implication
//!   verification (§2.3–§2.4);
//! * [`dnf`](dnf::simplify) — simplification of arbitrary formulas to
//!   (disjoint) DNF (§2.5–§2.6, §5.3);
//! * [`hull`] — uniformly-generated-set summarization (§5.1);
//! * [`parse_formula`] — a text syntax for formulas, in the spirit of
//!   the Omega project's calculator.
//!
//! # Example
//!
//! ```
//! use presburger_omega::{Affine, Formula, Space};
//! use presburger_omega::dnf::{simplify, SimplifyOptions};
//!
//! let mut s = Space::new();
//! let x = s.var("x");
//! let y = s.var("y");
//! // ∃y : x = 2y ∧ 1 ≤ y ≤ 4   —   the even numbers 2..=8
//! let f = Formula::exists(vec![y], Formula::and(vec![
//!     Formula::eq(Affine::var(x), Affine::term(y, 2)),
//!     Formula::between(Affine::constant(1), y, Affine::constant(4)),
//! ]));
//! let d = simplify(&f, &mut s, &SimplifyOptions::default());
//! assert!(d.contains_point(&s, &|_| presburger_arith::Int::from(6)));
//! assert!(!d.contains_point(&s, &|_| presburger_arith::Int::from(5)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod conjunct;
pub mod disjoint;
pub mod dnf;
pub mod eliminate;
pub mod eqelim;
pub mod feasible;
mod formula;
pub mod hull;
pub mod intern;
mod parse;
pub mod redundant;
mod space;

pub use affine::Affine;
pub use conjunct::{Bound, Conjunct};
pub use dnf::{Dnf, SimplifyOptions};
pub use formula::{Constraint, Desugar, Formula};
pub use parse::{parse_affine, parse_formula, ParseError, ParseFormulaError};
pub use space::{Space, VarId};
