//! Variable interning.
//!
//! Every formula, constraint and polynomial in the workspace refers to
//! variables through small integer [`VarId`]s interned in a [`Space`].
//! The space records the human-readable name of each variable; *roles*
//! (symbolic constant vs. counted variable vs. clause-local wildcard)
//! are decided by the operations that consume the ids, not by the space.
//!
//! # Forking
//!
//! A space can be [forked](Space::fork): the child sees every variable
//! the parent had at fork time and allocates any *new* ids from a block
//! of the id range disjoint from the parent's (and from every sibling's).
//! Ids therefore never collide between a parent and its forks, which
//! lets independent tasks intern fresh variables concurrently without
//! sharing `&mut` access to one space. Because the blocks are carved
//! deterministically (by fork order, not by scheduling), the ids a task
//! allocates are a pure function of the fork tree — the foundation of
//! the counting engine's any-thread-count determinism. Re-uniting a
//! child is a conflict-free union ([`Space::adopt`]): no renumbering
//! ever happens.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an interned variable. Ordered by creation within one
/// space; fork blocks order after the densely allocated prefix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index of this variable within its [`Space`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An interner mapping variable names to [`VarId`]s.
///
/// ```
/// use presburger_omega::Space;
///
/// let mut space = Space::new();
/// let n = space.var("n");
/// assert_eq!(space.var("n"), n);       // interning is idempotent
/// assert_eq!(space.name(n), "n");
/// ```
#[derive(Clone, Debug)]
pub struct Space {
    /// Names of the densely allocated prefix: ids `0..names.len()`.
    names: Vec<String>,
    /// Names of ids allocated inside fork blocks (sparse).
    forked: BTreeMap<u32, String>,
    fresh_counter: u32,
    /// The next id this space hands out.
    next: u32,
    /// Exclusive end of the id range this space may allocate from.
    hi: u32,
}

impl Default for Space {
    fn default() -> Space {
        Space {
            names: Vec::new(),
            forked: BTreeMap::new(),
            fresh_counter: 0,
            next: 0,
            hi: u32::MAX,
        }
    }
}

impl Space {
    /// Creates an empty space.
    pub fn new() -> Space {
        Space::default()
    }

    fn alloc(&mut self, name: String) -> VarId {
        assert!(
            self.next < self.hi,
            "Space: variable id range exhausted (too many forks or fresh variables)"
        );
        let id = self.next;
        self.next += 1;
        if id as usize == self.names.len() {
            self.names.push(name);
        } else {
            self.forked.insert(id, name);
        }
        VarId(id)
    }

    /// Interns `name`, returning its id (existing or new).
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(v) = self.lookup(name) {
            v
        } else {
            self.alloc(name.to_string())
        }
    }

    /// Alias of [`Space::var`] that reads better when declaring symbolic
    /// constants.
    pub fn symbol(&mut self, name: &str) -> VarId {
        self.var(name)
    }

    /// Looks up a variable by name without interning. When forks have
    /// introduced duplicate names, the lowest id wins.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return Some(VarId(i as u32));
        }
        self.forked
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(&id, _)| VarId(id))
    }

    /// Creates a fresh variable guaranteed not to collide with any
    /// existing name *in this space*. Used for wildcards introduced
    /// during elimination. Sibling forks may coin the same display name
    /// for different ids; identity is always the id.
    pub fn fresh(&mut self, hint: &str) -> VarId {
        loop {
            self.fresh_counter += 1;
            let name = format!("{hint}${}", self.fresh_counter);
            if self.lookup(&name).is_none() {
                return self.alloc(name);
            }
        }
    }

    /// Splits off a child space that shares every variable interned so
    /// far and allocates new ids from a block disjoint from the
    /// parent's remaining range. Equivalent to `fork_many(1)`.
    pub fn fork(&mut self) -> Space {
        self.fork_many(1)
            .pop()
            .expect("fork_many(1) yields one child")
    }

    /// Splits off `k` child spaces with pairwise disjoint allocation
    /// blocks (each also disjoint from the parent's remaining range).
    /// The carve depends only on this space's state and `k` — never on
    /// scheduling — so repeated runs produce identical ids.
    ///
    /// # Panics
    ///
    /// Panics if the remaining id range is too small to carve `k`
    /// useful blocks (requires pathologically deep fork nesting).
    pub fn fork_many(&mut self, k: usize) -> Vec<Space> {
        if k == 0 {
            return Vec::new();
        }
        // Keep the lower half of the unallocated range for ourselves;
        // slice the upper half evenly among the children.
        let avail = self.hi - self.next;
        let mid = self.next + avail / 2;
        let slice = (self.hi - mid) / k as u32;
        assert!(
            slice >= 2,
            "Space: id range exhausted by forking ({k} children from {avail} free ids)"
        );
        let children = (0..k as u32)
            .map(|i| Space {
                names: self.names.clone(),
                forked: self.forked.clone(),
                fresh_counter: self.fresh_counter,
                next: mid + i * slice,
                hi: mid + (i + 1) * slice,
            })
            .collect();
        self.hi = mid;
        children
    }

    /// Re-unites a fork: records the child's block-allocated names so
    /// this space can resolve ids the child created. Blocks are
    /// disjoint by construction, so this is a conflict-free union — no
    /// id is ever renumbered (the "merge is a no-op" guarantee).
    pub fn adopt(&mut self, child: &Space) {
        for (id, name) in &child.forked {
            self.forked.entry(*id).or_insert_with(|| name.clone());
        }
    }

    /// Unions another space into this one, for combining results that
    /// stem from the same base space.
    ///
    /// # Panics
    ///
    /// Panics if the spaces disagree on the name of a shared id.
    pub fn absorb(&mut self, other: &Space) {
        let shared = self.names.len().min(other.names.len());
        for i in 0..shared {
            assert_eq!(
                self.names[i], other.names[i],
                "Space::absorb: spaces disagree on variable v{i}"
            );
        }
        if other.names.len() > self.names.len() {
            let was_dense = self.next as usize == self.names.len();
            self.names
                .extend(other.names[self.names.len()..].iter().cloned());
            if was_dense {
                self.next = self.names.len() as u32;
            }
        }
        for (id, name) in &other.forked {
            match self.forked.get(id) {
                Some(existing) => assert_eq!(
                    existing, name,
                    "Space::absorb: spaces disagree on variable v{id}"
                ),
                None => {
                    self.forked.insert(*id, name.clone());
                }
            }
        }
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this space (or a fork it has
    /// since [adopted](Space::adopt)).
    pub fn name(&self, v: VarId) -> &str {
        if v.index() < self.names.len() {
            &self.names[v.index()]
        } else {
            self.forked
                .get(&v.0)
                .unwrap_or_else(|| panic!("VarId v{} is unknown to this space", v.0))
        }
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len() + self.forked.len()
    }

    /// Returns `true` if no variables have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty() && self.forked.is_empty()
    }

    /// Iterates over all interned variable ids, densely allocated ids
    /// first, then fork-block ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len() as u32)
            .chain(self.forked.keys().copied())
            .map(VarId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut s = Space::new();
        let a = s.var("a");
        let b = s.var("b");
        assert_ne!(a, b);
        assert_eq!(s.var("a"), a);
        assert_eq!(s.lookup("b"), Some(b));
        assert_eq!(s.lookup("zz"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn fresh_never_collides() {
        let mut s = Space::new();
        s.var("w$1");
        let f = s.fresh("w");
        assert_ne!(s.name(f), "w$1");
        let g = s.fresh("w");
        assert_ne!(f, g);
    }

    #[test]
    fn iteration_order_is_creation_order() {
        let mut s = Space::new();
        let ids: Vec<VarId> = ["x", "y", "z"].iter().map(|n| s.var(n)).collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn forks_allocate_disjoint_ids() {
        let mut s = Space::new();
        let n = s.var("n");
        let mut kids = s.fork_many(3);
        let parent_new = s.fresh("p");
        let mut seen = vec![parent_new];
        for k in &mut kids {
            assert_eq!(k.name(n), "n"); // inherited
            let a = k.fresh("w");
            let b = k.var("brand-new");
            seen.push(a);
            seen.push(b);
        }
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "ids collided: {seen:?}");
    }

    #[test]
    fn fork_carve_is_deterministic() {
        let build = || {
            let mut s = Space::new();
            s.var("n");
            let mut kids = s.fork_many(4);
            kids.iter_mut()
                .map(|k| (k.fresh("w"), k.fresh("t")))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn adopt_makes_child_names_resolvable() {
        let mut s = Space::new();
        s.var("n");
        let mut child = s.fork();
        let w = child.fresh("w");
        let name = child.name(w).to_string();
        s.adopt(&child);
        assert_eq!(s.name(w), name);
        assert_eq!(s.lookup(&name), Some(w));
        assert_eq!(s.len(), 2);
        assert!(s.iter().any(|v| v == w));
    }

    #[test]
    fn nested_forks_stay_disjoint() {
        let mut s = Space::new();
        s.var("n");
        let mut child = s.fork();
        let grandkids = child.fork_many(2);
        let mut ids: Vec<VarId> = Vec::new();
        ids.push(s.fresh("a"));
        ids.push(child.fresh("b"));
        for mut g in grandkids {
            ids.push(g.fresh("c"));
        }
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "ids collided: {ids:?}");
    }

    #[test]
    fn absorb_unions_names() {
        let mut base = Space::new();
        base.var("n");
        let mut a = base.clone();
        let mut b = base.clone();
        let x = a.var("x");
        let y = b.fork().fresh("y"); // fork id, unknown to `a`
        let mut b2 = base.clone();
        let child = {
            let mut c = b2.fork();
            let got = c.fresh("y");
            assert_eq!(got, y); // deterministic carve
            c
        };
        b2.adopt(&child);
        a.absorb(&b2);
        assert_eq!(a.name(x), "x");
        assert!(a.name(y).starts_with("y$"));
    }

    #[test]
    #[should_panic(expected = "unknown to this space")]
    fn foreign_fork_id_panics() {
        let mut s = Space::new();
        let mut child = s.fork();
        let w = child.fresh("w");
        s.name(w); // never adopted
    }
}
