//! Variable interning.
//!
//! Every formula, constraint and polynomial in the workspace refers to
//! variables through small integer [`VarId`]s interned in a [`Space`].
//! The space records the human-readable name of each variable; *roles*
//! (symbolic constant vs. counted variable vs. clause-local wildcard)
//! are decided by the operations that consume the ids, not by the space.

use std::fmt;

/// Identifier of an interned variable. Ordered by creation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index of this variable within its [`Space`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An interner mapping variable names to [`VarId`]s.
///
/// ```
/// use presburger_omega::Space;
///
/// let mut space = Space::new();
/// let n = space.var("n");
/// assert_eq!(space.var("n"), n);       // interning is idempotent
/// assert_eq!(space.name(n), "n");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Space {
    names: Vec<String>,
    fresh_counter: u32,
}

impl Space {
    /// Creates an empty space.
    pub fn new() -> Space {
        Space::default()
    }

    /// Interns `name`, returning its id (existing or new).
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            VarId(i as u32)
        } else {
            self.names.push(name.to_string());
            VarId((self.names.len() - 1) as u32)
        }
    }

    /// Alias of [`Space::var`] that reads better when declaring symbolic
    /// constants.
    pub fn symbol(&mut self, name: &str) -> VarId {
        self.var(name)
    }

    /// Looks up a variable by name without interning.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// Creates a fresh variable guaranteed not to collide with any
    /// existing name. Used for wildcards introduced during elimination.
    pub fn fresh(&mut self, hint: &str) -> VarId {
        loop {
            self.fresh_counter += 1;
            let name = format!("{hint}${}", self.fresh_counter);
            if self.lookup(&name).is_none() {
                self.names.push(name);
                return VarId((self.names.len() - 1) as u32);
            }
        }
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this space.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no variables have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned variable ids.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len()).map(|i| VarId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut s = Space::new();
        let a = s.var("a");
        let b = s.var("b");
        assert_ne!(a, b);
        assert_eq!(s.var("a"), a);
        assert_eq!(s.lookup("b"), Some(b));
        assert_eq!(s.lookup("zz"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn fresh_never_collides() {
        let mut s = Space::new();
        s.var("w$1");
        let f = s.fresh("w");
        assert_ne!(s.name(f), "w$1");
        let g = s.fresh("w");
        assert_ne!(f, g);
    }

    #[test]
    fn iteration_order_is_creation_order() {
        let mut s = Space::new();
        let ids: Vec<VarId> = ["x", "y", "z"].iter().map(|n| s.var(n)).collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), ids);
    }
}
