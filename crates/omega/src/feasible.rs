//! Complete integer feasibility test (§2.2).
//!
//! Treats every variable of the conjunct as existentially quantified
//! and eliminates them one by one. Equalities are eliminated exactly;
//! inequalities go through the dark shadow first (if the dark shadow is
//! feasible, so is the original problem) and fall back to the exact
//! splinters only when needed.

use crate::conjunct::Conjunct;
use crate::eliminate::{eliminate, Shadow};
use crate::space::{Space, VarId};

/// Decides whether the conjunct has an integer solution (over **all**
/// its variables, wildcards and free variables alike).
///
/// ```
/// use presburger_omega::{Affine, Conjunct, Space};
/// use presburger_omega::feasible::is_feasible;
///
/// let mut s = Space::new();
/// let x = s.var("x");
/// let mut c = Conjunct::new();
/// c.add_geq(Affine::from_terms(&[(x, 2)], -3)); // 2x >= 3
/// c.add_geq(Affine::from_terms(&[(x, -2)], 4)); // 2x <= 4
/// assert!(is_feasible(&c, &mut s)); // x = 2
/// ```
pub fn is_feasible(c: &Conjunct, space: &mut Space) -> bool {
    presburger_trace::bump(presburger_trace::Counter::FeasibilityChecks);
    let mut work: Vec<Conjunct> = vec![c.clone()];
    let mut fuel: usize = 200_000;
    while let Some(mut c) = work.pop() {
        fuel = fuel.saturating_sub(1);
        assert!(fuel > 0, "feasibility test exhausted its work budget");
        c.normalize();
        if c.is_false() {
            continue;
        }
        let vars: Vec<VarId> = c.mentioned_vars().into_iter().collect();
        if vars.is_empty() {
            // normalization already verified all constant constraints
            return true;
        }
        let v = pick_variable(&c, &vars);
        let r = eliminate(&c, v, space, Shadow::ExactOverlapping);
        // Check cheap clauses first: the dark shadow (or the single
        // exact clause) is pushed last so it is popped first.
        for cl in r.clauses.into_iter().rev() {
            work.push(cl);
        }
    }
    false
}

/// Chooses the cheapest variable to eliminate: prefer one constrained
/// by an equality; otherwise minimize the number of lower×upper bound
/// pairs, preferring exact (unit-coefficient) eliminations.
fn pick_variable(c: &Conjunct, vars: &[VarId]) -> VarId {
    for v in vars {
        if c.eqs().iter().any(|e| e.mentions(*v)) {
            return *v;
        }
    }
    let mut best: Option<(VarId, u64)> = None;
    for v in vars {
        let (lowers, uppers, _) = c.bounds_on(*v);
        let in_stride = c.strides().iter().any(|(_, e)| e.mentions(*v));
        let exact =
            lowers.iter().all(|l| l.coeff.is_one()) || uppers.iter().all(|u| u.coeff.is_one());
        let pairs = (lowers.len() * uppers.len()) as u64;
        // crude cost model: exact eliminations are much cheaper;
        // strides force a conversion first.
        let cost = pairs * if exact { 1 } else { 100 } + if in_stride { 1000 } else { 0 };
        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
            best = Some((*v, cost));
        }
    }
    best.expect(
        "invariant: pick_variable is only called when the clause still \
         mentions a variable (the caller returns before this otherwise)",
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use presburger_arith::Int;

    /// (terms, constant, is_eq)
    type Spec = (Vec<(VarId, i64)>, i64, bool);

    fn brute(cs: &[Spec], vars: &[VarId], lo: i64, hi: i64) -> bool {
        fn rec(
            cs: &[Spec],
            vars: &[VarId],
            assign: &mut Vec<(VarId, i64)>,
            lo: i64,
            hi: i64,
        ) -> bool {
            if let Some((&v, rest)) = vars.split_first() {
                for val in lo..=hi {
                    assign.push((v, val));
                    if rec(cs, rest, assign, lo, hi) {
                        return true;
                    }
                    assign.pop();
                }
                false
            } else {
                cs.iter().all(|(terms, k, is_eq)| {
                    let s: i64 = terms
                        .iter()
                        .map(|(v, c)| c * assign.iter().find(|(a, _)| a == v).unwrap().1)
                        .sum::<i64>()
                        + k;
                    if *is_eq {
                        s == 0
                    } else {
                        s >= 0
                    }
                })
            }
        }
        rec(cs, vars, &mut Vec::new(), lo, hi)
    }

    #[test]
    fn simple_box() {
        let mut s = Space::new();
        let x = s.var("x");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], -5));
        c.add_geq(Affine::from_terms(&[(x, -1)], 10));
        assert!(is_feasible(&c, &mut s));
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], -11));
        c.add_geq(Affine::from_terms(&[(x, -1)], 10));
        assert!(!is_feasible(&c, &mut s));
    }

    #[test]
    fn gap_without_integer_point() {
        // 3 <= 2x <= 3 has no integer solution
        let mut s = Space::new();
        let x = s.var("x");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 2)], -3));
        c.add_geq(Affine::from_terms(&[(x, -2)], 3));
        assert!(!is_feasible(&c, &mut s));
    }

    #[test]
    fn dark_shadow_miss_found_by_splinter() {
        // The classic: ∃x,y: 27 ≤ 11x + 13y ≤ 45 ∧ -10 ≤ 7x − 9y ≤ 4
        // (Pugh's example of a problem whose dark shadow is empty but
        // which has integer solutions... actually this one has none;
        // assert the test agrees with brute force.)
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 11), (y, 13)], -27));
        c.add_geq(Affine::from_terms(&[(x, -11), (y, -13)], 45));
        c.add_geq(Affine::from_terms(&[(x, 7), (y, -9)], 10));
        c.add_geq(Affine::from_terms(&[(x, -7), (y, 9)], 4));
        let expected = brute(
            &[
                (vec![(x, 11), (y, 13)], -27, false),
                (vec![(x, -11), (y, -13)], 45, false),
                (vec![(x, 7), (y, -9)], 10, false),
                (vec![(x, -7), (y, 9)], 4, false),
            ],
            &[x, y],
            -50,
            50,
        );
        assert_eq!(is_feasible(&c, &mut s), expected);
    }

    #[test]
    fn equality_systems() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        // 6x + 9y = 21 solvable; 6x + 9y = 22 not
        let mut c = Conjunct::new();
        c.add_eq(Affine::from_terms(&[(x, 6), (y, 9)], -21));
        assert!(is_feasible(&c, &mut s));
        let mut c = Conjunct::new();
        c.add_eq(Affine::from_terms(&[(x, 6), (y, 9)], -22));
        assert!(!is_feasible(&c, &mut s));
    }

    #[test]
    fn strides_interact_with_bounds() {
        let mut s = Space::new();
        let x = s.var("x");
        // 5 | x && 6 <= x <= 9  -> infeasible
        let mut c = Conjunct::new();
        c.add_stride(Int::from(5), Affine::var(x));
        c.add_geq(Affine::from_terms(&[(x, 1)], -6));
        c.add_geq(Affine::from_terms(&[(x, -1)], 9));
        assert!(!is_feasible(&c, &mut s));
        // 5 | x && 6 <= x <= 11  -> x = 10
        let mut c = Conjunct::new();
        c.add_stride(Int::from(5), Affine::var(x));
        c.add_geq(Affine::from_terms(&[(x, 1)], -6));
        c.add_geq(Affine::from_terms(&[(x, -1)], 11));
        assert!(is_feasible(&c, &mut s));
    }

    #[test]
    fn random_agreement_with_brute_force() {
        // deterministic pseudo-random systems over 2 vars
        let mut seed = 0x12345678u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..60 {
            let mut s = Space::new();
            let x = s.var("x");
            let y = s.var("y");
            let mut c = Conjunct::new();
            let mut spec = Vec::new();
            let n = 2 + (rng() % 3) as usize;
            for _ in 0..n {
                let a = (rng() % 9) as i64 - 4;
                let b = (rng() % 9) as i64 - 4;
                let k = (rng() % 21) as i64 - 10;
                let is_eq = rng() % 4 == 0;
                if is_eq {
                    c.add_eq(Affine::from_terms(&[(x, a), (y, b)], k));
                } else {
                    c.add_geq(Affine::from_terms(&[(x, a), (y, b)], k));
                }
                spec.push((vec![(x, a), (y, b)], k, is_eq));
            }
            // bound the search region so brute force is meaningful
            c.add_geq(Affine::from_terms(&[(x, 1)], 12));
            c.add_geq(Affine::from_terms(&[(x, -1)], 12));
            c.add_geq(Affine::from_terms(&[(y, 1)], 12));
            c.add_geq(Affine::from_terms(&[(y, -1)], 12));
            spec.push((vec![(x, 1)], 12, false));
            spec.push((vec![(x, -1)], 12, false));
            spec.push((vec![(y, 1)], 12, false));
            spec.push((vec![(y, -1)], 12, false));
            let expected = brute(&spec, &[x, y], -12, 12);
            assert_eq!(
                is_feasible(&c, &mut s),
                expected,
                "trial {trial}: {}",
                c.to_string(&s)
            );
        }
    }
}
