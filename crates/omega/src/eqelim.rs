//! Exact elimination of an existential variable through an equality
//! constraint.
//!
//! Given `∃v : a·v + R = 0 ∧ rest(v)`, integer `v` exists with
//! `a·v = -R` iff `|a|` divides `R`; and every other constraint
//! `c·v + S ⋈ 0` can be scaled by `|a| > 0` (which preserves `⋈` for
//! `=`, `≥` and stride constraints) so that `c·v` can be replaced by
//! `-sign(a)·c·R / 1`:
//!
//! ```text
//! |a|·(c·v + S)  =  -sign(a)·c·R + |a|·S
//! ```
//!
//! This gives a *single* exact result clause with one extra stride
//! constraint — no splintering. (The original Omega test uses a
//! balanced-modulus substitution to keep coefficients machine-sized;
//! with arbitrary-precision [`Int`]s the scaling approach is simpler
//! and exact. Normalization immediately re-divides each scaled
//! constraint by its content, so coefficient growth is transient.)

use crate::affine::Affine;
use crate::conjunct::Conjunct;
use crate::space::VarId;
use presburger_arith::Int;

/// Eliminates `v` from `c` using the equality at `eq_idx`, which must
/// mention `v`. Returns the exact projection of `c` onto the remaining
/// variables (a single conjunct, possibly with a new stride).
///
/// The caller must treat `v` as existentially quantified.
///
/// # Panics
///
/// Panics if the equality at `eq_idx` does not mention `v`.
pub fn eliminate_via_equality(c: &Conjunct, v: VarId, eq_idx: usize) -> Conjunct {
    let eq = &c.eqs()[eq_idx];
    let a = eq.coeff(v);
    assert!(!a.is_zero(), "equality does not mention the variable");
    let abs_a = a.abs();
    let sign_pos = a.is_positive();
    // R = eq without the v term; the equality is a·v + R = 0.
    let mut r = eq.clone();
    r.set_coeff(v, Int::zero());

    let mut out = Conjunct::new();
    for w in c.wildcards() {
        if *w != v {
            out.add_wildcard(*w);
        }
    }
    // substitute into the other constraints, scaling by |a|
    let subst = |e: &Affine| -> Affine {
        let cv = e.coeff(v);
        if cv.is_zero() {
            return e.clone();
        }
        let mut rest = e.clone();
        rest.set_coeff(v, Int::zero());
        // |a|·e = |a|·rest + |a|·cv·v ; and a·v = -R so
        // |a|·cv·v = sign·cv·(a·v) = -sign·cv·R  (sign = +1 if a>0)
        let k = if sign_pos { -&cv } else { cv.clone() };
        let mut t = Affine::zero().add_scaled(&rest, &abs_a);
        t = t.add_scaled(&r, &k);
        t
    };
    for (i, e) in c.eqs().iter().enumerate() {
        if i != eq_idx {
            out.add_eq(subst(e));
        }
    }
    for e in c.geqs() {
        out.add_geq(subst(e));
    }
    for (m, e) in c.strides() {
        let cv = e.coeff(v);
        if cv.is_zero() {
            out.add_stride(m.clone(), e.clone());
        } else {
            // m | e  ⇔  m·|a| divides |a|·e
            out.add_stride(m * &abs_a, subst(e));
        }
    }
    // the divisibility requirement |a| divides R
    if !abs_a.is_one() {
        out.add_stride(abs_a, r);
    }
    out.normalize();
    out
}

/// Eliminates, for every wildcard that occurs in some equality, that
/// wildcard from the whole conjunct (repeatedly). On return no equality
/// mentions a wildcard. Stride constraints that mention wildcards are
/// first converted to equalities so the wildcards can be removed from
/// them as well.
///
/// This is the engine behind converting the paper's *projected format*
/// into *stride format* (§2.1).
pub fn solve_wildcard_equalities(c: &mut Conjunct, space: &mut crate::space::Space) {
    let mut fuel = 1000usize;
    loop {
        c.normalize();
        if c.is_false() {
            return;
        }
        // (a) a wildcard with a unit coefficient in some equality:
        //     plain substitution, no stride is created.
        let mut target = None;
        'unit: for w in c.wildcards() {
            for (idx, e) in c.eqs().iter().enumerate() {
                if e.coeff(*w).abs().is_one() {
                    target = Some((*w, idx));
                    break 'unit;
                }
            }
        }
        // (b) a wildcard that occurs in an equality and also elsewhere.
        if target.is_none() {
            'multi: for w in c.wildcards() {
                let occ = occurrences(c, *w);
                if occ >= 2 {
                    if let Some(idx) = c.eqs().iter().position(|e| e.mentions(*w)) {
                        target = Some((*w, idx));
                        break 'multi;
                    }
                }
            }
        }
        if let Some((w, idx)) = target {
            *c = eliminate_via_equality(c, w, idx);
            fuel -= 1;
            assert!(fuel > 0, "wildcard equality elimination did not converge");
            continue;
        }
        // (c) an equality whose wildcards all occur only in it:
        //     ∃w̄ : Σ aᵢwᵢ + S = 0  ⇔  gcd(aᵢ) | S.
        let lone_eq = c
            .eqs()
            .iter()
            .position(|e| c.wildcards().iter().any(|w| e.mentions(*w)));
        if let Some(idx) = lone_eq {
            // every wildcard here has occurrence count 1 (cases a/b failed)
            let e = c.eqs()[idx].clone();
            let mut g = Int::zero();
            let mut s = e.clone();
            let ws: Vec<VarId> = c
                .wildcards()
                .iter()
                .copied()
                .filter(|w| e.mentions(*w))
                .collect();
            for w in &ws {
                g = presburger_arith::gcd(&g, &e.coeff(*w));
                s.set_coeff(*w, Int::zero());
            }
            c.eqs.remove(idx);
            if !g.is_one() {
                c.add_stride(g, s);
            }
            fuel -= 1;
            assert!(fuel > 0, "wildcard equality elimination did not converge");
            continue;
        }
        // (d) strides whose wildcards also occur in equalities or
        //     inequalities must be converted so cases a–c can see them.
        let convertible: Vec<usize> = c
            .strides()
            .iter()
            .enumerate()
            .filter(|(_, (_, e))| {
                c.wildcards()
                    .iter()
                    .any(|w| e.mentions(*w) && occurs_outside_strides(c, *w))
            })
            .map(|(i, _)| i)
            .collect();
        if convertible.is_empty() {
            return;
        }
        for i in convertible.into_iter().rev() {
            let (m, e) = c.strides.remove(i);
            let alpha = space.fresh("s");
            c.add_wildcard(alpha);
            c.eqs.push(e.add_scaled(&Affine::var(alpha), &-m));
        }
        fuel -= 1;
        assert!(fuel > 0, "wildcard equality elimination did not converge");
    }
}

/// Number of constraints (of any kind) mentioning `w`.
fn occurrences(c: &Conjunct, w: VarId) -> usize {
    c.eqs().iter().filter(|e| e.mentions(w)).count()
        + c.geqs().iter().filter(|e| e.mentions(w)).count()
        + c.strides().iter().filter(|(_, e)| e.mentions(w)).count()
}

fn occurs_outside_strides(c: &Conjunct, w: VarId) -> bool {
    c.eqs().iter().any(|e| e.mentions(w)) || c.geqs().iter().any(|e| e.mentions(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;

    fn setup() -> (Space, VarId, VarId, VarId) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let w = s.var("w");
        (s, x, y, w)
    }

    #[test]
    fn unit_coefficient_substitution() {
        let (space, x, y, w) = setup();
        // exists w: w = x + 1  &&  w <= y   ==>   x + 1 <= y
        let mut c = Conjunct::new();
        c.add_wildcard(w);
        c.add_eq(Affine::from_terms(&[(w, 1), (x, -1)], -1));
        c.add_geq(Affine::from_terms(&[(y, 1), (w, -1)], 0));
        let r = eliminate_via_equality(&c, w, 0);
        assert!(r.wildcards().is_empty());
        assert!(r.eqs().is_empty());
        assert_eq!(r.geqs().len(), 1);
        assert_eq!(r.geqs()[0], Affine::from_terms(&[(x, -1), (y, 1)], -1));
        let _ = space;
    }

    #[test]
    fn non_unit_creates_stride() {
        let (_, x, _, w) = setup();
        // exists w: 2w = x   ==>   2 | x
        let mut c = Conjunct::new();
        c.add_wildcard(w);
        c.add_eq(Affine::from_terms(&[(w, 2), (x, -1)], 0));
        let r = eliminate_via_equality(&c, w, 0);
        assert!(r.wildcards().is_empty());
        assert_eq!(r.strides().len(), 1);
        let (m, e) = &r.strides()[0];
        assert_eq!(*m, Int::from(2));
        assert_eq!(*e, Affine::from_terms(&[(x, 1)], 0));
    }

    #[test]
    fn scaling_preserves_inequalities() {
        let (space, x, _, w) = setup();
        // exists w: 3w = x  &&  1 <= w <= 4   ==>   3 | x && 3 <= x <= 12
        let mut c = Conjunct::new();
        c.add_wildcard(w);
        c.add_eq(Affine::from_terms(&[(w, 3), (x, -1)], 0));
        c.add_geq(Affine::from_terms(&[(w, 1)], -1));
        c.add_geq(Affine::from_terms(&[(w, -1)], 4));
        let r = eliminate_via_equality(&c, w, 0);
        // check semantics pointwise on x in -2..=15
        for xv in -2i64..=15 {
            let expected = xv % 3 == 0 && (3..=12).contains(&xv);
            let got = r.contains_point(&space, &|v| {
                assert_eq!(v, x);
                Int::from(xv)
            });
            assert_eq!(got, expected, "x = {xv}");
        }
    }

    #[test]
    fn negative_coefficient() {
        let (space, x, _, w) = setup();
        // exists w: -2w + x = 0 && w >= 2  ==> 2 | x && x >= 4
        let mut c = Conjunct::new();
        c.add_wildcard(w);
        c.add_eq(Affine::from_terms(&[(w, -2), (x, 1)], 0));
        c.add_geq(Affine::from_terms(&[(w, 1)], -2));
        let r = eliminate_via_equality(&c, w, 0);
        for xv in -1i64..=10 {
            let expected = xv % 2 == 0 && xv >= 4;
            let got = r.contains_point(&space, &|_| Int::from(xv));
            assert_eq!(got, expected, "x = {xv}");
        }
    }

    #[test]
    fn solve_wildcards_full() {
        let (mut space, x, y, w) = setup();
        let w2 = space.var("w2");
        // exists w, w2:  x = 2w  &&  y = 3w2  &&  w = w2
        let mut c = Conjunct::new();
        c.add_wildcard(w);
        c.add_wildcard(w2);
        c.add_eq(Affine::from_terms(&[(x, 1), (w, -2)], 0));
        c.add_eq(Affine::from_terms(&[(y, 1), (w2, -3)], 0));
        c.add_eq(Affine::from_terms(&[(w, 1), (w2, -1)], 0));
        solve_wildcard_equalities(&mut c, &mut space);
        assert!(!c.is_false());
        // solutions: x = 2t, y = 3t  =>  3x = 2y, 2|x, 3|y
        for xv in -6i64..=6 {
            for yv in -9i64..=9 {
                let expected = xv % 2 == 0 && yv == 3 * (xv / 2);
                let got = c.contains_point(&space, &|v| {
                    if v == x {
                        Int::from(xv)
                    } else {
                        Int::from(yv)
                    }
                });
                assert_eq!(got, expected, "x={xv} y={yv} c={}", c.to_string(&space));
            }
        }
    }
}
