//! Conjunctions of linear constraints — the Omega test's working
//! representation.
//!
//! A [`Conjunct`] denotes the set of integer points satisfying
//!
//! ```text
//! ∃ wildcards :  eqs = 0  ∧  geqs ≥ 0  ∧  strides
//! ```
//!
//! where *wildcards* are clause-local existentially quantified
//! variables (the paper's "auxiliary variables" of the projected
//! format, §2.1) and a stride `m | e` asserts that `m` evenly divides
//! the affine expression `e` (§3.2). The two non-convex representations
//! the paper describes — stride format and projected format — are both
//! available and interconvertible ([`Conjunct::stride_to_wildcard`] and
//! the equality solver in [`crate::eqelim`]).

use crate::affine::Affine;
use crate::space::{Space, VarId};
use presburger_arith::{gcd, Int};
use std::collections::BTreeSet;

/// A conjunction of affine equalities, inequalities and stride
/// constraints over interned variables, with clause-local existential
/// wildcards.
///
/// ```
/// use presburger_omega::{Affine, Conjunct, Space};
///
/// let mut s = Space::new();
/// let x = s.var("x");
/// let mut c = Conjunct::new();
/// c.add_geq(Affine::var(x) - Affine::constant(1));    // x >= 1
/// c.add_geq(Affine::constant(10) - Affine::var(x));   // x <= 10
/// assert!(!c.is_false());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Conjunct {
    /// Clause-local existentially quantified variables.
    pub(crate) wildcards: Vec<VarId>,
    /// Affine expressions constrained to equal zero.
    pub(crate) eqs: Vec<Affine>,
    /// Affine expressions constrained to be non-negative.
    pub(crate) geqs: Vec<Affine>,
    /// Stride constraints `(m, e)` meaning `m | e`, with `m >= 2`.
    pub(crate) strides: Vec<(Int, Affine)>,
    /// Set when normalization discovers a contradiction.
    pub(crate) contradiction: bool,
}

/// One-sided bound on a variable extracted from a conjunct:
/// `expr <= coeff·v` (lower) or `coeff·v <= expr` (upper), with
/// `coeff > 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bound {
    /// Positive coefficient of the bounded variable.
    pub coeff: Int,
    /// The bounding expression (does not mention the variable).
    pub expr: Affine,
}

impl Conjunct {
    /// The trivially true conjunct (no constraints).
    pub fn new() -> Conjunct {
        Conjunct::default()
    }

    /// A contradictory (unsatisfiable) conjunct.
    pub fn f() -> Conjunct {
        Conjunct {
            contradiction: true,
            ..Conjunct::default()
        }
    }

    /// Returns `true` if normalization has already proven this conjunct
    /// unsatisfiable. (`false` does **not** imply satisfiability — use
    /// [`crate::feasible::is_feasible`] for a complete test.)
    pub fn is_false(&self) -> bool {
        self.contradiction
    }

    /// Returns `true` if the conjunct has no constraints at all.
    pub fn is_trivially_true(&self) -> bool {
        !self.contradiction
            && self.eqs.is_empty()
            && self.geqs.is_empty()
            && self.strides.is_empty()
    }

    /// Adds the constraint `e == 0`.
    pub fn add_eq(&mut self, e: Affine) {
        self.eqs.push(e);
    }

    /// Adds the constraint `e >= 0`.
    pub fn add_geq(&mut self, e: Affine) {
        self.geqs.push(e);
    }

    /// Adds the constraint `lhs <= rhs`.
    pub fn add_le(&mut self, lhs: Affine, rhs: Affine) {
        self.geqs.push(rhs - lhs);
    }

    /// Adds the stride constraint `m | e`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or negative.
    pub fn add_stride(&mut self, m: Int, e: Affine) {
        assert!(m.is_positive(), "stride modulus must be positive");
        if !m.is_one() {
            self.strides.push((m, e));
        }
    }

    /// Registers `w` as a clause-local existential wildcard.
    pub fn add_wildcard(&mut self, w: VarId) {
        if !self.wildcards.contains(&w) {
            self.wildcards.push(w);
        }
    }

    /// The wildcard variables of this clause.
    pub fn wildcards(&self) -> &[VarId] {
        &self.wildcards
    }

    /// The equality constraints (each `== 0`).
    pub fn eqs(&self) -> &[Affine] {
        &self.eqs
    }

    /// The inequality constraints (each `>= 0`).
    pub fn geqs(&self) -> &[Affine] {
        &self.geqs
    }

    /// The stride constraints (`m | e` pairs).
    pub fn strides(&self) -> &[(Int, Affine)] {
        &self.strides
    }

    /// Returns `true` if `v` is a wildcard of this clause.
    pub fn is_wildcard(&self, v: VarId) -> bool {
        self.wildcards.contains(&v)
    }

    /// All variables mentioned by any constraint.
    pub fn mentioned_vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        for e in self.eqs.iter().chain(self.geqs.iter()) {
            out.extend(e.vars());
        }
        for (_, e) in &self.strides {
            out.extend(e.vars());
        }
        out
    }

    /// Variables mentioned that are not wildcards.
    pub fn free_vars(&self) -> BTreeSet<VarId> {
        let mut s = self.mentioned_vars();
        for w in &self.wildcards {
            s.remove(w);
        }
        s
    }

    /// Returns `true` if any constraint mentions `v`.
    pub fn mentions(&self, v: VarId) -> bool {
        self.eqs.iter().any(|e| e.mentions(v))
            || self.geqs.iter().any(|e| e.mentions(v))
            || self.strides.iter().any(|(_, e)| e.mentions(v))
    }

    /// Substitutes `replacement` for `v` in every constraint.
    ///
    /// The caller is responsible for removing `v` from the wildcard list
    /// if appropriate.
    pub fn substitute(&mut self, v: VarId, replacement: &Affine) {
        for e in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
            *e = e.substitute(v, replacement);
        }
        for (_, e) in self.strides.iter_mut() {
            *e = e.substitute(v, replacement);
        }
    }

    /// Merges another conjunct into this one (logical conjunction).
    /// Wildcard lists are concatenated; the caller must ensure they are
    /// disjoint (fresh variables).
    pub fn and(&mut self, other: &Conjunct) {
        self.contradiction |= other.contradiction;
        self.eqs.extend(other.eqs.iter().cloned());
        self.geqs.extend(other.geqs.iter().cloned());
        self.strides.extend(other.strides.iter().cloned());
        for w in &other.wildcards {
            self.add_wildcard(*w);
        }
    }

    /// Rewrites every stride `m | e` as a wildcard equality
    /// `e - m·α = 0` with a fresh wildcard `α` (stride format →
    /// projected format, §2.1).
    pub fn stride_to_wildcard(&mut self, space: &mut Space) {
        for (m, e) in std::mem::take(&mut self.strides) {
            let alpha = space.fresh("s");
            self.add_wildcard(alpha);
            // e - m·alpha == 0
            self.eqs.push(e.add_scaled(&Affine::var(alpha), &-m));
        }
    }

    /// Normalizes the conjunct in place:
    ///
    /// * equalities are divided by the gcd of their coefficients
    ///   (contradiction if the gcd does not divide the constant) and
    ///   sign-canonicalized;
    /// * inequalities are *tightened*: `Σaᵢxᵢ + c ≥ 0` becomes
    ///   `Σ(aᵢ/g)xᵢ + ⌊c/g⌋ ≥ 0` where `g = gcd(aᵢ)`;
    /// * strides are reduced (`m | e` with all of `e`'s coefficients
    ///   divisible by `g = gcd(m, content(e))` becomes a stride mod
    ///   `m/gcd`… conservatively we reduce constants into `[0, m)`);
    /// * constant constraints are checked and dropped;
    /// * duplicate and single-constraint-redundant inequalities are
    ///   dropped; opposite inequality pairs become equalities;
    /// * unused wildcards are dropped.
    ///
    /// Sets the contradiction flag (see [`Conjunct::is_false`]) when a
    /// syntactic contradiction is found.
    pub fn normalize(&mut self) {
        // The innermost heartbeat of the whole pipeline: every clause
        // manipulation funnels through here, which makes this counter
        // the governor's most responsive deadline/cancellation
        // checkpoint (a single thread-local load when ungoverned).
        presburger_trace::bump(presburger_trace::Counter::NormalizeCalls);
        if self.contradiction {
            return;
        }
        // --- equalities
        let mut eqs = std::mem::take(&mut self.eqs);
        eqs.retain_mut(|e| {
            if e.is_constant() {
                if !e.constant_term().is_zero() {
                    self.contradiction = true;
                }
                return false;
            }
            let g = e.content();
            if !g.is_one() {
                if !g.divides(e.constant_term()) {
                    self.contradiction = true;
                    return false;
                }
                *e = e.div_exact(&g);
            }
            // canonical sign: first (lowest VarId) coefficient positive
            let flip = e.iter().next().is_some_and(|(_, c)| c.is_negative());
            if flip {
                *e = -&*e;
            }
            true
        });
        eqs.sort_by(cmp_affine);
        eqs.dedup();
        self.eqs = eqs;
        if self.contradiction {
            return;
        }

        // --- inequalities: tighten
        let mut geqs = std::mem::take(&mut self.geqs);
        geqs.retain_mut(|e| {
            if e.is_constant() {
                if e.constant_term().is_negative() {
                    self.contradiction = true;
                }
                return false;
            }
            let g = e.content();
            if !g.is_one() {
                let c = e.constant_term().div_floor(&g);
                let mut t = Affine::constant(c);
                for (v, a) in e.iter() {
                    t.set_coeff(v, a / &g);
                }
                *e = t;
            }
            true
        });
        if self.contradiction {
            return;
        }
        // keep only the tightest inequality for each slope
        geqs.sort_by(cmp_affine);
        let mut kept: Vec<Affine> = Vec::with_capacity(geqs.len());
        for e in geqs {
            if let Some(last) = kept.last_mut() {
                if same_slope(last, &e) {
                    // same variable part: smaller constant is tighter
                    if e.constant_term() < last.constant_term() {
                        *last = e;
                    }
                    continue;
                }
            }
            kept.push(e);
        }
        // opposite pairs: t + c1 >= 0 and -t + c2 >= 0
        let mut to_eq: Vec<Affine> = Vec::new();
        let mut drop_idx: BTreeSet<usize> = BTreeSet::new();
        for i in 0..kept.len() {
            if drop_idx.contains(&i) {
                continue;
            }
            let neg = -&kept[i];
            for (j, other) in kept.iter().enumerate().skip(i + 1) {
                if drop_idx.contains(&j) {
                    continue;
                }
                if same_slope(&neg, other) {
                    // kept[i] = t + c1, other = -t + c2 ; sum of consts:
                    let s = kept[i].constant_term() + other.constant_term();
                    if s.is_negative() {
                        self.contradiction = true;
                        return;
                    }
                    if s.is_zero() {
                        to_eq.push(kept[i].clone());
                        drop_idx.insert(i);
                        drop_idx.insert(j);
                    }
                }
            }
        }
        self.geqs = kept
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !drop_idx.contains(i))
            .map(|(_, e)| e)
            .collect();
        if !to_eq.is_empty() {
            self.eqs.extend(to_eq);
            // re-normalize to canonicalize the new equalities
            self.normalize();
            return;
        }

        // --- strides
        let mut strides = std::mem::take(&mut self.strides);
        strides.retain_mut(|(m, e)| {
            debug_assert!(m.is_positive());
            if m.is_one() {
                return false;
            }
            // reduce coefficients and constant modulo m
            let mut t = Affine::constant(e.constant_term().rem_euclid(m));
            for (v, a) in e.iter() {
                t.set_coeff(v, a.rem_euclid(m));
            }
            *e = t;
            if e.is_constant() {
                if !e.constant_term().is_zero() {
                    self.contradiction = true;
                }
                return false;
            }
            // m | e with g = gcd(content(e), m): if g > 1 and g | const,
            // the constraint is equivalent to (m/g) | (e/g).
            let g = gcd(&e.content(), m);
            if !g.is_one() && g.divides(e.constant_term()) {
                *e = e.div_exact(&g);
                *m = &*m / &g;
                if m.is_one() {
                    return false;
                }
            }
            true
        });
        strides.sort_by(|(m1, e1), (m2, e2)| m1.cmp(m2).then_with(|| cmp_affine(e1, e2)));
        strides.dedup();
        self.strides = strides;
        if self.contradiction {
            return;
        }

        // --- wildcards whose only occurrence is inside a single stride:
        // ∃w : m | c·w + S  ⇔  gcd(c, m) | S
        if !self.wildcards.is_empty() {
            let lone: Vec<VarId> = self
                .wildcards
                .iter()
                .copied()
                .filter(|w| {
                    let in_eq = self.eqs.iter().any(|e| e.mentions(*w));
                    let in_geq = self.geqs.iter().any(|e| e.mentions(*w));
                    let n_strides = self.strides.iter().filter(|(_, e)| e.mentions(*w)).count();
                    !in_eq && !in_geq && n_strides == 1
                })
                .collect();
            if !lone.is_empty() {
                let mut changed = false;
                for (m, e) in self.strides.iter_mut() {
                    let mut g = m.clone();
                    let mut any = false;
                    for w in &lone {
                        let c = e.coeff(*w);
                        if !c.is_zero() {
                            g = gcd(&g, &c);
                            e.set_coeff(*w, Int::zero());
                            any = true;
                        }
                    }
                    if any {
                        *m = g;
                        changed = true;
                    }
                }
                if changed {
                    // moduli may now be 1 or constraints constant
                    self.strides.retain(|(m, _)| !m.is_one());
                    self.normalize();
                    return;
                }
            }
        }

        // --- drop unused wildcards
        let mentioned = self.mentioned_vars();
        self.wildcards.retain(|w| mentioned.contains(w));
    }

    /// Extracts the lower and upper bounds on `v` from the inequality
    /// constraints, plus the list of inequalities not mentioning `v`.
    ///
    /// Lower bounds satisfy `expr <= coeff·v`; upper bounds satisfy
    /// `coeff·v <= expr`.
    pub fn bounds_on(&self, v: VarId) -> (Vec<Bound>, Vec<Bound>, Vec<Affine>) {
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut rest = Vec::new();
        for e in &self.geqs {
            let a = e.coeff(v);
            if a.is_zero() {
                rest.push(e.clone());
            } else if a.is_positive() {
                // a·v + r >= 0  =>  -r <= a·v
                let mut r = e.clone();
                r.set_coeff(v, Int::zero());
                lowers.push(Bound {
                    coeff: a,
                    expr: -&r,
                });
            } else {
                // -a'·v + r >= 0  =>  a'·v <= r
                let mut r = e.clone();
                r.set_coeff(v, Int::zero());
                uppers.push(Bound {
                    coeff: -&a,
                    expr: r,
                });
            }
        }
        (lowers, uppers, rest)
    }

    /// Decides whether a concrete point satisfies this conjunct, given
    /// values for every *non-wildcard* variable the conjunct mentions.
    ///
    /// Wildcards are handled by substituting the known values and
    /// running the complete integer feasibility test on what remains.
    pub fn contains_point(&self, space: &Space, assign: &dyn Fn(VarId) -> Int) -> bool {
        if self.contradiction {
            return false;
        }
        let mut c = self.clone();
        let vars: Vec<VarId> = c
            .mentioned_vars()
            .into_iter()
            .filter(|v| !c.is_wildcard(*v))
            .collect();
        for v in vars {
            let val = Affine::constant(assign(v));
            c.substitute(v, &val);
        }
        crate::feasible::is_feasible(&c, &mut space.clone())
    }

    /// Rebuilds the conjunct as a [`crate::Formula`] (wildcards become
    /// an existential quantifier).
    pub fn to_formula(&self) -> crate::Formula {
        use crate::formula::{Constraint, Formula};
        if self.contradiction {
            return Formula::False;
        }
        let mut parts = Vec::new();
        for e in &self.eqs {
            parts.push(Formula::Atom(Constraint::Eq(e.clone())));
        }
        for e in &self.geqs {
            parts.push(Formula::Atom(Constraint::Ge(e.clone())));
        }
        for (m, e) in &self.strides {
            parts.push(Formula::Atom(Constraint::Stride(m.clone(), e.clone())));
        }
        Formula::exists(self.wildcards.clone(), Formula::and(parts))
    }

    /// Appends a canonical byte encoding of the conjunct to `out`, for
    /// memo-table and cache keys: the contradiction flag, then the
    /// wildcard list, equalities, inequalities and strides, each
    /// length-prefixed and in stored order. Injective over conjuncts of
    /// the same space, and stable across threads and processes (raw
    /// `VarId` indices, never arena-local handles) — run `normalize`
    /// first when a canonical constraint order matters.
    pub fn push_key_bytes(&self, out: &mut Vec<u8>) {
        out.push(self.contradiction as u8);
        out.extend_from_slice(&(self.wildcards.len() as u32).to_le_bytes());
        for w in &self.wildcards {
            out.extend_from_slice(&(w.index() as u32).to_le_bytes());
        }
        out.extend_from_slice(&(self.eqs.len() as u32).to_le_bytes());
        for e in &self.eqs {
            e.push_key_bytes(out);
        }
        out.extend_from_slice(&(self.geqs.len() as u32).to_le_bytes());
        for e in &self.geqs {
            e.push_key_bytes(out);
        }
        out.extend_from_slice(&(self.strides.len() as u32).to_le_bytes());
        for (m, e) in &self.strides {
            m.push_key_bytes(out);
            e.push_key_bytes(out);
        }
    }

    /// Renders the conjunct with variable names from `space`.
    pub fn to_string(&self, space: &Space) -> String {
        if self.contradiction {
            return "FALSE".to_string();
        }
        let mut parts: Vec<String> = Vec::new();
        for e in &self.eqs {
            parts.push(format!("{} = 0", e.to_string(space)));
        }
        for e in &self.geqs {
            parts.push(format!("{} >= 0", e.to_string(space)));
        }
        for (m, e) in &self.strides {
            parts.push(format!("{} | {}", m, e.to_string(space)));
        }
        let body = if parts.is_empty() {
            "TRUE".to_string()
        } else {
            parts.join(" && ")
        };
        if self.wildcards.is_empty() {
            body
        } else {
            let ws: Vec<&str> = self.wildcards.iter().map(|w| space.name(*w)).collect();
            format!("exists {} : {}", ws.join(","), body)
        }
    }
}

fn cmp_affine(a: &Affine, b: &Affine) -> std::cmp::Ordering {
    // Lexicographic over the (VarId, coeff) terms, then the constant —
    // without materializing (and cloning) the term lists: this runs
    // inside every sort `normalize` performs.
    use std::cmp::Ordering;
    let mut ai = a.iter();
    let mut bi = b.iter();
    loop {
        match (ai.next(), bi.next()) {
            (Some((v1, c1)), Some((v2, c2))) => {
                let o = v1.cmp(&v2).then_with(|| c1.cmp(c2));
                if o != Ordering::Equal {
                    return o;
                }
            }
            (Some(_), None) => return Ordering::Greater,
            (None, Some(_)) => return Ordering::Less,
            (None, None) => return a.constant_term().cmp(b.constant_term()),
        }
    }
}

/// Same variable part (coefficients), possibly different constants.
fn same_slope(a: &Affine, b: &Affine) -> bool {
    a.num_vars() == b.num_vars()
        && a.iter()
            .zip(b.iter())
            .all(|((v1, c1), (v2, c2))| v1 == v2 && c1 == c2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Space, VarId, VarId) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        (s, x, y)
    }

    #[test]
    fn tightening() {
        let (_, x, _) = setup();
        // 2x - 3 >= 0  ->  x - 2 >= 0  (x >= 3/2 means x >= 2)
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 2)], -3));
        c.normalize();
        assert_eq!(c.geqs(), &[Affine::from_terms(&[(x, 1)], -2)]);
    }

    #[test]
    fn equality_gcd_contradiction() {
        let (_, x, y) = setup();
        // 2x + 4y + 1 = 0 has no integer solutions
        let mut c = Conjunct::new();
        c.add_eq(Affine::from_terms(&[(x, 2), (y, 4)], 1));
        c.normalize();
        assert!(c.is_false());
    }

    #[test]
    fn constant_constraints() {
        let (_, _, _) = setup();
        let mut c = Conjunct::new();
        c.add_geq(Affine::constant(5));
        c.add_eq(Affine::constant(0));
        c.normalize();
        assert!(c.is_trivially_true());

        let mut c = Conjunct::new();
        c.add_geq(Affine::constant(-1));
        c.normalize();
        assert!(c.is_false());
    }

    #[test]
    fn same_slope_keeps_tightest() {
        let (_, x, _) = setup();
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], -5)); // x >= 5
        c.add_geq(Affine::from_terms(&[(x, 1)], -9)); // x >= 9 (tighter)
        c.normalize();
        assert_eq!(c.geqs(), &[Affine::from_terms(&[(x, 1)], -9)]);
    }

    #[test]
    fn opposite_pair_becomes_equality() {
        let (_, x, y) = setup();
        let mut c = Conjunct::new();
        let t = Affine::from_terms(&[(x, 1), (y, -1)], -3);
        c.add_geq(t.clone()); // x - y - 3 >= 0
        c.add_geq(-&t); // x - y - 3 <= 0
        c.normalize();
        assert!(c.geqs().is_empty());
        assert_eq!(c.eqs().len(), 1);
        assert_eq!(c.eqs()[0], t);
    }

    #[test]
    fn opposite_pair_contradiction() {
        let (_, x, _) = setup();
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], -5)); // x >= 5
        c.add_geq(Affine::from_terms(&[(x, -1)], 3)); // x <= 3
        c.normalize();
        assert!(c.is_false());
    }

    #[test]
    fn stride_normalization() {
        let (mut s, x, _) = setup();
        let _ = &mut s;
        // 3 | (4x + 7)  ->  3 | (x + 1)
        let mut c = Conjunct::new();
        c.add_stride(Int::from(3), Affine::from_terms(&[(x, 4)], 7));
        c.normalize();
        assert_eq!(c.strides().len(), 1);
        let (m, e) = &c.strides()[0];
        assert_eq!(*m, Int::from(3));
        assert_eq!(*e, Affine::from_terms(&[(x, 1)], 1));
    }

    #[test]
    fn stride_constant_checks() {
        let (_, _, _) = setup();
        let mut c = Conjunct::new();
        c.add_stride(Int::from(3), Affine::constant(7));
        c.normalize();
        assert!(c.is_false());

        let mut c = Conjunct::new();
        c.add_stride(Int::from(3), Affine::constant(9));
        c.normalize();
        assert!(c.is_trivially_true());
    }

    #[test]
    fn bounds_extraction() {
        let (_, x, y) = setup();
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 2), (y, 1)], 0)); // 2x + y >= 0: lower -y <= 2x
        c.add_geq(Affine::from_terms(&[(x, -3), (y, 1)], 5)); // 3x <= y + 5
        c.add_geq(Affine::from_terms(&[(y, 1)], -1)); // y >= 1 (no x)
        let (lo, up, rest) = c.bounds_on(x);
        assert_eq!(lo.len(), 1);
        assert_eq!(lo[0].coeff, Int::from(2));
        assert_eq!(lo[0].expr, Affine::from_terms(&[(y, -1)], 0));
        assert_eq!(up.len(), 1);
        assert_eq!(up[0].coeff, Int::from(3));
        assert_eq!(up[0].expr, Affine::from_terms(&[(y, 1)], 5));
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn display() {
        let (s, x, y) = setup();
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1), (y, -1)], 0));
        c.add_stride(Int::from(2), Affine::var(x));
        assert_eq!(c.to_string(&s), "x - y >= 0 && 2 | x");
    }
}
