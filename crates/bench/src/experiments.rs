//! One function per paper experiment (see `DESIGN.md` §3 for the
//! index). Each returns a [`Report`] comparing the paper's claim with
//! what this implementation measures.

use presburger_apps::{distinct_cache_lines, distinct_locations, ArrayRef, BlockCyclic, LoopNest};
use presburger_arith::{Int, Rat};
use presburger_baselines::{example2_hp_answer, fst_locations, intro_example, tawbi_sum, MExpr};
use presburger_counting::{enumerate, try_count_solutions, CountOptions, Mode, Symbolic};
use presburger_omega::dnf::{simplify, SimplifyOptions};
use presburger_omega::eliminate::{eliminate, Shadow};
use presburger_omega::hull::{summarize_offsets, zero_one_encoding};
use presburger_omega::{Affine, Conjunct, Formula, Space, VarId};
use presburger_polyq::QPoly;
use presburger_trace::{self as trace, Counter, PipelineStats};
use std::time::{Duration, Instant};

/// The outcome of one experiment.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id (matches DESIGN.md §3).
    pub id: &'static str,
    /// Short human-readable title.
    pub title: &'static str,
    /// What the paper reports.
    pub paper: String,
    /// What this implementation measures.
    pub measured: String,
    /// Whether the measured result matches the paper's claim (shape,
    /// not absolute timing).
    pub pass: bool,
    /// Wall time for the whole experiment (checks included) — filled by
    /// [`all_experiments`].
    pub wall: Duration,
    /// Pipeline counters accumulated during the experiment — filled by
    /// [`all_experiments`].
    pub counters: PipelineStats,
    /// Wall-clock speedup of the clause pipeline at 4 worker threads
    /// over 1, measured by the stress experiments (`None` elsewhere).
    pub par_speedup: Option<f64>,
    /// Memo-table hit rate over the S3 zipf request stream
    /// (`hits / (hits + misses)`, `None` elsewhere).
    pub memo_hit_rate: Option<f64>,
    /// Wall-clock speedup of the S3 zipf request stream with the memo
    /// on over the same stream with it off (`None` elsewhere).
    pub memo_speedup: Option<f64>,
}

impl Report {
    fn new(
        id: &'static str,
        title: &'static str,
        paper: impl Into<String>,
        measured: impl Into<String>,
        pass: bool,
    ) -> Report {
        Report {
            id,
            title,
            paper: paper.into(),
            measured: measured.into(),
            pass,
            wall: Duration::ZERO,
            counters: PipelineStats::default(),
            par_speedup: None,
            memo_hit_rate: None,
            memo_speedup: None,
        }
    }

    /// The headline pipeline counters as a compact `name=value` list
    /// (EXPERIMENTS.md table cell). Low-level counters (feasibility
    /// checks, Faulhaber histogram, gist calls) are left to the full
    /// JSON dump.
    pub fn counter_summary(&self) -> String {
        const HEADLINE: [Counter; 13] = [
            Counter::SplintersGenerated,
            Counter::SplintersPruned,
            Counter::DarkShadowClauses,
            Counter::ConvexLeafPieces,
            Counter::ConvexSplitCases,
            Counter::DnfClausesClean,
            Counter::DnfClausesDisjoint,
            Counter::RedundantRemovedComplete,
            Counter::SmithNormalFormCalls,
            Counter::TawbiSplits,
            Counter::HpRewriteSteps,
            Counter::FstSummations,
            Counter::AdaptiveExactFallbacks,
        ];
        let mut out = String::new();
        for c in HEADLINE {
            let v = self.counters.get(c);
            if v == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&format!("{}={v}", c.name()));
        }
        if out.is_empty() {
            out.push('—');
        }
        out
    }
}

/// Runs every experiment, in DESIGN.md order, with pipeline counters
/// collected per experiment.
pub fn all_experiments() -> Vec<Report> {
    let fns: [fn() -> Report; 21] = [
        e1_simple_sums,
        e2_intro_naive,
        e3_simplification,
        e4_example1_tawbi,
        e5_example2_hp,
        e6_example3_hp,
        e7_example4_fst,
        e8_example5_sor,
        e9_example6_parity,
        e10_hpf_block_cyclic,
        e11_disjoint_splintering,
        e12_stencil_summaries,
        a1_redundancy_ablation,
        a2_order_ablation,
        a3_disjoint_vs_inclusion_exclusion,
        a4_exact_vs_approximate,
        a5_minmax_answer_form,
        a6_adaptive_bounds,
        s1_manyclause_determinism,
        s2_manyclause_speedup,
        s3_memo_zipf,
    ];
    fns.iter().map(|f| run_instrumented(*f)).collect()
}

/// Runs one experiment with counters enabled, recording wall time and
/// the counter delta attributable to it.
fn run_instrumented(f: fn() -> Report) -> Report {
    let was_counting = trace::counting();
    trace::enable_counters(true);
    let before = trace::snapshot();
    let t = Instant::now();
    let mut r = f();
    r.wall = t.elapsed();
    r.counters = trace::snapshot().delta(&before);
    trace::enable_counters(was_counting);
    r
}

fn count(space: &Space, f: &Formula, vars: &[VarId]) -> Symbolic {
    try_count_solutions(space, f, vars, &CountOptions::default()).expect("experiment count failed")
}

/// E1 (§1 table): the four introductory sums.
pub fn e1_simple_sums() -> Report {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.var("n");

    // Σ 1..10 1 = 10
    let c1 = count(
        &s,
        &Formula::between(Affine::constant(1), i, Affine::constant(10)),
        &[i],
    );
    let ok1 = c1.eval_i64(&[]) == Some(10);

    // Σ 1..n 1 = n if 1 ≤ n
    let c2 = count(
        &s,
        &Formula::between(Affine::constant(1), i, Affine::var(n)),
        &[i],
    );
    let ok2 = (0..=8i64).all(|nv| c2.eval_i64(&[("n", nv)]) == Some(nv.max(0)));

    // Σ over the square = n² if 1 ≤ n
    let square = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::constant(1), j, Affine::var(n)),
    ]);
    let c3 = count(&s, &square, &[i, j]);
    let ok3 = (0..=8i64).all(|nv| c3.eval_i64(&[("n", nv)]) == Some((nv.max(0)).pow(2)));

    // Σ over 1 ≤ i < j ≤ n = n(n−1)/2 if 2 ≤ n
    let tri = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::var(i)),
        Formula::lt(Affine::var(i), Affine::var(j)),
        Formula::le(Affine::var(j), Affine::var(n)),
    ]);
    let c4 = count(&s, &tri, &[i, j]);
    let ok4 = (0..=8i64).all(|nv| c4.eval_i64(&[("n", nv)]) == Some(nv * (nv - 1) / 2));

    Report::new(
        "E1",
        "simple sums (§1 table)",
        "10; ⟨n | 1≤n⟩; ⟨n² | 1≤n⟩; ⟨n(n−1)/2 | 2≤n⟩",
        format!("10={ok1}; n={ok2}; n²={ok3}; n(n−1)/2={ok4}"),
        ok1 && ok2 && ok3 && ok4,
    )
}

/// E2 (§1): the naive CAS answer vs the guarded answer.
pub fn e2_intro_naive() -> Report {
    let mut s = Space::new();
    let (naive, n, m) = intro_example(&mut s);
    let i = s.var("i");
    let j = s.var("j");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::var(i), j, Affine::var(m)),
    ]);
    let exact = count(&s, &f, &[i, j]);
    let brute = |nv: i64, mv: i64| -> i64 { (1..=nv).map(|iv| (iv..=mv).count() as i64).sum() };
    let mut naive_wrong_somewhere = false;
    let mut exact_right_everywhere = true;
    for nv in -2i64..=8 {
        for mv in -2i64..=8 {
            let b = brute(nv, mv);
            let nv_val = naive.eval(&|v| if v == n { Int::from(nv) } else { Int::from(mv) });
            let ev = exact.eval_rat(&[("n", nv), ("m", mv)]);
            if nv_val != Rat::from(b) {
                naive_wrong_somewhere = true;
            }
            if ev != Rat::from(b) {
                exact_right_everywhere = false;
            }
        }
    }
    // the specific wrong point the paper calls out: 1 ≤ m < n
    let naive_at = naive.eval(&|v| if v == n { Int::from(5) } else { Int::from(2) });
    // n(2m−n+1)/2 at (n,m) = (5,2) is 5·0/2 = 0 — not the true 3
    let paper_wrong = naive_at == Rat::zero();
    Report::new(
        "E2",
        "intro: Mathematica-style vs guarded (§1)",
        "naive n(2m−n+1)/2 wrong for m<n; true answer m(m+1)/2 there",
        format!(
            "naive wrong somewhere={naive_wrong_somewhere}, matches n(2m−n+1)/2 at (5,2)={paper_wrong}, ours exact everywhere={exact_right_everywhere}"
        ),
        naive_wrong_somewhere && paper_wrong && exact_right_everywhere,
    )
}

/// Builds the §2.6 formula.
pub fn section26_formula(s: &mut Space) -> (Formula, VarId, VarId, VarId) {
    let i = s.var("i");
    let ip = s.var("ip");
    let n = s.var("n");
    let i2 = s.var("i2");
    let j = s.var("j");
    let inner = |parity: i64| {
        Formula::exists(
            vec![i2, j],
            Formula::and(vec![
                Formula::between(Affine::constant(1), i2, Affine::term(n, 2)),
                Formula::between(Affine::constant(1), j, Affine::var(n) - Affine::constant(1)),
                Formula::lt(Affine::var(i), Affine::var(i2)),
                Formula::eq(Affine::var(i2), Affine::var(ip)),
                Formula::eq(
                    Affine::term(j, 2) + Affine::constant(parity),
                    Affine::var(i2),
                ),
            ]),
        )
    };
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::term(n, 2)),
        Formula::between(Affine::constant(1), ip, Affine::term(n, 2)),
        Formula::eq(Affine::var(i), Affine::var(ip)),
        Formula::not(inner(0)),
        Formula::not(inner(1)),
    ]);
    (f, i, ip, n)
}

/// E3 (§2.6): simplifying the dependence formula; the paper reports
/// 12 ms on a 1992 Sun Sparc IPX.
pub fn e3_simplification() -> Report {
    let mut s = Space::new();
    let (f, i, ip, _n) = section26_formula(&mut s);
    let t = Instant::now();
    let d = simplify(&f, &mut s, &SimplifyOptions::default());
    let elapsed = t.elapsed();
    // semantic check against brute force
    let mut ok = true;
    for nv in 0i64..=4 {
        for iv in 0..=2 * nv + 1 {
            for ipv in 0..=2 * nv + 1 {
                let base = 1 <= iv && iv <= 2 * nv && iv == ipv;
                let blocked = (1..=2 * nv).any(|i2v| {
                    (1..=nv - 1)
                        .any(|jv| iv < i2v && i2v == ipv && (2 * jv == i2v || 2 * jv + 1 == i2v))
                });
                let expected = base && !blocked;
                let got = d.contains_point(&s, &|v| {
                    if v == i {
                        Int::from(iv)
                    } else if v == ip {
                        Int::from(ipv)
                    } else {
                        Int::from(nv)
                    }
                });
                ok &= got == expected;
            }
        }
    }
    Report::new(
        "E3",
        "formula simplification (§2.6)",
        "simplifies to a 2-clause union; 12 ms on a Sun Sparc IPX",
        format!(
            "{} clause(s) in {:.1} ms; semantics verified={ok}",
            d.clauses.len(),
            elapsed.as_secs_f64() * 1e3
        ),
        ok && !d.clauses.is_empty(),
    )
}

/// The Example 1 constraint system (§6, from \[Taw94\]).
fn example1_system(s: &mut Space) -> (Conjunct, [VarId; 3], VarId, VarId) {
    let i = s.var("i");
    let j = s.var("j");
    let k = s.var("k");
    let n = s.var("n");
    let m = s.var("m");
    let mut c = Conjunct::new();
    c.add_geq(Affine::from_terms(&[(i, 1)], -1));
    c.add_geq(Affine::from_terms(&[(n, 1), (i, -1)], 0));
    c.add_geq(Affine::from_terms(&[(j, 1)], -1));
    c.add_geq(Affine::from_terms(&[(i, 1), (j, -1)], 0));
    c.add_geq(Affine::from_terms(&[(k, 1), (j, -1)], 0));
    c.add_geq(Affine::from_terms(&[(m, 1), (k, -1)], 0));
    (c, [i, j, k], n, m)
}

/// E4 (§6 Example 1): free order + redundancy elimination needs 2
/// terms where Tawbi's fixed order needs 3.
pub fn e4_example1_tawbi() -> Report {
    let mut s = Space::new();
    let (c, [i, j, k], n, _m) = example1_system(&mut s);
    let f = conjunct_to_formula(&c);
    let ours = count(&s, &f, &[i, j, k]);
    let tawbi = tawbi_sum(&c, &[k, j, i], &QPoly::one(), &mut s.clone());
    let brute = |nv: i64, mv: i64| -> i64 {
        let mut t = 0;
        for iv in 1..=nv {
            for jv in 1..=iv {
                t += (jv..=mv).count() as i64;
            }
        }
        t
    };
    let mut both_right = true;
    for nv in 0i64..=6 {
        for mv in 0i64..=6 {
            let b = brute(nv, mv);
            both_right &= ours.eval_i64(&[("n", nv), ("m", mv)]) == Some(b);
            both_right &= tawbi.value.eval(&s, &|v| {
                if v == n {
                    Int::from(nv)
                } else {
                    Int::from(mv)
                }
            }) == Rat::from(b);
        }
    }
    Report::new(
        "E4",
        "Example 1: free vs fixed elimination order",
        "ours needs 2 terms; Tawbi's splitting needs 3",
        format!(
            "ours {} pieces; Tawbi {} pieces; values correct={both_right}",
            ours.num_pieces(),
            tawbi.pieces
        ),
        ours.num_pieces() == 2 && tawbi.pieces == 3 && both_right,
    )
}

/// E5 (§6 Example 2 from \[HP93a\]): Σ over 1≤i≤n, 3≤j≤i, j≤k≤5.
pub fn e5_example2_hp() -> Report {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let k = s.var("k");
    let n = s.var("n");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::constant(3), j, Affine::var(i)),
        Formula::between(Affine::var(j), k, Affine::constant(5)),
    ]);
    let ours = count(&s, &f, &[i, j, k]);
    let hp = example2_hp_answer(n);
    let brute = |nv: i64| -> i64 {
        let mut t = 0;
        for iv in 1..=nv {
            for jv in 3..=iv {
                t += (jv..=5).count() as i64;
            }
        }
        t
    };
    let mut ok = true;
    let mut tail_ok = true;
    for nv in 0i64..=12 {
        let b = brute(nv);
        ok &= ours.eval_i64(&[("n", nv)]) == Some(b);
        ok &= hp.eval(&|_| Int::from(nv)) == Rat::from(b);
        if nv > 5 {
            tail_ok &= b == 6 * nv - 16; // the paper's 6n−16 region
        }
    }
    Report::new(
        "E5",
        "Example 2: vs Haghighat–Polychronopoulos",
        "ours: (6n−16 | 5<n) + cubic piece on 3≤n<5; HP's min/max form takes 9 steps",
        format!(
            "values match brute force={ok}; 6n−16 tail verified={tail_ok}; ours {} pieces; HP published form has {} min/max/p operators",
            ours.num_pieces(),
            hp.minmax_count()
        ),
        ok && tail_ok,
    )
}

/// E6 (§6 Example 3 from \[HP93a\]): Σ over 1≤i≤2n, 1≤j≤i, i+j≤2n = n².
pub fn e6_example3_hp() -> Report {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.var("n");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::term(n, 2)),
        Formula::between(Affine::constant(1), j, Affine::var(i)),
        Formula::le(Affine::var(i) + Affine::var(j), Affine::term(n, 2)),
    ]);
    let ours = count(&s, &f, &[i, j]);
    let ok = (0i64..=8).all(|nv| ours.eval_i64(&[("n", nv)]) == Some((nv.max(0)).pow(2)));
    Report::new(
        "E6",
        "Example 3: min(i, 2n−i) triangle",
        "n² (guard 1 ≤ n); HP's derivation takes 15 steps",
        format!(
            "n² verified for n=0..8: {ok}; ours {} piece(s)",
            ours.num_pieces()
        ),
        ok,
    )
}

/// E7 (§6 Example 4 from \[FST91\]): 25 distinct locations of
/// a(6i+9j−7); FST's coupled-subscript fallback gives 40.
pub fn e7_example4_fst() -> Report {
    let mut nest = LoopNest::new();
    let i = nest.add_loop("i", Affine::constant(1), Affine::constant(8));
    let j = nest.add_loop("j", Affine::constant(1), Affine::constant(5));
    let r = ArrayRef::new("a", vec![Affine::from_terms(&[(i, 6), (j, 9)], -7)]);
    let ours = distinct_locations(&nest, std::slice::from_ref(&r));
    let fst = fst_locations(&nest, &[r], 1);
    let got = ours.eval_i64(&[]);
    let fst_got = fst.value.eval_i64(&[]);
    Report::new(
        "E7",
        "Example 4: coupled subscript footprint",
        "25 distinct locations; [FST91] cannot handle coupled subscripts",
        format!(
            "ours={got:?}; FST conservative fallback={fst_got:?} (exact={})",
            fst.exact
        ),
        got == Some(25) && fst_got == Some(40) && !fst.exact,
    )
}

/// E8 (§6 Example 5): the SOR loop's memory and cache footprints.
pub fn e8_example5_sor() -> Report {
    let (nest, refs) = sor_nest();
    let loc = distinct_locations(&nest, &refs);
    let lines = distinct_cache_lines(&nest, &refs, 16);
    let loc500 = loc.eval_i64(&[("N", 500)]);
    let lines500 = lines.eval_i64(&[("N", 500)]);
    let sym_ok = [4i64, 10, 33, 100]
        .iter()
        .all(|&nv| loc.eval_i64(&[("N", nv)]) == Some(nv * nv - 4));
    let line_formula_ok = [10i64, 17, 20, 33, 100].iter().all(|&nv| {
        let base = nv * (1 + (nv - 2) / 16);
        let extra = if nv >= 17 && nv % 16 == 1 { nv - 2 } else { 0 };
        lines.eval_i64(&[("N", nv)]) == Some(base + extra)
    });
    Report::new(
        "E8",
        "Example 5: SOR footprint and cache lines",
        "249 996 locations and 16 000 cache lines at N=500; symbolically N²−4 and N(1+(N−2)÷16) [+ (N−2) when N≡1 (16), N≥17]",
        format!(
            "locations(500)={loc500:?}; lines(500)={lines500:?}; N²−4 checks={sym_ok}; line formula checks={line_formula_ok}"
        ),
        loc500 == Some(249_996) && lines500 == Some(16_000) && sym_ok && line_formula_ok,
    )
}

fn sor_nest() -> (LoopNest, Vec<ArrayRef>) {
    let mut nest = LoopNest::new();
    let n = nest.symbol("N");
    let i = nest.add_loop(
        "i",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let j = nest.add_loop(
        "j",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let a = |di: i64, dj: i64| {
        ArrayRef::new(
            "a",
            vec![
                Affine::var(i) + Affine::constant(di),
                Affine::var(j) + Affine::constant(dj),
            ],
        )
    };
    (nest, vec![a(0, 0), a(-1, 0), a(1, 0), a(0, -1), a(0, 1)])
}

/// E9 (§6 Example 6): the even/odd splinter sum.
pub fn e9_example6_parity() -> Report {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.var("n");
    let f = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::var(i)),
        Formula::le(Affine::constant(1), Affine::var(j)),
        Formula::le(Affine::var(j), Affine::var(n)),
        Formula::le(Affine::term(i, 2), Affine::term(j, 3)),
    ]);
    let ours = count(&s, &f, &[i, j]);
    let ok = (0i64..=12).all(|nv| {
        let expect = if nv >= 1 {
            (3 * nv * nv + 2 * nv - nv.rem_euclid(2)) / 4
        } else {
            0
        };
        ours.eval_i64(&[("n", nv)]) == Some(expect)
    });
    Report::new(
        "E9",
        "Example 6: parity splinter",
        "(3n² + 2n − (n mod 2))/4 with guard 1 ≤ n",
        format!("verified for n=0..12: {ok}; {} pieces", ours.num_pieces()),
        ok,
    )
}

/// E10 (§3.3): the HPF block-cyclic mapping.
pub fn e10_hpf_block_cyclic() -> Report {
    let d = BlockCyclic::new(8, 4);
    // block assignment spot checks from the paper's prose
    let prose = (0..=3).all(|t| d.owner(t) == 0)
        && (4..=7).all(|t| d.owner(t) == 1)
        && (28..=31).all(|t| d.owner(t) == 7)
        && (32..=35).all(|t| d.owner(t) == 0);
    // ownership counts over T(0:1024)
    let mut s = Space::new();
    let p = s.var("p");
    let counts = d.elements_on_processor(&s, Affine::constant(0), Affine::constant(1024), p);
    let mut per = Vec::new();
    let mut total = 0i64;
    for pv in 0..8i64 {
        let v = counts.eval_i64(&[("p", pv)]).unwrap_or(-1);
        per.push(v);
        total += v;
    }
    let counts_ok = per[0] == 129 && per[1..].iter().all(|&v| v == 128) && total == 1025;
    Report::new(
        "E10",
        "HPF block-cyclic distribution (§3.3)",
        "T(0:1024), 8 procs, block 4: mapping matches prose; proc 0 owns one extra cell",
        format!("prose checks={prose}; per-proc={per:?} (Σ={total})"),
        prose && counts_ok,
    )
}

/// E11 (§5.2): disjoint splintering when eliminating β from
/// 0 ≤ 3β − α ≤ 7 ∧ 1 ≤ α − 2β ≤ 5.
pub fn e11_disjoint_splintering() -> Report {
    let mut s = Space::new();
    let alpha = s.var("alpha");
    let beta = s.var("beta");
    let mut c = Conjunct::new();
    c.add_geq(Affine::from_terms(&[(beta, 3), (alpha, -1)], 0));
    c.add_geq(Affine::from_terms(&[(beta, -3), (alpha, 1)], 7));
    c.add_geq(Affine::from_terms(&[(alpha, 1), (beta, -2)], -1));
    c.add_geq(Affine::from_terms(&[(alpha, -1), (beta, 2)], 5));
    let overlapping = eliminate(&c, beta, &mut s, Shadow::ExactOverlapping);
    let disjoint = eliminate(&c, beta, &mut s, Shadow::ExactDisjoint);
    // ground truth: α ∈ {3} ∪ [5, 27] ∪ {29}
    let truth = |av: i64| av == 3 || (5..=27).contains(&av) || av == 29;
    let mut exact_ok = true;
    let mut disjoint_ok = true;
    for av in -5i64..=40 {
        let assign = |_: VarId| Int::from(av);
        let in_dis = disjoint
            .clauses
            .iter()
            .filter(|cl| cl.contains_point(&s, &assign))
            .count();
        let in_ovl = overlapping
            .clauses
            .iter()
            .any(|cl| cl.contains_point(&s, &assign));
        exact_ok &= in_ovl == truth(av) && (in_dis > 0) == truth(av);
        disjoint_ok &= in_dis <= 1;
    }
    Report::new(
        "E11",
        "disjoint splintering (§5.2)",
        "solutions α ∈ {3} ∪ [5..] ∪ {…}; disjoint clauses cover each α once",
        format!(
            "overlapping {} clauses, disjoint {} clauses; exact={exact_ok}; disjoint={disjoint_ok}",
            overlapping.clauses.len(),
            disjoint.clauses.len()
        ),
        exact_ok && disjoint_ok,
    )
}

/// E12 (§5.1): stencil summarization — hull method vs 0-1 encoding.
pub fn e12_stencil_summaries() -> Report {
    let mut s = Space::new();
    let d0 = s.var("d0");
    let d1 = s.var("d1");
    let five = vec![vec![0, 0], vec![-1, 0], vec![1, 0], vec![0, -1], vec![0, 1]];
    let four = vec![vec![0, 0], vec![-1, 0], vec![0, -1], vec![1, 0]];
    let mut nine = Vec::new();
    for a in -1..=1 {
        for b in -1..=1 {
            nine.push(vec![a, b]);
        }
    }
    let s5 = summarize_offsets(&five, &[d0, d1]);
    let s4 = summarize_offsets(&four, &[d0, d1]);
    let s9 = summarize_offsets(&nine, &[d0, d1]);
    // 0-1 encoding sizes: count clauses after projecting the z's
    let clauses_01 = |pts: &[Vec<i64>]| -> Option<usize> {
        let mut s2 = Space::new();
        let v0 = s2.var("d0");
        let v1 = s2.var("d1");
        let c = zero_one_encoding(pts, &[v0, v1], &mut s2);
        // A budget-exhaustion panic here is the expected outcome for
        // the 9-point stencil; silence the default hook while probing.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            presburger_omega::dnf::project_wildcards(&c, &mut s2, Shadow::ExactOverlapping).len()
        }));
        std::panic::set_hook(prev);
        out.ok()
    };
    let c5 = clauses_01(&five);
    let c9 = clauses_01(&nine);
    let hull_ok = s4.exact && s5.exact && s9.exact;
    Report::new(
        "E12",
        "stencil summarization (§5.1)",
        "hull+strides summarize 4/5-point exactly; the 0-1 encoding works for 4/5-point but defeats the simplifier on 9-point",
        format!(
            "hull exact: 4pt={}, 5pt={}, 9pt={}; 0-1 projection clauses: 5pt={c5:?}, 9pt={c9:?}",
            s4.exact, s5.exact, s9.exact
        ),
        hull_ok,
    )
}

/// A1: redundant-constraint elimination on/off (§4.4 step 1).
pub fn a1_redundancy_ablation() -> Report {
    let mut s = Space::new();
    let (c, [i, j, k], n, _m) = example1_system(&mut s);
    let f = conjunct_to_formula(&c);
    let with = try_count_solutions(&s, &f, &[i, j, k], &CountOptions::default()).unwrap();
    let without = try_count_solutions(
        &s,
        &f,
        &[i, j, k],
        &CountOptions {
            remove_redundant: false,
            ..CountOptions::default()
        },
    )
    .unwrap();
    let mut agree = true;
    for nv in 0i64..=5 {
        for mv in 0i64..=5 {
            agree &=
                with.eval_i64(&[("n", nv), ("m", mv)]) == without.eval_i64(&[("n", nv), ("m", mv)]);
        }
    }
    let _ = n;
    Report::new(
        "A1",
        "ablation: redundant-constraint elimination",
        "eliminating redundant constraints reduces case splits (§6 conclusions)",
        format!(
            "pieces with elimination={}, without={}; values agree={agree}",
            with.num_pieces(),
            without.num_pieces()
        ),
        agree && with.num_pieces() <= without.num_pieces(),
    )
}

/// A2: free vs fixed elimination order across triangular depths.
pub fn a2_order_ablation() -> Report {
    let mut rows = Vec::new();
    let mut pass = true;
    let mut strictly_better_somewhere = false;
    for depth in 3..=5usize {
        // generalized Example 1:
        //   1 ≤ v₁ ≤ n;  1 ≤ vₜ ≤ vₜ₋₁ (t = 2..depth−1);
        //   v_{depth−1} ≤ v_depth ≤ m
        let mut s = Space::new();
        let vars: Vec<VarId> = (0..depth).map(|d| s.var(&format!("v{d}"))).collect();
        let n = s.var("n");
        let m = s.var("m");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(vars[0], 1)], -1)); // 1 ≤ v1
        c.add_geq(Affine::from_terms(&[(n, 1), (vars[0], -1)], 0)); // v1 ≤ n
        for t in 1..depth - 1 {
            c.add_geq(Affine::from_terms(&[(vars[t], 1)], -1)); // 1 ≤ vt
            c.add_geq(Affine::from_terms(&[(vars[t - 1], 1), (vars[t], -1)], 0));
            // vt ≤ vt−1
        }
        c.add_geq(Affine::from_terms(
            &[(vars[depth - 1], 1), (vars[depth - 2], -1)],
            0,
        )); // v_{d−1} ≤ v_d
        c.add_geq(Affine::from_terms(&[(m, 1), (vars[depth - 1], -1)], 0)); // v_d ≤ m
        let f = conjunct_to_formula(&c);
        let ours = count(&s, &f, &vars);
        let mut order = vars.clone();
        order.reverse(); // innermost (last) first
        let tw = tawbi_sum(&c, &order, &QPoly::one(), &mut s.clone());
        rows.push(format!(
            "depth {depth}: ours={} tawbi={}",
            ours.num_pieces(),
            tw.pieces
        ));
        pass &= ours.num_pieces() <= tw.pieces;
        strictly_better_somewhere |= ours.num_pieces() < tw.pieces;
    }
    pass &= strictly_better_somewhere;
    Report::new(
        "A2",
        "ablation: free vs fixed elimination order",
        "free order never needs more pieces than the fixed order",
        rows.join("; "),
        pass,
    )
}

/// A3: disjoint DNF vs inclusion–exclusion (§4.5.1): number of
/// summations for k overlapping references.
pub fn a3_disjoint_vs_inclusion_exclusion() -> Report {
    let mut rows = Vec::new();
    let mut pass = true;
    for k in 2..=5usize {
        let mut nest = LoopNest::new();
        let n = nest.symbol("N");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let refs: Vec<ArrayRef> = (0..k as i64)
            .map(|o| ArrayRef::new("a", vec![Affine::var(i) + Affine::constant(o)]))
            .collect();
        let ours = distinct_locations(&nest, &refs);
        let fst = fst_locations(&nest, &refs, k);
        let mut agree = true;
        for nv in 0i64..=8 {
            agree &= ours.eval_i64(&[("N", nv)]) == fst.value.eval_i64(&[("N", nv)]);
        }
        rows.push(format!(
            "k={k}: incl-excl {} summations (2^k−1={}), ours 1 query; agree={agree}",
            fst.summations,
            (1 << k) - 1
        ));
        pass &= agree && fst.summations == (1 << k) - 1;
    }
    Report::new(
        "A3",
        "ablation: disjoint DNF vs inclusion–exclusion",
        "inclusion–exclusion needs 2^k−1 summations; disjoint DNF needs one pass",
        rows.join("; "),
        pass,
    )
}

/// A4: exact vs approximate counting (§4.6).
pub fn a4_exact_vs_approximate() -> Report {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.var("n");
    let f = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::var(i)),
        Formula::le(Affine::constant(1), Affine::var(j)),
        Formula::le(Affine::var(j), Affine::var(n)),
        Formula::le(Affine::term(i, 2), Affine::term(j, 3)),
    ]);
    let exact = count(&s, &f, &[i, j]);
    let upper = try_count_solutions(
        &s,
        &f,
        &[i, j],
        &CountOptions {
            mode: Mode::UpperBound,
            ..CountOptions::default()
        },
    )
    .unwrap();
    let lower = try_count_solutions(
        &s,
        &f,
        &[i, j],
        &CountOptions {
            mode: Mode::LowerBound,
            ..CountOptions::default()
        },
    )
    .unwrap();
    let mut bracket = true;
    let mut sample = String::new();
    for nv in 1i64..=12 {
        let e = exact.eval_rat(&[("n", nv)]);
        let u = upper.eval_rat(&[("n", nv)]);
        let l = lower.eval_rat(&[("n", nv)]);
        bracket &= l <= e && e <= u;
        if nv == 9 {
            sample = format!("n=9: {} ≤ {} ≤ {}", l, e, u);
        }
    }
    Report::new(
        "A4",
        "ablation: exact vs approximate (§4.6)",
        "upper/lower bounds bracket the exact count; bounds avoid splintering",
        format!(
            "bracketing holds for n=1..12; {sample}; pieces exact={} upper={} lower={}",
            exact.num_pieces(),
            upper.num_pieces(),
            lower.num_pieces()
        ),
        bracket,
    )
}

/// A5: the min/max answer form the paper developed and rejected (§6).
pub fn a5_minmax_answer_form() -> Report {
    use presburger_counting::minmax::sum_var_minmax;
    use presburger_polyq::mexpr::MExpr;
    let mut s = Space::new();
    let x = s.var("x");
    let n = s.var("n");
    let m = s.var("m");
    let k = s.var("k");
    // three competing upper bounds: 1 <= x <= min(n, m, k)
    let mut c = Conjunct::new();
    c.add_geq(Affine::from_terms(&[(x, 1)], -1));
    for sym in [n, m, k] {
        c.add_geq(Affine::from_terms(&[(sym, 1), (x, -1)], 0));
    }
    let mm = sum_var_minmax(&c, x, &[MExpr::int(1)]).expect("min/max summable");
    let exact = count(&s, &c.to_formula(), &[x]);
    let mut agree = true;
    for nv in 0i64..=5 {
        for mv in 0i64..=5 {
            for kv in 0i64..=5 {
                let brute = nv.min(mv).min(kv).max(0);
                let got_mm = mm.expr.eval(&|w| {
                    if w == n {
                        Int::from(nv)
                    } else if w == m {
                        Int::from(mv)
                    } else {
                        Int::from(kv)
                    }
                });
                agree &= got_mm == Rat::from(brute);
                agree &= exact.eval_i64(&[("n", nv), ("m", mv), ("k", kv)]) == Some(brute);
            }
        }
    }
    Report::new(
        "A5",
        "ablation: min/max answer form (§6, rejected alternative)",
        "avoids bound splits but the results are \"much more complicated\"",
        format!(
            "min/max: 1 expr, {} min/max/p ops, size {}; guarded: {} pieces; agree={agree}",
            mm.expr.minmax_count(),
            mm.expr.size(),
            exact.num_pieces()
        ),
        agree && mm.expr.minmax_count() >= 3 && exact.num_pieces() >= 3,
    )
}

/// A6: adaptive bounds-first counting (§4's cost advice).
pub fn a6_adaptive_bounds() -> Report {
    use presburger_counting::adaptive::count_adaptive;
    let mut s = Space::new();
    let x = s.var("x");
    let n = s.var("n");
    let f = Formula::and(vec![
        Formula::le(Affine::constant(0), Affine::var(x)),
        Formula::le(Affine::term(x, 7), Affine::var(n)),
    ]);
    // small n: large relative gap -> exact pass taken
    let tight = count_adaptive(&s, &f, &[x], &[&[("n", 5)]], 0.05).expect("countable");
    // large n: gap negligible -> bounds suffice
    let loose = count_adaptive(&s, &f, &[x], &[&[("n", 70_000)]], 0.01).expect("countable");
    let pass = tight.exact.is_some() && loose.exact.is_none();
    Report::new(
        "A6",
        "ablation: bounds-first adaptive counting (§4)",
        "\"compute both bounds; only if far apart compute the exact answer\"",
        format!(
            "gap at n=5: {:.2} -> exact computed; gap at n=70000: {:.5} -> bounds kept",
            tight.max_relative_gap, loose.max_relative_gap
        ),
        pass,
    )
}

/// The A3-style stencil union: locations touched by `a[i+o]` for
/// `o < k` over `i ∈ [1, n]`, i.e. the union of `k` overlapping
/// intervals `[1+o, n+o]` — `make_disjoint` turns them into `k`
/// disjoint clause tasks.
pub fn stress_stencil_union(s: &mut Space, k: usize) -> (Formula, Vec<VarId>) {
    let x = s.var("x");
    let n = s.var("n");
    let clauses = (0..k as i64)
        .map(|o| {
            Formula::between(
                Affine::constant(1 + o),
                x,
                Affine::var(n) + Affine::constant(o),
            )
        })
        .collect();
    (Formula::or(clauses), vec![x])
}

/// The heavy per-clause stress family: the E9 parity region
/// `1 ≤ i ∧ 1 ≤ j ≤ n ∧ 2i ≤ 3j` partitioned into `k` clauses by the
/// residue of `i` mod `k`. Every clause carries a stride and a non-unit
/// coefficient, so every clause task splinters — the worst case the
/// parallel pipeline is built for. The union telescopes back to E9's
/// closed form `(3n² + 2n − (n mod 2))/4`.
pub fn stress_residue_stencil(s: &mut Space, k: usize) -> (Formula, Vec<VarId>) {
    let i = s.var("i");
    let j = s.var("j");
    let n = s.var("n");
    let clauses = (0..k as i64)
        .map(|c| {
            Formula::and(vec![
                Formula::le(Affine::constant(1), Affine::var(i)),
                Formula::le(Affine::constant(1), Affine::var(j)),
                Formula::le(Affine::var(j), Affine::var(n)),
                Formula::le(Affine::term(i, 2), Affine::term(j, 3)),
                Formula::stride(k as i64, Affine::var(i) - Affine::constant(c)),
            ])
        })
        .collect();
    (Formula::or(clauses), vec![i, j])
}

fn count_with_threads(space: &Space, f: &Formula, vars: &[VarId], threads: usize) -> Symbolic {
    let opts = CountOptions {
        threads,
        ..CountOptions::default()
    };
    try_count_solutions(space, f, vars, &opts).expect("stress count failed")
}

/// S1: many-clause determinism — identical answers and identical
/// counter totals at every thread count, for both stress families.
pub fn s1_manyclause_determinism() -> Report {
    let mut pass = true;
    let mut rows = Vec::new();
    for k in [8usize, 10, 12] {
        let mut s = Space::new();
        let (f, vars) = stress_stencil_union(&mut s, k);
        let meter = |threads: usize| {
            let before = trace::snapshot();
            let r = count_with_threads(&s, &f, &vars, threads);
            (r, trace::snapshot().delta(&before))
        };
        let (r1, c1) = meter(1);
        let (r2, c2) = meter(2);
        let (r4, c4) = meter(4);
        let identical = r1.to_display_string() == r2.to_display_string()
            && r1.to_display_string() == r4.to_display_string();
        // Memo hit/miss patterns legitimately vary with table warmth
        // and thread partitioning; every replayed counter must not.
        let counters_match = c1.without_memo_meta() == c2.without_memo_meta()
            && c1.without_memo_meta() == c4.without_memo_meta();
        // the union of the k shifted intervals sweeps [1, n+k−1]
        let values_ok = (0i64..=9).all(|nv| {
            let expect = if nv >= 1 { nv + k as i64 - 1 } else { 0 };
            r4.eval_i64(&[("n", nv)]) == Some(expect)
        });
        pass &= identical && counters_match && values_ok;
        rows.push(format!(
            "k={k}: identical={identical} counters_match={counters_match} values_ok={values_ok}"
        ));
    }
    {
        let mut s = Space::new();
        let (f, vars) = stress_residue_stencil(&mut s, 8);
        let r1 = count_with_threads(&s, &f, &vars, 1);
        let r4 = count_with_threads(&s, &f, &vars, 4);
        let identical = r1.to_display_string() == r4.to_display_string();
        let closed_form_ok = (0i64..=12).all(|nv| {
            let expect = if nv >= 1 {
                (3 * nv * nv + 2 * nv - nv.rem_euclid(2)) / 4
            } else {
                0
            };
            r4.eval_i64(&[("n", nv)]) == Some(expect)
        });
        pass &= identical && closed_form_ok;
        rows.push(format!(
            "residue k=8: identical={identical} closed_form_ok={closed_form_ok}"
        ));
    }
    Report::new(
        "S1",
        "stress: many-clause determinism at 1/2/4 threads",
        "byte-identical answers and counter totals at any thread count",
        rows.join("; "),
        pass,
    )
}

/// S2: many-clause wall-clock — the 12-clause residue stencil summed at
/// 1 and 4 worker threads. The speedup lands in the `par_speedup`
/// column; the pass criterion is determinism (timing depends on the
/// machine's core count and is reported, not gated, here — see
/// `scripts/check.sh` for the cross-thread-count output gate).
pub fn s2_manyclause_speedup() -> Report {
    const K: usize = 12;
    let mut s = Space::new();
    let (f, vars) = stress_residue_stencil(&mut s, K);
    let time_at = |threads: usize| {
        let mut best = Duration::MAX;
        let mut result = None;
        for _ in 0..3 {
            let t = Instant::now();
            let r = count_with_threads(&s, &f, &vars, threads);
            best = best.min(t.elapsed());
            result = Some(r);
        }
        (result.expect("three runs"), best)
    };
    let (r1, t1) = time_at(1);
    let (r4, t4) = time_at(4);
    let identical = r1.to_display_string() == r4.to_display_string();
    let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut r = Report::new(
        "S2",
        "stress: 12-clause pipeline wall-clock at 4 threads",
        "clause tasks are independent (§4.5.1), so wall time scales with cores",
        format!("identical answers at 1 and 4 threads: {identical} (speedup in par_speedup column; {cores} core(s) available)"),
        identical,
    );
    r.par_speedup = Some(speedup);
    r
}

/// S3: cross-request memoization under a zipf-skewed request mix.
///
/// A serving process sees the same few queries over and over (a few hot
/// formulas, a long tail); this experiment replays that shape against
/// the sub-problem memo. A fixed-seed stream of requests is drawn
/// zipf-style over a pool of distinct splinter-heavy queries, then run
/// twice from a cold table: once with the memo off, once with it on.
/// The pass criterion is transparency (byte-identical rendered answers,
/// with at least one hit); the hit rate and the wall-clock speedup land
/// in `memo_hit_rate` / `memo_speedup` in `BENCH_counters.json`, where
/// `scripts/check.sh`'s memo gate enforces them.
pub fn s3_memo_zipf() -> Report {
    const POOL: usize = 16;
    const REQUESTS: usize = 120;
    // The query pool: each entry owns its space, mirroring independent
    // requests — nothing is shared except what the memo deduplicates.
    let mut pool: Vec<(Space, Formula, Vec<VarId>)> = Vec::new();
    for k in 3..=10 {
        let mut s = Space::new();
        let (f, vars) = stress_residue_stencil(&mut s, k);
        pool.push((s, f, vars));
    }
    for k in [6usize, 8, 10, 12, 14, 16, 18, 20] {
        let mut s = Space::new();
        let (f, vars) = stress_stencil_union(&mut s, k);
        pool.push((s, f, vars));
    }
    assert_eq!(pool.len(), POOL);
    // Zipf(1.0): request rank i is drawn with probability ∝ 1/(i+1),
    // sampled with a fixed-seed LCG so the stream is reproducible.
    let weights: Vec<f64> = (0..POOL).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut state: u64 = 0x243F_6A88_85A3_08D3;
    let stream: Vec<usize> = (0..REQUESTS)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
            let mut acc = 0.0;
            for (i, w) in weights.iter().enumerate() {
                acc += w;
                if u < acc {
                    return i;
                }
            }
            POOL - 1
        })
        .collect();
    let run_stream = |memo: bool| -> (Vec<String>, Duration, PipelineStats) {
        trace::memo::clear_local();
        trace::memo::clear_shared();
        let before = trace::snapshot();
        let t = Instant::now();
        let answers: Vec<String> = stream
            .iter()
            .map(|&q| {
                let (s, f, vars) = &pool[q];
                let opts = CountOptions {
                    memo,
                    ..CountOptions::default()
                };
                try_count_solutions(s, f, vars, &opts)
                    .expect("zipf request failed")
                    .to_display_string()
            })
            .collect();
        (answers, t.elapsed(), trace::snapshot().delta(&before))
    };
    let (off_answers, t_off, _) = run_stream(false);
    let (on_answers, t_on, on_stats) = run_stream(true);
    let identical = off_answers == on_answers;
    let hits = on_stats.get(Counter::MemoHit);
    let misses = on_stats.get(Counter::MemoMiss);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let speedup = t_off.as_secs_f64() / t_on.as_secs_f64().max(1e-9);
    let mut r = Report::new(
        "S3",
        "stress: zipf request mix, memo-on vs memo-off",
        "skewed request mixes repeat sub-problems; memoization shortcuts them without changing any answer",
        format!(
            "identical answers across {REQUESTS} zipf requests over {POOL} distinct queries, \
             memo-on vs memo-off: {identical} (hit rate and speedup in BENCH_counters.json)"
        ),
        identical && hits > 0,
    );
    r.memo_hit_rate = Some(hit_rate);
    r.memo_speedup = Some(speedup);
    r
}

/// Rebuilds a (wildcard-free) conjunct as a formula.
fn conjunct_to_formula(c: &Conjunct) -> Formula {
    let mut parts = Vec::new();
    for e in c.eqs() {
        parts.push(Formula::eq0(e.clone()));
    }
    for e in c.geqs() {
        parts.push(Formula::ge(e.clone()));
    }
    for (m, e) in c.strides() {
        parts.push(Formula::stride(m.clone(), e.clone()));
    }
    Formula::and(parts)
}

/// Re-export used by benches for workload generation.
pub fn brute_force_reference(
    f: &Formula,
    vars: &[VarId],
    range: std::ops::RangeInclusive<i64>,
    sym: &dyn Fn(VarId) -> Int,
) -> u64 {
    enumerate::count_formula(f, vars, range, sym)
}

/// Helper for benches: the MExpr type's evaluation cost sample.
pub fn hp_answer_sample(n: VarId) -> MExpr {
    example2_hp_answer(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_pass() {
        for r in all_experiments() {
            assert!(
                r.pass,
                "{} {} failed: measured {}",
                r.id, r.title, r.measured
            );
        }
    }
}
