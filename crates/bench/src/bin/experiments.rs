//! Prints the paper-vs-measured table for every experiment.
//!
//! ```text
//! cargo run --release -p presburger-bench --bin experiments
//! ```

use presburger_bench::all_experiments;

fn main() {
    println!("| Id | Experiment | Paper | Measured | Pass |");
    println!("|----|------------|-------|----------|------|");
    let mut failures = 0;
    for r in all_experiments() {
        println!(
            "| {} | {} | {} | {} | {} |",
            r.id,
            r.title,
            r.paper.replace('|', "\\|"),
            r.measured.replace('|', "\\|"),
            if r.pass { "✅" } else { "❌" }
        );
        if !r.pass {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
