//! Prints the paper-vs-measured table for every experiment, with the
//! pipeline counters each one fired, and writes the machine-readable
//! `BENCH_counters.json` next to the current directory.
//!
//! `BENCH_counters.json` is one object: a `schema` header listing every
//! counter name once (in declaration order), then `rows` whose
//! `counters` objects carry only the *nonzero* values — a diff of the
//! file tracks signal, not the ~40 permanent zeros a typical experiment
//! never touches.
//!
//! ```text
//! cargo run --release -p presburger-bench --bin experiments
//! ```

use presburger_bench::all_experiments;
use presburger_trace::json::{array, JsonObject};
use presburger_trace::Counter;

fn main() {
    println!("| Id | Experiment | Paper | Measured | Counters | ms | par_speedup | Pass |");
    println!("|----|------------|-------|----------|----------|----|-------------|------|");
    let mut failures = 0;
    let mut entries = Vec::new();
    for r in all_experiments() {
        println!(
            "| {} | {} | {} | {} | {} | {:.1} | {} | {} |",
            r.id,
            r.title,
            r.paper.replace('|', "\\|"),
            r.measured.replace('|', "\\|"),
            r.counter_summary().replace('|', "\\|"),
            r.wall.as_secs_f64() * 1e3,
            r.par_speedup
                .map_or("—".to_string(), |s| format!("{s:.2}×")),
            if r.pass { "✅" } else { "❌" }
        );
        if !r.pass {
            failures += 1;
        }
        let mut obj = JsonObject::new();
        obj.field_str("id", r.id);
        obj.field_str("title", r.title);
        obj.field_bool("pass", r.pass);
        obj.field_f64("wall_ms", r.wall.as_secs_f64() * 1e3);
        if let Some(s) = r.par_speedup {
            obj.field_f64("par_speedup", s);
        }
        if let Some(h) = r.memo_hit_rate {
            obj.field_f64("memo_hit_rate", h);
        }
        if let Some(s) = r.memo_speedup {
            obj.field_f64("memo_speedup", s);
        }
        obj.field_raw("counters", &r.counters.to_json_nonzero());
        entries.push(obj.finish());
    }
    let path = "BENCH_counters.json";
    let mut schema = JsonObject::new();
    schema.field_raw(
        "counters",
        &array(
            Counter::ALL
                .iter()
                .map(|c| format!("\"{}\"", c.name()))
                .collect::<Vec<String>>(),
        ),
    );
    let mut doc = JsonObject::new();
    doc.field_raw("schema", &schema.finish())
        .field_raw("rows", &array(entries));
    match std::fs::write(path, doc.finish() + "\n") {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
