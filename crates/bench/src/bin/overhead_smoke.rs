//! Verifies that the trace instrumentation is effectively free when the
//! collector is disabled (the acceptance bound for the observability
//! layer: < 5% of E3's wall time).
//!
//! Methodology: a disabled counter hook is one thread-local boolean
//! load, so its unit cost can be measured in isolation with a tight
//! loop. One *enabled* run of the §2.6 simplification (experiment E3)
//! counts how many hooks fire per run; `hooks × unit cost` then bounds
//! the disabled-collector overhead, which is compared against the
//! median untraced wall time of the same simplification.
//!
//! The same bound must hold when the counting engine spawns worker
//! threads: each worker adds one fork handle
//! (`fork_scope`/`begin`/`finish`/`merge_fork_part` round trip), so the
//! handle's disabled-path cost is measured the same way and gated at
//! the same 5% — workers are far rarer than hooks, so in practice this
//! asserts the handle is no more expensive than a handful of hook
//! loads.
//!
//! ```text
//! cargo run --release -p presburger-bench --bin overhead_smoke
//! ```

use presburger_bench::experiments::section26_formula;
use presburger_omega::dnf::{simplify, SimplifyOptions};
use presburger_trace::{self as trace, Counter};
use std::time::Instant;

/// The E3 workload: simplify the §2.6 dependence formula.
fn e3_once() {
    let mut s = presburger_omega::Space::new();
    let (f, _, _, _) = section26_formula(&mut s);
    let d = simplify(&f, &mut s, &SimplifyOptions::default());
    std::hint::black_box(d);
}

fn main() {
    // 1. Hook firings per E3 run: every bump/add is one hook; summing
    //    the counter values over-counts hooks that add more than 1,
    //    which only makes the bound more conservative.
    trace::enable_counters(true);
    trace::reset();
    e3_once();
    let hooks: u64 = Counter::ALL.iter().map(|&c| trace::snapshot().get(c)).sum();
    trace::enable_counters(false);
    trace::reset();

    // 2. Unit cost of a disabled hook.
    const HOOK_LOOPS: u32 = 10_000_000;
    let t = Instant::now();
    for _ in 0..HOOK_LOOPS {
        trace::bump(std::hint::black_box(Counter::FeasibilityChecks));
    }
    let per_hook_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(HOOK_LOOPS);

    // 2a. Unit cost of a disabled gauge hook. Since the governor
    //     joined the flags bitfield, `record_max` (like `add`) guards
    //     on counting|governed in one thread-local load; with no
    //     governed region installed this measures the whole
    //     disabled-governor path.
    let t = Instant::now();
    for _ in 0..HOOK_LOOPS {
        trace::record_max(
            std::hint::black_box(Counter::MaxCoeffBits),
            std::hint::black_box(1),
        );
    }
    let per_gauge_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(HOOK_LOOPS);

    // 2b. Unit cost of a disabled fork handle (what every spawned
    //     worker pays when tracing is off).
    const FORK_LOOPS: u32 = 1_000_000;
    let t = Instant::now();
    for _ in 0..FORK_LOOPS {
        let scope = std::hint::black_box(trace::fork_scope());
        let handle = scope.begin();
        trace::merge_fork_part(std::hint::black_box(handle.finish()));
    }
    let per_fork_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(FORK_LOOPS);

    // 2c. Unit cost of a disabled request-metrics observation (what the
    //     serve worker pays per request when telemetry histograms are
    //     off): one relaxed atomic load, however many series exist.
    let metrics = presburger_trace::RequestMetrics::new(false);
    let t = Instant::now();
    for i in 0..HOOK_LOOPS {
        metrics.observe_request(std::hint::black_box(
            presburger_trace::metrics::RequestObservation {
                verb: presburger_trace::metrics::ReqVerb::Count,
                outcome: presburger_trace::metrics::ReqOutcome::Ok,
                lane: presburger_trace::metrics::ReqLane::Batch,
                duration_us: u64::from(i),
                queue_wait_us: 1,
                govern_overhead_us: 1,
                splinters: Some(17),
            },
        ));
    }
    let per_obs_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(HOOK_LOOPS);
    assert!(
        metrics.duration_merged(None).is_empty(),
        "a disabled registry must record nothing"
    );

    // 2d. Unit cost of the memo stand-down guard: with the memo off
    //     (`CountOptions.memo = false` / `PRESBURGER_MEMO=0`), every
    //     memoizable call site (eliminate, Smith, Faulhaber) evaluates
    //     `memo::active()` and nothing else — no key is built. No memo
    //     scope is installed on this thread, so this loop measures
    //     exactly that disabled path.
    assert!(
        !trace::memo::active(),
        "overhead loop must measure the disabled path"
    );
    let t = Instant::now();
    for _ in 0..HOOK_LOOPS {
        std::hint::black_box(trace::memo::active());
    }
    let per_memo_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(HOOK_LOOPS);

    // 2e. Per-request cost of the shard router (DESIGN.md §14): one
    //     `routing_hash` (canonical intern key of the parsed formula)
    //     plus one consistent-hash `route` per request, measured on the
    //     §2.6 dependence formula — a far larger routing key than the
    //     stress mix's. Unlike the hooks above this path has no
    //     disabled state: every pooled request pays it exactly once, so
    //     its full cost is gated directly.
    let routed_query = {
        let line = "count r0 {x,y : 1 <= x && x <= 9 && 0 <= y && y <= x}";
        match presburger_serve::parse_request(line) {
            Ok(presburger_serve::Request::Query(q)) => q,
            other => panic!("routing workload must parse: {other:?}"),
        }
    };
    let ring = presburger_serve::Ring::new(4, 64);
    const ROUTE_LOOPS: u32 = 100_000;
    let t = Instant::now();
    for _ in 0..ROUTE_LOOPS {
        let h = presburger_serve::routing_hash(std::hint::black_box(&routed_query));
        std::hint::black_box(ring.route(h));
    }
    let per_route_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(ROUTE_LOOPS);

    // 2f. Per-request cost of the binary wire codec (DESIGN.md §15):
    //     one request frame encode + decode plus one reply frame
    //     encode + decode, on the same §2.6-style query as the routing
    //     workload. Like routing this path has no disabled state — a
    //     binary connection pays it exactly once per request — so its
    //     full round-trip cost is gated directly against E3.
    let wire_req = presburger_serve::parse_request(
        "count w0 max_splinters=512 {x,y : 1 <= x && x <= 9 && 0 <= y && y <= x}",
    )
    .expect("wire workload must parse");
    let wire_reply = presburger_serve::wire::Reply::from_text("OK w0 exact 45");
    const WIRE_LOOPS: u32 = 100_000;
    let t = Instant::now();
    for _ in 0..WIRE_LOOPS {
        let frame = presburger_serve::wire::encode_request(std::hint::black_box(&wire_req));
        std::hint::black_box(
            presburger_serve::wire::decode_wire_request(std::hint::black_box(&frame))
                .expect("round-trips"),
        );
        let frame = std::hint::black_box(&wire_reply).encode();
        std::hint::black_box(
            presburger_serve::wire::Reply::decode(std::hint::black_box(&frame))
                .expect("round-trips"),
        );
    }
    let per_wire_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(WIRE_LOOPS);

    // 2g. Per-request cost of the admission layer (DESIGN.md §16): one
    //     quota-ledger check (a token-bucket tick under the ledger
    //     lock, cycling four client identities so the bucket map is
    //     exercised), one lane push + strict-priority pop, one
    //     load-derived hint and one detailed shed reason. Reasons are
    //     only rendered on sheds and hints only on full queues, so
    //     charging both to every request is conservative. Admission
    //     runs once per request, before the engine — like routing, its
    //     full cost is gated directly against E3.
    let ledger = presburger_serve::QuotaLedger::new(
        presburger_serve::QuotaConfig {
            burst: 1,
            refill_milli: 1000,
            tick_ms: 100,
        },
        1024,
    );
    let mut lanes = presburger_serve::admission::LaneQueues::new(8);
    let clients = ["c0", "c1", "c2", "c3"];
    const ADMIT_LOOPS: u32 = 100_000;
    let t = Instant::now();
    for i in 0..ADMIT_LOOPS {
        let client = clients[(i % 4) as usize];
        std::hint::black_box(ledger.check(std::hint::black_box(client)));
        let lane = presburger_serve::Lane::ALL[(i % 3) as usize];
        lanes.push(lane, std::hint::black_box(i));
        std::hint::black_box(lanes.pop());
        std::hint::black_box(presburger_serve::admission::load_hint_ms(
            std::hint::black_box(u64::from(i % 64)),
            1_500,
            50,
            60_000,
        ));
        std::hint::black_box(presburger_serve::admission::shed_reason(
            "queue_full",
            lane,
            std::hint::black_box(u64::from(i % 64)),
            true,
        ));
    }
    let per_admit_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(ADMIT_LOOPS);

    // 3. Median untraced E3 wall time.
    let mut walls: Vec<f64> = (0..15)
        .map(|_| {
            let t = Instant::now();
            e3_once();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(|a, b| a.total_cmp(b));
    let median_ms = walls[walls.len() / 2];

    // A generous worker-count bound: one fork handle per worker per
    // sum_formula call; E3-sized work never spawns more than this.
    const FORKS_PER_RUN: f64 = 64.0;
    let overhead_ms = hooks as f64 * per_hook_ns / 1e6;
    // Gauge hooks are a (small) subset of all hooks; bounding them by
    // the full hook count is conservative.
    let gauge_overhead_ms = hooks as f64 * per_gauge_ns / 1e6;
    let fork_overhead_ms = FORKS_PER_RUN * per_fork_ns / 1e6;
    // A request records one observation; bounding by the fork count is
    // already 64× conservative for an E3-sized request.
    let obs_overhead_ms = FORKS_PER_RUN * per_obs_ns / 1e6;
    // Every memoizable call site bumps at least one counter, so the
    // hook count bounds the number of memo guards per run.
    let memo_overhead_ms = hooks as f64 * per_memo_ns / 1e6;
    // A pooled request routes exactly once — the multiplier here is 1,
    // not the 64× used for the per-worker hooks above, because routing
    // happens at admission, never inside the compute.
    let route_overhead_ms = per_route_ns / 1e6;
    // Likewise a binary request is framed and unframed exactly once per
    // direction; the loop above already measures both directions.
    let wire_overhead_ms = per_wire_ns / 1e6;
    // And a request is admitted exactly once (pool failover re-enqueues
    // bypass metering), so the admission multiplier is also 1.
    let admit_overhead_ms = per_admit_ns / 1e6;
    let pct = 100.0 * overhead_ms / median_ms;
    let gauge_pct = 100.0 * gauge_overhead_ms / median_ms;
    let fork_pct = 100.0 * fork_overhead_ms / median_ms;
    let obs_pct = 100.0 * obs_overhead_ms / median_ms;
    let memo_pct = 100.0 * memo_overhead_ms / median_ms;
    let route_pct = 100.0 * route_overhead_ms / median_ms;
    let wire_pct = 100.0 * wire_overhead_ms / median_ms;
    let admit_pct = 100.0 * admit_overhead_ms / median_ms;
    println!("hooks per E3 run:        {hooks}");
    println!("disabled hook cost:      {per_hook_ns:.2} ns");
    println!("disabled gauge hook:     {per_gauge_ns:.2} ns");
    println!("disabled fork handle:    {per_fork_ns:.2} ns");
    println!("disabled request metric: {per_obs_ns:.2} ns");
    println!("disabled memo guard:     {per_memo_ns:.2} ns");
    println!("shard route cost:        {per_route_ns:.2} ns");
    println!("wire codec round trip:   {per_wire_ns:.2} ns");
    println!("admission path cost:     {per_admit_ns:.2} ns");
    println!("E3 median wall:          {median_ms:.3} ms");
    println!("estimated overhead:      {overhead_ms:.4} ms ({pct:.2}% of E3)");
    println!("gauge/governor overhead: {gauge_overhead_ms:.4} ms ({gauge_pct:.2}% of E3)");
    println!(
        "fork-handle overhead:    {fork_overhead_ms:.4} ms at 64 workers ({fork_pct:.2}% of E3)"
    );
    println!(
        "request-metrics overhead: {obs_overhead_ms:.4} ms at 64 observations ({obs_pct:.2}% of E3)"
    );
    if pct >= 5.0 {
        eprintln!("FAIL: disabled-collector overhead {pct:.2}% >= 5%");
        std::process::exit(1);
    }
    if gauge_pct >= 5.0 {
        eprintln!("FAIL: disabled-governor gauge overhead {gauge_pct:.2}% >= 5%");
        std::process::exit(1);
    }
    if fork_pct >= 5.0 {
        eprintln!("FAIL: disabled fork-handle overhead {fork_pct:.2}% >= 5%");
        std::process::exit(1);
    }
    if obs_pct >= 5.0 {
        eprintln!("FAIL: disabled request-metrics overhead {obs_pct:.2}% >= 5%");
        std::process::exit(1);
    }
    println!("memo-guard overhead:     {memo_overhead_ms:.4} ms ({memo_pct:.2}% of E3)");
    if memo_pct >= 5.0 {
        eprintln!("FAIL: disabled memo-guard overhead {memo_pct:.2}% >= 5%");
        std::process::exit(1);
    }
    println!(
        "shard-routing overhead:  {route_overhead_ms:.4} ms per request ({route_pct:.2}% of E3)"
    );
    if route_pct >= 5.0 {
        eprintln!("FAIL: shard-routing overhead {route_pct:.2}% >= 5%");
        std::process::exit(1);
    }
    println!(
        "wire-codec overhead:     {wire_overhead_ms:.4} ms per request ({wire_pct:.2}% of E3)"
    );
    if wire_pct >= 5.0 {
        eprintln!("FAIL: wire-codec overhead {wire_pct:.2}% >= 5%");
        std::process::exit(1);
    }
    println!(
        "admission overhead:      {admit_overhead_ms:.4} ms per request ({admit_pct:.2}% of E3)"
    );
    if admit_pct >= 5.0 {
        eprintln!("FAIL: admission-path overhead {admit_pct:.2}% >= 5%");
        std::process::exit(1);
    }
    println!("OK: disabled-collector, disabled-governor, disabled-telemetry, disabled-memo, shard-routing, wire-codec and admission overhead is below the 5% bound");
}
