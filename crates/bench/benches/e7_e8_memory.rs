//! E7/E8/E12/A3: memory-footprint analyses — the coupled-subscript
//! Example 4, the SOR Example 5 (locations and cache lines), stencil
//! summarization, and the inclusion–exclusion cost sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presburger_apps::{
    distinct_cache_lines, distinct_locations, distinct_locations_naive, ArrayRef, LoopNest,
};
use presburger_baselines::fst_locations;
use presburger_omega::hull::summarize_offsets;
use presburger_omega::{Affine, Space};
use std::hint::black_box;

fn sor() -> (LoopNest, Vec<ArrayRef>) {
    let mut nest = LoopNest::new();
    let n = nest.symbol("N");
    let i = nest.add_loop(
        "i",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let j = nest.add_loop(
        "j",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let a = |di: i64, dj: i64| {
        ArrayRef::new(
            "a",
            vec![
                Affine::var(i) + Affine::constant(di),
                Affine::var(j) + Affine::constant(dj),
            ],
        )
    };
    (nest, vec![a(0, 0), a(-1, 0), a(1, 0), a(0, -1), a(0, 1)])
}

fn bench_example4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_example4");
    group.sample_size(10);
    group.bench_function("coupled_subscript_count", |b| {
        let mut nest = LoopNest::new();
        let i = nest.add_loop("i", Affine::constant(1), Affine::constant(8));
        let j = nest.add_loop("j", Affine::constant(1), Affine::constant(5));
        let r = ArrayRef::new("a", vec![Affine::from_terms(&[(i, 6), (j, 9)], -7)]);
        b.iter(|| black_box(distinct_locations(&nest, std::slice::from_ref(&r))));
    });
    group.finish();
}

fn bench_sor(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_sor");
    group.sample_size(10);

    group.bench_function("locations_summarized", |b| {
        let (nest, refs) = sor();
        b.iter(|| black_box(distinct_locations(&nest, &refs)));
    });

    group.bench_function("locations_naive_union", |b| {
        let (nest, refs) = sor();
        b.iter(|| black_box(distinct_locations_naive(&nest, &refs)));
    });

    group.bench_function("cache_lines_16", |b| {
        let (nest, refs) = sor();
        b.iter(|| black_box(distinct_cache_lines(&nest, &refs, 16)));
    });

    group.finish();
}

fn bench_stencils(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_stencils");
    let five = vec![
        vec![0i64, 0],
        vec![-1, 0],
        vec![1, 0],
        vec![0, -1],
        vec![0, 1],
    ];
    let mut nine = Vec::new();
    for a in -1i64..=1 {
        for b in -1..=1 {
            nine.push(vec![a, b]);
        }
    }
    for (name, pts) in [("five_point", five), ("nine_point", nine)] {
        group.bench_with_input(BenchmarkId::new("hull_summary", name), &pts, |b, pts| {
            let mut s = Space::new();
            let d0 = s.var("d0");
            let d1 = s.var("d1");
            b.iter(|| black_box(summarize_offsets(pts, &[d0, d1])));
        });
    }
    group.finish();
}

fn bench_inclusion_exclusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_inclusion_exclusion");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("fst_full_order", k), &k, |b, &k| {
            let mut nest = LoopNest::new();
            let n = nest.symbol("N");
            let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
            let refs: Vec<ArrayRef> = (0..k as i64)
                .map(|o| ArrayRef::new("a", vec![Affine::var(i) + Affine::constant(o)]))
                .collect();
            b.iter(|| black_box(fst_locations(&nest, &refs, k)));
        });
        group.bench_with_input(BenchmarkId::new("ours_summarized", k), &k, |b, &k| {
            let mut nest = LoopNest::new();
            let n = nest.symbol("N");
            let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
            let refs: Vec<ArrayRef> = (0..k as i64)
                .map(|o| ArrayRef::new("a", vec![Affine::var(i) + Affine::constant(o)]))
                .collect();
            b.iter(|| black_box(distinct_locations(&nest, &refs)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_example4,
    bench_sor,
    bench_stencils,
    bench_inclusion_exclusion
);
criterion_main!(benches);
