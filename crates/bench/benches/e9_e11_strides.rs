//! E9–E11: the parity splinter of Example 6, the HPF block-cyclic
//! distribution, and the §5.2 elimination modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presburger_apps::BlockCyclic;
use presburger_counting::{try_count_solutions, CountOptions};
use presburger_omega::eliminate::{eliminate, Shadow};
use presburger_omega::{Affine, Conjunct, Formula, Space};
use std::hint::black_box;

fn bench_example6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_example6");
    group.sample_size(10);
    group.bench_function("parity_splinter_count", |b| {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::le(Affine::constant(1), Affine::var(i)),
            Formula::le(Affine::constant(1), Affine::var(j)),
            Formula::le(Affine::var(j), Affine::var(n)),
            Formula::le(Affine::term(i, 2), Affine::term(j, 3)),
        ]);
        b.iter(|| {
            black_box(try_count_solutions(&s, &f, &[i, j], &CountOptions::default()).unwrap())
        });
    });
    group.finish();
}

fn bench_hpf(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_hpf");
    group.sample_size(10);
    // ownership counting cost grows with the distribution period
    // B·P (each residue splinters); keep the sweep small enough for a
    // bench harness — p16_b8 already runs for minutes per query.
    for (procs, block) in [(4i64, 2i64), (8, 4)] {
        group.bench_with_input(
            BenchmarkId::new("ownership_count", format!("p{procs}_b{block}")),
            &(procs, block),
            |b, &(procs, block)| {
                let d = BlockCyclic::new(procs, block);
                let mut s = Space::new();
                let p = s.var("p");
                b.iter(|| {
                    black_box(d.elements_on_processor(
                        &s,
                        Affine::constant(0),
                        Affine::constant(1024),
                        p,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_elimination_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_elimination");
    let build = || {
        let mut s = Space::new();
        let alpha = s.var("alpha");
        let beta = s.var("beta");
        let mut con = Conjunct::new();
        con.add_geq(Affine::from_terms(&[(beta, 3), (alpha, -1)], 0));
        con.add_geq(Affine::from_terms(&[(beta, -3), (alpha, 1)], 7));
        con.add_geq(Affine::from_terms(&[(alpha, 1), (beta, -2)], -1));
        con.add_geq(Affine::from_terms(&[(alpha, -1), (beta, 2)], 5));
        (s, con, beta)
    };
    for (name, mode) in [
        ("real_shadow", Shadow::Real),
        ("dark_shadow", Shadow::Dark),
        ("exact_overlapping", Shadow::ExactOverlapping),
        ("exact_disjoint", Shadow::ExactDisjoint),
    ] {
        group.bench_function(name, |b| {
            let (s, con, beta) = build();
            b.iter(|| {
                let mut s2 = s.clone();
                black_box(eliminate(&con, beta, &mut s2, mode))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_example6, bench_hpf, bench_elimination_modes);
criterion_main!(benches);
