//! E1/E2: the §1 simple sums and the naive-CAS comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use presburger_baselines::naive::{naive_sum, SumSpec};
use presburger_counting::{try_count_solutions, CountOptions};
use presburger_omega::{Affine, Formula, Space};
use presburger_polyq::QPoly;
use std::hint::black_box;

fn bench_simple_sums(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_simple_sums");
    group.sample_size(20);

    group.bench_function("count_interval_1_to_n", |b| {
        let mut s = Space::new();
        let i = s.var("i");
        let n = s.var("n");
        let f = Formula::between(Affine::constant(1), i, Affine::var(n));
        b.iter(|| black_box(try_count_solutions(&s, &f, &[i], &CountOptions::default()).unwrap()));
    });

    group.bench_function("count_square", |b| {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::var(n)),
            Formula::between(Affine::constant(1), j, Affine::var(n)),
        ]);
        b.iter(|| {
            black_box(try_count_solutions(&s, &f, &[i, j], &CountOptions::default()).unwrap())
        });
    });

    group.bench_function("count_triangle", |b| {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::le(Affine::constant(1), Affine::var(i)),
            Formula::lt(Affine::var(i), Affine::var(j)),
            Formula::le(Affine::var(j), Affine::var(n)),
        ]);
        b.iter(|| {
            black_box(try_count_solutions(&s, &f, &[i, j], &CountOptions::default()).unwrap())
        });
    });

    group.finish();
}

fn bench_intro_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_intro");
    group.sample_size(20);

    group.bench_function("naive_telescoping", |b| {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let m = s.var("m");
        let levels = vec![
            SumSpec {
                var: j,
                lower: Affine::var(i),
                upper: Affine::var(m),
            },
            SumSpec {
                var: i,
                lower: Affine::constant(1),
                upper: Affine::var(n),
            },
        ];
        b.iter(|| black_box(naive_sum(&levels, &QPoly::one())));
        let _ = n;
    });

    group.bench_function("guarded_exact", |b| {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let m = s.var("m");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::var(n)),
            Formula::between(Affine::var(i), j, Affine::var(m)),
        ]);
        b.iter(|| {
            black_box(try_count_solutions(&s, &f, &[i, j], &CountOptions::default()).unwrap())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_simple_sums, bench_intro_naive);
criterion_main!(benches);
