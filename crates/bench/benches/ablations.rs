//! A1/A4 ablations: redundant-constraint elimination on/off, exact vs
//! approximate counting, and the §4.2 four-piece decomposition vs
//! direct telescoping.

use criterion::{criterion_group, criterion_main, Criterion};
use presburger_counting::{try_count_solutions, CountOptions, Mode};
use presburger_omega::{Affine, Formula, Space};
use std::hint::black_box;

fn example1_formula(s: &mut Space) -> (Formula, Vec<presburger_omega::VarId>) {
    let i = s.var("i");
    let j = s.var("j");
    let k = s.var("k");
    let n = s.var("n");
    let m = s.var("m");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::constant(1), j, Affine::var(i)),
        Formula::between(Affine::var(j), k, Affine::var(m)),
    ]);
    (f, vec![i, j, k])
}

fn bench_redundancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_redundancy");
    group.sample_size(10);
    for (name, remove) in [("with_elimination", true), ("without_elimination", false)] {
        group.bench_function(name, |b| {
            let mut s = Space::new();
            let (f, vars) = example1_formula(&mut s);
            let opts = CountOptions {
                remove_redundant: remove,
                ..CountOptions::default()
            };
            b.iter(|| black_box(try_count_solutions(&s, &f, &vars, &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4_modes");
    group.sample_size(10);
    for (name, mode) in [
        ("exact", Mode::Exact),
        ("upper_bound", Mode::UpperBound),
        ("lower_bound", Mode::LowerBound),
    ] {
        group.bench_function(name, |b| {
            let mut s = Space::new();
            let i = s.var("i");
            let j = s.var("j");
            let n = s.var("n");
            let f = Formula::and(vec![
                Formula::le(Affine::constant(1), Affine::var(i)),
                Formula::le(Affine::constant(1), Affine::var(j)),
                Formula::le(Affine::var(j), Affine::var(n)),
                Formula::le(Affine::term(i, 2), Affine::term(j, 3)),
            ]);
            let opts = CountOptions {
                mode,
                ..CountOptions::default()
            };
            b.iter(|| black_box(try_count_solutions(&s, &f, &[i, j], &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_four_piece(c: &mut Criterion) {
    let mut group = c.benchmark_group("a5_four_piece");
    group.sample_size(10);
    for (name, four) in [("telescoped", false), ("four_piece", true)] {
        group.bench_function(name, |b| {
            let mut s = Space::new();
            let (f, vars) = example1_formula(&mut s);
            let opts = CountOptions {
                four_piece: four,
                ..CountOptions::default()
            };
            b.iter(|| black_box(try_count_solutions(&s, &f, &vars, &opts).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_redundancy, bench_modes, bench_four_piece);
criterion_main!(benches);
