//! E4–E6: the paper's Examples 1–3, ours vs the Tawbi and HP
//! baselines, with a depth sweep (ablation A2's workload family).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presburger_baselines::tawbi_sum;
use presburger_counting::{try_count_solutions, CountOptions};
use presburger_omega::{Affine, Conjunct, Formula, Space, VarId};
use presburger_polyq::QPoly;
use std::hint::black_box;

/// Generalized Example 1 at a given nesting depth.
fn example1_family(depth: usize) -> (Space, Conjunct, Vec<VarId>) {
    let mut s = Space::new();
    let vars: Vec<VarId> = (0..depth).map(|d| s.var(&format!("v{d}"))).collect();
    let n = s.var("n");
    let m = s.var("m");
    let mut c = Conjunct::new();
    c.add_geq(Affine::from_terms(&[(vars[0], 1)], -1));
    c.add_geq(Affine::from_terms(&[(n, 1), (vars[0], -1)], 0));
    for t in 1..depth - 1 {
        c.add_geq(Affine::from_terms(&[(vars[t], 1)], -1));
        c.add_geq(Affine::from_terms(&[(vars[t - 1], 1), (vars[t], -1)], 0));
    }
    c.add_geq(Affine::from_terms(
        &[(vars[depth - 1], 1), (vars[depth - 2], -1)],
        0,
    ));
    c.add_geq(Affine::from_terms(&[(m, 1), (vars[depth - 1], -1)], 0));
    (s, c, vars)
}

fn conjunct_to_formula(c: &Conjunct) -> Formula {
    let mut parts = Vec::new();
    for e in c.eqs() {
        parts.push(Formula::eq0(e.clone()));
    }
    for e in c.geqs() {
        parts.push(Formula::ge(e.clone()));
    }
    Formula::and(parts)
}

fn bench_example1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_example1");
    group.sample_size(10);
    for depth in [3usize, 4, 5] {
        group.bench_with_input(
            BenchmarkId::new("ours_free_order", depth),
            &depth,
            |b, &d| {
                let (s, conj, vars) = example1_family(d);
                let f = conjunct_to_formula(&conj);
                b.iter(|| {
                    black_box(try_count_solutions(&s, &f, &vars, &CountOptions::default()).unwrap())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tawbi_fixed_order", depth),
            &depth,
            |b, &d| {
                let (s, conj, vars) = example1_family(d);
                let mut order = vars.clone();
                order.reverse();
                b.iter(|| black_box(tawbi_sum(&conj, &order, &QPoly::one(), &mut s.clone())));
            },
        );
    }
    group.finish();
}

fn bench_examples_2_3(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_e6_hp_examples");
    group.sample_size(10);

    group.bench_function("example2_count", |b| {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let k = s.var("k");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::var(n)),
            Formula::between(Affine::constant(3), j, Affine::var(i)),
            Formula::between(Affine::var(j), k, Affine::constant(5)),
        ]);
        b.iter(|| {
            black_box(try_count_solutions(&s, &f, &[i, j, k], &CountOptions::default()).unwrap())
        });
    });

    group.bench_function("example3_count", |b| {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::term(n, 2)),
            Formula::between(Affine::constant(1), j, Affine::var(i)),
            Formula::le(Affine::var(i) + Affine::var(j), Affine::term(n, 2)),
        ]);
        b.iter(|| {
            black_box(try_count_solutions(&s, &f, &[i, j], &CountOptions::default()).unwrap())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_example1, bench_examples_2_3);
criterion_main!(benches);
