//! E3: the §2.6 simplification — the paper's only absolute timing
//! claim (12 ms on a 1992 Sun Sparc IPX).

use criterion::{criterion_group, criterion_main, Criterion};
use presburger_bench::experiments::section26_formula;
use presburger_omega::dnf::{simplify, SimplifyOptions};
use presburger_omega::Space;
use std::hint::black_box;

fn bench_simplify(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_simplify");
    group.sample_size(20);

    group.bench_function("section_2_6_formula", |b| {
        b.iter(|| {
            let mut s = Space::new();
            let (f, ..) = section26_formula(&mut s);
            black_box(simplify(&f, &mut s, &SimplifyOptions::default()))
        });
    });

    group.bench_function("section_2_6_formula_disjoint", |b| {
        b.iter(|| {
            let mut s = Space::new();
            let (f, ..) = section26_formula(&mut s);
            black_box(simplify(&f, &mut s, &SimplifyOptions::disjoint()))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_simplify);
criterion_main!(benches);
