//! Haghighat & Polychronopoulos' symbolic-analysis summation
//! (\[HP93a, HP93b\], §6 Examples 2–3).
//!
//! Their method keeps a single closed-form expression by introducing
//! `min`, `max` and the positivity indicator `p(x)` (1 if `x > 0`,
//! else 0) instead of splitting into guarded cases. For the paper's
//! Example 2 they derive
//!
//! ```text
//! p(min(n−2,3))·((min(n,5))³ + 15(min(n,5))² − 38·min(n,5) + 24)/6 + 6·max(n−5, 0)
//! ```
//!
//! This module implements that expression language and a
//! fixed-order summation procedure over it, counting rewrite steps so
//! the experiments can compare answer *forms* (min/max nesting vs.
//! guarded pieces) and step counts.

use presburger_arith::{Int, Rat};
use presburger_omega::VarId;

use presburger_polyq::mexpr::faulhaber_mexpr;
pub use presburger_polyq::mexpr::MExpr;

/// Result of an HP-style summation step.
#[derive(Clone, Debug)]
pub struct HpResult {
    /// The closed-form expression (with `min`/`max`/`p`).
    pub expr: MExpr,
    /// Rewrite steps performed (sum-rule applications plus
    /// `min`/`max`/`p` introductions).
    pub steps: usize,
}

/// One application of HP's summation rule:
/// `Σ_{v=L}^{U} Σₖ coeffs[k]·vᵏ` becomes
/// `p(U − L + 1) · Σₖ coeffs[k]·(Fₖ(U) − Fₖ(L−1))`,
/// with the bounds `L`/`U` arbitrary min/max expressions and the
/// coefficients free of `v`.
///
/// Composing nested loops requires HP's full rewrite-rule system for
/// pushing sums through `min`/`max` (which \[HP93a\] does not spell
/// out); the experiments therefore verify their *published* closed
/// forms for Examples 2–3 against this primitive and against the main
/// engine.
pub fn hp_sum_once(lower: &MExpr, upper: &MExpr, coeffs: &[MExpr]) -> HpResult {
    let mut steps = 1; // the Σ rule itself
    let mut total = Vec::new();
    for (k, c) in coeffs.iter().enumerate() {
        if *c == MExpr::int(0) {
            continue;
        }
        let f = faulhaber_mexpr(k as u32, upper);
        let lm1 = MExpr::Add(vec![lower.clone(), MExpr::int(-1)]);
        let f_l = faulhaber_mexpr(k as u32, &lm1);
        steps += 2;
        total.push(MExpr::Mul(vec![
            c.clone(),
            MExpr::Add(vec![f, MExpr::Mul(vec![MExpr::int(-1), f_l])]),
        ]));
    }
    // the p() emptiness guard
    let range = MExpr::Add(vec![
        upper.clone(),
        MExpr::Mul(vec![MExpr::int(-1), lower.clone()]),
        MExpr::int(1),
    ]);
    steps += 1; // p() introduction
    presburger_trace::add(presburger_trace::Counter::HpRewriteSteps, steps as u64);
    let expr = MExpr::Mul(vec![MExpr::Pos(Box::new(range)), MExpr::Add(total)]);
    HpResult { expr, steps }
}

/// The closed form \[HP93a\] publishes for the paper's Example 2
/// (`Σ_{i=1}^{n} Σ_{j=3}^{i} Σ_{k=j}^{5} 1`):
///
/// ```text
/// p(min(n−2, 3)) · (−m³ + 15m² − 38m + 24)/6 + 6·max(n−5, 0),
///     where m = min(n, 5)
/// ```
pub fn example2_hp_answer(n: VarId) -> MExpr {
    let m = MExpr::Min(Box::new(MExpr::Var(n)), Box::new(MExpr::int(5)));
    let m2 = MExpr::Mul(vec![m.clone(), m.clone()]);
    let m3 = MExpr::Mul(vec![m.clone(), m.clone(), m.clone()]);
    let poly = MExpr::Add(vec![
        MExpr::Mul(vec![MExpr::int(-1), m3]),
        MExpr::Mul(vec![MExpr::int(15), m2]),
        MExpr::Mul(vec![MExpr::int(-38), m]),
        MExpr::int(24),
    ]);
    let sixth = MExpr::Const(Rat::new(Int::one(), Int::from(6)));
    let guard = MExpr::Pos(Box::new(MExpr::Min(
        Box::new(MExpr::Add(vec![MExpr::Var(n), MExpr::int(-2)])),
        Box::new(MExpr::int(3)),
    )));
    let head = MExpr::Mul(vec![guard, sixth, poly]);
    let tail = MExpr::Mul(vec![
        MExpr::int(6),
        MExpr::Max(
            Box::new(MExpr::Add(vec![MExpr::Var(n), MExpr::int(-5)])),
            Box::new(MExpr::int(0)),
        ),
    ]);
    MExpr::Add(vec![head, tail])
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_omega::Space;

    /// §6 Example 3 ([HP93a] second example): the inner sum
    /// Σ_{j=1}^{min(i, 2n−i)} 1 must evaluate to min(i, 2n−i) clamped
    /// at 0, and its answer form carries min/max operators — the
    /// paper's qualitative point about [HP93a].
    #[test]
    fn example3_min_bound() {
        let mut s = Space::new();
        let i = s.var("i");
        let n = s.var("n");
        let upper = MExpr::Min(
            Box::new(MExpr::Var(i)),
            Box::new(MExpr::Add(vec![
                MExpr::Mul(vec![MExpr::int(2), MExpr::Var(n)]),
                MExpr::Mul(vec![MExpr::int(-1), MExpr::Var(i)]),
            ])),
        );
        let r = hp_sum_once(&MExpr::int(1), &upper, &[MExpr::int(0), MExpr::int(1)]);
        // Σ_{j=1}^{U} j = U(U+1)/2 guarded by p(U)
        for nv in 0i64..=5 {
            for iv in 0i64..=2 * nv {
                let u = iv.min(2 * nv - iv);
                let expect = if u >= 1 { u * (u + 1) / 2 } else { 0 };
                let got = r.expr.eval(&|w| {
                    if w == i {
                        Int::from(iv)
                    } else {
                        Int::from(nv)
                    }
                });
                assert_eq!(got, Rat::from(expect), "n={nv} i={iv}");
            }
        }
        assert!(r.expr.minmax_count() >= 2);
        assert!(r.steps >= 2);
    }

    #[test]
    fn simple_sum_with_pos_guard() {
        let mut s = Space::new();
        let n = s.var("n");
        let r = hp_sum_once(&MExpr::int(1), &MExpr::Var(n), &[MExpr::int(1)]);
        for nv in -4i64..=8 {
            let expect = if nv >= 1 { nv } else { 0 };
            assert_eq!(r.expr.eval(&|_| Int::from(nv)), Rat::from(expect), "n={nv}");
        }
    }

    /// The paper quotes \[HP93a\]'s published answer for Example 2:
    /// `p(min(n−2,3))·(…)/6 + 6·max(n−5, 0)`.
    /// Verify it agrees with brute force — and therefore with our
    /// engine's piecewise answer.
    #[test]
    fn example2_published_answer_is_correct() {
        let mut s = Space::new();
        let n = s.var("n");
        let e = example2_hp_answer(n);
        for nv in 0i64..=12 {
            let mut brute = 0i64;
            for iv in 1..=nv {
                for jv in 3..=iv.min(5) {
                    brute += (jv..=5).count() as i64;
                }
            }
            assert_eq!(e.eval(&|_| Int::from(nv)), Rat::from(brute), "n={nv}");
        }
        assert!(e.minmax_count() >= 3, "min/max-heavy answer form");
    }

    #[test]
    fn expression_metrics() {
        let e = MExpr::Min(
            Box::new(MExpr::int(3)),
            Box::new(MExpr::Max(Box::new(MExpr::int(1)), Box::new(MExpr::int(2)))),
        );
        assert_eq!(e.minmax_count(), 2);
        assert_eq!(e.size(), 5);
        assert_eq!(e.eval(&|_| Int::zero()), Rat::from(2));
    }
}
