//! Naive computer-algebra summation (§1).
//!
//! Symbolic math packages of the paper's era (Mathematica, Maple)
//! computed nested sums by telescoping **assuming every summation is
//! non-empty**. The paper's opening example: they report
//!
//! ```text
//! Σ_{i=1}^{n} Σ_{j=i}^{m} 1  =  n(2m − n + 1)/2
//! ```
//!
//! which is correct only when `1 ≤ n ≤ m`; for `1 ≤ m < n` the true
//! answer is `m(m+1)/2`. This module reproduces the naive behaviour so
//! the experiments can quantify exactly where it goes wrong.

use presburger_omega::{Affine, Space, VarId};
use presburger_polyq::QPoly;

/// One summation level: `Σ_{var = lower}^{upper}` (single bounds, as a
/// CAS would require).
#[derive(Clone, Debug)]
pub struct SumSpec {
    /// Summation variable.
    pub var: VarId,
    /// Lower bound expression.
    pub lower: Affine,
    /// Upper bound expression.
    pub upper: Affine,
}

/// Computes the nested sum naively: innermost first (the order given),
/// telescoping without emptiness guards.
///
/// The result is a plain polynomial — *not* guarded — and is incorrect
/// whenever some inner range is empty for part of the outer range.
///
/// ```
/// use presburger_arith::{Int, Rat};
/// use presburger_baselines::naive::{naive_sum, SumSpec};
/// use presburger_omega::{Affine, Space};
/// use presburger_polyq::QPoly;
///
/// let mut s = Space::new();
/// let i = s.var("i");
/// let n = s.var("n");
/// let spec = vec![SumSpec { var: i, lower: Affine::constant(1), upper: Affine::var(n) }];
/// let p = naive_sum(&spec, &QPoly::one());
/// assert_eq!(p.eval(&|_| Int::from(10)), Rat::from(10));
/// // …but for n = -5 the naive answer is -5, not 0:
/// assert_eq!(p.eval(&|_| Int::from(-5)), Rat::from(-5));
/// ```
pub fn naive_sum(levels: &[SumSpec], z: &QPoly) -> QPoly {
    let mut acc = z.clone();
    for level in levels {
        let coeffs = acc.coefficients_in(level.var);
        let lower = QPoly::from_affine(&level.lower);
        let upper = QPoly::from_affine(&level.upper);
        let mut next = QPoly::zero();
        for (p, cp) in coeffs.into_iter().enumerate() {
            if cp.is_zero() {
                continue;
            }
            next = next
                + cp * presburger_polyq::faulhaber::sum_powers(p as u32, &lower, &upper, level.var);
        }
        acc = next;
    }
    acc
}

/// The paper's intro example, packaged for the experiments:
/// `Σ_{i=1}^{n} Σ_{j=i}^{m} 1` computed naively.
pub fn intro_example(space: &mut Space) -> (QPoly, VarId, VarId) {
    let i = space.var("i");
    let j = space.var("j");
    let n = space.var("n");
    let m = space.var("m");
    let levels = vec![
        SumSpec {
            var: j,
            lower: Affine::var(i),
            upper: Affine::var(m),
        },
        SumSpec {
            var: i,
            lower: Affine::constant(1),
            upper: Affine::var(n),
        },
    ];
    (naive_sum(&levels, &QPoly::one()), n, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_arith::{Int, Rat};

    #[test]
    fn intro_matches_mathematica_formula() {
        // naive answer: n(2m − n + 1)/2 for ALL n, m
        let mut s = Space::new();
        let (p, n, _m) = intro_example(&mut s);
        for nv in -3i64..=8 {
            for mv in -3i64..=8 {
                let formula = Rat::new(Int::from(nv * (2 * mv - nv + 1)), Int::from(2));
                let got = p.eval(&|v| if v == n { Int::from(nv) } else { Int::from(mv) });
                assert_eq!(got, formula, "n={nv} m={mv}");
            }
        }
    }

    #[test]
    fn intro_correct_only_when_ranges_nonempty() {
        let mut s = Space::new();
        let (p, n, _m) = intro_example(&mut s);
        let brute = |nv: i64, mv: i64| -> i64 { (1..=nv).map(|iv| (iv..=mv).count() as i64).sum() };
        // correct when 1 ≤ n ≤ m
        for (nv, mv) in [(1, 1), (2, 5), (5, 5), (3, 9)] {
            assert_eq!(
                p.eval(&|v| if v == n { Int::from(nv) } else { Int::from(mv) }),
                Rat::from(brute(nv, mv)),
                "n={nv} m={mv} should be correct"
            );
        }
        // WRONG when m < n (the paper's point): true = m(m+1)/2
        let (nv, mv) = (5i64, 2i64);
        let naive = p.eval(&|v| if v == n { Int::from(nv) } else { Int::from(mv) });
        assert_ne!(naive, Rat::from(brute(nv, mv)));
        assert_eq!(brute(nv, mv), mv * (mv + 1) / 2);
    }
}
