//! Tawbi's summation algorithm (\[Taw91, TF92, Taw94\], §6 Example 1).
//!
//! Tawbi sums a polynomial over a polytope with three restrictions the
//! paper's method lifts:
//!
//! 1. variables are eliminated in a **fixed, predetermined order**
//!    (innermost first);
//! 2. **no redundant-constraint elimination** is attempted;
//! 3. emptiness is handled by an up-front **polyhedral splitting** so
//!    that no summation can be empty — which, because it respects the
//!    fixed order, "may split a summation into more pieces" than
//!    necessary.
//!
//! The implementation reuses the workspace's exact telescoping, so the
//! *answers* agree with the main engine; the interesting output is the
//! piece count, reproduced in experiment E4/A2.

use presburger_arith::Int;
use presburger_omega::{Conjunct, Space, VarId};
use presburger_polyq::{GuardedValue, QPoly};

/// The result of a Tawbi-style summation.
#[derive(Clone, Debug)]
pub struct TawbiResult {
    /// The (correct) guarded value.
    pub value: GuardedValue,
    /// Number of leaf summations performed — the paper's "terms".
    pub pieces: usize,
}

/// Sums `z` over the conjunction `c` eliminating `ordered_vars` exactly
/// in the given order (innermost first). Bounds must have unit
/// coefficients (Tawbi's rational-bound handling computed averages; the
/// comparison experiments only need the polytope case).
///
/// # Panics
///
/// Panics if a variable is unbounded or a bound has a non-unit
/// coefficient.
pub fn tawbi_sum(
    c: &Conjunct,
    ordered_vars: &[VarId],
    z: &QPoly,
    space: &mut Space,
) -> TawbiResult {
    let mut pieces = 0usize;
    let value = rec(c, ordered_vars, z, space, &mut pieces);
    TawbiResult { value, pieces }
}

fn rec(
    c: &Conjunct,
    vars: &[VarId],
    z: &QPoly,
    space: &mut Space,
    pieces: &mut usize,
) -> GuardedValue {
    let mut c = c.clone();
    c.normalize();
    if c.is_false() || z.is_zero() {
        return GuardedValue::zero();
    }
    let Some((&v, rest_vars)) = vars.split_first() else {
        if !presburger_omega::feasible::is_feasible(&c, space) {
            return GuardedValue::zero();
        }
        *pieces += 1;
        presburger_trace::bump(presburger_trace::Counter::TawbiSplits);
        presburger_trace::explain(|| format!("Tawbi leaf: {}", c.to_string(space)));
        return GuardedValue::piece(c, z.clone());
    };
    let (lowers, uppers, _) = c.bounds_on(v);
    assert!(
        !lowers.is_empty() && !uppers.is_empty(),
        "Tawbi summation requires bounded variables"
    );
    assert!(
        lowers.iter().chain(uppers.iter()).all(|b| b.coeff.is_one()),
        "Tawbi summation requires unit bound coefficients"
    );
    // Polyhedral splitting on which bound is extremal — WITHOUT first
    // removing redundant constraints, so provably-redundant bounds
    // still multiply the case count (restriction 2).
    if uppers.len() > 1 || lowers.len() > 1 {
        let split_upper = uppers.len() > 1;
        let bounds = if split_upper { &uppers } else { &lowers };
        let mut acc = GuardedValue::zero();
        for i in 0..bounds.len() {
            let mut cl = Conjunct::new();
            for e in c.eqs() {
                cl.add_eq(e.clone());
            }
            for (m, e) in c.strides() {
                cl.add_stride(m.clone(), e.clone());
            }
            for e in c.geqs() {
                let coeff = e.coeff(v);
                let competing = if split_upper {
                    coeff.is_negative()
                } else {
                    coeff.is_positive()
                };
                if !competing {
                    cl.add_geq(e.clone());
                }
            }
            let bi = &bounds[i];
            if split_upper {
                let mut e = bi.expr.clone();
                e.set_coeff(v, Int::from(-1));
                cl.add_geq(e);
            } else {
                let mut e = -&bi.expr;
                e.set_coeff(v, Int::one());
                cl.add_geq(e);
            }
            for (j, bj) in bounds.iter().enumerate() {
                if j == i {
                    continue;
                }
                let mut ord = if split_upper {
                    &bj.expr - &bi.expr
                } else {
                    &bi.expr - &bj.expr
                };
                if j < i {
                    ord.add_constant(&Int::from(-1));
                }
                cl.add_geq(ord);
            }
            cl.normalize();
            if !cl.is_false() {
                acc.add(rec(&cl, vars, z, space, pieces));
            }
        }
        return acc;
    }
    // single bounds: telescope, guarding non-emptiness up front
    let beta = &lowers[0].expr;
    let alpha = &uppers[0].expr;
    let coeffs = z.coefficients_in(v);
    let mut inner = QPoly::zero();
    for (p, cp) in coeffs.into_iter().enumerate() {
        if cp.is_zero() {
            continue;
        }
        inner = inner
            + cp * presburger_polyq::faulhaber::sum_powers(
                p as u32,
                &QPoly::from_affine(beta),
                &QPoly::from_affine(alpha),
                v,
            );
    }
    let mut rest = Conjunct::new();
    for e in c.eqs() {
        rest.add_eq(e.clone());
    }
    for (m, e) in c.strides() {
        rest.add_stride(m.clone(), e.clone());
    }
    for e in c.geqs() {
        if !e.mentions(v) {
            rest.add_geq(e.clone());
        }
    }
    rest.add_geq(alpha - beta); // non-emptiness split
    rec(&rest, rest_vars, &inner, space, pieces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_arith::Rat;
    use presburger_omega::Affine;

    /// §6 Example 1 (Tawbi): Σ over 1≤i≤n, 1≤j≤i, j≤k≤m.
    /// The paper reports Tawbi needs 3 terms where the free-order
    /// method needs 2.
    #[test]
    fn example1_piece_count() {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let k = s.var("k");
        let n = s.var("n");
        let m = s.var("m");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(i, 1)], -1)); // 1 <= i
        c.add_geq(Affine::from_terms(&[(n, 1), (i, -1)], 0)); // i <= n
        c.add_geq(Affine::from_terms(&[(j, 1)], -1)); // 1 <= j
        c.add_geq(Affine::from_terms(&[(i, 1), (j, -1)], 0)); // j <= i
        c.add_geq(Affine::from_terms(&[(k, 1), (j, -1)], 0)); // j <= k
        c.add_geq(Affine::from_terms(&[(m, 1), (k, -1)], 0)); // k <= m
                                                              // innermost-first fixed order: k, j, i
        let r = tawbi_sum(&c, &[k, j, i], &QPoly::one(), &mut s);
        assert_eq!(r.pieces, 3, "Tawbi's fixed order needs 3 terms here");
        // and the value is still correct
        for nv in 0i64..=6 {
            for mv in 0i64..=6 {
                let mut brute = 0i64;
                for iv in 1..=nv {
                    for jv in 1..=iv {
                        brute += (jv..=mv).count() as i64;
                    }
                }
                let got = r.value.eval(&s, &|w| {
                    if w == n {
                        Int::from(nv)
                    } else {
                        Int::from(mv)
                    }
                });
                assert_eq!(got, Rat::from(brute), "n={nv} m={mv}");
            }
        }
    }

    #[test]
    fn simple_box_is_one_piece() {
        let mut s = Space::new();
        let i = s.var("i");
        let n = s.var("n");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(i, 1)], -1));
        c.add_geq(Affine::from_terms(&[(n, 1), (i, -1)], 0));
        let r = tawbi_sum(&c, &[i], &QPoly::one(), &mut s);
        assert_eq!(r.pieces, 1);
        assert_eq!(r.value.eval(&s, &|_| Int::from(7)), Rat::from(7));
    }
}
