//! Ferrante–Sarkar–Thrash memory-footprint estimation (\[FST91\],
//! §6 Examples 4–5).
//!
//! FST count the distinct locations touched by a set of references by
//! counting each reference's footprint and correcting for overlaps
//! with inclusion–exclusion — `2^k − 1` summations for `k` references
//! when carried to completion, and a one-sided bound when truncated
//! (the paper: "uses expensive methods to handle … a set of
//! references", "often computes a conservative approximation", "cannot
//! handle coupled subscripts").
//!
//! This reimplementation uses the workspace's exact counter for each
//! individual summation, so the *strategy* is FST's while the
//! arithmetic is exact:
//!
//! * truncating the inclusion–exclusion at order 1 gives an upper
//!   bound, at order 2 a lower bound (Bonferroni);
//! * a reference whose subscript couples two loop variables cannot be
//!   handled; its footprint is over-approximated by the iteration
//!   count, as FST would.

use presburger_apps::{ArrayRef, LoopNest};
use presburger_counting::{try_count_solutions, CountOptions, Symbolic};
use presburger_omega::{Affine, Formula, VarId};

/// An FST-style footprint estimate.
#[derive(Clone, Debug)]
pub struct FstEstimate {
    /// The estimated number of distinct locations.
    pub value: Symbolic,
    /// Number of counting summations performed (the paper's cost
    /// metric: full inclusion–exclusion needs `2^k − 1`).
    pub summations: usize,
    /// Whether the estimate is exact (full-order inclusion–exclusion
    /// and no coupled subscripts).
    pub exact: bool,
}

/// Estimates the distinct locations touched by `refs` using
/// inclusion–exclusion truncated at `max_order`.
///
/// # Panics
///
/// Panics if `refs` is empty or mixes arrays/ranks, or if a footprint
/// is unbounded.
pub fn fst_locations(nest: &LoopNest, refs: &[ArrayRef], max_order: usize) -> FstEstimate {
    assert!(!refs.is_empty(), "no references");
    let dims = refs[0].subscripts.len();
    assert!(
        refs.iter()
            .all(|r| r.array == refs[0].array && r.subscripts.len() == dims),
        "references must target one array with a fixed rank"
    );
    let loop_vars = nest.loop_vars();
    let coupled: Vec<bool> = refs
        .iter()
        .map(|r| {
            r.subscripts
                .iter()
                .any(|s| s.vars().filter(|v| loop_vars.contains(v)).count() >= 2)
        })
        .collect();
    let mut space = nest.space().clone();
    let loc_vars: Vec<VarId> = (0..dims).map(|k| space.var(&format!("loc{k}"))).collect();

    let mut summations = 0usize;
    let mut exact = max_order >= refs.len() && coupled.iter().all(|c| !c);
    let mut acc = presburger_polyq::GuardedValue::zero();
    let mut final_space = space.clone();

    // iterate over non-empty subsets up to max_order
    let n = refs.len();
    for mask in 1u32..(1 << n) {
        let k = mask.count_ones() as usize;
        if k > max_order {
            continue;
        }
        let members: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        if members.iter().any(|&i| coupled[i]) {
            if k == 1 {
                // coupled subscript: FST cannot handle it; fall back to
                // the iteration count as a conservative footprint
                let c = nest.iteration_count();
                summations += 1;
                presburger_trace::bump(presburger_trace::Counter::FstSummations);
                exact = false;
                acc.add(c.value);
                final_space = c.space;
            }
            // intersections with coupled references are skipped
            // (over-approximating the union)
            continue;
        }
        // footprint intersection of the member references: for each, a
        // fresh copy of the iteration space
        let mut space2 = space.clone();
        let mut parts = Vec::new();
        let mut bound = Vec::new();
        for &ri in &members {
            let mut body = nest.iteration_space();
            let mut subs = refs[ri].subscripts.clone();
            for lv in &loop_vars {
                let hint = space2.name(*lv).to_string();
                let fresh = space2.fresh(&hint);
                body = body.substitute(*lv, &Affine::var(fresh));
                for s in &mut subs {
                    *s = s.substitute(*lv, &Affine::var(fresh));
                }
                bound.push(fresh);
            }
            parts.push(body);
            for (d, s) in subs.into_iter().enumerate() {
                parts.push(Formula::eq(Affine::var(loc_vars[d]), s));
            }
        }
        let f = Formula::exists(bound, Formula::and(parts));
        let c = try_count_solutions(&space2, &f, &loc_vars, &CountOptions::default())
            .unwrap_or_else(|e| panic!("FST summation failed: {e}"));
        summations += 1;
        presburger_trace::bump(presburger_trace::Counter::FstSummations);
        let signed = if k % 2 == 1 {
            c.value
        } else {
            c.value.scale(&presburger_arith::Rat::from(-1))
        };
        acc.add(signed);
        final_space = c.space;
    }
    acc.compact();
    FstEstimate {
        value: Symbolic {
            space: final_space,
            value: acc,
        },
        summations,
        exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sor_nest() -> (LoopNest, Vec<ArrayRef>) {
        let mut nest = LoopNest::new();
        let n = nest.symbol("N");
        let i = nest.add_loop(
            "i",
            Affine::constant(2),
            Affine::var(n) - Affine::constant(1),
        );
        let j = nest.add_loop(
            "j",
            Affine::constant(2),
            Affine::var(n) - Affine::constant(1),
        );
        let a = |di: i64, dj: i64| {
            ArrayRef::new(
                "a",
                vec![
                    Affine::var(i) + Affine::constant(di),
                    Affine::var(j) + Affine::constant(dj),
                ],
            )
        };
        let refs = vec![a(0, 0), a(-1, 0), a(1, 0), a(0, -1), a(0, 1)];
        (nest, refs)
    }

    /// Full inclusion–exclusion is exact but needs 2⁵−1 = 31
    /// summations for the SOR stencil (vs one with summarization).
    #[test]
    fn full_inclusion_exclusion_is_exact_but_expensive() {
        let (nest, refs) = sor_nest();
        let est = fst_locations(&nest, &refs, 5);
        assert!(est.exact);
        assert_eq!(est.summations, 31);
        for nv in [5i64, 10] {
            assert_eq!(
                est.value.eval_i64(&[("N", nv)]),
                Some(nv * nv - 4),
                "N={nv}"
            );
        }
    }

    /// Bonferroni: order 1 over-counts, order 2 under-counts.
    #[test]
    fn truncation_gives_one_sided_bounds() {
        let (nest, refs) = sor_nest();
        let o1 = fst_locations(&nest, &refs, 1);
        let o2 = fst_locations(&nest, &refs, 2);
        assert!(!o1.exact && !o2.exact);
        assert_eq!(o1.summations, 5);
        assert_eq!(o2.summations, 5 + 10);
        for nv in [5i64, 8, 12] {
            let truth = nv * nv - 4;
            let hi = o1.value.eval_i64(&[("N", nv)]).unwrap();
            let lo = o2.value.eval_i64(&[("N", nv)]).unwrap();
            assert!(hi >= truth, "order-1 must over-count: {hi} vs {truth}");
            assert!(lo <= truth, "order-2 must under-count: {lo} vs {truth}");
        }
    }

    /// §6 Example 4: the coupled subscript a(6i+9j−7) defeats FST — the
    /// conservative estimate is the iteration count 40, not 25.
    #[test]
    fn coupled_subscripts_fall_back() {
        let mut nest = LoopNest::new();
        let i = nest.add_loop("i", Affine::constant(1), Affine::constant(8));
        let j = nest.add_loop("j", Affine::constant(1), Affine::constant(5));
        let r = ArrayRef::new("a", vec![Affine::from_terms(&[(i, 6), (j, 9)], -7)]);
        let est = fst_locations(&nest, &[r], 1);
        assert!(!est.exact);
        assert_eq!(est.value.eval_i64(&[]), Some(40)); // vs the true 25
    }
}
