//! Baselines the paper compares against (§1, §6).
//!
//! * [`naive`] — Mathematica/Maple-style telescoping that assumes every
//!   summation range is non-empty (§1's wrong-answer example);
//! * [`tawbi`] — fixed elimination order, up-front polyhedral
//!   splitting, no redundant-constraint elimination
//!   (\[Taw91, TF92, Taw94\]);
//! * [`hp`] — Haghighat & Polychronopoulos' min/max/p(·) answer form
//!   (\[HP93a, HP93b\]);
//! * [`fst`] — Ferrante–Sarkar–Thrash inclusion–exclusion footprint
//!   counting with its coupled-subscript limitation (\[FST91\]).
//!
//! Each baseline reuses the workspace's exact arithmetic so the
//! *strategies* are compared on equal footing; the experiments measure
//! answer correctness, piece/step counts, and summation counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fst;
pub mod hp;
pub mod naive;
pub mod tawbi;

pub use fst::{fst_locations, FstEstimate};
pub use hp::{example2_hp_answer, hp_sum_once, HpResult, MExpr};
pub use naive::{intro_example, naive_sum, SumSpec};
pub use tawbi::{tawbi_sum, TawbiResult};
