//! HPF block-cyclic distributions (§3.3).
//!
//! A one-dimensional template `T(0:S−1)` distributed block-cyclically
//! over `P` processors with blocks of `B` maps template cell `t` to
//! processor `p` and local coordinates `(c, l)` through
//!
//! ```text
//! t = l + B·p + B·P·c   ∧   0 ≤ l < B   ∧   0 ≤ p < P   ∧   0 ≤ c
//! ```
//!
//! — exactly the nonlinear-constraint example of §3.3 (the paper's
//! `T(0:1024)`, 8 processors, blocks of 4). Counting solutions of this
//! mapping answers ownership and message-buffer-sizing questions.

use presburger_counting::{try_count_solutions, CountOptions, Symbolic};
use presburger_omega::{Affine, Formula, Space, VarId};

/// A one-dimensional block-cyclic distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockCyclic {
    /// Number of processors `P`.
    pub procs: i64,
    /// Block size `B`.
    pub block: i64,
}

impl BlockCyclic {
    /// Creates a distribution.
    ///
    /// # Panics
    ///
    /// Panics if `procs < 1` or `block < 1`.
    pub fn new(procs: i64, block: i64) -> BlockCyclic {
        assert!(procs >= 1 && block >= 1, "invalid distribution");
        BlockCyclic { procs, block }
    }

    /// The mapping formula relating a template index `t` to
    /// `(p, c, l)`.
    pub fn mapping(&self, t: VarId, p: VarId, c: VarId, l: VarId) -> Formula {
        Formula::and(vec![
            Formula::eq(
                Affine::var(t),
                Affine::var(l)
                    + Affine::term(p, self.block)
                    + Affine::term(c, self.block * self.procs),
            ),
            Formula::between(Affine::constant(0), l, Affine::constant(self.block - 1)),
            Formula::between(Affine::constant(0), p, Affine::constant(self.procs - 1)),
            Formula::le(Affine::constant(0), Affine::var(c)),
        ])
    }

    /// Counts the template cells of `lo ≤ t ≤ hi` owned by processor
    /// `p` — symbolically in `p` and whatever symbols the bounds
    /// mention.
    ///
    /// # Panics
    ///
    /// Panics if the region is unbounded.
    pub fn elements_on_processor(
        &self,
        space: &Space,
        lo: Affine,
        hi: Affine,
        p: VarId,
    ) -> Symbolic {
        let mut space = space.clone();
        let t = space.fresh("t");
        let c = space.fresh("c");
        let l = space.fresh("l");
        let f = Formula::and(vec![
            Formula::between(lo, t, hi),
            Formula::exists(vec![c, l], self.mapping(t, p, c, l)),
        ]);
        try_count_solutions(&space, &f, &[t], &CountOptions::default())
            .unwrap_or_else(|e| panic!("ownership not countable: {e}"))
    }

    /// The owner processor of template cell `t` (concrete helper).
    pub fn owner(&self, t: i64) -> i64 {
        (t / self.block).rem_euclid(self.procs)
    }

    /// Communication volume under the owner-computes rule (§1.1:
    /// "the array elements that need to be transmitted from one
    /// processor to another").
    ///
    /// For the loop `for i = lo..=hi { a[write_sub(i)] ⊕= b[read_sub(i)] }`
    /// with both arrays distributed by `self`, counts the **distinct**
    /// elements of `b` that processor `q` must send to processor `p`
    /// (the receive-buffer size), symbolically in `p`, `q` and any
    /// symbols in the bounds/subscripts. Elements already local
    /// (`p = q`) are included; callers typically evaluate at `p ≠ q`.
    ///
    /// # Panics
    ///
    /// Panics if the volume is not countable (unbounded iteration
    /// range).
    #[allow(clippy::too_many_arguments)]
    pub fn comm_volume(
        &self,
        space: &Space,
        lo: Affine,
        hi: Affine,
        iter_hint: &str,
        write_sub: &dyn Fn(VarId) -> Affine,
        read_sub: &dyn Fn(VarId) -> Affine,
        p: VarId,
        q: VarId,
    ) -> Symbolic {
        let mut space = space.clone();
        let i = space.fresh(iter_hint);
        let e = space.fresh("e");
        let wt = space.fresh("wt");
        let (c1, l1) = (space.fresh("c"), space.fresh("l"));
        let (c2, l2) = (space.fresh("c"), space.fresh("l"));
        let f = Formula::exists(
            vec![i, wt, c1, l1, c2, l2],
            Formula::and(vec![
                Formula::between(lo, i, hi),
                Formula::eq(Affine::var(e), read_sub(i)),
                Formula::eq(Affine::var(wt), write_sub(i)),
                self.mapping(wt, p, c1, l1), // iteration executed by p
                self.mapping(e, q, c2, l2),  // element owned by q
            ]),
        );
        try_count_solutions(&space, &f, &[e], &CountOptions::default())
            .unwrap_or_else(|err| panic!("communication volume not countable: {err}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_arith::Int;

    /// §3.3: T(0:1024) distributed over 8 processors in blocks of 4:
    /// "elements T(0:3) are mapped to processor 0, T(4:7) to processor
    /// 1, T(28:31) to processor 7, and T(32:35) to processor 0 again".
    #[test]
    fn paper_33_examples() {
        let d = BlockCyclic::new(8, 4);
        for t in 0..=3 {
            assert_eq!(d.owner(t), 0);
        }
        for t in 4..=7 {
            assert_eq!(d.owner(t), 1);
        }
        for t in 28..=31 {
            assert_eq!(d.owner(t), 7);
        }
        for t in 32..=35 {
            assert_eq!(d.owner(t), 0);
        }
    }

    /// The mapping is a bijection: each `t` has exactly one `(p, c, l)`.
    #[test]
    fn mapping_is_one_to_one() {
        let d = BlockCyclic::new(8, 4);
        let mut s = Space::new();
        let t = s.var("t");
        let p = s.var("p");
        let c = s.var("c");
        let l = s.var("l");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(0), t, Affine::constant(100)),
            d.mapping(t, p, c, l),
        ]);
        // counting (p, c, l, t) equals counting t alone (101 cells)
        let quad = try_count_solutions(&s, &f, &[t, p, c, l], &CountOptions::default()).unwrap();
        assert_eq!(quad.eval_i64(&[]), Some(101));
    }

    /// Ownership counts per processor over T(0:1024): 1025 cells in
    /// blocks of 4 over 8 processors.
    #[test]
    fn ownership_counts() {
        let d = BlockCyclic::new(8, 4);
        let s = Space::new();
        let mut s2 = s.clone();
        let p = s2.var("p");
        let count = d.elements_on_processor(&s2, Affine::constant(0), Affine::constant(1024), p);
        let mut total = 0i64;
        for pv in 0..8i64 {
            let got = count.eval_i64(&[("p", pv)]).unwrap();
            let brute = (0..=1024).filter(|&t| d.owner(t) == pv).count() as i64;
            assert_eq!(got, brute, "p={pv}");
            total += got;
        }
        assert_eq!(total, 1025);
    }

    /// Shift communication a[i] ⊕= b[i+3]: the volume q→p matches a
    /// brute-force owner-computes simulation.
    #[test]
    fn shift_comm_volume_matches_simulation() {
        let d = BlockCyclic::new(4, 2);
        let s = Space::new();
        let mut s2 = s.clone();
        let p = s2.var("p");
        let q = s2.var("q");
        let vol = d.comm_volume(
            &s2,
            Affine::constant(0),
            Affine::constant(39),
            "i",
            &|i| Affine::var(i),
            &|i| Affine::var(i) + Affine::constant(3),
            p,
            q,
        );
        for pv in 0..4i64 {
            for qv in 0..4i64 {
                let mut needed = std::collections::BTreeSet::new();
                for iv in 0..=39i64 {
                    let writer = d.owner(iv);
                    let elem = iv + 3;
                    if writer == pv && d.owner(elem) == qv {
                        needed.insert(elem);
                    }
                }
                assert_eq!(
                    vol.eval_i64(&[("p", pv), ("q", qv)]),
                    Some(needed.len() as i64),
                    "p={pv} q={qv}"
                );
            }
        }
    }

    /// A stride-2 gather a[i] ⊕= b[2i] also matches.
    #[test]
    fn strided_comm_volume_matches_simulation() {
        let d = BlockCyclic::new(3, 2);
        let s = Space::new();
        let mut s2 = s.clone();
        let p = s2.var("p");
        let q = s2.var("q");
        let vol = d.comm_volume(
            &s2,
            Affine::constant(0),
            Affine::constant(20),
            "i",
            &|i| Affine::var(i),
            &|i| Affine::term(i, 2),
            p,
            q,
        );
        for pv in 0..3i64 {
            for qv in 0..3i64 {
                let mut needed = std::collections::BTreeSet::new();
                for iv in 0..=20i64 {
                    if d.owner(iv) == pv && d.owner(2 * iv) == qv {
                        needed.insert(2 * iv);
                    }
                }
                assert_eq!(
                    vol.eval_i64(&[("p", pv), ("q", qv)]),
                    Some(needed.len() as i64),
                    "p={pv} q={qv}"
                );
            }
        }
    }

    /// Symbolic in the region bound: buffer sizing for a send of
    /// a(0..=n) as a function of n and p.
    #[test]
    fn symbolic_buffer_size() {
        let d = BlockCyclic::new(4, 2);
        let mut s = Space::new();
        let n = s.var("n");
        let p = s.var("p");
        let count = d.elements_on_processor(&s, Affine::constant(0), Affine::var(n), p);
        for nv in 0i64..=20 {
            for pv in 0..4i64 {
                let brute = (0..=nv).filter(|&t| d.owner(t) == pv).count() as i64;
                assert_eq!(
                    count.eval_i64(&[("n", nv), ("p", pv)]),
                    Some(brute),
                    "n={nv} p={pv}"
                );
            }
        }
        let _ = Int::zero();
    }
}
