//! Load-balance analysis and balanced chunk scheduling (§1.1,
//! \[TF92\], \[HP93a\]).
//!
//! For a nest whose outermost loop is parallelized, the work each
//! outer iteration performs is the count of the inner iterations —
//! symbolic in the outer variable. A loop is *balanced* when that
//! count does not depend on the outer variable; when it is not,
//! *balanced chunk scheduling* assigns each processor a contiguous
//! range of outer iterations carrying (nearly) equal work.

use crate::loopnest::LoopNest;

use presburger_counting::Symbolic;
use presburger_omega::VarId;

/// The per-outer-iteration work profile of a nest.
#[derive(Clone, Debug)]
pub struct WorkProfile {
    /// The parallel (outer) loop variable.
    pub outer: VarId,
    /// Inner-iteration count as a function of `outer` and the symbols.
    pub per_iteration: Symbolic,
    /// Total iteration count (all loops).
    pub total: Symbolic,
}

/// Computes the work profile of `nest` with `outer` as the parallel
/// loop.
///
/// # Panics
///
/// Panics if the iteration space is unbounded.
pub fn work_profile(nest: &LoopNest, outer: VarId) -> WorkProfile {
    WorkProfile {
        outer,
        per_iteration: nest.count_inner(&[outer]),
        total: nest.iteration_count(),
    }
}

impl WorkProfile {
    /// A loop is balanced when the per-iteration work is independent of
    /// the outer variable (§1.1 "determine whether a parallel loop is
    /// load balanced").
    ///
    /// Guards may mention the outer variable (they encode which outer
    /// iterations exist at all); balance requires the *values* to be
    /// independent of it, and — when several pieces have outer-dependent
    /// guards — identical across pieces.
    pub fn is_balanced(&self) -> bool {
        let pieces = self.per_iteration.value.pieces();
        if pieces.iter().any(|p| p.value.mentions(self.outer)) {
            return false;
        }
        // different outer iterations could fall into different pieces;
        // that is only balanced if all pieces carry the same value
        let outer_dependent = pieces
            .iter()
            .filter(|p| p.guard.mentions(self.outer))
            .count();
        if outer_dependent > 1 {
            let first = &pieces[0].value;
            return pieces.iter().all(|p| p.value == *first);
        }
        true
    }

    /// Evaluates the work of one outer iteration numerically.
    ///
    /// # Panics
    ///
    /// Panics if a needed symbol is missing from `bindings`.
    pub fn work_at(&self, outer_value: i64, bindings: &[(&str, i64)]) -> i64 {
        let name = self.per_iteration.space.name(self.outer).to_string();
        let mut all: Vec<(&str, i64)> = bindings.to_vec();
        all.push((name.as_str(), outer_value));
        self.per_iteration.eval_i64(&all).expect("integral work")
    }

    /// Balanced chunk scheduling (\[HP93a\]): splits the outer range
    /// `lo..=hi` into `procs` contiguous chunks with near-equal total
    /// work. Returns `(start, end)` per processor (empty chunks are
    /// `(s, s−1)`).
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0` or a needed symbol binding is missing.
    pub fn balanced_chunks(
        &self,
        lo: i64,
        hi: i64,
        procs: u32,
        bindings: &[(&str, i64)],
    ) -> Vec<(i64, i64)> {
        assert!(procs > 0, "need at least one processor");
        // prefix(p) = work of iterations lo..=p, computed incrementally
        let mut prefix = Vec::with_capacity((hi - lo + 2).max(1) as usize);
        prefix.push(0i64);
        let mut acc = 0i64;
        for p in lo..=hi {
            acc += self.work_at(p, bindings);
            prefix.push(acc);
        }
        let total = acc;
        let mut chunks = Vec::with_capacity(procs as usize);
        let mut start_idx = 0usize; // index into prefix (iteration lo+start_idx)
        for k in 1..=procs as i64 {
            let target = total * k / procs as i64;
            // advance end until prefix >= target
            let mut end_idx = start_idx;
            while end_idx < (hi - lo + 1) as usize && prefix[end_idx] < target {
                end_idx += 1;
            }
            chunks.push((lo + start_idx as i64, lo + end_idx as i64 - 1));
            start_idx = end_idx;
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_omega::Affine;

    fn triangular() -> (LoopNest, VarId) {
        // for i = 1..n { for j = i..n } — work(i) = n − i + 1
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let _j = nest.add_loop("j", Affine::var(i), Affine::var(n));
        (nest, i)
    }

    #[test]
    fn triangular_is_unbalanced() {
        let (nest, i) = triangular();
        let wp = work_profile(&nest, i);
        assert!(!wp.is_balanced());
        assert_eq!(wp.work_at(1, &[("n", 10)]), 10);
        assert_eq!(wp.work_at(10, &[("n", 10)]), 1);
        assert_eq!(wp.total.eval_i64(&[("n", 10)]), Some(55));
    }

    #[test]
    fn rectangular_is_balanced() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let _j = nest.add_loop("j", Affine::constant(1), Affine::var(n));
        let wp = work_profile(&nest, i);
        assert!(wp.is_balanced());
    }

    #[test]
    fn chunks_cover_range_and_balance_work() {
        let (nest, i) = triangular();
        let wp = work_profile(&nest, i);
        let n = 100i64;
        let procs = 4u32;
        let chunks = wp.balanced_chunks(1, n, procs, &[("n", n)]);
        assert_eq!(chunks.len(), procs as usize);
        // coverage: contiguous, no gaps
        assert_eq!(chunks[0].0, 1);
        assert_eq!(chunks.last().unwrap().1, n);
        for w in chunks.windows(2) {
            assert_eq!(w[1].0, w[0].1 + 1);
        }
        // balance: every chunk within 10% of ideal + one iteration
        let total: i64 = 100 * 101 / 2;
        let ideal = total / procs as i64;
        for &(s, e) in &chunks {
            let work: i64 = (s..=e).map(|p| wp.work_at(p, &[("n", n)])).sum();
            assert!(
                (work - ideal).abs() <= ideal / 10 + 100,
                "chunk ({s},{e}) has work {work}, ideal {ideal}"
            );
        }
    }

    #[test]
    fn chunks_match_naive_partitioner() {
        let (nest, i) = triangular();
        let wp = work_profile(&nest, i);
        let chunks = wp.balanced_chunks(1, 10, 3, &[("n", 10)]);
        let total: i64 = 55;
        // cumulative boundaries at ceil-like points of total*k/3
        let mut acc = 0;
        let mut k = 0usize;
        for p in 1..=10i64 {
            acc += 10 - p + 1;
            if k < 2 && acc >= total * (k as i64 + 1) / 3 {
                assert!(chunks[k].1 == p, "boundary {k} at {p}, got {:?}", chunks);
                k += 1;
            }
        }
    }
}
