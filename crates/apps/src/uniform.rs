//! Grouping array references into uniformly generated sets (§5.1).
//!
//! References like `a(i,j)`, `a(i-1,j)`, `a(i+1,j)` differ only in
//! constant offsets — a *uniformly generated set* \[GJ88\]. The set of
//! elements they touch is summarized as the integer points of the
//! convex hull of the offsets (plus strides), which keeps the
//! memory-footprint formula to a single clause instead of one clause
//! per reference.

use crate::loopnest::ArrayRef;
use presburger_omega::hull::{summarize_offsets, OffsetSummary};
use presburger_omega::{Affine, Space, VarId};

/// A maximal set of references with identical linear subscript parts.
#[derive(Clone, Debug)]
pub struct UniformGroup {
    /// Array name.
    pub array: String,
    /// The shared linear parts (subscripts with constants removed).
    pub linear: Vec<Affine>,
    /// One constant offset vector per reference in the group.
    pub offsets: Vec<Vec<i64>>,
}

impl UniformGroup {
    /// Summarizes the group's offsets (§5.1.1 method 2). Returns `None`
    /// when an offset does not fit in `i64` or the dimension exceeds 3.
    pub fn summarize(&self, delta_vars: &[VarId]) -> Option<OffsetSummary> {
        if self.linear.len() > 3 {
            return None;
        }
        Some(summarize_offsets(&self.offsets, delta_vars))
    }
}

/// Groups references to the same array by their linear subscript parts.
///
/// ```
/// use presburger_apps::{group_uniformly_generated, ArrayRef};
/// use presburger_omega::{Affine, Space};
///
/// let mut s = Space::new();
/// let i = s.var("i");
/// let refs = vec![
///     ArrayRef::new("a", vec![Affine::var(i)]),
///     ArrayRef::new("a", vec![Affine::var(i) + Affine::constant(1)]),
/// ];
/// let groups = group_uniformly_generated(&refs);
/// assert_eq!(groups.len(), 1);
/// assert_eq!(groups[0].offsets.len(), 2);
/// ```
pub fn group_uniformly_generated(refs: &[ArrayRef]) -> Vec<UniformGroup> {
    let mut groups: Vec<UniformGroup> = Vec::new();
    for r in refs {
        let mut linear = Vec::with_capacity(r.subscripts.len());
        let mut offset = Vec::with_capacity(r.subscripts.len());
        let mut representable = true;
        for s in &r.subscripts {
            let mut lin = s.clone();
            let c = lin.constant_term().clone();
            lin.add_constant(&-c.clone());
            match c.to_i64() {
                Some(v) => offset.push(v),
                None => representable = false,
            }
            linear.push(lin);
        }
        if !representable {
            // enormous constants: put the reference in its own group
            groups.push(UniformGroup {
                array: r.array.clone(),
                linear: r.subscripts.clone(),
                offsets: vec![vec![0; r.subscripts.len()]],
            });
            continue;
        }
        if let Some(g) = groups
            .iter_mut()
            .find(|g| g.array == r.array && g.linear == linear)
        {
            if !g.offsets.contains(&offset) {
                g.offsets.push(offset);
            }
        } else {
            groups.push(UniformGroup {
                array: r.array.clone(),
                linear,
                offsets: vec![offset],
            });
        }
    }
    groups
}

/// Renders a group for diagnostics.
pub fn describe_group(g: &UniformGroup, space: &Space) -> String {
    let lin: Vec<String> = g.linear.iter().map(|e| e.to_string(space)).collect();
    format!(
        "{}[{}] with {} offsets",
        g.array,
        lin.join(", "),
        g.offsets.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sor_refs(space: &mut Space) -> Vec<ArrayRef> {
        let i = space.var("i");
        let j = space.var("j");
        let a = |di: i64, dj: i64| {
            ArrayRef::new(
                "a",
                vec![
                    Affine::var(i) + Affine::constant(di),
                    Affine::var(j) + Affine::constant(dj),
                ],
            )
        };
        vec![a(0, 0), a(-1, 0), a(1, 0), a(0, -1), a(0, 1)]
    }

    #[test]
    fn sor_is_one_group() {
        let mut s = Space::new();
        let refs = sor_refs(&mut s);
        let groups = group_uniformly_generated(&refs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].offsets.len(), 5);
        let d0 = s.var("d0");
        let d1 = s.var("d1");
        let sum = groups[0].summarize(&[d0, d1]).unwrap();
        assert!(sum.exact, "SOR stencil summarizes exactly");
    }

    #[test]
    fn different_linear_parts_split() {
        let mut s = Space::new();
        let i = s.var("i");
        let refs = vec![
            ArrayRef::new("a", vec![Affine::var(i)]),
            ArrayRef::new("a", vec![Affine::term(i, 2)]),
            ArrayRef::new("b", vec![Affine::var(i)]),
        ];
        let groups = group_uniformly_generated(&refs);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn duplicate_offsets_are_merged() {
        let mut s = Space::new();
        let i = s.var("i");
        let refs = vec![
            ArrayRef::new("a", vec![Affine::var(i)]),
            ArrayRef::new("a", vec![Affine::var(i)]),
        ];
        let groups = group_uniformly_generated(&refs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].offsets.len(), 1);
    }
}
