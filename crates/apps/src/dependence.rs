//! Array data-dependence analysis — the Omega test's original
//! application (§2: "initially used in array data dependence
//! testing"), extended with the paper's counting capability.
//!
//! For two references in a loop nest, the *dependence formula* relates
//! a source iteration `ī` to a sink iteration `ī′` touching the same
//! element with `ī ≺ ī′` (lexicographically earlier). The Omega test
//! decides existence; the counting engine *counts* the dependent pairs
//! — an estimate of how much synchronization or communication a
//! transformation must preserve.

use crate::loopnest::{ArrayRef, LoopNest};
use presburger_counting::{try_count_solutions, CountOptions, Symbolic};
use presburger_omega::dnf::{simplify, SimplifyOptions};
use presburger_omega::feasible::is_feasible;
use presburger_omega::{Affine, Formula, VarId};

/// A dependence query between two references of one nest.
#[derive(Clone, Debug)]
pub struct Dependence {
    /// Formula over `2·depth` iteration variables (source then sink).
    pub formula: Formula,
    /// The source iteration variables.
    pub source_vars: Vec<VarId>,
    /// The sink iteration variables.
    pub sink_vars: Vec<VarId>,
    /// The space the formula lives in.
    pub space: presburger_omega::Space,
}

/// Builds the dependence formula between `from` (source access) and
/// `to` (sink access): same element, source lexicographically before
/// sink.
///
/// # Panics
///
/// Panics if the references have different ranks.
pub fn dependence_formula(nest: &LoopNest, from: &ArrayRef, to: &ArrayRef) -> Dependence {
    assert_eq!(
        from.subscripts.len(),
        to.subscripts.len(),
        "references must have the same rank"
    );
    let mut space = nest.space().clone();
    let iter_vars = nest.loop_vars();
    let base = nest.iteration_space();

    // fresh copies of the iteration variables for source and sink
    let mut src_vars = Vec::with_capacity(iter_vars.len());
    let mut snk_vars = Vec::with_capacity(iter_vars.len());
    let mut src_formula = base.clone();
    let mut snk_formula = base;
    let mut src_subs = from.subscripts.clone();
    let mut snk_subs = to.subscripts.clone();
    for v in &iter_vars {
        let name = space.name(*v).to_string();
        let sv = space.var(&format!("{name}_src"));
        let tv = space.var(&format!("{name}_snk"));
        src_formula = src_formula.substitute(*v, &Affine::var(sv));
        snk_formula = snk_formula.substitute(*v, &Affine::var(tv));
        for e in src_subs.iter_mut() {
            *e = e.substitute(*v, &Affine::var(sv));
        }
        for e in snk_subs.iter_mut() {
            *e = e.substitute(*v, &Affine::var(tv));
        }
        src_vars.push(sv);
        snk_vars.push(tv);
    }
    let mut parts = vec![src_formula, snk_formula];
    for (a, b) in src_subs.iter().zip(snk_subs.iter()) {
        parts.push(Formula::eq(a.clone(), b.clone()));
    }
    // lexicographic order: ∨ₖ (prefix equal ∧ srcₖ < snkₖ)
    let mut order = Vec::new();
    for k in 0..src_vars.len() {
        let mut lex = Vec::new();
        for p in 0..k {
            lex.push(Formula::eq(
                Affine::var(src_vars[p]),
                Affine::var(snk_vars[p]),
            ));
        }
        lex.push(Formula::lt(
            Affine::var(src_vars[k]),
            Affine::var(snk_vars[k]),
        ));
        order.push(Formula::and(lex));
    }
    parts.push(Formula::or(order));
    Dependence {
        formula: Formula::and(parts),
        source_vars: src_vars,
        sink_vars: snk_vars,
        space,
    }
}

impl Dependence {
    /// Decides whether any dependence exists (the classic Omega-test
    /// query).
    pub fn exists(&self) -> bool {
        let mut space = self.space.clone();
        let d = simplify(&self.formula, &mut space, &SimplifyOptions::default());
        d.clauses.iter().any(|c| is_feasible(c, &mut space))
    }

    /// Counts the dependent iteration pairs symbolically (the paper's
    /// new capability on top of the dependence test).
    ///
    /// # Panics
    ///
    /// Panics if the count diverges.
    pub fn count_pairs(&self) -> Symbolic {
        let mut vars = self.source_vars.clone();
        vars.extend(self.sink_vars.iter().copied());
        try_count_solutions(&self.space, &self.formula, &vars, &CountOptions::default())
            .unwrap_or_else(|e| panic!("dependence count failed: {e}"))
    }

    /// Counts the distinct *sink* iterations that depend on some
    /// earlier iteration (how many iterations must wait).
    ///
    /// # Panics
    ///
    /// Panics if the count diverges.
    pub fn count_dependent_sinks(&self) -> Symbolic {
        let f = Formula::exists(self.source_vars.clone(), self.formula.clone());
        try_count_solutions(&self.space, &f, &self.sink_vars, &CountOptions::default())
            .unwrap_or_else(|e| panic!("dependent-sink count failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::LoopNest;

    /// for i = 1..n { a[i] = a[i-1] + 1 } — the classic flow dependence.
    #[test]
    fn recurrence_has_dependences() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let write = ArrayRef::new("a", vec![Affine::var(i)]);
        let read = ArrayRef::new("a", vec![Affine::var(i) - Affine::constant(1)]);
        let dep = dependence_formula(&nest, &write, &read);
        assert!(dep.exists());
        // pairs: write a[i] at i, read a[i] at i+1 → n−1 pairs
        let pairs = dep.count_pairs();
        for nv in 0i64..=10 {
            assert_eq!(
                pairs.eval_i64(&[("n", nv)]),
                Some((nv - 1).max(0)),
                "n={nv}"
            );
        }
    }

    /// for i = 1..n { a[2i] = a[2i+1] } — even writes never meet odd
    /// reads: no dependence (a classic Omega-test win over GCD-only
    /// tests would be a[2i] vs a[2i-1]…).
    #[test]
    fn parity_separated_accesses_are_independent() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let write = ArrayRef::new("a", vec![Affine::term(i, 2)]);
        let read = ArrayRef::new("a", vec![Affine::term(i, 2) + Affine::constant(1)]);
        let dep = dependence_formula(&nest, &write, &read);
        assert!(!dep.exists());
        assert!(dep.count_pairs().value.is_zero());
    }

    /// 2-D stencil dependence: a[i][j] written, a[i-1][j] read later.
    #[test]
    fn two_dimensional_flow() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let j = nest.add_loop("j", Affine::constant(1), Affine::var(n));
        let write = ArrayRef::new("a", vec![Affine::var(i), Affine::var(j)]);
        let read = ArrayRef::new(
            "a",
            vec![Affine::var(i) - Affine::constant(1), Affine::var(j)],
        );
        let dep = dependence_formula(&nest, &write, &read);
        assert!(dep.exists());
        // pairs: (i,j) → (i+1, j): (n−1)·n pairs
        let pairs = dep.count_pairs();
        for nv in 0i64..=8 {
            assert_eq!(
                pairs.eval_i64(&[("n", nv)]),
                Some(((nv - 1) * nv).max(0)),
                "n={nv}"
            );
        }
        // every iteration with i ≥ 2 is a dependent sink
        let sinks = dep.count_dependent_sinks();
        for nv in 0i64..=8 {
            assert_eq!(
                sinks.eval_i64(&[("n", nv)]),
                Some(((nv - 1) * nv).max(0)),
                "n={nv}"
            );
        }
    }

    /// Coupled subscripts (the Omega test's specialty): a[i+j] vs
    /// a[i+j+2n] never overlap inside 1..n loops.
    #[test]
    fn coupled_subscripts_disproved() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let j = nest.add_loop("j", Affine::constant(1), Affine::var(n));
        let write = ArrayRef::new("a", vec![Affine::var(i) + Affine::var(j)]);
        let far = ArrayRef::new(
            "a",
            vec![Affine::var(i) + Affine::var(j) + Affine::term(n, 2)],
        );
        let dep = dependence_formula(&nest, &write, &far);
        // i+j ≤ 2n < i'+j'+2n for i',j' ≥ 1: provably independent…
        // for n ≥ 1; n ≤ 0 has no iterations at all.
        assert!(!dep.exists());
    }

    /// Self-output dependence of a[i mod-like pattern]: a[i] = …; the
    /// same element is written once — no output dependence.
    #[test]
    fn injective_writes_no_output_dependence() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let write = ArrayRef::new("a", vec![Affine::term(i, 3)]);
        let dep = dependence_formula(&nest, &write, &write);
        assert!(!dep.exists());
    }
}
