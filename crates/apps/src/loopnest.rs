//! Affine loop-nest modelling (§1.1).
//!
//! A [`LoopNest`] describes a nest of `for` loops with affine bounds,
//! strides and guards — the program fragments the paper's applications
//! analyze. The iteration space is a Presburger formula, so counting
//! iterations (execution-time estimation), flops, or any polynomial
//! quantity is a direct application of the counting engine.

use presburger_counting::{try_sum_polynomial, CountOptions, Symbolic};
use presburger_omega::{Affine, Formula, Space, VarId};
use presburger_polyq::QPoly;

/// One loop level: `for var = max(lowers) .. min(uppers) step step`.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop variable.
    pub var: VarId,
    /// Lower bound expressions (the loop starts at their maximum).
    pub lowers: Vec<Affine>,
    /// Upper bound expressions (the loop ends at their minimum).
    pub uppers: Vec<Affine>,
    /// The loop step (≥ 1).
    pub step: i64,
}

/// An array reference `array(subscripts…)` inside the nest body.
#[derive(Clone, Debug)]
pub struct ArrayRef {
    /// Array name (references to different arrays never alias).
    pub array: String,
    /// Affine subscript expressions, one per dimension.
    pub subscripts: Vec<Affine>,
}

impl ArrayRef {
    /// Creates a reference.
    pub fn new(array: impl Into<String>, subscripts: Vec<Affine>) -> ArrayRef {
        ArrayRef {
            array: array.into(),
            subscripts,
        }
    }
}

/// A statement in the nest body: optionally guarded, with a flop cost
/// (possibly depending on the loop variables) and the array references
/// it makes.
#[derive(Clone, Debug)]
pub struct Statement {
    /// Extra condition under which the statement executes (an `if` in
    /// the body), or `None` for unconditional statements.
    pub guard: Option<Formula>,
    /// Floating-point operations performed per execution.
    pub flops: QPoly,
    /// Array references made by the statement.
    pub refs: Vec<ArrayRef>,
}

impl Statement {
    /// An unconditional statement with a constant flop count.
    pub fn simple(flops: i64, refs: Vec<ArrayRef>) -> Statement {
        Statement {
            guard: None,
            flops: QPoly::constant(presburger_arith::Rat::from(flops)),
            refs,
        }
    }
}

/// An affine loop nest with optional guards.
///
/// ```
/// use presburger_apps::LoopNest;
/// use presburger_omega::Affine;
///
/// // for i = 1..n { for j = i..n { … } }
/// let mut nest = LoopNest::new();
/// let n = nest.symbol("n");
/// let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
/// let _j = nest.add_loop("j", Affine::var(i), Affine::var(n));
/// let count = nest.iteration_count();
/// assert_eq!(count.eval_i64(&[("n", 10)]), Some(55));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LoopNest {
    space: Space,
    loops: Vec<Loop>,
    guards: Vec<Formula>,
    statements: Vec<Statement>,
}

impl LoopNest {
    /// Creates an empty nest.
    pub fn new() -> LoopNest {
        LoopNest::default()
    }

    /// Interns a symbolic constant (e.g. a problem size).
    pub fn symbol(&mut self, name: &str) -> VarId {
        self.space.var(name)
    }

    /// Adds an innermost loop `for var = lower..=upper` (step 1).
    pub fn add_loop(&mut self, var: &str, lower: Affine, upper: Affine) -> VarId {
        self.add_loop_strided(var, lower, upper, 1)
    }

    /// Adds an innermost loop with a step.
    ///
    /// # Panics
    ///
    /// Panics if `step < 1`.
    pub fn add_loop_strided(
        &mut self,
        var: &str,
        lower: Affine,
        upper: Affine,
        step: i64,
    ) -> VarId {
        assert!(step >= 1, "loop step must be >= 1");
        let v = self.space.var(var);
        self.loops.push(Loop {
            var: v,
            lowers: vec![lower],
            uppers: vec![upper],
            step,
        });
        v
    }

    /// Adds an extra lower bound to the innermost loop
    /// (`max(l₁, l₂, …)` semantics).
    ///
    /// # Panics
    ///
    /// Panics if no loop has been added yet.
    pub fn also_lower(&mut self, bound: Affine) {
        self.loops
            .last_mut()
            .expect("no loop to bound")
            .lowers
            .push(bound);
    }

    /// Adds an extra upper bound to the innermost loop
    /// (`min(u₁, u₂, …)` semantics).
    ///
    /// # Panics
    ///
    /// Panics if no loop has been added yet.
    pub fn also_upper(&mut self, bound: Affine) {
        self.loops
            .last_mut()
            .expect("no loop to bound")
            .uppers
            .push(bound);
    }

    /// Adds an arbitrary guard formula restricting the iteration space
    /// (e.g. an `if` inside the nest).
    pub fn guard(&mut self, f: Formula) {
        self.guards.push(f);
    }

    /// The loop variables, outermost first.
    pub fn loop_vars(&self) -> Vec<VarId> {
        self.loops.iter().map(|l| l.var).collect()
    }

    /// The underlying variable space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Mutable access to the space (for building subscripts/guards with
    /// fresh variables).
    pub fn space_mut(&mut self) -> &mut Space {
        &mut self.space
    }

    /// The iteration-space formula: bounds, strides and guards.
    pub fn iteration_space(&self) -> Formula {
        let mut parts = Vec::new();
        for l in &self.loops {
            for lo in &l.lowers {
                parts.push(Formula::le(lo.clone(), Affine::var(l.var)));
            }
            for hi in &l.uppers {
                parts.push(Formula::le(Affine::var(l.var), hi.clone()));
            }
            if l.step > 1 {
                // var ≡ max-lower (mod step); with several lower bounds
                // the stride is anchored at the first
                let anchor = &l.lowers[0];
                parts.push(Formula::stride(l.step, Affine::var(l.var) - anchor.clone()));
            }
        }
        parts.extend(self.guards.iter().cloned());
        Formula::and(parts)
    }

    /// Counts the iterations of the nest symbolically — the paper's
    /// execution-time estimate (§1.1).
    ///
    /// # Panics
    ///
    /// Panics if the iteration space is unbounded.
    pub fn iteration_count(&self) -> Symbolic {
        self.sum(&QPoly::one())
    }

    /// Sums `poly` over the iterations (e.g. per-iteration flop counts
    /// that depend on loop variables).
    ///
    /// # Panics
    ///
    /// Panics if the iteration space is unbounded.
    pub fn sum(&self, poly: &QPoly) -> Symbolic {
        try_sum_polynomial(
            &self.space,
            &self.iteration_space(),
            &self.loop_vars(),
            poly,
            &CountOptions::default(),
        )
        .unwrap_or_else(|e| panic!("loop nest is not countable: {e}"))
    }

    /// Adds a body statement.
    pub fn add_statement(&mut self, stmt: Statement) {
        self.statements.push(stmt);
    }

    /// The body statements.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// All references the body makes to `array`, across statements.
    pub fn refs_to(&self, array: &str) -> Vec<ArrayRef> {
        self.statements
            .iter()
            .flat_map(|s| s.refs.iter())
            .filter(|r| r.array == array)
            .cloned()
            .collect()
    }

    /// Total flops executed by the nest: the sum over statements of
    /// their flop polynomial over the iterations where they execute
    /// (§1.1 "the flops executed by a loop").
    ///
    /// # Panics
    ///
    /// Panics if the iteration space is unbounded or no statements
    /// were added.
    pub fn total_flops(&self) -> Symbolic {
        assert!(
            !self.statements.is_empty(),
            "no statements: use sum() for a raw per-iteration cost"
        );
        let base = self.iteration_space();
        let vars = self.loop_vars();
        let mut acc: Option<Symbolic> = None;
        for stmt in &self.statements {
            let f = match &stmt.guard {
                Some(g) => Formula::and(vec![base.clone(), g.clone()]),
                None => base.clone(),
            };
            let part = try_sum_polynomial(
                &self.space,
                &f,
                &vars,
                &stmt.flops,
                &CountOptions::default(),
            )
            .unwrap_or_else(|e| panic!("flop count failed: {e}"));
            acc = Some(match acc {
                None => part,
                Some(mut total) => {
                    total.value.add(part.value);
                    // spaces may have diverged by fresh wildcards; the
                    // later one is a superset (same interning order)
                    total.space = part.space;
                    total
                }
            });
        }
        let mut out = acc.expect("at least one statement");
        out.value.compact();
        out
    }

    /// Counts iterations with some loop variables treated symbolically
    /// (e.g. the outer parallel loop in a load-balance query).
    ///
    /// # Panics
    ///
    /// Panics if the reduced iteration space is unbounded.
    pub fn count_inner(&self, outer: &[VarId]) -> Symbolic {
        let vars: Vec<VarId> = self
            .loop_vars()
            .into_iter()
            .filter(|v| !outer.contains(v))
            .collect();
        try_sum_polynomial(
            &self.space,
            &self.iteration_space(),
            &vars,
            &QPoly::one(),
            &CountOptions::default(),
        )
        .unwrap_or_else(|e| panic!("loop nest is not countable: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_nest() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let _j = nest.add_loop("j", Affine::var(i), Affine::var(n));
        let c = nest.iteration_count();
        assert_eq!(c.eval_i64(&[("n", 10)]), Some(55));
        assert_eq!(c.eval_i64(&[("n", 1)]), Some(1));
        assert_eq!(c.eval_i64(&[("n", -5)]), Some(0));
    }

    #[test]
    fn strided_loop() {
        // for i = 0..n step 3
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let _i = nest.add_loop_strided("i", Affine::constant(0), Affine::var(n), 3);
        let c = nest.iteration_count();
        for nv in -1i64..=12 {
            let expected = if nv >= 0 { nv / 3 + 1 } else { 0 };
            assert_eq!(c.eval_i64(&[("n", nv)]), Some(expected), "n={nv}");
        }
    }

    #[test]
    fn guarded_nest() {
        // for i = 1..n { for j = 1..n { if i+j <= n { … } } }
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let j = nest.add_loop("j", Affine::constant(1), Affine::var(n));
        nest.guard(Formula::le(Affine::var(i) + Affine::var(j), Affine::var(n)));
        let c = nest.iteration_count();
        // triangle with i+j <= n, i,j >= 1: n(n-1)/2 points
        assert_eq!(c.eval_i64(&[("n", 5)]), Some(10));
        assert_eq!(c.eval_i64(&[("n", 2)]), Some(1));
        assert_eq!(c.eval_i64(&[("n", 1)]), Some(0));
    }

    #[test]
    fn min_max_bounds() {
        // for i = max(1, m)..min(n, 10)
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let m = nest.symbol("m");
        let _i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        nest.also_lower(Affine::var(m));
        nest.also_upper(Affine::constant(10));
        let c = nest.iteration_count();
        for nv in 0i64..=14 {
            for mv in -3i64..=14 {
                let lo = 1.max(mv);
                let hi = nv.min(10);
                let expected = (hi - lo + 1).max(0);
                assert_eq!(
                    c.eval_i64(&[("n", nv), ("m", mv)]),
                    Some(expected),
                    "n={nv} m={mv}"
                );
            }
        }
    }

    #[test]
    fn weighted_flop_sum() {
        // inner work proportional to i: Σ_{i=1}^{n} i
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let c = nest.sum(&QPoly::var(i));
        assert_eq!(c.eval_i64(&[("n", 100)]), Some(5050));
    }

    #[test]
    fn statements_and_total_flops() {
        // SOR body: one statement, 6 flops, 5 references
        let mut nest = LoopNest::new();
        let n = nest.symbol("N");
        let i = nest.add_loop(
            "i",
            Affine::constant(2),
            Affine::var(n) - Affine::constant(1),
        );
        let j = nest.add_loop(
            "j",
            Affine::constant(2),
            Affine::var(n) - Affine::constant(1),
        );
        let at = |di: i64, dj: i64| {
            ArrayRef::new(
                "a",
                vec![
                    Affine::var(i) + Affine::constant(di),
                    Affine::var(j) + Affine::constant(dj),
                ],
            )
        };
        nest.add_statement(Statement::simple(
            6,
            vec![at(0, 0), at(-1, 0), at(1, 0), at(0, -1), at(0, 1)],
        ));
        let flops = nest.total_flops();
        assert_eq!(flops.eval_i64(&[("N", 500)]), Some(6 * 498 * 498));
        assert_eq!(nest.refs_to("a").len(), 5);
        assert_eq!(nest.refs_to("b").len(), 0);
    }

    #[test]
    fn guarded_statements_split_flop_counts() {
        // for i = 1..n: 2 flops always, plus 10 flops when i is in the
        // first half (i ≤ n/2 modeled as 2i ≤ n)
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        nest.add_statement(Statement::simple(2, vec![]));
        nest.add_statement(Statement {
            guard: Some(Formula::le(Affine::term(i, 2), Affine::var(n))),
            flops: QPoly::constant(presburger_arith::Rat::from(10)),
            refs: vec![],
        });
        let flops = nest.total_flops();
        for nv in 0i64..=12 {
            let expect = 2 * nv.max(0) + 10 * ((nv / 2).max(0));
            assert_eq!(flops.eval_i64(&[("n", nv)]), Some(expect), "n={nv}");
        }
    }

    #[test]
    fn variable_cost_statement() {
        // triangular solve: row i costs 2i flops
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        nest.add_statement(Statement {
            guard: None,
            flops: QPoly::var(i).scale(&presburger_arith::Rat::from(2)),
            refs: vec![],
        });
        let flops = nest.total_flops();
        assert_eq!(flops.eval_i64(&[("n", 100)]), Some(100 * 101));
    }

    #[test]
    fn count_inner_for_load_balance() {
        // for i = 1..n { for j = i..n } — inner count = n - i + 1
        let mut nest = LoopNest::new();
        let n = nest.symbol("n");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let _j = nest.add_loop("j", Affine::var(i), Affine::var(n));
        let per_i = nest.count_inner(&[i]);
        assert_eq!(per_i.eval_i64(&[("n", 10), ("i", 4)]), Some(7));
        assert_eq!(per_i.eval_i64(&[("n", 10), ("i", 11)]), Some(0));
    }
}
