//! Compiler-analysis applications of Presburger counting (§1.1, §6).
//!
//! The "why" of the paper: once `(Σ V : P : z)` can be computed
//! symbolically, a compiler can
//!
//! * estimate the execution time of a loop nest
//!   ([`LoopNest::iteration_count`]);
//! * count flops, weighted by per-iteration work ([`LoopNest::sum`]);
//! * count the distinct memory locations or cache lines a nest touches
//!   ([`distinct_locations`], [`distinct_cache_lines`]);
//! * decide whether a parallel loop is load balanced, and schedule
//!   balanced chunks ([`work_profile`], [`WorkProfile`]);
//! * analyze HPF block-cyclic distributions and size message buffers
//!   ([`BlockCyclic`]).
//!
//! # Example
//!
//! ```
//! use presburger_apps::LoopNest;
//! use presburger_omega::Affine;
//!
//! let mut nest = LoopNest::new();
//! let n = nest.symbol("n");
//! let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
//! let _j = nest.add_loop("j", Affine::var(i), Affine::var(n));
//! assert_eq!(nest.iteration_count().eval_i64(&[("n", 100)]), Some(5050));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balance;
mod dependence;
mod hpf;
mod loopnest;
mod memory;
mod uniform;

pub use balance::{work_profile, WorkProfile};
pub use dependence::{dependence_formula, Dependence};
pub use hpf::BlockCyclic;
pub use loopnest::{ArrayRef, Loop, LoopNest, Statement};
pub use memory::{distinct_cache_lines, distinct_locations, distinct_locations_naive};
pub use uniform::{describe_group, group_uniformly_generated, UniformGroup};
