//! Memory-footprint and cache-line analysis (§1.1, §6 Examples 4–5).
//!
//! Counts the *distinct* memory locations (or cache lines) touched by
//! a set of array references inside a loop nest, by building a
//! Presburger formula whose solutions are exactly the touched
//! locations and counting it symbolically.
//!
//! References that form a uniformly generated set are summarized first
//! (§5.1), which both avoids overlapping clauses and keeps the formula
//! small — the paper's criticism of \[FST91\]'s per-pair
//! inclusion–exclusion.

use crate::loopnest::{ArrayRef, LoopNest};
use crate::uniform::group_uniformly_generated;
use presburger_counting::{try_count_solutions, CountOptions, Symbolic};
use presburger_omega::{Affine, Desugar, Formula, VarId};

/// Counts the distinct memory locations of `array` touched by `refs`
/// over the iterations of `nest`.
///
/// All references must target `array` with the same dimensionality.
///
/// # Panics
///
/// Panics if `refs` is empty, mixes arrays or dimensionalities, or the
/// footprint is unbounded.
pub fn distinct_locations(nest: &LoopNest, refs: &[ArrayRef]) -> Symbolic {
    let (formula, space, loc_vars) = footprint_formula(nest, refs, true);
    try_count_solutions(&space, &formula, &loc_vars, &CountOptions::default())
        .unwrap_or_else(|e| panic!("footprint not countable: {e}"))
}

/// Like [`distinct_locations`] but *without* uniformly-generated-set
/// summarization: one disjunct per reference (the naive §5.1 baseline,
/// used by the stencil ablation).
pub fn distinct_locations_naive(nest: &LoopNest, refs: &[ArrayRef]) -> Symbolic {
    let (formula, space, loc_vars) = footprint_formula(nest, refs, false);
    try_count_solutions(&space, &formula, &loc_vars, &CountOptions::default())
        .unwrap_or_else(|e| panic!("footprint not countable: {e}"))
}

/// Counts the distinct cache lines touched, with the paper's Example 5
/// mapping: element `(s₁, s₂, …)` lives on line
/// `(⌊(s₁−1)/line⌋, s₂, …)`.
///
/// # Panics
///
/// Panics if `line < 1`, `refs` is malformed, or the footprint is
/// unbounded.
pub fn distinct_cache_lines(nest: &LoopNest, refs: &[ArrayRef], line: i64) -> Symbolic {
    assert!(line >= 1, "cache line must hold at least one element");
    let (elem_formula, mut space, elem_vars) = footprint_formula(nest, refs, true);
    // line variables: x₀ = ⌊(e₀ − 1)/line⌋, xₖ = eₖ
    let line_vars: Vec<VarId> = (0..elem_vars.len())
        .map(|k| space.var(&format!("line{k}")))
        .collect();
    let mut d = Desugar::new(&mut space);
    let mapped = d.floor_div(Affine::var(elem_vars[0]) - Affine::constant(1), line);
    let mut parts = vec![elem_formula, Formula::eq(Affine::var(line_vars[0]), mapped)];
    for k in 1..elem_vars.len() {
        parts.push(Formula::eq(
            Affine::var(line_vars[k]),
            Affine::var(elem_vars[k]),
        ));
    }
    let body = d.finish(Formula::and(parts));
    let full = Formula::exists(elem_vars, body);
    try_count_solutions(&space, &full, &line_vars, &CountOptions::default())
        .unwrap_or_else(|e| panic!("cache footprint not countable: {e}"))
}

/// Builds the footprint formula: free variables `loc_vars` range over
/// the touched locations. With `summarize` set, uniformly generated
/// groups whose offset summary is exact become single clauses.
fn footprint_formula(
    nest: &LoopNest,
    refs: &[ArrayRef],
    summarize: bool,
) -> (Formula, presburger_omega::Space, Vec<VarId>) {
    assert!(!refs.is_empty(), "no references to analyze");
    let dims = refs[0].subscripts.len();
    assert!(
        refs.iter()
            .all(|r| r.array == refs[0].array && r.subscripts.len() == dims),
        "references must target one array with a fixed rank"
    );
    let mut space = nest.space().clone();
    let loc_vars: Vec<VarId> = (0..dims).map(|k| space.var(&format!("loc{k}"))).collect();
    let iter_vars = nest.loop_vars();
    let space_formula = nest.iteration_space();

    let mut disjuncts = Vec::new();
    if summarize {
        for g in group_uniformly_generated(refs) {
            let delta_vars: Vec<VarId> = (0..dims)
                .map(|k| space.fresh(&format!("delta{k}")))
                .collect();
            let summary = g.summarize(&delta_vars).filter(|s| s.exact);
            match summary {
                Some(s) if g.offsets.len() > 1 => {
                    // ∃ iters, δ: space ∧ hull(δ) ∧ loc = linear + δ
                    let mut parts = vec![space_formula.clone(), conjunct_formula(&s.conjunct)];
                    for (k, loc) in loc_vars.iter().enumerate() {
                        parts.push(Formula::eq(
                            Affine::var(*loc),
                            g.linear[k].clone() + Affine::var(delta_vars[k]),
                        ));
                    }
                    let mut bound = iter_vars.clone();
                    bound.extend(delta_vars.iter().copied());
                    disjuncts.push(Formula::exists(bound, Formula::and(parts)));
                }
                _ => {
                    // fall back to one disjunct per offset
                    for off in &g.offsets {
                        let mut parts = vec![space_formula.clone()];
                        for k in 0..dims {
                            parts.push(Formula::eq(
                                Affine::var(loc_vars[k]),
                                g.linear[k].clone() + Affine::constant(off[k]),
                            ));
                        }
                        disjuncts.push(Formula::exists(iter_vars.clone(), Formula::and(parts)));
                    }
                }
            }
        }
    } else {
        for r in refs {
            let mut parts = vec![space_formula.clone()];
            for (loc, sub) in loc_vars.iter().zip(&r.subscripts) {
                parts.push(Formula::eq(Affine::var(*loc), sub.clone()));
            }
            disjuncts.push(Formula::exists(iter_vars.clone(), Formula::and(parts)));
        }
    }
    (Formula::or(disjuncts), space, loc_vars)
}

/// Converts a wildcard-free conjunct into a formula.
fn conjunct_formula(c: &presburger_omega::Conjunct) -> Formula {
    let mut parts = Vec::new();
    for e in c.eqs() {
        parts.push(Formula::eq0(e.clone()));
    }
    for e in c.geqs() {
        parts.push(Formula::ge(e.clone()));
    }
    for (m, e) in c.strides() {
        parts.push(Formula::stride(m.clone(), e.clone()));
    }
    Formula::and(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §6 Example 4 [FST91]: `a(6i+9j−7)` for 1≤i≤8, 1≤j≤5 touches 25
    /// distinct locations.
    #[test]
    fn example4_coupled_subscript() {
        let mut nest = LoopNest::new();
        let i = nest.add_loop("i", Affine::constant(1), Affine::constant(8));
        let j = nest.add_loop("j", Affine::constant(1), Affine::constant(5));
        let r = ArrayRef::new("a", vec![Affine::from_terms(&[(i, 6), (j, 9)], -7)]);
        let c = distinct_locations(&nest, &[r]);
        assert_eq!(c.eval_i64(&[]), Some(25));
    }

    /// §6 Example 5: the SOR 5-point stencil touches N²−4 locations.
    #[test]
    fn example5_sor_locations() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("N");
        let i = nest.add_loop(
            "i",
            Affine::constant(2),
            Affine::var(n) - Affine::constant(1),
        );
        let j = nest.add_loop(
            "j",
            Affine::constant(2),
            Affine::var(n) - Affine::constant(1),
        );
        let a = |di: i64, dj: i64| {
            ArrayRef::new(
                "a",
                vec![
                    Affine::var(i) + Affine::constant(di),
                    Affine::var(j) + Affine::constant(dj),
                ],
            )
        };
        let refs = vec![a(0, 0), a(-1, 0), a(1, 0), a(0, -1), a(0, 1)];
        let c = distinct_locations(&nest, &refs);
        for nv in [4i64, 5, 10, 50] {
            assert_eq!(c.eval_i64(&[("N", nv)]), Some(nv * nv - 4), "N={nv}");
        }
        // paper's headline number
        assert_eq!(c.eval_i64(&[("N", 500)]), Some(249_996));
    }

    /// The naive per-reference union must agree with the summarized
    /// version (it just takes more clauses).
    #[test]
    fn naive_union_agrees() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("N");
        let i = nest.add_loop(
            "i",
            Affine::constant(2),
            Affine::var(n) - Affine::constant(1),
        );
        let refs = vec![
            ArrayRef::new("a", vec![Affine::var(i)]),
            ArrayRef::new("a", vec![Affine::var(i) - Affine::constant(1)]),
            ArrayRef::new("a", vec![Affine::var(i) + Affine::constant(1)]),
        ];
        let summarized = distinct_locations(&nest, &refs);
        let naive = distinct_locations_naive(&nest, &refs);
        for nv in 0i64..=12 {
            assert_eq!(
                summarized.eval_i64(&[("N", nv)]),
                naive.eval_i64(&[("N", nv)]),
                "N={nv}"
            );
        }
    }

    /// §6 Example 5, cache lines: with 16-element lines the N=500 SOR
    /// loop touches 16 000 lines.
    #[test]
    fn example5_sor_cache_lines() {
        let mut nest = LoopNest::new();
        let n = nest.symbol("N");
        let i = nest.add_loop(
            "i",
            Affine::constant(2),
            Affine::var(n) - Affine::constant(1),
        );
        let j = nest.add_loop(
            "j",
            Affine::constant(2),
            Affine::var(n) - Affine::constant(1),
        );
        let a = |di: i64, dj: i64| {
            ArrayRef::new(
                "a",
                vec![
                    Affine::var(i) + Affine::constant(di),
                    Affine::var(j) + Affine::constant(dj),
                ],
            )
        };
        let refs = vec![a(0, 0), a(-1, 0), a(1, 0), a(0, -1), a(0, 1)];
        let c = distinct_cache_lines(&nest, &refs, 16);
        assert_eq!(c.eval_i64(&[("N", 500)]), Some(16_000));
        // paper's symbolic claim: N·(1 + (N−2)÷16) + (N−2 when N≡1 mod 16, N≥17)
        for nv in [10i64, 17, 20, 33, 100] {
            let base = nv * (1 + (nv - 2) / 16);
            let extra = if nv >= 17 && nv % 16 == 1 { nv - 2 } else { 0 };
            assert_eq!(c.eval_i64(&[("N", nv)]), Some(base + extra), "N={nv}");
        }
    }
}
